"""Public-API hygiene: exports resolve, everything public is documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.sequence",
    "repro.index",
    "repro.gpu",
    "repro.core",
    "repro.baselines",
    "repro.align",
    "repro.bench",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert getattr(mod, symbol, None) is not None, f"{name}.{symbol}"


def _walk_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                yield importlib.import_module(f"{pkg_name}.{info.name}")


def test_every_module_has_a_docstring():
    for mod in _walk_modules():
        assert mod.__doc__ and mod.__doc__.strip(), mod.__name__


def test_public_callables_are_documented():
    undocumented = []
    for mod in _walk_modules():
        for symbol in getattr(mod, "__all__", []):
            obj = getattr(mod, symbol)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{mod.__name__}.{symbol}")
    assert not undocumented, undocumented


def test_public_classes_have_documented_public_methods():
    skip = {"__init__"}
    undocumented = []
    for symbol in repro.__all__:
        obj = getattr(repro, symbol)
        if not inspect.isclass(obj):
            continue
        for name, member in inspect.getmembers(obj):
            if name.startswith("_") or name in skip:
                continue
            if inspect.isfunction(member) and member.__qualname__.startswith(
                obj.__name__ + "."
            ):
                if not (member.__doc__ and member.__doc__.strip()):
                    undocumented.append(f"{symbol}.{name}")
    assert not undocumented, undocumented


def test_version_matches_package_metadata():
    from repro._version import __version__

    assert repro.__version__ == __version__
    parts = __version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)
