"""Deliberately hazardous host code: the adversarial fixture for the
concurrency tooling (the lock-layer counterpart of ``planted_kernels``).

Each class/function plants exactly one bug class from ``docs/analysis.md``.
The static pass (:mod:`repro.analysis.concurrency_lint`) must flag every
one of them, and the runtime :class:`repro.analysis.lock_tracker.LockTracker`
must catch the deadlock-shaped ones when they execute. Importing this
module is harmless — the hazards only manifest when the methods run.
"""

from __future__ import annotations

import threading

_PLANTED_REGISTRY: dict = {}
_planted_lock = threading.Lock()  # guards: _PLANTED_REGISTRY


class InvertedLocks:
    """CL102 / lock-order inversion: ``ab`` nests a->b, ``ba`` nests b->a.

    Two threads running ``ab()`` and ``ba()`` concurrently can each grab
    their outer lock and wait forever on the other's. The runtime tracker
    catches it from a *single* thread calling both in sequence, because
    the order graph aggregates over time.
    """

    def __init__(self, lock_factory):
        self.a_lock = lock_factory("planted.a")
        self.b_lock = lock_factory("planted.b")

    def ab(self) -> str:
        with self.a_lock:
            with self.b_lock:
                return "ab"

    def ba(self) -> str:
        with self.b_lock:
            with self.a_lock:
                return "ba"


class HoldWhileResult:
    """CL103 / hold-while-blocked: blocks on ``Future.result()`` under a lock.

    If the pool's worker (or anything the future depends on) ever needs
    ``_lock``, this deadlocks; even when it does not, every other waiter
    on ``_lock`` stalls behind the pool's scheduling latency.
    """

    def __init__(self, lock_factory):
        self._lock = lock_factory("planted.result")

    def fetch(self, pool) -> int:
        with self._lock:
            fut = pool.submit(lambda: 42)
            return fut.result()


class UnguardedCounter:
    """CL101 / guarded attribute outside its lock: ``bump`` skips the lock."""

    def __init__(self, lock_factory=threading.Lock):
        self._lock = lock_factory()  # guards: _count
        self._count = 0

    def bump(self) -> None:
        self._count += 1

    def read(self) -> int:
        with self._lock:
            return self._count


def register_unsafely(key, value) -> None:
    """CL104 / unguarded module state: mutates the dict lock-free."""
    _PLANTED_REGISTRY[key] = value


def register_safely(key, value) -> None:
    """The compliant twin of :func:`register_unsafely` (no finding)."""
    with _planted_lock:
        _PLANTED_REGISTRY[key] = value
