"""Runtime resource tracker: lifecycle table, misuse findings, audits."""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.analysis import resource_tracker as rt
from repro.analysis.resource_tracker import ResourceTracker
from repro.errors import ResourceLeakError

from tests.analysis.planted_resources import (
    double_unlink,
    leak_published_sequence,
    open_bundle_and_escape,
    orphan_file_lock,
)


@pytest.fixture
def collect_tracker():
    """A collect-mode tracker installed process-wide, previous one restored."""
    prev = rt.active_tracker()
    tracker = ResourceTracker(mode="collect")
    rt.install(tracker)
    try:
        yield tracker
    finally:
        if prev is not None:
            rt.install(prev)
        else:
            rt.uninstall()


class TestLifecycleTable:
    def test_full_round_trip_audits_clean(self):
        tracker = ResourceTracker(mode="raise")
        tracker.shm_created("seg-a", 64)
        tracker.shm_attached("seg-a")
        tracker.shm_closed("seg-a", owner=False)
        tracker.shm_closed("seg-a", owner=True)
        tracker.shm_unlinked("seg-a")
        assert tracker.audit() == []
        assert tracker.findings == []

    def test_owner_close_without_unlink_is_still_a_leak(self):
        tracker = ResourceTracker(mode="collect")
        tracker.shm_created("seg-b", 64)
        tracker.shm_closed("seg-b", owner=True)
        leaked = tracker.leaks()
        assert [(r.kind, r.name) for r in leaked] == [("shm", "seg-b")]

    def test_record_provenance(self, collect_tracker):
        # through the module hook, so _call_site resolves to this file
        rt.lock_acquired("/tmp/x.lock")
        (record,) = collect_tracker.leaks()
        assert record.pid == os.getpid()
        assert "test_resource_tracker.py" in record.site
        assert "lock" in record.format() and str(record.pid) in record.format()
        rt.lock_released("/tmp/x.lock")

    def test_baseline_scopes_the_audit(self):
        tracker = ResourceTracker(mode="collect")
        tracker.shm_created("pre-existing", 1)
        baseline = tracker.live_snapshot()
        tracker.mmap_opened("/data/new.npz")
        leaked = tracker.leaks(baseline=baseline)
        assert [(r.kind, r.name) for r in leaked] == [("mmap", "/data/new.npz")]

    def test_clear_resets_everything(self):
        tracker = ResourceTracker(mode="collect")
        tracker.shm_created("seg", 1)
        tracker.lock_released("/never/acquired")
        tracker.clear()
        assert tracker.leaks() == [] and tracker.findings == []

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            ResourceTracker(mode="warn")


class TestMisuseFindings:
    def test_double_close_of_attachment(self):
        tracker = ResourceTracker(mode="collect")
        tracker.shm_attached("seg")
        tracker.shm_closed("seg", owner=False)
        tracker.shm_closed("seg", owner=False)
        assert [f.kind for f in tracker.findings] == ["double-close"]

    def test_double_unlink(self):
        tracker = ResourceTracker(mode="collect")
        tracker.shm_created("seg", 1)
        tracker.shm_unlinked("seg")
        tracker.shm_unlinked("seg")
        assert [f.kind for f in tracker.findings] == ["double-unlink"]

    def test_release_without_acquire(self):
        tracker = ResourceTracker(mode="collect")
        tracker.lock_released("/tmp/ghost.lock")
        assert [f.kind for f in tracker.findings] == ["release-without-acquire"]

    def test_raise_mode_raises_at_the_misuse_site(self):
        tracker = ResourceTracker(mode="raise")
        tracker.shm_attached("seg")
        tracker.shm_closed("seg", owner=False)
        with pytest.raises(ResourceLeakError, match="closed twice"):
            tracker.shm_closed("seg", owner=False)

    def test_recreate_after_unlink_is_not_double_unlink(self):
        tracker = ResourceTracker(mode="raise")
        tracker.shm_created("seg", 1)
        tracker.shm_unlinked("seg")
        tracker.shm_created("seg", 1)  # name reuse: a fresh lifetime
        tracker.shm_unlinked("seg")
        assert tracker.findings == []

    def test_format_findings(self):
        tracker = ResourceTracker(mode="collect")
        tracker.lock_released("/tmp/ghost.lock")
        text = tracker.format_findings()
        assert "release-without-acquire" in text
        assert "1 resource finding(s)" in text


class TestAudit:
    def test_audit_raises_with_structured_leaks(self):
        tracker = ResourceTracker(mode="raise")
        tracker.shm_created("seg", 1)
        tracker.mmap_opened("/data/b.npz")
        with pytest.raises(ResourceLeakError) as exc:
            tracker.audit()
        assert len(exc.value.leaks) == 2
        assert {r.kind for r in exc.value.leaks} == {"shm", "mmap"}

    def test_collect_mode_audit_returns_without_raising(self):
        tracker = ResourceTracker(mode="collect")
        tracker.shm_created("seg", 1)
        leaked = tracker.audit()
        assert [(r.kind, r.name) for r in leaked] == [("shm", "seg")]

    def test_adoption_exempts_and_disown_restores(self):
        tracker = ResourceTracker(mode="raise")
        tracker.mmap_opened("/store/warm.npz")
        tracker.adopt("mmap", "/store/warm.npz", "IndexStore.hot")
        assert tracker.audit() == []
        tracker.disown("mmap", "/store/warm.npz")
        with pytest.raises(ResourceLeakError):
            tracker.audit()
        tracker.mmap_closed("/store/warm.npz")
        assert tracker.audit() == []


class TestMetrics:
    def test_res_series_emission(self):
        tracker = ResourceTracker(mode="collect")
        tracker.shm_created("seg", 1)
        tracker.shm_attached("seg")
        tracker.shm_closed("seg", owner=False)
        tracker.shm_unlinked("seg")
        tracker.lock_acquired("/tmp/k.lock")
        tracker.lock_released("/tmp/k.lock")
        tracker.lock_released("/tmp/k.lock")  # misuse
        series = tracker.metrics.to_dict()
        assert series["res.shm.created"]["value"] == 1
        assert series["res.shm.attached"]["value"] == 1
        assert series["res.shm.closed"]["value"] == 1
        assert series["res.shm.unlinked"]["value"] == 1
        assert series["res.shm.live"]["value"] == 0
        assert series["res.lock.acquired"]["value"] == 1
        assert series["res.lock.released"]["value"] == 2
        assert series["res.lock.live"]["value"] == 0
        assert series["res.misuse{kind=release-without-acquire}"]["value"] == 1

    def test_leaks_counter_on_failed_audit(self):
        tracker = ResourceTracker(mode="collect")
        tracker.shm_created("seg", 1)
        tracker.audit()
        assert tracker.metrics.to_dict()["res.leaks"]["value"] == 1

    def test_bind_metrics_redirects_emission(self):
        from repro.obs.metrics import MetricsRegistry

        tracker = ResourceTracker(mode="collect")
        bound = MetricsRegistry()
        tracker.bind_metrics(bound)
        tracker.mmap_opened("/data/b.npz")
        assert bound.to_dict()["res.mmap.opened"]["value"] == 1


class TestPlantedRuntimeTwins:
    """The planted leaks, executed through the library's instrumented seams."""

    def test_leaked_published_sequence(self, collect_tracker):
        name = leak_published_sequence(b"\x1b\x2c\x3d\x4e")
        leaked = collect_tracker.leaks()
        assert ("shm", name) in [(r.kind, r.name) for r in leaked]
        # reap the kernel object out-of-band (raw stdlib: no hooks fire)
        shm = shared_memory.SharedMemory(name=name)
        shm.close()
        shm.unlink()
        collect_tracker.clear()

    def test_double_unlink_trips_the_tracker(self, collect_tracker):
        double_unlink(b"\x1b\x2c\x3d\x4e")
        assert "double-unlink" in [f.kind for f in collect_tracker.findings]
        collect_tracker.clear()

    def test_escaped_mmap_view(self, collect_tracker, tmp_path):
        path = str(tmp_path / "bundle.npy")
        np.save(path, np.arange(16, dtype=np.uint8))
        arr = open_bundle_and_escape(path)
        assert arr.sum() == np.arange(16).sum()
        leaked = collect_tracker.leaks()
        assert [(r.kind, r.name) for r in leaked] == [("mmap", path)]
        del arr
        rt.mmap_closed(path)
        assert collect_tracker.leaks() == []

    def test_orphaned_file_lock(self, collect_tracker, tmp_path):
        path = tmp_path / "key.lock"
        lock = orphan_file_lock(path)
        leaked = collect_tracker.leaks()
        assert [(r.kind, r.name) for r in leaked] == [("lock", str(path))]
        lock.release()
        assert collect_tracker.leaks() == []
        assert collect_tracker.findings == []

    def test_library_round_trip_is_leak_clean(self, resource_tracker):
        """to_shared/from_shared/close/unlink under the raise-mode fixture."""
        from repro.sequence.packed import PackedSequence

        seq = PackedSequence.from_packed(
            np.frombuffer(b"\x1b\x2c\x3d\x4e", dtype=np.uint8), 16
        )
        handle = seq.to_shared()
        other = PackedSequence.from_shared(handle)
        assert len(other) == 16
        other.close_shared()
        seq.unlink_shared()
        # the fixture audits at teardown; nothing should be live
        assert resource_tracker.leaks() == []


class TestEnvActivation:
    def test_env_creates_a_lazy_tracker(self, monkeypatch):
        prev = rt.active_tracker()
        rt.uninstall()
        monkeypatch.setattr(rt, "_env_checked", False)
        monkeypatch.setenv("REPRO_RESOURCE_TRACKER", "1")
        monkeypatch.setenv("REPRO_RESOURCE_TRACKER_MODE", "collect")
        try:
            tracker = rt.active_tracker()
            assert isinstance(tracker, ResourceTracker)
            assert tracker.mode == "collect"
        finally:
            monkeypatch.setattr(rt, "_env_checked", True)
            if prev is not None:
                rt.install(prev)
            else:
                rt.uninstall()

    def test_hooks_are_noops_without_a_tracker(self, monkeypatch):
        prev = rt.active_tracker()
        rt.uninstall()
        monkeypatch.setattr(rt, "_env_checked", True)
        try:
            rt.shm_created("seg", 1)
            rt.shm_unlinked("seg")
            rt.lock_released("/never")
            assert rt.active_tracker() is None
        finally:
            if prev is not None:
                rt.install(prev)
