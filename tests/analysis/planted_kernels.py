"""Deliberately buggy kernels: the adversarial fixture for the SIMT tooling.

Each function plants exactly one bug class from ``docs/analysis.md``. The
static lint must flag every one of them, and the runtime sanitizer must
catch the racy/divergent ones when they execute. Importing this module is
harmless — the bugs only manifest when a kernel is launched.
"""

from __future__ import annotations

import numpy as np


def racy_shared_write(ctx, out):
    """KL102 / write-write race: every thread stores to the same address."""
    out[0] = ctx.tid
    yield


def racy_read_write(ctx, data, out):
    """Read-write race: neighbour read with no barrier before it."""
    data[ctx.tid] = ctx.tid
    out[ctx.tid] = data[(ctx.tid + 1) % ctx.bdim]  # needed a yield first
    yield


def divergent_barrier(ctx):
    """KL101 / barrier divergence: only thread 0 reaches the first yield."""
    if ctx.tid == 0:
        yield
    yield


def divergent_trip_count(ctx):
    """KL101 via a loop: per-thread barrier counts differ."""
    for _ in range(ctx.tid + 1):
        yield


def unaccounted_loop(ctx, data):
    """KL103: the loop reads/writes memory but never charges ctx.work()."""
    total = 0
    for i in range(8):
        total = total + int(data[(ctx.tid + i) % data.size])
    data[ctx.tid] = total
    yield


def atomic_plain_mix(ctx, counter):
    """Atomic and plain access to one address in the same phase."""
    if ctx.tid == 0:
        counter[0] = 99
    else:
        ctx.atomic_add(counter, 0, 1)
    yield


def missing_dtype_host():
    """KL201: float64-by-default allocation in pipeline host code."""
    return np.zeros(16)


def narrowed_triplets(r):
    """KL202: int32 narrowing on a triplet component."""
    return np.asarray(r, dtype=np.int32)
