"""Static SIMT lint: planted bugs are caught, shipped kernels are clean."""

from __future__ import annotations

import json
import os

import repro
from repro.analysis.kernel_lint import (
    RULES,
    findings_to_json,
    format_findings,
    lint_file,
    lint_paths,
    lint_source,
)

from tests.analysis import planted_kernels

PLANTED = planted_kernels.__file__
PKG = os.path.dirname(repro.__file__)


def rules_by_kernel(findings):
    out = {}
    for f in findings:
        out.setdefault(f.kernel, set()).add(f.rule)
    return out


class TestPlantedBugs:
    def test_all_three_required_classes_flagged(self):
        """The acceptance-criteria trio: race, divergence, missing dtype."""
        rules = {f.rule for f in lint_file(PLANTED)}
        assert "KL102" in rules  # shared-memory race
        assert "KL101" in rules  # barrier divergence
        assert "KL201" in rules  # missing dtype

    def test_findings_name_the_offending_kernel(self):
        by_kernel = rules_by_kernel(lint_file(PLANTED))
        assert "KL102" in by_kernel["racy_shared_write"]
        assert "KL101" in by_kernel["divergent_barrier"]
        assert "KL101" in by_kernel["divergent_trip_count"]
        assert "KL103" in by_kernel["unaccounted_loop"]

    def test_module_scope_rules_fire_outside_kernels(self):
        findings = lint_file(PLANTED)
        assert any(f.rule == "KL201" and f.kernel is None for f in findings)
        assert any(f.rule == "KL202" and f.kernel is None for f in findings)

    def test_findings_carry_location(self):
        for f in lint_file(PLANTED):
            assert f.path == PLANTED
            assert f.line > 0
            assert f.severity == RULES[f.rule][0]


class TestShippedKernelsClean:
    def test_gpu_primitives_clean(self):
        assert lint_file(os.path.join(PKG, "gpu", "primitives.py")) == []

    def test_index_build_kernels_clean(self):
        assert lint_file(os.path.join(PKG, "core", "seed_index.py")) == []

    def test_block_stage_kernel_clean(self):
        assert lint_file(os.path.join(PKG, "core", "block_stage.py")) == []

    def test_whole_package_clean(self):
        """Mirror of the CI gate: zero findings across the shipped tree."""
        findings = lint_paths([PKG])
        assert findings == [], format_findings(findings)


class TestTaintModel:
    def test_per_thread_address_not_flagged(self):
        src = (
            "def k(ctx, out):\n"
            "    out[ctx.tid] = 1\n"
            "    ctx.work(1)\n"
            "    yield\n"
        )
        assert [f.rule for f in lint_source(src)] == []

    def test_derived_thread_index_not_flagged(self):
        src = (
            "def k(ctx, out):\n"
            "    j = ctx.tid * 2 + 1\n"
            "    out[j] = 1\n"
            "    yield\n"
        )
        assert all(f.rule != "KL102" for f in lint_source(src))

    def test_atomic_result_is_thread_varying(self):
        src = (
            "def k(ctx, slots, out):\n"
            "    slot = ctx.atomic_add(slots, 0, 1)\n"
            "    out[slot] = 7\n"
            "    yield\n"
        )
        assert all(f.rule != "KL102" for f in lint_source(src))

    def test_uniform_address_flagged(self):
        src = (
            "def k(ctx, out):\n"
            "    out[0] = ctx.tid\n"
            "    yield\n"
        )
        assert [f.rule for f in lint_source(src)] == ["KL102"]

    def test_tid_predicated_store_not_flagged(self):
        src = (
            "def k(ctx, out):\n"
            "    if ctx.tid == 0:\n"
            "        out[0] = 1\n"
            "    yield\n"
        )
        assert [f.rule for f in lint_source(src)] == []

    def test_yield_in_uniform_loop_not_flagged(self):
        src = (
            "def k(ctx, n):\n"
            "    for _ in range(n):\n"
            "        yield\n"
        )
        assert [f.rule for f in lint_source(src)] == []

    def test_yield_under_tainted_while_flagged(self):
        src = (
            "def k(ctx):\n"
            "    d = ctx.tid\n"
            "    while d > 0:\n"
            "        yield\n"
            "        d -= 1\n"
        )
        assert "KL101" in {f.rule for f in lint_source(src)}


class TestMechanics:
    def test_suppression_comment(self):
        src = "import numpy as np\nx = np.zeros(4)  # simt: ignore[KL201]\n"
        assert lint_source(src) == []
        src_other_rule = "import numpy as np\nx = np.zeros(4)  # simt: ignore[KL102]\n"
        assert [f.rule for f in lint_source(src_other_rule)] == ["KL201"]
        src_bare = "import numpy as np\nx = np.zeros(4)  # simt: ignore\n"
        assert lint_source(src_bare) == []

    def test_registered_kernel_without_ctx_name(self):
        src = (
            "__simt_kernels__ = ('odd_name',)\n"
            "def odd_name(thread, out):\n"
            "    out[0] = 1\n"
            "    yield\n"
        )
        assert "KL102" in {f.rule for f in lint_source(src)}

    def test_non_kernel_generators_ignored(self):
        src = (
            "def gen(items):\n"
            "    for i in items:\n"
            "        yield i\n"
        )
        assert lint_source(src) == []

    def test_select_and_ignore(self):
        only = lint_paths([PLANTED], select=["KL201"])
        assert {f.rule for f in only} == {"KL201"}
        none = lint_paths([PLANTED], ignore=list(RULES))
        assert none == []

    def test_json_output_round_trips(self):
        findings = lint_file(PLANTED)
        data = json.loads(findings_to_json(findings))
        assert len(data) == len(findings)
        assert {d["rule"] for d in data} == {f.rule for f in findings}

    def test_format_summary_line(self):
        text = format_findings(lint_file(PLANTED))
        assert "error(s)" in text and "warning(s)" in text

    def test_dtype_positional_argument_accepted(self):
        import numpy as np  # noqa: F401  (source under test references np)

        src = "import numpy as np\nx = np.empty(0, np.int64)\n"
        assert lint_source(src) == []
