"""Static resource lint: RL101-RL105 on planted bugs, twins, suppression."""

from __future__ import annotations

import pytest

from repro.analysis.resource_lint import (
    RL_RULES,
    lint_resource_file,
    lint_resource_paths,
    lint_resource_source,
)

PLANTED = "tests/analysis/planted_resources.py"


@pytest.fixture(scope="module")
def planted_findings():
    return lint_resource_file(PLANTED)


def scopes(findings, rule):
    return {f.scope for f in findings if f.rule == rule}


class TestPlantedBugs:
    """Every planted bug class is flagged; every compliant twin is not."""

    def test_leaked_segment(self, planted_findings):
        assert "leak_segment" in scopes(planted_findings, "RL101")

    def test_cleanup_not_on_all_paths(self, planted_findings):
        flagged = scopes(planted_findings, "RL101")
        assert "cleanup_on_success_only" in flagged

    def test_double_unlink(self, planted_findings):
        assert "double_unlink" in scopes(planted_findings, "RL101")

    def test_runtime_twin_leak_is_also_static(self, planted_findings):
        # to_shared without cleanup is the same leak whichever layer sees it
        assert "leak_published_sequence" in scopes(planted_findings, "RL101")

    def test_spec_dataclass_spawn_safety(self, planted_findings):
        assert "LeakyTaskSpec" in scopes(planted_findings, "RL102")
        found = [f for f in planted_findings if f.rule == "RL102"]
        assert any("guard" in f.message for f in found)

    def test_escaped_mmap_view(self, planted_findings):
        assert "escaped_mmap_view" in scopes(planted_findings, "RL103")

    def test_orphaned_lock_fd(self, planted_findings):
        assert "orphan_lock_fd" in scopes(planted_findings, "RL104")

    def test_leaked_temp_file(self, planted_findings):
        assert "leak_temp_file" in scopes(planted_findings, "RL105")

    def test_compliant_twins_are_clean(self, planted_findings):
        clean = {
            "publish_segment_safely", "roundtrip_segment_safely",
            "copy_mmap_safely", "hold_lock_safely", "temp_file_safely",
            "TidyTaskSpec",
        }
        flagged = {f.scope for f in planted_findings}
        assert not (clean & flagged), sorted(clean & flagged)

    def test_suppressed_runtime_twin_return(self, planted_findings):
        # open_bundle_and_escape carries a justified res: ignore[RL103]
        assert "open_bundle_and_escape" not in scopes(planted_findings, "RL103")


class TestRuleMechanics:
    def test_with_statement_is_guaranteed_cleanup(self):
        src = (
            "from multiprocessing import shared_memory\n"
            "def ok(n):\n"
            "    with shared_memory.SharedMemory(create=True, size=n) as shm:\n"
            "        use(shm)\n"
        )
        assert lint_resource_source(src) == []

    def test_ownership_transfer_via_call_is_not_a_leak(self):
        src = (
            "from multiprocessing import shared_memory\n"
            "def publish(registry, n):\n"
            "    shm = shared_memory.SharedMemory(create=True, size=n)\n"
            "    registry.adopt(shm)\n"
        )
        assert lint_resource_source(src) == []

    def test_returning_name_string_is_still_a_leak(self):
        src = (
            "from multiprocessing import shared_memory\n"
            "def bad(n):\n"
            "    shm = shared_memory.SharedMemory(create=True, size=n)\n"
            "    return shm.name\n"
        )
        findings = lint_resource_source(src)
        assert [f.rule for f in findings] == ["RL101"]

    def test_mmap_store_on_attribute_is_flagged(self):
        src = (
            "import numpy as np\n"
            "class Holder:\n"
            "    def load(self, path):\n"
            "        arr = np.load(path, mmap_mode='r')\n"
            "        self.arr = arr\n"
        )
        findings = lint_resource_source(src)
        assert [f.rule for f in findings] == ["RL103"]

    def test_mmap_mode_none_is_not_mmap(self):
        src = (
            "import numpy as np\n"
            "def load(path):\n"
            "    return np.load(path, mmap_mode=None)\n"
        )
        assert lint_resource_source(src) == []

    def test_lock_class_pairing_is_exempt_from_rl104(self):
        src = (
            "import fcntl\n"
            "class FileLock:\n"
            "    def acquire(self):\n"
            "        self._fh = open(self.path, 'a+')\n"
            "        fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX)\n"
            "    def release(self):\n"
            "        fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)\n"
            "        self._fh.close()\n"
        )
        assert lint_resource_source(src) == []

    def test_rl102_lambda_default(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class CallbackSpec:\n"
            "    name: str\n"
            "    hook: object = lambda: None\n"
        )
        findings = lint_resource_source(src)
        assert [f.rule for f in findings] == ["RL102"]
        assert "lambda" in findings[0].message

    def test_non_spec_dataclass_may_hold_locks(self):
        src = (
            "from dataclasses import dataclass\n"
            "from threading import Lock\n"
            "@dataclass\n"
            "class WorkerState:\n"
            "    guard: Lock\n"
        )
        assert lint_resource_source(src) == []

    def test_path_unlink_missing_ok_not_double_counted(self):
        src = (
            "def purge(entries):\n"
            "    for entry in entries:\n"
            "        entry.unlink(missing_ok=True)\n"
            "        entry.unlink(missing_ok=True)\n"
        )
        assert lint_resource_source(src) == []


class TestSuppression:
    SRC = (
        "from multiprocessing import shared_memory\n"
        "def bad(n):\n"
        "    shm = shared_memory.SharedMemory(create=True, size=n)  "
        "# res: ignore[{rule}]\n"
        "    return n\n"
    )

    def test_matching_rule_suppresses(self):
        assert lint_resource_source(self.SRC.format(rule="RL101")) == []

    def test_other_rule_does_not_suppress(self):
        findings = lint_resource_source(self.SRC.format(rule="RL104"))
        assert [f.rule for f in findings] == ["RL101"]

    def test_bare_ignore_suppresses_everything(self):
        src = self.SRC.replace("# res: ignore[{rule}]", "# res: ignore")
        assert lint_resource_source(src) == []


class TestEntryPoints:
    def test_select_and_ignore(self, planted_findings):
        only_101 = lint_resource_paths([PLANTED], select=["RL101"])
        assert {f.rule for f in only_101} == {"RL101"}
        without_101 = lint_resource_paths([PLANTED], ignore=["RL101"])
        assert "RL101" not in {f.rule for f in without_101}
        assert len(only_101) + len(without_101) == len(planted_findings)

    def test_findings_sorted_and_formatted(self, planted_findings):
        keys = [(f.path, f.line, f.col, f.rule) for f in planted_findings]
        assert keys == sorted(keys)
        line = planted_findings[0].format()
        assert planted_findings[0].rule in line
        assert planted_findings[0].severity in line

    def test_severities_match_rule_table(self, planted_findings):
        for f in planted_findings:
            assert f.severity == RL_RULES[f.rule][0]

    def test_shipped_tree_is_clean(self):
        findings = lint_resource_paths(["src/repro"])
        assert findings == [], "\n".join(f.format() for f in findings)
