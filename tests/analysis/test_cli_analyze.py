"""``gpumem analyze``: exit codes, formats, rule filters."""

from __future__ import annotations

import json
import os

import repro
from repro.cli import main

from tests.analysis import planted_host, planted_kernels, planted_resources

PLANTED = planted_kernels.__file__
PLANTED_HOST = planted_host.__file__
PLANTED_RESOURCES = planted_resources.__file__
PRIMITIVES = os.path.join(os.path.dirname(repro.__file__), "gpu", "primitives.py")


def test_planted_bugs_fail_the_gate(capsys):
    assert main(["analyze", PLANTED]) == 1
    out = capsys.readouterr().out
    for rule in ("KL101", "KL102", "KL201"):
        assert rule in out


def test_clean_kernels_pass_the_gate(capsys):
    assert main(["analyze", PRIMITIVES]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_shipped_package_passes_the_gate(capsys):
    """What CI runs (against the installed tree) must stay green."""
    assert main(["analyze", os.path.dirname(repro.__file__)]) == 0


def test_json_format(capsys):
    assert main(["analyze", "--format", "json", PLANTED]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data and {"rule", "path", "line", "message"} <= set(data[0])


def test_select_filter(capsys):
    assert main(["analyze", "--select", "KL201", PLANTED]) == 1
    out = capsys.readouterr().out
    assert "KL201" in out and "KL102" not in out


def test_ignore_all_rules_passes(capsys):
    rules = ",".join(("KL101", "KL102", "KL103", "KL201", "KL202"))
    assert main(["analyze", "--ignore", rules, PLANTED]) == 0


def test_host_leg_flags_planted_host_bugs(capsys):
    assert main(["analyze", "--host", PLANTED_HOST]) == 1
    out = capsys.readouterr().out
    for rule in ("CL101", "CL102", "CL103", "CL104"):
        assert rule in out


def test_host_leg_ignores_device_rules_and_vice_versa(capsys):
    # The planted kernels contain no lock code; the planted host code
    # contains no kernels — each leg only sees its own rule family.
    assert main(["analyze", "--host", PLANTED]) == 0
    capsys.readouterr()
    assert main(["analyze", "--device", PLANTED_HOST]) == 0


def test_resource_leg_flags_planted_resource_bugs(capsys):
    assert main(["analyze", "--resource", PLANTED_RESOURCES]) == 1
    out = capsys.readouterr().out
    for rule in ("RL101", "RL102", "RL103", "RL104", "RL105"):
        assert rule in out


def test_resource_leg_ignores_other_families(capsys):
    assert main(["analyze", "--resource", PLANTED]) == 0
    capsys.readouterr()
    assert main(["analyze", "--device", PLANTED_RESOURCES]) == 0
    capsys.readouterr()
    assert main(["analyze", "--host", PLANTED_RESOURCES]) == 0


def test_all_merges_every_rule_family(capsys):
    assert main(["analyze", "--all", "--format", "json",
                 PLANTED, PLANTED_HOST, PLANTED_RESOURCES]) == 1
    data = json.loads(capsys.readouterr().out)
    rules = {entry["rule"] for entry in data}
    assert any(r.startswith("KL") for r in rules)
    assert any(r.startswith("CL") for r in rules)
    assert any(r.startswith("RL") for r in rules)


def test_select_spans_rule_families(capsys):
    assert main(["analyze", "--all", "--select", "KL101,CL102",
                 PLANTED, PLANTED_HOST]) == 1
    out = capsys.readouterr().out
    assert "KL101" in out and "CL102" in out
    assert "KL201" not in out and "CL103" not in out


def test_shipped_package_passes_the_full_gate(capsys):
    """What CI's merged-report step runs must stay green."""
    assert main(["analyze", "--all", os.path.dirname(repro.__file__)]) == 0
