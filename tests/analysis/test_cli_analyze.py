"""``gpumem analyze``: exit codes, formats, rule filters."""

from __future__ import annotations

import json
import os

import repro
from repro.cli import main

from tests.analysis import planted_kernels

PLANTED = planted_kernels.__file__
PRIMITIVES = os.path.join(os.path.dirname(repro.__file__), "gpu", "primitives.py")


def test_planted_bugs_fail_the_gate(capsys):
    assert main(["analyze", PLANTED]) == 1
    out = capsys.readouterr().out
    for rule in ("KL101", "KL102", "KL201"):
        assert rule in out


def test_clean_kernels_pass_the_gate(capsys):
    assert main(["analyze", PRIMITIVES]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_shipped_package_passes_the_gate(capsys):
    """What CI runs (against the installed tree) must stay green."""
    assert main(["analyze", os.path.dirname(repro.__file__)]) == 0


def test_json_format(capsys):
    assert main(["analyze", "--format", "json", PLANTED]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data and {"rule", "path", "line", "message"} <= set(data[0])


def test_select_filter(capsys):
    assert main(["analyze", "--select", "KL201", PLANTED]) == 1
    out = capsys.readouterr().out
    assert "KL201" in out and "KL102" not in out


def test_ignore_all_rules_passes(capsys):
    rules = ",".join(("KL101", "KL102", "KL103", "KL201", "KL202"))
    assert main(["analyze", "--ignore", rules, PLANTED]) == 0
