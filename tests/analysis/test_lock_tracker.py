"""Runtime lock tracker: inversions, blocked holds, metrics, injection."""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

import pytest

from repro.analysis import lock_tracker as lt
from repro.analysis.lock_tracker import LockTracker, TrackedLock
from repro.core.batch import BatchRunner
from repro.core.session import MemSession
from repro.errors import LockOrderError
from repro.sequence.synthetic import markov_dna

from tests.analysis.planted_host import HoldWhileResult, InvertedLocks


class TestLockOrder:
    def test_inversion_raises_with_cycle_provenance(self):
        tracker = LockTracker(mode="raise")
        planted = InvertedLocks(tracker.lock)
        assert planted.ab() == "ab"
        with pytest.raises(LockOrderError) as excinfo:
            planted.ba()
        err = excinfo.value
        assert "planted.a" in str(err) and "planted.b" in str(err)
        assert len(err.cycle) == 2
        for edge in err.cycle:
            assert edge.thread
            assert "planted_host.py:" in edge.site
            assert "planted_host" in edge.stack

    def test_raise_leaves_no_lock_held(self):
        tracker = LockTracker(mode="raise")
        planted = InvertedLocks(tracker.lock)
        planted.ab()
        with pytest.raises(LockOrderError):
            planted.ba()
        assert not planted.a_lock.locked()
        assert not planted.b_lock.locked()
        assert tracker.held() == ()

    def test_collect_mode_records_instead(self):
        tracker = LockTracker(mode="collect")
        planted = InvertedLocks(tracker.lock)
        planted.ab()
        assert planted.ba() == "ba"
        assert [f.kind for f in tracker.findings] == ["lock-order"]
        assert "planted.a" in tracker.format_findings()
        series = tracker.metrics.to_dict()
        assert series["lock.order_violations"]["value"] == 1

    def test_caught_even_across_two_threads(self):
        # Neither thread ever blocks — the graph still closes the cycle.
        tracker = LockTracker(mode="collect")
        planted = InvertedLocks(tracker.lock)
        first = threading.Thread(target=planted.ab)
        first.start()
        first.join()
        planted.ba()
        finding = tracker.findings[0]
        assert set(finding.locks) == {"planted.a", "planted.b"}

    def test_edges_snapshot(self):
        tracker = LockTracker(mode="collect")
        planted = InvertedLocks(tracker.lock)
        planted.ab()
        assert ("planted.a", "planted.b") in tracker.edges()

    def test_consistent_order_is_clean(self):
        tracker = LockTracker(mode="raise")
        outer, inner = tracker.lock("order.outer"), tracker.lock("order.inner")
        for _ in range(3):
            with outer:
                with inner:
                    pass
        assert tracker.findings == []

    def test_same_lock_class_does_not_self_edge(self):
        # Two per-row build locks share one class name; nesting them is
        # not an ordering observation (lockdep lock-class semantics).
        tracker = LockTracker(mode="raise")
        row0, row1 = tracker.lock("session.build"), tracker.lock("session.build")
        with row0:
            with row1:
                pass
        assert tracker.edges() == {}

    def test_reentrant_rlock_no_edges(self):
        tracker = LockTracker(mode="raise")
        rlock = tracker.rlock("session.re")
        with rlock:
            with rlock:
                assert rlock.locked()
        assert not rlock.locked()
        assert tracker.edges() == {}

    def test_clear_resets_graph_and_findings(self):
        tracker = LockTracker(mode="collect")
        planted = InvertedLocks(tracker.lock)
        planted.ab()
        planted.ba()
        tracker.clear()
        assert tracker.findings == [] and tracker.edges() == {}


class TestHoldWhileBlocked:
    def test_future_result_under_lock_is_flagged(self):
        tracker = LockTracker(mode="collect")
        planted = HoldWhileResult(tracker.lock)
        tracker.install_blocking_probes()
        try:
            with ThreadPoolExecutor(1) as pool:
                assert planted.fetch(pool) == 42
        finally:
            tracker.remove_blocking_probes()
        kinds = [f.kind for f in tracker.findings]
        assert kinds == ["hold-while-blocked"]
        assert "planted.result" in tracker.findings[0].message
        assert tracker.metrics.to_dict()["lock.hold_while_blocked"]["value"] == 1

    def test_result_without_held_locks_is_clean(self):
        tracker = LockTracker(mode="collect")
        tracker.install_blocking_probes()
        try:
            with ThreadPoolExecutor(1) as pool:
                assert pool.submit(min, 1, 2).result() == 1
        finally:
            tracker.remove_blocking_probes()
        assert tracker.findings == []

    def test_queue_get_under_lock_is_flagged(self):
        tracker = LockTracker(mode="collect")
        guard = tracker.lock("probe.queue")
        q: queue.Queue = queue.Queue()
        q.put("item")
        tracker.install_blocking_probes()
        try:
            with guard:
                assert q.get() == "item"
        finally:
            tracker.remove_blocking_probes()
        assert [f.kind for f in tracker.findings] == ["hold-while-blocked"]

    def test_probes_restore_the_originals(self):
        orig_result, orig_get = Future.result, queue.Queue.get
        tracker = LockTracker(mode="collect")
        tracker.install_blocking_probes()
        assert Future.result is not orig_result
        tracker.remove_blocking_probes()
        assert Future.result is orig_result
        assert queue.Queue.get is orig_get


class TestMetrics:
    def test_acquisitions_and_contention(self):
        tracker = LockTracker(mode="raise")
        hot = tracker.lock("metrics.hot")
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with hot:
                entered.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=holder)
        thread.start()
        entered.wait(timeout=5)
        acquired = hot.acquire(blocking=False)  # contended: holder has it
        assert not acquired
        release.set()
        thread.join()
        with hot:
            pass
        series = tracker.metrics.to_dict()
        assert series["lock.acquisitions{lock=metrics.hot}"]["value"] >= 2
        assert series["lock.contended{lock=metrics.hot}"]["value"] >= 1
        assert series["lock.wait_seconds{lock=metrics.hot}"]["count"] >= 1

    def test_blocking_acquire_waits_and_records(self):
        tracker = LockTracker(mode="raise")
        hot = tracker.lock("metrics.blocked")
        entered = threading.Event()

        def holder():
            with hot:
                entered.set()
                time.sleep(0.02)

        thread = threading.Thread(target=holder)
        thread.start()
        entered.wait(timeout=5)
        with hot:  # blocks until the holder sleeps off
            pass
        thread.join()
        hist = tracker.metrics.to_dict()["lock.wait_seconds{lock=metrics.blocked}"]
        assert hist["count"] >= 1


class TestInjectionSeam:
    def test_install_routes_new_lock(self):
        tracker = LockTracker(mode="raise")
        lt.install(tracker)
        try:
            lock = lt.new_lock("seam.lock")
            assert isinstance(lock, TrackedLock)
            assert lock.tracker is tracker
            assert isinstance(lt.new_rlock("seam.rlock"), TrackedLock)
        finally:
            lt.uninstall()
        assert not isinstance(lt.new_lock("seam.after"), TrackedLock)

    def test_env_switch_builds_a_process_tracker(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_TRACKER", "1")
        monkeypatch.setattr(lt, "_active_tracker", None)
        monkeypatch.setattr(lt, "_env_checked", False)
        try:
            lock = lt.new_lock("env.lock")
            assert isinstance(lock, TrackedLock)
            tracker = lt.active_tracker()
            assert tracker.mode == "raise"
            assert tracker._probes_installed
        finally:
            tracker = lt.active_tracker()
            if tracker is not None:
                tracker.remove_blocking_probes()
        # monkeypatch teardown restores the module globals.

    def test_env_mode_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_TRACKER", "1")
        monkeypatch.setenv("REPRO_LOCK_TRACKER_MODE", "collect")
        monkeypatch.setattr(lt, "_active_tracker", None)
        monkeypatch.setattr(lt, "_env_checked", False)
        try:
            lt.new_lock("env.lock")
            assert lt.active_tracker().mode == "collect"
        finally:
            tracker = lt.active_tracker()
            if tracker is not None:
                tracker.remove_blocking_probes()


class TestRealWorkloadsAreClean:
    @pytest.fixture()
    def reference(self):
        return markov_dna(20_000, seed=7)

    def test_threaded_session_under_tracker(self, reference):
        tracker = LockTracker(mode="raise")
        tracker.install_blocking_probes()
        try:
            session = MemSession(
                reference, min_length=30, executor="threads", workers=4,
                blocks_per_tile=1, lock_factory=tracker.lock,
            )
            queries = [reference[i * 400 : i * 400 + 300].copy() for i in range(4)]
            with ThreadPoolExecutor(4) as pool:
                list(pool.map(session.find_mems, queries * 2))
            session.drop_indexes()
            session.cache_info()
        finally:
            tracker.remove_blocking_probes()
        assert tracker.findings == []
        # The tracked hierarchy was really exercised: build-lock holders
        # re-enter the cache lock (build -> cache), never the reverse.
        assert ("session.build", "session.cache") in tracker.edges()
        assert ("session.cache", "session.build") not in tracker.edges()
        assert any(
            name.startswith("lock.acquisitions")
            for name in tracker.metrics.to_dict()
        )

    def test_batch_runner_under_tracker(self, reference):
        tracker = LockTracker(mode="raise")
        tracker.install_blocking_probes()
        try:
            runner = BatchRunner(
                reference, min_length=30, workers=2,
                lock_factory=tracker.lock,
            )
            queries = [reference[i * 500 : i * 500 + 400].copy() for i in range(6)]
            results = list(runner.find_mems(queries))
            assert len(results) == 6
            assert all(r.ok for r in results)
        finally:
            tracker.remove_blocking_probes()
        assert tracker.findings == []

    def test_fixture_smoke(self, lock_tracker):
        lock = lt.new_lock("fixture.lock")
        assert isinstance(lock, TrackedLock)
        assert lock.tracker is lock_tracker
        with lock:
            pass
