"""Deliberately leaky IPC code: the adversarial fixture for the resource
tooling (the lifetime-layer counterpart of ``planted_host``).

Each planted bug class from ``docs/analysis.md`` — leaked segment,
double-unlink, escaped mmap view, orphaned lock fd, temp litter — appears
twice: a *static* shape (raw stdlib calls the AST pass must flag) and a
*runtime* twin that routes through the library's instrumented seams
(``PackedSequence.to_shared``, ``IndexStore._FileLock``, the
``resource_tracker`` mmap hooks) so executing it trips the
:class:`repro.analysis.resource_tracker.ResourceTracker`. Importing this
module is harmless — the leaks only manifest when the functions run, and
the tests clean up out-of-band afterwards so the test process stays tidy.

Compliant twins (``*_safely``) exercise the negative space: correct
cleanup shapes the lint must stay silent on.
"""

from __future__ import annotations

import fcntl
import os
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np


@dataclass(frozen=True)
class LeakyTaskSpec:
    """RL102 / non-spawn-safe spec field: a live lock cannot cross spawn."""

    fingerprint: str
    guard: threading.Lock


@dataclass(frozen=True)
class TidyTaskSpec:
    """Compliant twin: strings and ints pickle anywhere (no finding)."""

    fingerprint: str
    n_bases: int


def leak_segment(payload: bytes) -> str:
    """RL101 / leaked segment: created, written, never closed or unlinked.

    Returns the segment *name* (a string — not a handoff of the object),
    so the caller can reap the kernel object after the assertion.
    """
    shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    shm.buf[: len(payload)] = payload
    return shm.name


def publish_segment_safely(payload: bytes) -> shared_memory.SharedMemory:
    """Compliant twin: ownership of the segment transfers to the caller."""
    shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    shm.buf[: len(payload)] = payload
    return shm


def cleanup_on_success_only(payload: bytes, step) -> None:
    """RL101 (all-exit-paths form): cleanup present but not in a finally.

    If ``step`` raises, the segment outlives the function — and the
    process.
    """
    shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    step()
    shm.close()
    shm.unlink()


def roundtrip_segment_safely(payload: bytes, step) -> None:
    """Compliant twin: the finally block covers every exit path."""
    shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    try:
        step()
    finally:
        shm.close()
        shm.unlink()


def double_unlink(payload: bytes) -> None:
    """RL101 (duplicate-unlink form) / runtime double-unlink.

    Statically, ``seq`` is unlinked at two distinct sites; at runtime the
    second teardown path (``other`` posing as a co-owner of the same
    name) trips the tracker's double-unlink finding — the bug class where
    two registries both believe they own one segment.
    """
    from repro.sequence.packed import PackedSequence

    seq = PackedSequence.from_packed(
        np.frombuffer(payload, dtype=np.uint8), len(payload) * 4
    )
    handle = seq.to_shared()
    other = PackedSequence.from_shared(handle)
    other._shm_owner = True  # simulates a second "owner" teardown path
    seq.unlink_shared()
    other.unlink_shared()
    seq.unlink_shared()


def escaped_mmap_view(path: str) -> np.ndarray:
    """RL103 / escaped mmap view: the caller receives a file-pinning view."""
    arr = np.load(path, mmap_mode="r")
    return arr


def copy_mmap_safely(path: str) -> np.ndarray:
    """Compliant twin: a private copy escapes, the mapping dies here."""
    arr = np.load(path, mmap_mode="r")
    return arr.copy()


def orphan_lock_fd(path: str, step) -> None:
    """RL104 / orphaned lock fd: no finally — an exception strands the lock."""
    fh = open(path, "a+")
    fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
    step()
    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
    fh.close()


def hold_lock_safely(path: str, step) -> None:
    """Compliant twin: release + close guaranteed by the finally block."""
    fh = open(path, "a+")
    fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
    try:
        step()
    finally:
        fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        fh.close()


def leak_temp_file() -> str:
    """RL105 / temp file without cleanup: mkstemp, write, walk away.

    Returns the *string* path (not a handle handoff) so the caller can
    remove the file after asserting.
    """
    import tempfile

    fd, path = tempfile.mkstemp(prefix="planted-")
    os.write(fd, b"planted")
    os.close(fd)
    return str(path)


def temp_file_safely() -> None:
    """Compliant twin: both the fd and the path are retired in a finally."""
    import tempfile

    fd, path = tempfile.mkstemp(prefix="planted-")
    try:
        os.write(fd, b"planted")
    finally:
        os.close(fd)
        os.unlink(path)


# -- runtime twins: the same bug classes through the instrumented seams ------


def leak_published_sequence(payload: bytes) -> str:
    """Runtime twin of :func:`leak_segment`: ``to_shared`` then walk away.

    The owner object is dropped without ``close_shared``/``unlink_shared``
    — the named segment outlives the function (and the process, without
    the multiprocessing reaper). Returns the segment name so the caller
    can reap it after asserting.
    """
    from repro.sequence.packed import PackedSequence

    seq = PackedSequence.from_packed(
        np.frombuffer(payload, dtype=np.uint8), len(payload) * 4
    )
    handle = seq.to_shared()
    return handle.shm_name


def open_bundle_and_escape(path: str) -> np.ndarray:
    """Runtime twin of :func:`escaped_mmap_view`.

    Records the open through the library seam (exactly as
    ``IndexStore._record_warm`` does) but neither closes nor adopts it,
    then hands the file-pinning view to the caller.
    """
    from repro.analysis import resource_tracker as rt

    arr = np.load(path, mmap_mode="r")
    rt.mmap_opened(path)
    return arr  # res: ignore[RL103]  (the planted runtime leak IS the point)


def orphan_file_lock(path) -> object:
    """Runtime twin of :func:`orphan_lock_fd`: acquire, never release.

    Uses the store's real ``_FileLock`` so the tracker's lock table sees
    the acquire; the returned lock lets the caller release out-of-band.
    """
    from repro.index.store import _FileLock

    lock = _FileLock(path)
    lock.acquire()
    return lock
