"""Runtime SIMT sanitizer: races and divergence caught, real kernels clean."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitizer import Sanitizer, TrackedArray
from repro.core.matcher import GpuMem
from repro.core.params import GpuMemParams
from repro.core.simulated import simulated_find_mems
from repro.errors import BarrierDivergenceError, RaceConditionError
from repro.gpu.device import TEST_DEVICE
from repro.gpu.kernel import Device
from repro.gpu.primitives import exclusive_prefix_sum_kernel
from repro.types import mems_equal

from tests.analysis import planted_kernels


def make_device(san):
    return Device(TEST_DEVICE, schedule_seed=1, sanitizer=san)


class TestRaceDetection:
    def test_write_write_race_with_provenance(self):
        san = Sanitizer()
        dev = make_device(san)
        dev.launch(planted_kernels.racy_shared_write, 1, 4, np.zeros(4, np.int64))
        assert len(san.findings) == 1
        f = san.findings[0]
        assert f.race == "write-write"
        assert f.kernel == "racy_shared_write"
        assert f.array == "out"  # named from the kernel signature
        assert f.index == 0
        assert f.block == 0 and f.phase == 0
        assert len({t for t, _ in f.accesses}) >= 2
        assert "write-write race on out[0]" in f.format()

    def test_read_write_race(self):
        san = Sanitizer()
        dev = make_device(san)
        dev.launch(
            planted_kernels.racy_read_write, 1, 8,
            np.zeros(8, np.int64), np.zeros(8, np.int64),
        )
        assert san.findings
        assert {f.race for f in san.findings} == {"read-write"}

    def test_barrier_fixes_the_read_write_race(self):
        """The same access pattern with a barrier between phases is clean."""
        san = Sanitizer()
        dev = make_device(san)

        def fixed(ctx, data, out):
            data[ctx.tid] = ctx.tid
            yield
            out[ctx.tid] = data[(ctx.tid + 1) % ctx.bdim]
            yield

        out = np.zeros(8, dtype=np.int64)
        dev.launch(fixed, 1, 8, np.zeros(8, np.int64), out)
        assert san.findings == []
        assert sorted(out.tolist()) == list(range(8))

    def test_atomics_do_not_race_each_other(self):
        san = Sanitizer()
        dev = make_device(san)

        def bump(ctx, c):
            ctx.atomic_add(c, 0, 1)
            yield

        c = np.zeros(1, dtype=np.int64)
        dev.launch(bump, 2, 8, c)
        assert san.findings == []
        assert c[0] == 16  # atomics still take effect through the proxy

    def test_atomic_plain_mix_is_a_race(self):
        san = Sanitizer()
        dev = make_device(san)
        dev.launch(planted_kernels.atomic_plain_mix, 1, 8, np.zeros(1, np.int64))
        assert any(f.race == "atomic-plain" for f in san.findings)

    def test_shared_memory_is_tracked(self):
        san = Sanitizer()
        dev = make_device(san)

        def shared_racy(ctx):
            buf = ctx.shared.array("buf", 4, np.int64)
            buf[0] = ctx.tid
            yield

        dev.launch(shared_racy, 1, 8)
        assert len(san.findings) == 1
        assert san.findings[0].array == "shared:buf"

    def test_raise_mode(self):
        san = Sanitizer(mode="raise")
        dev = make_device(san)
        with pytest.raises(RaceConditionError) as exc:
            dev.launch(planted_kernels.racy_shared_write, 1, 4, np.zeros(4, np.int64))
        assert exc.value.findings
        assert exc.value.findings[0].race == "write-write"

    def test_per_block_isolation(self):
        """Same addresses touched by different blocks never conflict."""
        san = Sanitizer()
        dev = make_device(san)

        def per_block(ctx, out):
            out[ctx.bid] = ctx.bid  # every thread of a block, same address...
            yield

        # ...is still a within-block race; but with one thread per block
        # there is no conflict even though all 4 blocks write out[bid].
        dev.launch(per_block, 4, 1, np.zeros(4, np.int64))
        assert san.findings == []


class TestDivergence:
    def test_structured_error_fields(self):
        san = Sanitizer()
        dev = make_device(san)
        with pytest.raises(BarrierDivergenceError) as exc:
            dev.launch(planted_kernels.divergent_barrier, 1, 4)
        err = exc.value
        assert err.kernel == "divergent_barrier"
        assert err.block == 0
        assert err.phase == 1
        assert err.exited == (1, 2, 3)
        assert err.waiting == (0,)
        assert san.divergences == [err]

    def test_divergent_trip_count(self):
        dev = Device(TEST_DEVICE, schedule_seed=1)
        with pytest.raises(BarrierDivergenceError) as exc:
            dev.launch(planted_kernels.divergent_trip_count, 1, 4)
        assert exc.value.exited and exc.value.waiting


class TestRealKernelsClean:
    def test_blelloch_scan_sanitized(self, sanitized_device):
        n = 16
        data = np.arange(n, dtype=np.int64)
        expect = np.concatenate(([0], np.cumsum(data[:-1])))
        sanitized_device.launch(exclusive_prefix_sum_kernel, 1, n, data, n)
        assert np.array_equal(data, expect)

    def test_full_simulated_pipeline_sanitized(self):
        """Algorithms 1-3 + expansion run race-free and match vectorized."""
        rng = np.random.default_rng(7)
        ref = rng.integers(0, 4, 1500).astype(np.uint8)
        qry = ref.copy()
        qry[::61] = (qry[::61] + 1) % 4
        params = GpuMemParams(
            min_length=20, seed_length=6, threads_per_block=32,
            backend="simulated",
        )
        san = Sanitizer()
        dev = make_device(san)
        mems, _stats = simulated_find_mems(ref, qry, params, device=dev)
        assert san.findings == [], san.format_findings()
        assert san.divergences == []
        assert san.n_accesses > 1000  # the sanitizer actually observed work

        vec_params = GpuMemParams(min_length=20, seed_length=6, threads_per_block=32)
        vec = GpuMem(vec_params).find_mems(ref, qry)
        assert mems_equal(np.asarray(mems), vec.array)


class TestTrackedArray:
    def test_delegates_like_an_ndarray(self):
        san = Sanitizer()
        base = np.arange(6, dtype=np.int64)
        arr = san.wrap(base, "x")
        assert isinstance(arr, TrackedArray)
        assert arr.size == 6 and arr.dtype == np.int64
        assert len(arr) == 6
        assert np.array_equal(np.asarray(arr), base)
        assert san.wrap(arr, "x") is arr  # idempotent

    def test_host_side_access_not_recorded(self):
        san = Sanitizer()
        arr = san.wrap(np.zeros(4, dtype=np.int64), "x")
        arr[0] = 1  # no thread step active
        assert san.n_accesses == 0
        assert san.findings == []

    def test_writes_reach_the_base_array(self):
        san = Sanitizer()
        dev = make_device(san)

        def k(ctx, out):
            out[ctx.tid] = ctx.tid + 10
            yield

        out = np.zeros(4, dtype=np.int64)
        dev.launch(k, 1, 4, out)
        assert out.tolist() == [10, 11, 12, 13]

    def test_fixture_reports_races_at_teardown(self, simt_sanitizer):
        """The collecting fixture exposes findings for explicit assertion."""
        dev = make_device(simt_sanitizer)
        dev.launch(planted_kernels.racy_shared_write, 1, 4, np.zeros(4, np.int64))
        assert simt_sanitizer.findings
        simt_sanitizer.findings.clear()  # consume: this test expected them
