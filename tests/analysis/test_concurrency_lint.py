"""Static lock-discipline lint: planted bugs, rule semantics, suppression."""

from __future__ import annotations

import os
import textwrap
from collections import Counter

import repro
from repro.analysis.concurrency_lint import (
    CL_RULES,
    lint_host_file,
    lint_host_paths,
    lint_host_source,
)

HERE = os.path.dirname(__file__)
PLANTED = os.path.join(HERE, "planted_host.py")


def lint(src: str, path: str = "mod.py"):
    return lint_host_source(textwrap.dedent(src), path)


class TestPlantedHost:
    def test_every_rule_fires_exactly_once(self):
        findings = lint_host_file(PLANTED)
        assert Counter(f.rule for f in findings) == {
            "CL101": 1, "CL102": 1, "CL103": 1, "CL104": 1,
        }

    def test_severities_match_the_catalogue(self):
        for f in lint_host_file(PLANTED):
            assert f.severity == CL_RULES[f.rule][0]

    def test_compliant_twins_stay_clean(self):
        scopes = {f.scope for f in lint_host_file(PLANTED)}
        assert "register_safely" not in scopes
        assert "UnguardedCounter.read" not in scopes

    def test_findings_carry_provenance(self):
        for f in lint_host_file(PLANTED):
            assert f.path == PLANTED
            assert f.line > 0
            assert f.format().startswith(f"{PLANTED}:{f.line}:")


class TestCL101:
    SRC = """
    import threading

    class Cache:
        def __init__(self):
            self._lock = threading.Lock()  # guards: _items
            self._items = []

        def bad(self):
            return len(self._items)

        def good(self):
            with self._lock:
                return len(self._items)
    """

    def test_unguarded_access_flagged_guarded_not(self):
        findings = lint(self.SRC)
        assert [f.rule for f in findings] == ["CL101"]
        assert findings[0].scope == "Cache.bad"
        assert "_items" in findings[0].message

    def test_constructor_is_exempt(self):
        # ``self._items = []`` in __init__ is itself an unguarded access.
        assert not any(
            f.scope == "Cache.__init__" for f in lint(self.SRC)
        )

    def test_write_access_flagged_too(self):
        findings = lint("""
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()  # guards: _items
                self._items = []

            def reset(self):
                self._items = []
        """)
        assert [f.rule for f in findings] == ["CL101"]
        assert findings[0].scope == "Cache.reset"


class TestCL102:
    def test_module_lock_inversion(self):
        findings = lint("""
        import threading

        alpha_lock = threading.Lock()
        beta_lock = threading.Lock()

        def one():
            with alpha_lock:
                with beta_lock:
                    pass

        def two():
            with beta_lock:
                with alpha_lock:
                    pass
        """)
        assert [f.rule for f in findings] == ["CL102"]
        assert "alpha_lock" in findings[0].message
        assert "beta_lock" in findings[0].message

    def test_consistent_order_is_clean(self):
        assert lint("""
        import threading

        alpha_lock = threading.Lock()
        beta_lock = threading.Lock()

        def one():
            with alpha_lock:
                with beta_lock:
                    pass

        def two():
            with alpha_lock:
                with beta_lock:
                    pass
        """) == []

    def test_three_lock_chain_cycle(self):
        findings = lint("""
        import threading

        a_lock = threading.Lock()
        b_lock = threading.Lock()
        c_lock = threading.Lock()

        def f():
            with a_lock:
                with b_lock:
                    pass

        def g():
            with b_lock:
                with c_lock:
                    pass

        def h():
            with c_lock:
                with a_lock:
                    pass
        """)
        assert [f.rule for f in findings] == ["CL102"]

    def test_cross_file_inversion(self, tmp_path):
        # Each file's nesting is locally consistent; only the aggregated
        # order graph (what two modules sharing one Engine do) cycles.
        ab = tmp_path / "engine_query.py"
        ab.write_text(textwrap.dedent("""
            class Engine:
                def query(self):
                    with self.cache_lock:
                        with self.stats_lock:
                            pass
        """))
        ba = tmp_path / "engine_maintenance.py"
        ba.write_text(textwrap.dedent("""
            class Engine:
                def compact(self):
                    with self.stats_lock:
                        with self.cache_lock:
                            pass
        """))
        assert lint_host_file(str(ab)) == []
        assert lint_host_file(str(ba)) == []
        findings = lint_host_paths([str(tmp_path)])
        assert [f.rule for f in findings] == ["CL102"]
        assert "engine_query.py" in findings[0].message
        assert "engine_maintenance.py" in findings[0].message


class TestCL103:
    def test_future_result_under_lock(self):
        findings = lint("""
        import threading

        work_lock = threading.Lock()

        def fetch(pool):
            with work_lock:
                return pool.submit(min, 1, 2).result()
        """)
        assert [f.rule for f in findings] == ["CL103"]
        assert "Future.result()" in findings[0].message

    def test_queue_get_with_timeout_under_lock(self):
        findings = lint("""
        import threading

        work_lock = threading.Lock()

        def drain(q):
            with work_lock:
                return q.get(timeout=1.0)
        """)
        assert [f.rule for f in findings] == ["CL103"]

    def test_dict_get_and_str_join_are_not_blocking(self):
        assert lint("""
        import threading

        work_lock = threading.Lock()

        def fine(mapping, parts):
            with work_lock:
                return mapping.get("key"), ", ".join(parts)
        """) == []

    def test_blocking_call_without_lock_is_fine(self):
        assert lint("""
        def fetch(pool):
            return pool.submit(min, 1, 2).result()
        """) == []


class TestCL104:
    SRC = """
    import threading

    _cache = {}
    _cache_lock = threading.Lock()  # guards: _cache
    _total = 0

    def bad(key, value):
        _cache[key] = value

    def good(key, value):
        with _cache_lock:
            _cache[key] = value

    def bump():
        global _total
        _total += 1
    """

    def test_unguarded_mutations_flagged(self):
        findings = lint(self.SRC)
        assert Counter(f.rule for f in findings) == {"CL104": 2}
        assert {f.scope for f in findings} == {"bad", "bump"}

    def test_guarded_mutation_is_clean(self):
        assert not any(f.scope == "good" for f in lint(self.SRC))

    def test_mutator_method_call_flagged(self):
        findings = lint("""
        import threading

        _seen = set()
        _seen_lock = threading.Lock()

        def remember(item):
            _seen.add(item)
        """)
        assert [f.rule for f in findings] == ["CL104"]


class TestSuppression:
    def test_rule_scoped_suppression(self):
        findings = lint("""
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()  # guards: _items
                self._items = []

            def peek(self):
                return len(self._items)  # conc: ignore[CL101] - atomic len
        """)
        assert findings == []

    def test_wrong_rule_in_bracket_does_not_suppress(self):
        findings = lint("""
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()  # guards: _items
                self._items = []

            def peek(self):
                return len(self._items)  # conc: ignore[CL104]
        """)
        assert [f.rule for f in findings] == ["CL101"]

    def test_bare_suppression_covers_any_rule(self):
        findings = lint("""
        import threading

        _cache = {}

        def bad(key, value):
            _cache[key] = value  # conc: ignore - single-threaded tool
        """)
        assert findings == []


class TestSelectIgnore:
    def test_select_and_ignore(self):
        findings = lint_host_paths([PLANTED], select=["CL101", "CL102"])
        assert {f.rule for f in findings} == {"CL101", "CL102"}
        findings = lint_host_paths([PLANTED], ignore=["CL103"])
        assert "CL103" not in {f.rule for f in findings}


def test_shipped_package_passes_the_host_gate():
    """Every suppression in src/repro is justified; no open findings."""
    assert lint_host_paths([os.path.dirname(repro.__file__)]) == []


class TestMultiprocessingLocks:
    """Locks built from multiprocessing ctors count, whatever their name."""

    def test_mp_lock_attr_guard_honored(self):
        findings = lint("""
            import multiprocessing

            class C:
                def __init__(self):
                    self._mu = multiprocessing.Lock()  # guards: _state
                    self._state = {}

                def good(self):
                    with self._mu:
                        self._state["k"] = 1

                def bad(self):
                    return self._state
        """)
        assert [(f.rule, f.scope) for f in findings] == [("CL101", "C.bad")]

    def test_mp_rlock_alias_import(self):
        findings = lint("""
            import multiprocessing as mp

            class C:
                def __init__(self):
                    self._gate = mp.RLock()  # guards: _n

                def ok(self):
                    with self._gate:
                        self._n += 1
        """)
        assert findings == []

    def test_spawn_context_lock(self):
        findings = lint("""
            from multiprocessing import get_context

            class C:
                def __init__(self):
                    self._mu = get_context("spawn").Lock()  # guards: _n

                def bad(self):
                    self._n += 1
        """)
        assert [f.rule for f in findings] == ["CL101"]

    def test_module_level_mp_lock_guards_cl104(self):
        findings = lint("""
            import multiprocessing as mp

            _mu = mp.Lock()  # guards: _cache
            _cache = {}

            def good():
                with _mu:
                    _cache["k"] = 1

            def bad():
                _cache["k"] = 2
        """)
        assert [(f.rule, f.scope) for f in findings] == [("CL104", "bad")]

    def test_blocking_under_unnamed_mp_lock_cl103(self):
        findings = lint("""
            from multiprocessing import Lock

            class D:
                def __init__(self):
                    self._gate = Lock()

                def run(self, fut):
                    with self._gate:
                        return fut.result()
        """)
        assert [f.rule for f in findings] == ["CL103"]

    def test_lock_order_cycle_across_mp_locks(self):
        findings = lint("""
            import multiprocessing

            class E:
                def __init__(self):
                    self._a = multiprocessing.Lock()
                    self._b = multiprocessing.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._b:
                        with self._a:
                            pass
        """)
        assert "CL102" in {f.rule for f in findings}

    def test_non_lock_attr_still_ignored(self):
        findings = lint("""
            class F:
                def __init__(self):
                    self._items = list()

                def use(self):
                    with self._items:
                        pass
        """)
        assert findings == []
