"""Scale sanity: the vectorized pipeline at megabase size.

Catches the class of bug that only appears past toy sizes — 32-bit
overflow, tile-row streaming mistakes, memory blow-ups — by running a
realistic 1 Mbp problem and cross-checking against an independent engine.
"""

import pytest

import repro
from repro.baselines import EssaMemFinder
from repro.sequence.synthetic import markov_dna, plant_homology, plant_repeats
from repro.types import mems_equal


@pytest.fixture(scope="module")
def megabase_pair():
    ref = plant_repeats(
        markov_dna(1_000_000, seed=201), seed=202,
        n_families=5, family_length=(100, 300), copies_per_family=(100, 800),
        copy_divergence=0.02,
    )
    qry = plant_homology(ref, 800_000, seed=203, coverage=0.4, divergence=0.015)
    return ref, qry


class TestMegabaseScale:
    def test_vectorized_end_to_end(self, megabase_pair):
        ref, qry = megabase_pair
        matcher = repro.GpuMem(min_length=40, seed_length=10)
        result = matcher.find_mems(ref, qry)
        stats = matcher.stats
        assert len(result) > 1000
        assert stats["n_tiles"] >= 4  # tiling actually engaged
        assert stats["total_time"] < 60
        # coordinates in range, lengths sane
        arr = result.array
        assert arr["r"].min() >= 0 and (arr["r"] + arr["length"]).max() <= ref.size
        assert arr["q"].min() >= 0 and (arr["q"] + arr["length"]).max() <= qry.size
        assert arr["length"].min() >= 40

    def test_cross_engine_agreement_at_scale(self, megabase_pair):
        ref, qry = megabase_pair
        # slice to keep the (slower) baseline reasonable while still far
        # beyond toy sizes
        ref_s, qry_s = ref[:300_000], qry[:200_000]
        ours = repro.find_mems(ref_s, qry_s, min_length=40, seed_length=10)
        finder = EssaMemFinder(sparseness=4)
        finder.build_index(ref_s)
        theirs = finder.find_mems(qry_s, 40)
        assert mems_equal(ours.array, theirs.mems.array)
        assert len(ours) > 100

    def test_tiling_invariance_at_scale(self, megabase_pair):
        ref, qry = megabase_pair
        ref_s, qry_s = ref[:400_000], qry[:300_000]
        a = repro.GpuMem(min_length=50, seed_length=10,
                         blocks_per_tile=4).find_mems(ref_s, qry_s)
        b = repro.GpuMem(min_length=50, seed_length=10,
                         blocks_per_tile=128).find_mems(ref_s, qry_s)
        assert a == b
