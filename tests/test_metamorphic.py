"""Metamorphic properties of MEM extraction.

These tests perturb inputs in ways with *predictable* effects on the MEM
set and check the prediction — a complementary axis to the differential
tests (which compare engines on identical inputs).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

import repro

from tests.conftest import dna_pair


def find(R, Q, L=4):
    return set(repro.find_mems(R, Q, min_length=L, seed_length=3).as_tuples())


class TestTranslationInvariance:
    @settings(max_examples=20, deadline=None)
    @given(dna_pair(max_size=60), st.integers(1, 10))
    def test_prepending_junk_to_query_shifts_q(self, pair, pad_len):
        """Prepending a non-matching pad shifts q coordinates by its length
        (MEMs fully inside the original query survive unchanged)."""
        R, Q = pair
        # a pad that cannot extend any match: alternate two symbols absent
        # from a 2-symbol draw is impossible; instead verify via containment
        pad = np.full(pad_len, 3, dtype=np.uint8)  # R,Q drawn from {0,1,2}
        if R.max(initial=0) == 3 or Q.max(initial=0) == 3:
            return
        before = find(R, Q)
        after = find(R, np.concatenate([pad, Q]))
        shifted = {(r, q + pad_len, l) for r, q, l in before}
        assert shifted <= after
        # any extra matches must touch the pad boundary region
        for _r, q, _l in after - shifted:
            assert q < pad_len + 1

    @settings(max_examples=20, deadline=None)
    @given(dna_pair(max_size=60))
    def test_concatenating_disjoint_alphabet_block(self, pair):
        """Appending a block over a disjoint letter adds no cross matches
        (beyond those touching the junction)."""
        R, Q = pair
        if R.max(initial=0) == 3 or Q.max(initial=0) == 3:
            return
        block = np.full(20, 3, dtype=np.uint8)
        before = find(R, Q)
        after = find(np.concatenate([R, block]), Q)
        assert before <= after
        for r, _q, l in after - before:
            # new matches can only arise where old ones were right-clipped
            assert r + l > R.size or r >= R.size - 4


class TestDuplication:
    @settings(max_examples=15, deadline=None)
    @given(dna_pair(max_size=40))
    def test_duplicating_reference_doubles_interior_hits(self, pair):
        """R+R: a MEM strictly interior to R (mismatch-delimited away from
        both ends) reappears, unchanged, at the second copy too."""
        R, Q = pair
        single = find(R, Q)
        doubled = find(np.concatenate([R, R]), Q)
        interior = {(r, q, l) for r, q, l in single if 0 < r and r + l < R.size}
        for r, q, l in interior:
            assert (r, q, l) in doubled
            assert (r + R.size, q, l) in doubled

    def test_reversal_symmetry(self):
        """MEMs of (rev R, rev Q) are the coordinate-mirrored MEMs."""
        rng = np.random.default_rng(0)
        R = rng.integers(0, 3, 150).astype(np.uint8)
        Q = rng.integers(0, 3, 120).astype(np.uint8)
        fwd = find(R, Q, L=5)
        rev = find(R[::-1].copy(), Q[::-1].copy(), L=5)
        mirrored = {
            (R.size - r - l, Q.size - q - l, l) for r, q, l in fwd
        }
        assert rev == mirrored


class TestSubstitutionEffects:
    def test_single_substitution_splits_long_mem(self):
        R = (np.arange(101) % 4).astype(np.uint8)
        Q = R.copy()
        Q[50] = (Q[50] + 1) % 4
        mems = find(R, Q, L=10)
        # the full-length MEM must be replaced by the two flanks
        assert (0, 0, 101) not in mems
        assert (0, 0, 50) in mems
        assert (51, 51, 50) in mems

    def test_mutating_outside_mems_preserves_them(self):
        rng = np.random.default_rng(1)
        R = rng.integers(0, 4, 300).astype(np.uint8)
        Q = R[100:200].copy()
        base = find(R, Q, L=50)
        assert (100, 0, 100) in base
        R2 = R.copy()
        R2[:50] = rng.integers(0, 4, 50)  # far from the MEM
        after = find(R2, Q, L=50)
        assert (100, 0, 100) in after
