"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.sequence.fasta import write_fasta
from repro.sequence.synthetic import markov_dna, plant_homology


@pytest.fixture
def fasta_pair(tmp_path):
    ref = markov_dna(3000, seed=1)
    qry = plant_homology(ref, 2000, seed=2, coverage=0.7, divergence=0.02)
    rp = tmp_path / "ref.fa"
    qp = tmp_path / "qry.fa"
    write_fasta(rp, [("ref", ref)])
    write_fasta(qp, [("qry", qry)])
    return str(rp), str(qp), ref, qry


class TestMatch:
    def test_outputs_one_based_triplets(self, fasta_pair, capsys):
        rp, qp, ref, qry = fasta_pair
        rc = main(["match", rp, qp, "-l", "25", "-s", "8"])
        assert rc == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert lines
        import repro

        expect = {
            (r + 1, q + 1, l)
            for r, q, l in repro.find_mems(ref, qry, min_length=25, seed_length=8)
        }
        got = {tuple(int(x) for x in line.split()) for line in lines}
        assert got == expect

    def test_verbose_stats(self, fasta_pair, capsys):
        rp, qp, *_ = fasta_pair
        main(["match", rp, qp, "-l", "30", "-s", "8", "-v"])
        err = capsys.readouterr().err
        assert "total_time" in err and "# matches:" in err

    def test_seed_clipped_to_L(self, fasta_pair, capsys):
        rp, qp, *_ = fasta_pair
        assert main(["match", rp, qp, "-l", "6", "-s", "10"]) == 0

    def test_paf_output(self, fasta_pair, capsys):
        rp, qp, ref, qry = fasta_pair
        assert main(["match", rp, qp, "-l", "25", "-s", "8", "--paf"]) == 0
        from repro.sequence.formats import read_paf

        records = read_paf(capsys.readouterr().out)
        assert records
        assert all(r.query_len == qry.size for r in records)
        assert all(r.n_match == r.target_end - r.target_start for r in records)


class TestMatchVariants:
    def test_unique_flag(self, fasta_pair, capsys):
        rp, qp, ref, qry = fasta_pair
        assert main(["match", rp, qp, "-l", "25", "-s", "8", "--unique"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        from repro.core.variants import find_mums

        expect = {
            (r + 1, q + 1, l)
            for r, q, l in find_mums(ref, qry, 25, seed_length=8)
        }
        got = {tuple(int(x) for x in line.split()) for line in lines}
        assert got == expect

    def test_rare_flag(self, fasta_pair, capsys):
        rp, qp, *_ = fasta_pair
        assert main(["match", rp, qp, "-l", "25", "-s", "8", "--rare", "3"]) == 0

    def test_both_strands_flag(self, fasta_pair, capsys):
        rp, qp, *_ = fasta_pair
        assert main(["match", rp, qp, "-l", "25", "-s", "8", "-b"]) == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            if line.strip():
                assert line.split("\t")[0] in "+-"


class TestPerRecord:
    def test_multi_record_query(self, tmp_path, capsys):
        ref = markov_dna(2000, seed=4)
        q1 = plant_homology(ref, 800, seed=5, coverage=0.8, divergence=0.01)
        q2 = plant_homology(ref, 700, seed=6, coverage=0.8, divergence=0.01)
        rp = tmp_path / "r.fa"
        qp = tmp_path / "q.fa"
        write_fasta(rp, [("ref", ref)])
        write_fasta(qp, [("read1", q1), ("read2", q2)])
        assert main(["match", str(rp), str(qp), "-l", "25", "-s", "8",
                     "--per-record"]) == 0
        out = capsys.readouterr().out
        assert "> read1" in out and "> read2" in out
        # per-record coordinates are record-local
        import repro

        expect1 = repro.find_mems(ref, q1, min_length=25, seed_length=8)
        section1 = out.split("> read1")[1].split("> read2")[0]
        lines = [l for l in section1.splitlines() if l.strip()]
        assert len(lines) == len(expect1)


class TestIndex:
    def test_reports_build_time(self, fasta_pair, capsys):
        rp, *_ = fasta_pair
        assert main(["index", rp, "-l", "30", "-s", "8"]) == 0
        out = capsys.readouterr().out
        assert "index build:" in out and "Δs=" in out


class TestIndexSave:
    def test_save_and_load(self, fasta_pair, tmp_path, capsys):
        rp, *_ = fasta_pair
        out = tmp_path / "idx.npz"
        assert main(["index", rp, "-l", "30", "-s", "8", "--save", str(out)]) == 0
        assert "saved full-reference index" in capsys.readouterr().out
        from repro.index.serialize import load_kmer_index

        idx = load_kmer_index(out)
        assert idx.seed_length == 8
        idx.check()


class TestIndexStoreFlags:
    @pytest.fixture(autouse=True)
    def _clean(self, monkeypatch):
        from repro.core.session import clear_session_cache
        from repro.index.store import STORE_ENV_VAR, clear_store_registry

        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        clear_session_cache()
        clear_store_registry()
        yield
        # the flag sets the env var process-wide; scrub it between tests
        import os

        os.environ.pop(STORE_ENV_VAR, None)
        clear_session_cache()
        clear_store_registry()

    def test_index_store_persists_bundles(self, fasta_pair, tmp_path, capsys):
        rp, *_ = fasta_pair
        cache = tmp_path / "store"
        assert main(["index", rp, "-l", "30", "-s", "8",
                     "--store", str(cache)]) == 0
        out, err = capsys.readouterr().out, capsys.readouterr().err
        from repro.index.store import store_at

        assert store_at(cache).stats()["n_bundles"] >= 1

    def test_match_warm_starts_from_store(self, fasta_pair, tmp_path, capsys):
        rp, qp, *_ = fasta_pair
        cache = tmp_path / "store"
        assert main(["match", rp, qp, "-l", "25", "-s", "8",
                     "--index-store", str(cache)]) == 0
        cold = capsys.readouterr().out
        from repro.core.session import clear_session_cache
        from repro.index.store import clear_store_registry, store_at

        clear_session_cache()
        clear_store_registry()  # fresh store handle = fresh hot tier
        assert main(["match", rp, qp, "-l", "25", "-s", "8",
                     "--index-store", str(cache), "-v"]) == 0
        captured = capsys.readouterr()
        assert captured.out == cold  # identical matches either way
        assert "# index store" in captured.err
        st = store_at(cache).stats()
        assert st["builds"] == 0 and st["warm_hits"] >= 1


class TestDataset:
    def test_writes_fasta(self, tmp_path, capsys):
        out = tmp_path / "x.fa"
        assert main(["dataset", "chrXII", str(out)]) == 0
        from repro.sequence.fasta import read_fasta

        recs = read_fasta(out)
        assert len(recs[0]) == 10_900

    def test_unknown_dataset(self, tmp_path, capsys):
        assert main(["dataset", "nope", str(tmp_path / "x.fa")]) == 2


class TestServe:
    @pytest.fixture
    def serve_setup(self, tmp_path, fasta_pair):
        import json

        rp, _, ref, qry = fasta_pair
        from repro.sequence.alphabet import decode

        text = decode(qry[:500])
        reqs = tmp_path / "reqs.jsonl"
        reqs.write_text(
            json.dumps({"id": "r1", "query": text}) + "\n"
            + text[:200] + "\n"            # bare-sequence line
            + "\n"                          # blank: skipped
            + json.dumps({"id": "noq"}) + "\n"
        )
        return rp, str(reqs), ref, qry

    def test_jsonl_round_trip(self, serve_setup, capsys):
        import json

        rp, reqs, ref, qry = serve_setup
        rc = main(["serve", rp, reqs, "-l", "25", "-s", "8", "--workers", "2"])
        assert rc == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        by_id = {l["id"]: l for l in lines}
        assert by_id["noq"]["ok"] is False
        ok = by_id["r1"]
        assert ok["ok"] and ok["n_mems"] == len(ok["mems"])
        import repro

        expect = {
            (r + 1, q + 1, l)
            for r, q, l in repro.find_mems(
                ref, qry[:500], min_length=25, seed_length=8
            )
        }
        assert {tuple(m) for m in ok["mems"]} == expect
        assert by_id[1]["ok"]  # the bare line got its line number as id

    def test_count_only_and_verbose(self, serve_setup, capsys):
        import json

        rp, reqs, *_ = serve_setup
        rc = main(["serve", rp, reqs, "-l", "25", "-s", "8",
                   "--count-only", "-v"])
        assert rc == 0
        out = capsys.readouterr()
        lines = [json.loads(l) for l in out.out.splitlines()]
        assert all("mems" not in l for l in lines)
        assert "# served: 2" in out.err
        assert "tier: thread" in out.err


class TestStats:
    def _stats_file(self, tmp_path, n=2):
        import json

        path = tmp_path / "stats.jsonl"
        snaps = []
        for i in range(n):
            snaps.append({
                "ts": 1_700_000_000.0 + i, "tier": "thread",
                "queue_depth": i, "admission_limit": 4,
                "in_flight": 1, "max_in_flight": 2,
                "submitted": i + 1, "completed": i, "errors": 0,
                "shed": 0, "cancelled": 0,
                "latency": {"count": i, "mean": 0.002, "min": 0.001,
                            "max": 0.003, "p50": 0.002, "p95": 0.003,
                            "p99": 0.003},
            })
        path.write_text("".join(json.dumps(s) + "\n" for s in snaps))
        return str(path), snaps

    def test_renders_last_snapshot(self, tmp_path, capsys):
        path, snaps = self._stats_file(tmp_path, n=3)
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "tier=thread" in out
        assert f"queue={snaps[-1]['queue_depth']}/4" in out
        assert "p95=3.00ms" in out
        # only the newest snapshot is rendered
        assert out.count("tier=thread") == 1

    def test_raw_prints_json_line(self, tmp_path, capsys):
        import json

        path, snaps = self._stats_file(tmp_path)
        assert main(["stats", path, "--raw"]) == 0
        line = capsys.readouterr().out.strip()
        assert json.loads(line) == snaps[-1]

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot open" in capsys.readouterr().err

    def test_empty_file_exits_1(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["stats", str(path)]) == 1
        assert "no snapshots yet" in capsys.readouterr().err

    def test_serve_stats_jsonl_end_to_end(self, tmp_path, serve_fasta, capsys):
        rp, reqs = serve_fasta
        stats = tmp_path / "s.jsonl"
        rc = main(["serve", rp, reqs, "-l", "25", "-s", "8",
                   "--stats-jsonl", str(stats), "--stats-interval", "0.05",
                   "--metrics"])
        assert rc == 0
        capsys.readouterr()  # drop the serve output
        assert main(["stats", str(stats)]) == 0
        out = capsys.readouterr().out
        assert "tier=thread" in out
        assert "latency:" in out  # --metrics turns the summary on


@pytest.fixture
def serve_fasta(tmp_path, fasta_pair):
    import json

    rp, _, _, qry = fasta_pair
    from repro.sequence.alphabet import decode

    reqs = tmp_path / "reqs.jsonl"
    reqs.write_text(json.dumps({"id": "r1", "query": decode(qry[:400])}) + "\n")
    return rp, str(reqs)
