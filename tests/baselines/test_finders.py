"""Correctness tests for all four baseline MEM finders."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    ALL_FINDERS,
    EssaMemFinder,
    MummerFinder,
    SlaMemFinder,
    SparseMemFinder,
)
from repro.core.reference import brute_force_mems
from repro.errors import GpuMemError, InvalidParameterError
from repro.types import mems_equal

from tests.conftest import dna_pair


def make_finders(L):
    finders = [MummerFinder(), SlaMemFinder(occ_rate=16, sa_rate=8)]
    for K in (2, 4):
        if K <= L:
            finders.append(SparseMemFinder(sparseness=K))
            finders.append(EssaMemFinder(sparseness=K, prefix_table_k=3))
    return finders


class TestAllFindersAgree:
    @settings(max_examples=25, deadline=None)
    @given(dna_pair(max_size=120), st.integers(4, 8))
    def test_equal_to_brute_force(self, pair, L):
        R, Q = pair
        expect = brute_force_mems(R, Q, L)
        for finder in make_finders(L):
            finder.build_index(R)
            got = finder.find_mems(Q, L)
            assert mems_equal(got.mems.array, expect), finder.name

    def test_repeat_heavy_input(self):
        R = np.tile(np.array([0, 1, 2, 1], dtype=np.uint8), 40)
        Q = np.tile(np.array([0, 1, 2, 1], dtype=np.uint8), 30)
        expect = brute_force_mems(R, Q, 6)
        for finder in make_finders(6):
            finder.build_index(R)
            assert mems_equal(finder.find_mems(Q, 6).mems.array, expect), finder.name

    def test_on_realistic_pair(self, homologous_pair):
        R, Q = homologous_pair
        import repro

        expect = repro.find_mems(R, Q, min_length=25, seed_length=8).array
        for finder in (MummerFinder(), EssaMemFinder(sparseness=4)):
            finder.build_index(R)
            got = finder.find_mems(Q, 25)
            assert mems_equal(got.mems.array, expect), finder.name


class TestProtocol:
    def test_find_before_build_raises(self):
        with pytest.raises(GpuMemError, match="build_index"):
            MummerFinder().find_mems(np.zeros(5, np.uint8), 3)

    def test_build_result_fields(self):
        rng = np.random.default_rng(0)
        R = rng.integers(0, 4, 300).astype(np.uint8)
        res = MummerFinder().build_index(R)
        assert res.seconds >= 0 and res.index_bytes > 0

    def test_match_result_fields(self):
        rng = np.random.default_rng(1)
        R = rng.integers(0, 4, 300).astype(np.uint8)
        f = MummerFinder()
        f.build_index(R)
        res = f.find_mems(R, 10)
        assert res.seconds >= 0
        assert len(res.mems) >= 1

    def test_string_inputs(self):
        f = MummerFinder()
        f.build_index("ACGTACGTACGT")
        res = f.find_mems("ACGTACGTACGT", 4)
        assert (0, 0, 12) in set(res.mems.as_tuples())

    def test_registry_names(self):
        assert set(ALL_FINDERS) == {"MUMmer", "sparseMEM", "essaMEM", "slaMEM"}
        for name, cls in ALL_FINDERS.items():
            assert cls.name == name


class TestSparseSpecifics:
    def test_min_length_below_sparseness_rejected(self):
        rng = np.random.default_rng(2)
        R = rng.integers(0, 4, 100).astype(np.uint8)
        f = SparseMemFinder(sparseness=8)
        f.build_index(R)
        with pytest.raises(InvalidParameterError):
            f.find_mems(R, 4)

    def test_bad_sparseness(self):
        with pytest.raises(InvalidParameterError):
            SparseMemFinder(sparseness=0)

    def test_index_smaller_with_sparseness(self):
        rng = np.random.default_rng(3)
        R = rng.integers(0, 4, 2000).astype(np.uint8)
        f1, f8 = SparseMemFinder(sparseness=1), SparseMemFinder(sparseness=8)
        b1, b8 = f1.build_index(R), f8.build_index(R)
        assert b8.index_bytes < b1.index_bytes / 4

    def test_essamem_prefix_table_shrinks_for_tiny_refs(self):
        f = EssaMemFinder(sparseness=1, prefix_table_k=8)
        f.build_index(np.zeros(64, dtype=np.uint8))
        assert f._searcher.prefix_table_k < 8


class TestSlaMemSpecifics:
    def test_index_bytes_counts_fm_parts(self):
        rng = np.random.default_rng(4)
        R = rng.integers(0, 4, 500).astype(np.uint8)
        f = SlaMemFinder()
        f.build_index(R)
        assert f.index_bytes() > 0

    def test_query_with_absent_symbols(self):
        # reference lacks T entirely; matching statistics must shorten safely
        R = np.zeros(60, dtype=np.uint8)
        Q = np.array([3, 3, 0, 0, 0, 0, 3, 3], dtype=np.uint8)
        f = SlaMemFinder()
        f.build_index(R)
        expect = brute_force_mems(R, Q, 3)
        assert mems_equal(f.find_mems(Q, 3).mems.array, expect)
