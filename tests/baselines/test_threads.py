"""Tests for the deterministic τ-thread model."""

import numpy as np
import pytest

from repro.baselines import SparseMemFinder, parallel_query_time, split_query
from repro.core.reference import brute_force_mems
from repro.errors import InvalidParameterError
from repro.types import mems_equal


class TestSplitQuery:
    def test_covers_all_positions(self):
        chunks = split_query(103, 4)
        assert len(chunks) == 4
        assert np.concatenate(chunks).tolist() == list(range(103))

    def test_near_equal(self):
        sizes = [c.size for c in split_query(100, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_tau_one(self):
        chunks = split_query(10, 1)
        assert len(chunks) == 1 and chunks[0].size == 10

    def test_more_chunks_than_positions(self):
        chunks = split_query(2, 5)
        assert np.concatenate(chunks).tolist() == [0, 1]

    def test_bad_tau(self):
        with pytest.raises(InvalidParameterError):
            split_query(10, 0)


class TestParallelQueryTime:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(0)
        R = rng.integers(0, 2, 400).astype(np.uint8)
        Q = rng.integers(0, 2, 300).astype(np.uint8)
        f = SparseMemFinder(sparseness=4)
        f.build_index(R)
        return R, Q, f

    def test_merged_result_complete(self, setup):
        R, Q, f = setup
        expect = brute_force_mems(R, Q, 8)
        for tau in (1, 2, 4, 8):
            merged, seconds, chunks = parallel_query_time(f, Q, 8, tau)
            assert mems_equal(merged.array, expect), tau
            assert len(chunks) == tau
            assert seconds >= max(chunks)

    def test_chunk_boundary_mem_not_lost(self):
        """A MEM whose anchor is near a chunk boundary must survive."""
        R = np.arange(64, dtype=np.uint8) % 4
        Q = R.copy()
        f = SparseMemFinder(sparseness=2)
        f.build_index(R)
        expect = brute_force_mems(R, Q, 10)
        merged, _, _ = parallel_query_time(f, Q, 10, 7)  # odd split
        assert mems_equal(merged.array, expect)
