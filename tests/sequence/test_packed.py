"""Tests for repro.sequence.packed."""

import os

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidSequenceError
from repro.sequence.packed import (
    BASES_PER_LIMB,
    PackedSequence,
    SharedSequenceHandle,
    kmer_codes,
    pack_bits,
    unpack_bits,
)

from tests.conftest import dna


class TestPackBits:
    def test_round_trip_exact_multiple(self):
        codes = np.array([0, 1, 2, 3, 3, 2, 1, 0], dtype=np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(codes), 8), codes)

    @given(dna(max_size=300))
    def test_round_trip_property(self, codes):
        assert np.array_equal(unpack_bits(pack_bits(codes), codes.size), codes)

    def test_packed_size(self):
        assert pack_bits(np.zeros(9, dtype=np.uint8)).size == 3  # ceil(9/4)

    def test_packing_density(self):
        # 2 bits/base: 4 bases per byte, the paper's storage (§IV)
        codes = np.zeros(4000, dtype=np.uint8)
        assert pack_bits(codes).nbytes == 1000

    def test_unpack_too_many_raises(self):
        with pytest.raises(InvalidSequenceError):
            unpack_bits(np.zeros(1, dtype=np.uint8), 5)

    def test_known_bit_layout(self):
        # bases [0,1,2,3] -> byte 0b11100100 = 228 (little-endian in byte)
        assert pack_bits(np.array([0, 1, 2, 3], dtype=np.uint8))[0] == 0b11100100


class TestKmerCodes:
    def test_manual_example(self):
        # "ACGT": 2-mers AC=0*4+1=1, CG=1*4+2=6, GT=2*4+3=11
        codes = np.array([0, 1, 2, 3], dtype=np.uint8)
        assert kmer_codes(codes, 2).tolist() == [1, 6, 11]

    def test_k_equals_length(self):
        codes = np.array([3, 0], dtype=np.uint8)
        assert kmer_codes(codes, 2).tolist() == [12]

    def test_k_longer_than_seq(self):
        assert kmer_codes(np.array([1], dtype=np.uint8), 2).size == 0

    @given(dna(min_size=1, max_size=100), st.integers(1, 6))
    def test_matches_naive(self, codes, k):
        got = kmer_codes(codes, k)
        expect = [
            sum(int(codes[i + j]) * 4 ** (k - 1 - j) for j in range(k))
            for i in range(max(0, codes.size - k + 1))
        ]
        assert got.tolist() == expect

    def test_invalid_k(self):
        with pytest.raises(InvalidSequenceError):
            kmer_codes(np.zeros(5, dtype=np.uint8), 0)
        with pytest.raises(InvalidSequenceError):
            kmer_codes(np.zeros(5, dtype=np.uint8), 32)

    def test_values_in_range(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 4, 500).astype(np.uint8)
        km = kmer_codes(codes, 8)
        assert km.min() >= 0 and km.max() < 4**8


class TestPackedSequence:
    def test_from_string(self):
        seq = PackedSequence("ACGTACGT")
        assert len(seq) == 8
        assert seq.to_string() == "ACGTACGT"

    def test_slicing(self):
        seq = PackedSequence("ACGTACGT")
        assert seq[2:5].to_string() == "GTA"

    def test_scalar_index(self):
        assert PackedSequence("ACGT")[3] == 3

    def test_equality(self):
        assert PackedSequence("ACG") == PackedSequence("ACG")
        assert PackedSequence("ACG") != PackedSequence("ACT")

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(PackedSequence("A"))

    def test_packed_footprint(self):
        seq = PackedSequence("A" * 1000)
        assert seq.nbytes_packed == 250

    def test_code_cache_drop_and_recover(self):
        seq = PackedSequence("ACGTTGCA")
        before = seq.codes().copy()
        seq.drop_code_cache()
        assert np.array_equal(seq.codes(), before)

    def test_kmers_delegates(self):
        seq = PackedSequence("ACGT")
        assert seq.kmers(2).tolist() == [1, 6, 11]

    def test_repr_contains_length(self):
        assert "n=4" in repr(PackedSequence("ACGT"))

    def test_limbs_prefix_ordering(self):
        # limb value of a 32-base window preserves lexicographic order
        a = PackedSequence("A" * 10 + "C" + "A" * 30)
        b = PackedSequence("A" * 10 + "G" + "A" * 30)
        la = a.limbs(np.array([0]), 1)[0, 0]
        lb = b.limbs(np.array([0]), 1)[0, 0]
        assert la < lb

    def test_limbs_shape(self):
        seq = PackedSequence("ACGT" * 20)
        out = seq.limbs(np.array([0, 5, 40]), 2)
        assert out.shape == (3, 2)
        assert out.dtype == np.uint64

    def test_limbs_zero_padding_at_end(self):
        seq = PackedSequence("T")
        limb = seq.limbs(np.array([0]), 1)[0, 0]
        # T=3 in the top 2 bits, rest zero-padded
        assert limb == np.uint64(3) << np.uint64(2 * (BASES_PER_LIMB - 1))


class TestFromPacked:
    def test_zero_copy_view(self):
        seq = PackedSequence("ACGTACGTT")
        other = PackedSequence.from_packed(seq.packed, len(seq))
        assert other == seq
        assert other.packed is seq.packed  # referenced, not copied

    def test_length_validation(self):
        with pytest.raises(InvalidSequenceError):
            PackedSequence.from_packed(np.zeros(1, dtype=np.uint8), 5)


class TestSharedMemory:
    def _fresh(self, text="ACGT" * 60):
        return PackedSequence(text, name="ref")

    def test_round_trip(self):
        seq = self._fresh()
        try:
            handle = seq.to_shared()
            assert isinstance(handle, SharedSequenceHandle)
            assert handle.n_bases == len(seq) and handle.name == "ref"
            other = PackedSequence.from_shared(handle)
            assert other == seq
            assert np.array_equal(other.codes(), seq.codes())
            other.close_shared()
        finally:
            seq.unlink_shared()

    def test_to_shared_idempotent(self):
        seq = self._fresh()
        try:
            assert seq.to_shared().shm_name == seq.to_shared().shm_name
        finally:
            seq.unlink_shared()

    def test_handle_attach_and_pickle(self):
        import pickle

        seq = self._fresh()
        try:
            handle = pickle.loads(pickle.dumps(seq.to_shared()))
            other = handle.attach()
            assert other == seq
            other.close_shared()
        finally:
            seq.unlink_shared()

    def test_detach_leaves_owner_segment_alive(self):
        seq = self._fresh()
        try:
            handle = seq.to_shared()
            first = PackedSequence.from_shared(handle)
            first.close_shared()
            second = PackedSequence.from_shared(handle)  # still attachable
            assert second == seq
            second.close_shared()
        finally:
            seq.unlink_shared()

    def test_close_shared_materializes_owner(self):
        seq = self._fresh()
        before = seq.codes().copy()
        seq.to_shared()
        seq.unlink_shared()
        # owner keeps working on a private copy after the segment is gone
        assert np.array_equal(seq.codes(), before)
        assert seq[3] == 3

    def test_unlink_removes_segment(self):
        from multiprocessing import shared_memory

        seq = self._fresh()
        handle = seq.to_shared()
        seq.unlink_shared()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.shm_name)

    def test_unlink_idempotent(self):
        seq = self._fresh()
        seq.to_shared()
        seq.unlink_shared()
        seq.unlink_shared()  # no-op, no error

    def test_empty_sequence(self):
        seq = PackedSequence("")
        try:
            other = PackedSequence.from_shared(seq.to_shared())
            assert len(other) == 0
            other.close_shared()
        finally:
            seq.unlink_shared()

    def test_pickle_round_trip_is_self_contained(self):
        import pickle

        seq = self._fresh()
        try:
            seq.to_shared()
            clone = pickle.loads(pickle.dumps(seq))
        finally:
            seq.unlink_shared()
        # the clone never references the (now unlinked) segment
        assert clone == seq
        assert np.array_equal(clone.codes(), seq.codes())


class TestCloseLifecycle:
    """close_shared idempotency, BufferError retry, shutdown safety."""

    def _fresh(self):
        return PackedSequence("ACGT" * 60, name="ref")

    def test_attacher_double_close_is_idempotent(self):
        seq = self._fresh()
        try:
            other = PackedSequence.from_shared(seq.to_shared())
            other.close_shared()
            other.close_shared()  # second close: no-op, no error
        finally:
            seq.unlink_shared()

    def test_owner_double_close_is_idempotent(self):
        seq = self._fresh()
        handle = seq.to_shared()
        seq.close_shared()
        seq.close_shared()  # no-op
        # the named segment still exists (close only unmapped): reap it
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=handle.shm_name)
        shm.close()
        shm.unlink()

    def test_live_view_raises_then_retry_succeeds(self):
        seq = self._fresh()
        try:
            other = PackedSequence.from_shared(seq.to_shared())
            view = other.packed  # export over shm.buf pins the mapping
            with pytest.raises(BufferError):
                other.close_shared()
            # state was restored: dropping the view makes a retry work
            del view
            other.close_shared()
            assert np.array_equal(other.codes(), seq.codes())
        finally:
            seq.unlink_shared()

    def test_interpreter_shutdown_finalizer_is_silent(self):
        """A __del__-driven close during shutdown must not print
        BufferError tracebacks or trip error::ResourceWarning."""
        import subprocess
        import sys

        script = (
            "from repro.sequence.packed import PackedSequence\n"
            "class Holder:\n"
            "    def __init__(self):\n"
            "        self.seq = PackedSequence('ACGT' * 50)\n"
            "        self.att = PackedSequence.from_shared(self.seq.to_shared())\n"
            "        self.view = self.att.packed  # outlives teardown order\n"
            "    def __del__(self):\n"
            "        self.att.close_shared(materialize=False)\n"
            "        self.seq.unlink_shared()\n"
            "holder = Holder()\n"
        )
        env = dict(os.environ, PYTHONWARNINGS="error::ResourceWarning")
        env["PYTHONPATH"] = os.pathsep.join(
            [str(p) for p in sys.path if p] or [""]
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stderr == "", proc.stderr
