"""Tests for repro.sequence.datasets (Table II analogues)."""

import numpy as np
import pytest

from repro.errors import GpuMemError
from repro.sequence.datasets import (
    DATASETS,
    EXPERIMENT_CONFIGS,
    PAIR_RECIPES,
    SCALE,
    load_dataset,
    load_experiment,
)


class TestDatasetRegistry:
    def test_all_table2_names_present(self):
        assert set(DATASETS) == {
            "chr2h", "chrI", "chr1m", "chrXh", "chrXc",
            "dmelanogaster", "EcoliK12", "chrXII",
        }

    def test_lengths_match_paper_ratio(self):
        for spec in DATASETS.values():
            expect = round(spec.paper_length_mbp * 1e6 / SCALE)
            assert spec.length == expect, spec.name

    def test_length_ordering_matches_paper(self):
        # Table II is ordered by decreasing length
        lengths = [DATASETS[n].length for n in
                   ("chr2h", "chrI", "chr1m", "chrXh", "chrXc",
                    "dmelanogaster", "EcoliK12", "chrXII")]
        assert lengths == sorted(lengths, reverse=True)

    def test_load_small_dataset(self):
        seq = load_dataset("chrXII")
        assert seq.size == DATASETS["chrXII"].length
        assert seq.dtype == np.uint8 and seq.max() <= 3

    def test_load_is_memoized(self):
        assert load_dataset("chrXII") is load_dataset("chrXII")

    def test_unknown_dataset(self):
        with pytest.raises(GpuMemError, match="unknown dataset"):
            load_dataset("chrZZ")


class TestExperimentConfigs:
    def test_nine_rows(self):
        assert len(EXPERIMENT_CONFIGS) == 9

    def test_paper_row_order(self):
        keys = [c.key for c in EXPERIMENT_CONFIGS]
        assert keys == [
            "chr1m/chr2h/L100", "chr1m/chr2h/L50", "chr1m/chr2h/L30",
            "chrXc/chrXh/L50", "chrXc/chrXh/L30",
            "dmelanogaster/EcoliK12/L20", "dmelanogaster/EcoliK12/L15",
            "chrXII/chrI/L20", "chrXII/chrI/L10",
        ]

    def test_seed_length_never_exceeds_L(self):
        # the paper drops ℓs for the L=10 row; our configs must too
        for c in EXPERIMENT_CONFIGS:
            assert c.seed_length <= c.min_length

    def test_every_pair_has_recipe(self):
        for c in EXPERIMENT_CONFIGS:
            assert (c.reference, c.query) in PAIR_RECIPES

    def test_load_experiment_shapes(self):
        cfg = EXPERIMENT_CONFIGS[7]  # chrXII/chrI — smallest
        ref, qry = load_experiment(cfg)
        assert ref.size == DATASETS[cfg.reference].length
        assert qry.size == DATASETS[cfg.query].length

    def test_same_pair_shares_sequences(self):
        # the three L values of chr1m/chr2h must reuse identical arrays
        a = load_experiment(EXPERIMENT_CONFIGS[7])
        b = load_experiment(EXPERIMENT_CONFIGS[8])
        assert a[0] is b[0] and a[1] is b[1]

    def test_pair_has_homology(self):
        import repro

        cfg = EXPERIMENT_CONFIGS[7]
        ref, qry = load_experiment(cfg)
        mems = repro.find_mems(ref, qry[:50_000], min_length=cfg.min_length)
        assert len(mems) > 0
