"""Tests for repro.sequence.fasta."""

import io

import numpy as np
import pytest

from repro.errors import InvalidSequenceError
from repro.sequence.alphabet import encode
from repro.sequence.fasta import FastaRecord, read_fasta, write_fasta


def roundtrip(text: str, **kwargs):
    return read_fasta(io.BytesIO(text.encode()), **kwargs)


class TestReadFasta:
    def test_single_record(self):
        recs = roundtrip(">chr1 test\nACGT\nACGT\n")
        assert len(recs) == 1
        assert recs[0].header == "chr1 test"
        assert np.array_equal(recs[0].codes, encode("ACGTACGT"))

    def test_multi_record(self):
        recs = roundtrip(">a\nAC\n>b\nGT\n")
        assert [r.header for r in recs] == ["a", "b"]
        assert recs[1].codes.tolist() == [2, 3]

    def test_blank_lines_ignored(self):
        recs = roundtrip(">a\n\nAC\n\nGT\n")
        assert recs[0].codes.tolist() == [0, 1, 2, 3]

    def test_crlf(self):
        recs = roundtrip(">a\r\nACGT\r\n")
        assert recs[0].codes.tolist() == [0, 1, 2, 3]

    def test_lowercase_sequence(self):
        recs = roundtrip(">a\nacgt\n")
        assert recs[0].codes.tolist() == [0, 1, 2, 3]

    def test_empty_record_allowed(self):
        recs = roundtrip(">a\n>b\nAC\n")
        assert len(recs) == 2
        assert recs[0].codes.size == 0

    def test_no_header_raises(self):
        with pytest.raises(InvalidSequenceError):
            roundtrip("ACGT\n")

    def test_empty_file_raises(self):
        with pytest.raises(InvalidSequenceError):
            roundtrip("")

    def test_n_policy_error(self):
        with pytest.raises(InvalidSequenceError, match="non-ACGT"):
            roundtrip(">a\nACNT\n")

    def test_n_policy_skip(self):
        recs = roundtrip(">a\nACNNT\n", invalid="skip")
        assert recs[0].codes.tolist() == [0, 1, 3]
        assert recs[0].dropped == 2

    def test_n_policy_random_keeps_coordinates(self):
        recs = roundtrip(">a\nACNNT\n", invalid="random", seed=5)
        assert len(recs[0]) == 5
        assert recs[0].codes[0] == 0 and recs[0].codes[4] == 3
        assert recs[0].dropped == 2

    def test_n_policy_random_deterministic(self):
        a = roundtrip(">a\nANNNT\n", invalid="random", seed=5)[0].codes
        b = roundtrip(">a\nANNNT\n", invalid="random", seed=5)[0].codes
        assert np.array_equal(a, b)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            roundtrip(">a\nA\n", invalid="wat")

    def test_from_path(self, tmp_path):
        p = tmp_path / "x.fa"
        p.write_text(">a\nACGT\n")
        recs = read_fasta(p)
        assert recs[0].codes.tolist() == [0, 1, 2, 3]


class TestLineEndingsAndGzip:
    CONTENT = b">a one\r\nACGT\r\nGGCC\r\n>b\r\nTTTT\r\n"

    def expect(self):
        return [("a one", [0, 1, 2, 3, 2, 2, 1, 1]), ("b", [3, 3, 3, 3])]

    def got(self, recs):
        return [(r.header, r.codes.tolist()) for r in recs]

    def test_crlf_multi_record(self):
        recs = read_fasta(io.BytesIO(self.CONTENT))
        assert self.got(recs) == self.expect()

    def test_lone_cr_old_mac(self):
        # the whole file is one physical line; \r must act as a separator
        recs = read_fasta(io.BytesIO(self.CONTENT.replace(b"\r\n", b"\r")))
        assert self.got(recs) == self.expect()

    def test_mixed_endings(self):
        recs = read_fasta(io.BytesIO(b">a one\nACGT\r\nGGCC\r>b\nTTTT\n"))
        assert self.got(recs) == self.expect()

    def test_gzip_path_auto_detected(self, tmp_path):
        import gzip

        p = tmp_path / "reads.fa"  # deliberately no .gz extension
        p.write_bytes(gzip.compress(self.CONTENT))
        assert self.got(read_fasta(p)) == self.expect()

    def test_gzip_crlf_combination(self, tmp_path):
        import gzip

        p = tmp_path / "reads.fa.gz"
        p.write_bytes(gzip.compress(self.CONTENT.replace(b"\r\n", b"\r")))
        assert self.got(read_fasta(p)) == self.expect()

    def test_plain_path_unaffected(self, tmp_path):
        p = tmp_path / "plain.fa"
        p.write_bytes(self.CONTENT)
        assert self.got(read_fasta(p)) == self.expect()


class TestWriteFasta:
    def test_round_trip_via_file(self, tmp_path):
        p = tmp_path / "out.fa"
        codes = encode("ACGT" * 30)
        write_fasta(p, [("myseq", codes)], width=10)
        recs = read_fasta(p)
        assert recs[0].header == "myseq"
        assert np.array_equal(recs[0].codes, codes)

    def test_wrapping(self):
        buf = io.StringIO()
        write_fasta(buf, [("a", encode("ACGTACGT"))], width=3)
        lines = buf.getvalue().splitlines()
        assert lines == [">a", "ACG", "TAC", "GT"]

    def test_record_objects(self):
        buf = io.StringIO()
        write_fasta(buf, [FastaRecord(header="r", codes=encode("TT"))])
        assert buf.getvalue() == ">r\nTT\n"

    def test_multi_record_round_trip(self, tmp_path):
        p = tmp_path / "multi.fa"
        write_fasta(p, [("a", encode("AC")), ("b", encode("GGG"))])
        recs = read_fasta(p)
        assert [(r.header, r.codes.tolist()) for r in recs] == [
            ("a", [0, 1]),
            ("b", [2, 2, 2]),
        ]
