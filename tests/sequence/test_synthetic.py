"""Tests for repro.sequence.synthetic."""

import numpy as np
import pytest

import repro
from repro.errors import InvalidSequenceError
from repro.sequence.synthetic import (
    SyntheticGenomeSpec,
    markov_dna,
    mutate,
    plant_homology,
    plant_repeats,
    synthesize_pair,
)


class TestMarkovDna:
    def test_length(self):
        assert markov_dna(1234, seed=1).size == 1234

    def test_zero_length(self):
        assert markov_dna(0).size == 0

    def test_deterministic(self):
        assert np.array_equal(markov_dna(500, seed=3), markov_dna(500, seed=3))

    def test_codes_in_range(self):
        seq = markov_dna(5000, seed=1)
        assert seq.dtype == np.uint8 and seq.max() <= 3

    def test_composition_bias(self):
        seq = markov_dna(50_000, seed=2, composition=(0.6, 0.2, 0.1, 0.1))
        assert (seq == 0).mean() > 0.5

    def test_self_transition_creates_runs(self):
        smooth = markov_dna(50_000, seed=4, self_transition=0.8)
        rough = markov_dna(50_000, seed=4, self_transition=0.0)
        runs_smooth = (np.diff(smooth) != 0).mean()
        runs_rough = (np.diff(rough) != 0).mean()
        assert runs_smooth < runs_rough

    def test_negative_length(self):
        with pytest.raises(InvalidSequenceError):
            markov_dna(-1)

    def test_bad_self_transition(self):
        with pytest.raises(InvalidSequenceError):
            markov_dna(10, self_transition=1.0)

    def test_bad_composition(self):
        with pytest.raises(InvalidSequenceError):
            markov_dna(10, composition=(1.0, 1.0, 0.0, 0.0))


class TestMutate:
    def test_rate_zero_is_identity(self):
        seq = markov_dna(1000, seed=1)
        assert np.array_equal(mutate(seq, rate=0.0), seq)

    def test_rate_changes_about_right_fraction(self):
        seq = markov_dna(50_000, seed=1)
        out = mutate(seq, rate=0.1, seed=2)
        frac = (out != seq).mean()
        assert 0.08 < frac < 0.12

    def test_substitutions_always_change_base(self):
        seq = np.zeros(10_000, dtype=np.uint8)
        out = mutate(seq, rate=1.0, seed=3)
        assert (out != 0).all()

    def test_does_not_modify_input(self):
        seq = markov_dna(100, seed=1)
        before = seq.copy()
        mutate(seq, rate=0.5, seed=2)
        assert np.array_equal(seq, before)

    def test_indels_change_length(self):
        seq = markov_dna(10_000, seed=1)
        out = mutate(seq, rate=0.0, indel_rate=0.01, seed=2)
        assert out.size != seq.size

    def test_deterministic(self):
        seq = markov_dna(1000, seed=1)
        a = mutate(seq, rate=0.05, indel_rate=0.01, seed=9)
        b = mutate(seq, rate=0.05, indel_rate=0.01, seed=9)
        assert np.array_equal(a, b)

    def test_empty(self):
        assert mutate(np.empty(0, dtype=np.uint8), rate=0.5).size == 0

    def test_bad_rate(self):
        with pytest.raises(InvalidSequenceError):
            mutate(np.zeros(3, dtype=np.uint8), rate=1.5)


class TestPlantRepeats:
    def test_creates_hot_seeds(self):
        # i.i.d. base so the only hot seeds are the planted family's
        base = repro.random_dna(50_000, seed=1)
        out = plant_repeats(
            base, seed=2, n_families=2, family_length=(50, 80),
            copies_per_family=(40, 60), copy_divergence=0.0,
        )
        from repro.sequence.packed import kmer_codes

        counts = np.bincount(kmer_codes(out, 8))
        base_counts = np.bincount(kmer_codes(base, 8))
        assert base_counts.max() < 10
        assert counts.max() > 30  # ~40-60 copies of each family seed

    def test_length_preserved(self):
        base = markov_dna(10_000, seed=1)
        assert plant_repeats(base, seed=2).size == base.size

    def test_deterministic(self):
        base = markov_dna(5_000, seed=1)
        assert np.array_equal(
            plant_repeats(base, seed=7), plant_repeats(base, seed=7)
        )

    def test_family_longer_than_sequence_skipped(self):
        base = markov_dna(50, seed=1)
        out = plant_repeats(base, seed=2, family_length=(100, 200))
        assert out.size == 50


class TestPlantHomology:
    def test_length(self):
        ref = markov_dna(10_000, seed=1)
        assert plant_homology(ref, 5_000, seed=2).size == 5_000

    def test_creates_long_mems(self):
        ref = markov_dna(20_000, seed=1)
        qry = plant_homology(ref, 10_000, seed=2, coverage=0.8, divergence=0.01)
        mems = repro.find_mems(ref, qry, min_length=40)
        assert len(mems) > 10

    def test_zero_coverage_no_long_mems(self):
        ref = markov_dna(20_000, seed=1)
        qry = plant_homology(ref, 10_000, seed=2, coverage=0.0)
        mems = repro.find_mems(ref, qry, min_length=40)
        assert len(mems) < 5  # chance matches only

    def test_divergence_controls_mem_length(self):
        ref = markov_dna(30_000, seed=1)
        close = plant_homology(ref, 15_000, seed=2, coverage=0.7, divergence=0.005)
        far = plant_homology(ref, 15_000, seed=2, coverage=0.7, divergence=0.05)
        m_close = repro.find_mems(ref, close, min_length=30).lengths()
        m_far = repro.find_mems(ref, far, min_length=30).lengths()
        assert np.median(m_close) > np.median(m_far)

    def test_zero_length(self):
        ref = markov_dna(100, seed=1)
        assert plant_homology(ref, 0, seed=1).size == 0

    def test_bad_coverage(self):
        with pytest.raises(InvalidSequenceError):
            plant_homology(markov_dna(100, seed=1), 10, coverage=2.0)


class TestSpecAndPair:
    def test_spec_generate(self):
        spec = SyntheticGenomeSpec(length=2_000, seed=11)
        seq = spec.generate()
        assert seq.size == 2_000
        assert np.array_equal(seq, spec.generate())  # deterministic

    def test_synthesize_pair(self):
        spec = SyntheticGenomeSpec(length=5_000, seed=12)
        ref, qry = synthesize_pair(spec, 3_000, seed=13, coverage=0.5)
        assert ref.size == 5_000 and qry.size == 3_000
