"""Tests for repro.sequence.formats (MUMmer / PAF interchange)."""

import pytest

import repro
from repro.errors import InvalidSequenceError
from repro.sequence.formats import (
    alignment_to_paf,
    mems_to_paf,
    read_mummer,
    read_paf,
    write_mummer,
    write_paf,
)
from repro.types import MatchSet, triplets_from_tuples


@pytest.fixture
def mems():
    return MatchSet(triplets_from_tuples([(4, 0, 10), (20, 15, 7)]))


class TestMummerFormat:
    def test_write_one_based(self, mems):
        text = write_mummer(mems)
        rows = [tuple(int(x) for x in line.split()) for line in text.splitlines()]
        assert (5, 1, 10) in rows and (21, 16, 7) in rows

    def test_round_trip(self, mems):
        parsed = read_mummer(write_mummer(mems))
        assert parsed[None] == mems

    def test_round_trip_with_header(self, mems):
        parsed = read_mummer(write_mummer(mems, header="read7"))
        assert parsed["read7"] == mems

    def test_multi_section(self):
        text = "> a\n1 1 3\n> b\n2 2 4\n"
        parsed = read_mummer(text)
        assert set(parsed["a"].as_tuples()) == {(0, 0, 3)}
        assert set(parsed["b"].as_tuples()) == {(1, 1, 4)}

    def test_empty(self):
        assert write_mummer(MatchSet(triplets_from_tuples([]))) == ""

    def test_bad_field_count(self):
        with pytest.raises(InvalidSequenceError, match="expected"):
            read_mummer("1 2\n")

    def test_bad_integer(self):
        with pytest.raises(InvalidSequenceError, match="non-integer"):
            read_mummer("1 x 3\n")

    def test_zero_based_rejected(self):
        with pytest.raises(InvalidSequenceError, match="1-based"):
            read_mummer("0 1 3\n")


class TestPaf:
    def test_mems_to_paf_columns(self, mems):
        recs = mems_to_paf(mems, query_name="q", query_len=100,
                           target_name="t", target_len=200)
        assert len(recs) == 2
        rec = next(r for r in recs if r.target_start == 4)
        assert rec.query_start == 0 and rec.query_end == 10
        assert rec.n_match == rec.alignment_len == 10
        assert "cg:Z:10M" in rec.tags

    def test_paf_line_has_12_plus_columns(self, mems):
        recs = mems_to_paf(mems, query_name="q", query_len=100,
                           target_name="t", target_len=200)
        parts = recs[0].line().split("\t")
        assert len(parts) >= 12

    def test_round_trip(self, mems):
        recs = mems_to_paf(mems, query_name="q", query_len=100,
                           target_name="t", target_len=200)
        parsed = read_paf(write_paf(recs))
        assert parsed == recs

    def test_bad_strand(self, mems):
        with pytest.raises(InvalidSequenceError):
            mems_to_paf(mems, query_name="q", query_len=1,
                        target_name="t", target_len=1, strand="?")

    def test_read_rejects_short_lines(self):
        with pytest.raises(InvalidSequenceError, match="12 columns"):
            read_paf("a\tb\tc\n")

    def test_read_rejects_bad_numbers(self):
        line = "\t".join(["q", "x", "0", "1", "+", "t", "9", "0", "1", "1", "1", "0"])
        with pytest.raises(InvalidSequenceError):
            read_paf(line)

    def test_alignment_to_paf_end_to_end(self):
        from repro.align import align_from_anchors
        from repro.core.chaining import chain_anchors
        from repro.sequence.synthetic import markov_dna, mutate

        R = markov_dna(2000, seed=11)
        Q = mutate(R, rate=0.03, seed=12)
        m = repro.find_mems(R, Q, min_length=15, seed_length=7)
        aln = align_from_anchors(R, Q, chain_anchors(m))
        rec = alignment_to_paf(aln, query_name="q", query_len=Q.size,
                               target_name="t", target_len=R.size)
        assert rec.n_match == aln.n_match
        assert rec.alignment_len >= rec.n_match
        assert any(t.startswith("cg:Z:") for t in rec.tags)
        # PAF invariants: spans consistent with the CIGAR consumption
        r_used, q_used = aln.consumes()
        assert rec.target_end - rec.target_start == r_used
        assert rec.query_end - rec.query_start == q_used
