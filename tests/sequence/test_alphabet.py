"""Tests for repro.sequence.alphabet."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidSequenceError
from repro.sequence.alphabet import (
    ALPHABET,
    ALPHABET_SIZE,
    BASE_TO_CODE,
    CODE_TO_BASE,
    decode,
    encode,
    is_valid_codes,
    random_dna,
)


class TestEncode:
    def test_paper_code_assignment(self):
        # §III-A: A=00, C=01, G=10, T=11
        assert BASE_TO_CODE == {"A": 0, "C": 1, "G": 2, "T": 3}

    def test_simple_string(self):
        assert encode("ACGT").tolist() == [0, 1, 2, 3]

    def test_lower_case(self):
        assert encode("acgt").tolist() == [0, 1, 2, 3]

    def test_mixed_case(self):
        assert encode("AcGt").tolist() == [0, 1, 2, 3]

    def test_bytes_input(self):
        assert encode(b"TTAA").tolist() == [3, 3, 0, 0]

    def test_empty(self):
        assert encode("").size == 0

    def test_invalid_letter_raises_with_position(self):
        with pytest.raises(InvalidSequenceError, match="position 2"):
            encode("ACNT")

    def test_n_is_rejected(self):
        with pytest.raises(InvalidSequenceError):
            encode("N")

    def test_code_array_passthrough(self):
        arr = np.array([0, 3, 2], dtype=np.uint8)
        out = encode(arr)
        assert out.tolist() == [0, 3, 2]

    def test_code_array_out_of_range(self):
        with pytest.raises(InvalidSequenceError):
            encode(np.array([0, 4], dtype=np.uint8))

    def test_wrong_type(self):
        with pytest.raises(TypeError):
            encode(12345)


class TestDecode:
    def test_round_trip_all_bases(self):
        assert decode(encode(ALPHABET)) == ALPHABET

    @given(st.text(alphabet="ACGT", max_size=200))
    def test_round_trip_property(self, s):
        assert decode(encode(s)) == s

    def test_out_of_range(self):
        with pytest.raises(InvalidSequenceError):
            decode(np.array([5], dtype=np.uint8))

    def test_code_to_base_consistent(self):
        for code, base in CODE_TO_BASE.items():
            assert BASE_TO_CODE[base] == code


class TestValidation:
    def test_valid(self):
        assert is_valid_codes(np.array([0, 1, 2, 3], dtype=np.uint8))

    def test_empty_valid(self):
        assert is_valid_codes(np.empty(0, dtype=np.uint8))

    def test_wrong_dtype(self):
        assert not is_valid_codes(np.array([0, 1], dtype=np.int64))

    def test_out_of_range_invalid(self):
        assert not is_valid_codes(np.array([0, 9], dtype=np.uint8))

    def test_2d_invalid(self):
        assert not is_valid_codes(np.zeros((2, 2), dtype=np.uint8))


class TestRandomDna:
    def test_length_and_range(self):
        seq = random_dna(1000, seed=1)
        assert seq.size == 1000
        assert seq.dtype == np.uint8
        assert set(np.unique(seq)) <= set(range(ALPHABET_SIZE))

    def test_deterministic(self):
        assert np.array_equal(random_dna(100, seed=7), random_dna(100, seed=7))

    def test_different_seeds_differ(self):
        assert not np.array_equal(random_dna(100, seed=1), random_dna(100, seed=2))

    def test_weighted_composition(self):
        seq = random_dna(20_000, seed=3, p=[0.7, 0.1, 0.1, 0.1])
        assert (seq == 0).mean() > 0.6

    def test_zero_length(self):
        assert random_dna(0).size == 0

    def test_negative_raises(self):
        with pytest.raises(InvalidSequenceError):
            random_dna(-1)
