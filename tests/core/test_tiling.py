"""Tests for repro.core.tiling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tiling import Tile, TilePlan
from repro.errors import InvalidParameterError


class TestTilePlan:
    def test_exact_grid(self):
        plan = TilePlan(n_reference=100, n_query=200, tile_size=50)
        assert plan.n_rows == 2 and plan.n_cols == 4
        assert plan.n_tiles == 8

    def test_ragged_edges_clipped(self):
        plan = TilePlan(n_reference=105, n_query=55, tile_size=50)
        assert plan.n_rows == 3 and plan.n_cols == 2
        assert plan.row_range(2) == (100, 105)
        assert plan.col_range(1) == (50, 55)

    def test_empty_sequences(self):
        plan = TilePlan(n_reference=0, n_query=10, tile_size=5)
        assert plan.n_rows == 0 and plan.n_tiles == 0

    def test_tile_object(self):
        plan = TilePlan(n_reference=100, n_query=100, tile_size=30)
        t = plan.tile(1, 2)
        assert (t.r_start, t.r_end) == (30, 60)
        assert (t.q_start, t.q_end) == (60, 90)
        assert t.shape == (30, 30)

    def test_row_iteration_order(self):
        plan = TilePlan(n_reference=60, n_query=90, tile_size=30)
        tiles = list(plan.tiles_in_row(0))
        assert [t.col for t in tiles] == [0, 1, 2]
        assert all(t.row == 0 for t in tiles)

    def test_full_iteration_is_row_major(self):
        plan = TilePlan(n_reference=60, n_query=60, tile_size=30)
        coords = [(t.row, t.col) for t in plan]
        assert coords == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_out_of_range(self):
        plan = TilePlan(n_reference=10, n_query=10, tile_size=5)
        with pytest.raises(InvalidParameterError):
            plan.row_range(2)
        with pytest.raises(InvalidParameterError):
            plan.col_range(-1)

    def test_bad_tile_size(self):
        with pytest.raises(InvalidParameterError):
            TilePlan(n_reference=5, n_query=5, tile_size=0)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 500), st.integers(1, 500), st.integers(1, 60))
    def test_tiles_partition_space(self, nr, nq, ts):
        plan = TilePlan(n_reference=nr, n_query=nq, tile_size=ts)
        covered = 0
        for t in plan:
            assert 0 <= t.r_start < t.r_end <= nr
            assert 0 <= t.q_start < t.q_end <= nq
            covered += (t.r_end - t.r_start) * (t.q_end - t.q_start)
        assert covered == nr * nq

    @settings(max_examples=30)
    @given(st.integers(1, 200), st.integers(1, 200), st.integers(1, 40),
           st.data())
    def test_tile_of_point(self, nr, nq, ts, data):
        plan = TilePlan(n_reference=nr, n_query=nq, tile_size=ts)
        r = data.draw(st.integers(0, nr - 1))
        q = data.draw(st.integers(0, nq - 1))
        t = plan.tile_of_point(r, q)
        assert t.contains(r, q)

    def test_tile_of_point_out_of_space(self):
        plan = TilePlan(n_reference=10, n_query=10, tile_size=5)
        with pytest.raises(InvalidParameterError):
            plan.tile_of_point(10, 0)


class TestTile:
    def test_contains(self):
        t = Tile(row=0, col=0, r_start=5, r_end=10, q_start=0, q_end=5)
        assert t.contains(5, 0) and t.contains(9, 4)
        assert not t.contains(10, 0) and not t.contains(5, 5)
