"""Direct tests of the block kernel (repro.core.block_stage)."""

import numpy as np

from repro.core.block_stage import BlockTask, _seed_value, block_kernel
from repro.core.params import GpuMemParams
from repro.gpu.device import TEST_DEVICE
from repro.gpu.kernel import Device
from repro.index.kmer_index import build_kmer_index


def make_task(R, Q, params, r_lo=None, r_hi=None, q_lo=None, q_hi=None):
    index = build_kmer_index(
        R, seed_length=params.seed_length, step=params.step,
        region_start=r_lo or 0, region_end=r_hi if r_hi is not None else R.size,
    )
    return BlockTask(
        reference=R,
        query=Q,
        ptrs=index.ptrs,
        locs=index.locs,
        seed_length=params.seed_length,
        w=params.work_per_thread,
        min_length=params.min_length,
        r_lo=r_lo or 0,
        r_hi=r_hi if r_hi is not None else R.size,
        q_lo=q_lo or 0,
        q_hi=q_hi if q_hi is not None else Q.size,
        block_width=params.block_width,
        balancing=params.load_balancing,
    )


def run_blocks(R, Q, params, **kw):
    task = make_task(R, Q, params, **kw)
    dev = Device(TEST_DEVICE)
    dev.launch(block_kernel, task.n_blocks, params.threads_per_block, task)
    in_block = sorted(t for lst in task.in_block.values() for t in lst)
    out_block = sorted(t for lst in task.out_block.values() for t in lst)
    return in_block, out_block, dev


class TestSeedValue:
    def test_matches_kmer_codes(self):
        from repro.sequence.packed import kmer_codes

        rng = np.random.default_rng(0)
        codes = rng.integers(0, 4, 50).astype(np.uint8)
        km = kmer_codes(codes, 4)
        for pos in (0, 7, 46):
            assert _seed_value(codes, pos, 4) == km[pos]


class TestBlockKernel:
    def params(self, **kw):
        defaults = dict(min_length=5, seed_length=3, threads_per_block=4,
                        blocks_per_tile=2)
        defaults.update(kw)
        return GpuMemParams(**defaults)

    def test_interior_mem_reported_in_block(self):
        # a single length-5 MEM strictly inside the block box
        R = np.array([3, 3, 0, 1, 2, 0, 1, 3, 3] + [3] * 24, dtype=np.uint8)
        Q = np.array([2, 2, 0, 1, 2, 0, 1, 2, 2] + [2] * 24, dtype=np.uint8)
        p = self.params()
        in_block, out_block, _ = run_blocks(R, Q, p)
        assert (2, 2, 5) in in_block

    def test_boundary_fragment_goes_out(self):
        R = (np.arange(40) % 4).astype(np.uint8)
        Q = R.copy()
        p = self.params()
        in_block, out_block, _ = run_blocks(R, Q, p)
        # the full-diagonal match crosses every block: nothing final in-block
        assert not any(l >= 40 for _, _, l in in_block)
        assert out_block  # fragments forwarded

    def test_balancing_modes_equal_output(self):
        rng = np.random.default_rng(1)
        R = rng.integers(0, 3, 120).astype(np.uint8)
        Q = rng.integers(0, 3, 100).astype(np.uint8)
        a = run_blocks(R, Q, self.params(load_balancing=True))[:2]
        b = run_blocks(R, Q, self.params(load_balancing=False))[:2]
        assert a == b

    def test_unbalanced_skips_algorithm2_phases(self):
        rng = np.random.default_rng(2)
        R = rng.integers(0, 3, 80).astype(np.uint8)
        Q = rng.integers(0, 3, 80).astype(np.uint8)
        *_, dev_on = run_blocks(R, Q, self.params(load_balancing=True))
        *_, dev_off = run_blocks(R, Q, self.params(load_balancing=False))
        assert dev_on.reports[-1].n_phases > dev_off.reports[-1].n_phases

    def test_n_blocks_covers_query_range(self):
        p = self.params()
        task = make_task(np.zeros(10, np.uint8), np.zeros(100, np.uint8), p,
                         q_lo=0, q_hi=100)
        assert task.n_blocks == -(-100 // p.block_width)

    def test_empty_block_range_is_harmless(self):
        R = np.zeros(20, dtype=np.uint8)
        Q = np.zeros(4, dtype=np.uint8)
        p = self.params()
        in_block, out_block, _ = run_blocks(R, Q, p, q_lo=0, q_hi=4)
        # all matches touch the tiny box -> everything is out-block
        assert in_block == []

    def test_seed_hits_only_from_own_index_rows(self):
        # index restricted to reference rows [8, 16): no hit may have r < 8
        R = np.zeros(24, dtype=np.uint8)
        Q = np.zeros(16, dtype=np.uint8)
        p = self.params()
        in_block, out_block, _ = run_blocks(R, Q, p, r_lo=8, r_hi=16)
        for r, _q, l in in_block + out_block:
            assert 8 <= r or r + l > 8  # fragments clipped to the row band
