"""MemSession under contention: single-flight builds, safe introspection.

Regression tests for the PR-4 cache races: duplicate row builds under the
threads executor (two threads missing the same row both built its index),
``cache_info()`` iterating the index dict while a concurrent ``put``
mutates it, and ``drop_indexes()`` racing in-flight queries.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.core.pipeline as pipeline_mod
from repro.core.session import MemSession
from repro.sequence.synthetic import markov_dna

HAMMER_THREADS = 8


@pytest.fixture()
def reference():
    return markov_dna(30_000, seed=11)


@pytest.fixture()
def counting_builds(monkeypatch):
    """Count (and serialize observation of) real row-index builds.

    Build counting is only meaningful when every miss actually builds:
    an ambient persistent index store (``REPRO_INDEX_STORE``, as in the
    CI ``tests-store`` leg) would serve rows from disk without ever
    calling the builder, so strip it for these tests.
    """
    from repro.index.store import STORE_ENV_VAR

    monkeypatch.delenv(STORE_ENV_VAR, raising=False)
    calls = {"n": 0}
    real = pipeline_mod.build_kmer_index
    lock = threading.Lock()

    def counting(*args, **kwargs):
        with lock:
            calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(pipeline_mod, "build_kmer_index", counting)
    return calls


class TestSingleFlight:
    def test_one_build_per_row_under_hammer(self, reference, counting_builds):
        # blocks_per_tile=1 shrinks the tile so the reference spans many
        # rows — the hammer contends on every one of them.
        session = MemSession(reference, min_length=30, blocks_per_tile=1)
        n_rows = session.n_rows
        assert n_rows > 1
        barrier = threading.Barrier(HAMMER_THREADS)

        def hammer(_):
            barrier.wait()
            return [session.row_index(row) for row in range(n_rows)]

        with ThreadPoolExecutor(HAMMER_THREADS) as pool:
            all_rows = list(pool.map(hammer, range(HAMMER_THREADS)))
        # Exactly one build per row, no matter how many threads missed it.
        assert counting_builds["n"] == n_rows
        # Every thread got the same index objects.
        for rows in all_rows[1:]:
            for a, b in zip(all_rows[0], rows, strict=True):
                assert a is b
        info = session.cache_info()
        assert info["misses"] == n_rows
        assert info["hits"] == (HAMMER_THREADS - 1) * n_rows
        assert info["n_cached"] == n_rows

    def test_one_build_per_row_concurrent_queries(
        self, reference, counting_builds
    ):
        session = MemSession(reference, min_length=30, executor="threads",
                             workers=4, blocks_per_tile=1)
        query = reference[1_000:2_000].copy()
        barrier = threading.Barrier(4)

        def query_once(_):
            barrier.wait()
            return session.find_mems(query).as_tuples()

        with ThreadPoolExecutor(4) as pool:
            results = list(pool.map(query_once, range(4)))
        assert counting_builds["n"] == session.n_rows
        assert all(r == results[0] for r in results[1:])

    def test_waiters_are_served_the_cached_index(
        self, reference, counting_builds
    ):
        session = MemSession(reference, min_length=30)
        first = session.row_index(0)
        assert session.row_index(0) is first
        assert counting_builds["n"] == 1


class TestIntrospectionUnderLoad:
    def test_cache_info_during_active_queries(self, reference):
        session = MemSession(reference, min_length=30)
        queries = [
            reference[i * 500 : i * 500 + 400].copy() for i in range(8)
        ]
        stop = threading.Event()
        failures: list[BaseException] = []

        def prober():
            while not stop.is_set():
                try:
                    info = session.cache_info()
                    assert info["n_cached"] >= 0
                    assert info["nbytes_packed"] >= 0
                except BaseException as exc:  # pragma: no cover - fail path
                    failures.append(exc)
                    return

        thread = threading.Thread(target=prober)
        thread.start()
        try:
            with ThreadPoolExecutor(4) as pool:
                list(pool.map(session.find_mems, queries * 4))
        finally:
            stop.set()
            thread.join()
        assert not failures

    def test_drop_indexes_during_active_queries(self, reference):
        session = MemSession(reference, min_length=30)
        query = reference[2_000:2_600].copy()
        expected = session.find_mems(query).as_tuples()
        stop = threading.Event()
        failures: list[BaseException] = []

        def dropper():
            while not stop.is_set():
                try:
                    session.drop_indexes()
                except BaseException as exc:  # pragma: no cover - fail path
                    failures.append(exc)
                    return

        thread = threading.Thread(target=dropper)
        thread.start()
        try:
            with ThreadPoolExecutor(4) as pool:
                results = list(
                    pool.map(lambda _: session.find_mems(query), range(16))
                )
        finally:
            stop.set()
            thread.join()
        assert not failures
        assert all(r.as_tuples() == expected for r in results)

    def test_drop_indexes_prunes_build_locks(self, reference):
        # Regression: the per-row build locks used to accumulate one Lock
        # per row ever touched for the lifetime of the session.
        session = MemSession(reference, min_length=30, blocks_per_tile=1)
        for row in range(session.n_rows):
            session.row_index(row)
        assert len(session._build_locks) == session.n_rows
        session.drop_indexes()
        assert session._build_locks == {}
        # The cache repopulates (and re-grows locks) on next touch.
        session.row_index(0)
        assert len(session._build_locks) == 1

    def test_drop_indexes_keeps_held_builder_locks(self, reference):
        # An in-flight builder's lock must survive the prune so its
        # waiters still serialize on it.
        session = MemSession(reference, min_length=30, blocks_per_tile=1)
        session.row_index(0)
        session.row_index(1)
        lock0 = session._build_locks[0]
        lock0.acquire()  # simulate a builder mid-flight on row 0
        try:
            session.drop_indexes()
            assert session._build_locks == {0: lock0}
        finally:
            lock0.release()
        session.drop_indexes()
        assert session._build_locks == {}

    def test_repeated_drop_cycles_do_not_grow_locks(self, reference):
        session = MemSession(reference, min_length=30, blocks_per_tile=1)
        for _ in range(3):
            for row in range(session.n_rows):
                session.row_index(row)
            session.drop_indexes()
        assert session._build_locks == {}

    def test_plain_get_put_protocol_still_works(self, reference):
        session = MemSession(reference, min_length=30)
        assert session.get(0) is None
        index = session.row_index(0)
        assert session.get(0) is index
        info = session.cache_info()
        # get(miss), get_or_build(build), get(hit)
        assert info["misses"] == 2
        assert info["hits"] == 1
        session.put(1, index)
        assert session.get(1) is index
