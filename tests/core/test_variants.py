"""Tests for MUM / rare / both-strand variants (paper §V future work)."""

import numpy as np
import pytest
from hypothesis import given, settings

import repro
from repro.core.variants import (
    StrandedMems,
    find_mems_both_strands,
    find_mums,
    find_rare_mems,
    occurrence_counts,
)
from repro.errors import InvalidParameterError
from repro.sequence.alphabet import reverse_complement

from tests.conftest import dna_pair


def naive_substring_count(hay, needle):
    n, m = len(hay), len(needle)
    return sum(1 for i in range(n - m + 1) if np.array_equal(hay[i : i + m], needle))


def naive_mums(R, Q, L):
    out = set()
    for r, q, length in map(tuple, repro.brute_force_mems(R, Q, L).tolist()):
        sub = R[r : r + length]
        if naive_substring_count(R, sub) == 1 and naive_substring_count(Q, sub) == 1:
            out.add((r, q, length))
    return out


class TestOccurrenceCounts:
    @settings(max_examples=20, deadline=None)
    @given(dna_pair(max_size=60))
    def test_counts_match_naive(self, pair):
        R, Q = pair
        mems = repro.find_mems(R, Q, min_length=3, seed_length=2)
        if len(mems) == 0:
            return
        in_ref, in_qry = occurrence_counts(mems, R, Q)
        for i, (r, _q, length) in enumerate(mems):
            sub = R[r : r + length]
            assert in_ref[i] == naive_substring_count(R, sub)
            assert in_qry[i] == naive_substring_count(Q, sub)


class TestFindMums:
    def test_unique_match_kept_repeat_dropped(self):
        # R contains "0123" once and "332" twice; Q shares both
        R = np.array([0, 1, 2, 3, 3, 3, 2, 0, 3, 3, 2], dtype=np.uint8)
        Q = np.array([0, 1, 2, 3, 3, 2, 1], dtype=np.uint8)
        mums = find_mums(R, Q, min_length=3, seed_length=2)
        for r, _q, length in mums:
            sub = R[r : r + length]
            assert naive_substring_count(R, sub) == 1
            assert naive_substring_count(Q, sub) == 1

    @settings(max_examples=20, deadline=None)
    @given(dna_pair(max_size=60))
    def test_matches_naive_mums(self, pair):
        R, Q = pair
        got = set(find_mums(R, Q, min_length=4, seed_length=3).as_tuples())
        assert got == naive_mums(R, Q, 4)

    def test_mums_subset_of_mems(self, homologous_pair):
        R, Q = homologous_pair
        R, Q = R[:4000], Q[:4000]
        mems = set(repro.find_mems(R, Q, min_length=20, seed_length=8).as_tuples())
        mums = find_mums(R, Q, min_length=20, seed_length=8)
        assert set(mums.as_tuples()) <= mems
        assert mums.stats["variant"] == "mum"
        assert mums.stats["n_mems_prefilter"] == len(mems)

    def test_paper_motivation_repeats_kill_mums(self):
        """§I: when repeats abound, MEMs >> MUMs."""
        from repro.sequence.synthetic import plant_repeats, plant_homology

        R = plant_repeats(
            repro.random_dna(8000, seed=1), seed=2,
            n_families=2, family_length=(60, 100),
            copies_per_family=(20, 40), copy_divergence=0.0,
        )
        Q = plant_homology(R, 6000, seed=3, coverage=0.8, divergence=0.0)
        mems = repro.find_mems(R, Q, min_length=30, seed_length=8)
        mums = find_mums(R, Q, min_length=30, seed_length=8)
        assert len(mums) < len(mems)


class TestFindRare:
    def test_k_one_equals_mums(self):
        rng = np.random.default_rng(0)
        R = rng.integers(0, 3, 200).astype(np.uint8)
        Q = rng.integers(0, 3, 200).astype(np.uint8)
        a = find_rare_mems(R, Q, 5, max_ref_occurrences=1, seed_length=3)
        b = find_mums(R, Q, 5, seed_length=3)
        assert a == b

    def test_monotone_in_k(self):
        rng = np.random.default_rng(1)
        R = np.tile(rng.integers(0, 4, 50).astype(np.uint8), 4)
        Q = R.copy()
        sets = []
        for k in (1, 2, 4, 100):
            s = set(find_rare_mems(R, Q, 8, max_ref_occurrences=k,
                                   seed_length=4).as_tuples())
            sets.append(s)
        for small, big in zip(sets, sets[1:], strict=False):
            assert small <= big

    def test_large_k_equals_all_mems(self):
        rng = np.random.default_rng(2)
        R = rng.integers(0, 3, 150).astype(np.uint8)
        Q = rng.integers(0, 3, 150).astype(np.uint8)
        rare = find_rare_mems(R, Q, 5, max_ref_occurrences=10**6, seed_length=3)
        mems = repro.find_mems(R, Q, min_length=5, seed_length=3)
        assert rare == mems

    def test_asymmetric_bounds(self):
        R = np.tile(np.array([0, 1, 2, 3], dtype=np.uint8), 10)
        Q = np.array([0, 1, 2, 3], dtype=np.uint8)
        # substring occurs 10x in R, 1x in Q
        loose_ref = find_rare_mems(R, Q, 4, max_ref_occurrences=20,
                                   max_query_occurrences=1, seed_length=3)
        tight_ref = find_rare_mems(R, Q, 4, max_ref_occurrences=1,
                                   max_query_occurrences=20, seed_length=3)
        assert len(loose_ref) > 0
        assert len(tight_ref) == 0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            find_rare_mems("ACGT", "ACGT", 2, max_ref_occurrences=0)
        with pytest.raises(InvalidParameterError):
            find_rare_mems("ACGT", "ACGT", 2, max_query_occurrences=0)

    def test_empty_result_passthrough(self):
        R = np.zeros(30, dtype=np.uint8)
        Q = np.full(30, 3, dtype=np.uint8)
        assert len(find_rare_mems(R, Q, 5, seed_length=3)) == 0


class TestBothStrands:
    def test_reverse_complement_identity(self):
        codes = repro.encode("ACGTTG")
        rc = reverse_complement(codes)
        assert repro.decode(rc) == "CAACGT"
        assert np.array_equal(reverse_complement(rc), codes)

    def test_reverse_strand_match_found(self):
        R = repro.encode("AAACGTACGTTTACCCGGG")
        insert = reverse_complement(repro.encode("ACGTACGTTT")[0:10])
        Q = np.concatenate([repro.encode("TTT"), insert, repro.encode("AAA")])
        res = find_mems_both_strands(R, Q, min_length=10, seed_length=4)
        assert isinstance(res, StrandedMems)
        assert len(res.reverse) >= 1

    def test_forward_coordinate_mapping(self):
        R = repro.encode("ACGTACGTAC")
        Q = reverse_complement(R)  # pure reverse-complement query
        res = find_mems_both_strands(R, Q, min_length=10, seed_length=4)
        mapped = res.reverse_in_forward_coords()
        assert (0, 0, 10) in mapped
        # and the forward strand has only spurious/short matches
        assert all(l < 10 for _, _, l in res.forward)

    def test_total_counts(self):
        rng = np.random.default_rng(5)
        R = rng.integers(0, 4, 300).astype(np.uint8)
        res = find_mems_both_strands(R, R.copy(), min_length=12, seed_length=6)
        assert res.total() == len(res.forward) + len(res.reverse)
        assert "+%d" % len(res.forward) in repr(res)

    @settings(max_examples=15, deadline=None)
    @given(dna_pair(max_size=60))
    def test_reverse_equals_forward_on_rc_query(self, pair):
        R, Q = pair
        direct = set(
            repro.find_mems(R, reverse_complement(Q), min_length=4,
                            seed_length=3).as_tuples()
        )
        res = find_mems_both_strands(R, Q, min_length=4, seed_length=3)
        assert set(res.reverse.as_tuples()) == direct
