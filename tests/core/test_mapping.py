"""Tests for repro.core.mapping (MEM-seeded read mapping)."""

import numpy as np
import pytest

from repro.core.mapping import ReadMapper, ReadMapping
from repro.errors import InvalidParameterError
from repro.sequence.synthetic import markov_dna, mutate, plant_repeats


@pytest.fixture(scope="module")
def reference():
    return plant_repeats(markov_dna(60_000, seed=31), seed=32,
                         n_families=3, copies_per_family=(10, 40))


@pytest.fixture(scope="module")
def mapper(reference):
    return ReadMapper(reference, min_seed=20, seed_length=9, tolerance=150)


class TestReadMapper:
    def test_exact_read_maps_exactly(self, reference, mapper):
        read = reference[10_000:12_000]
        m = mapper.map_read(read)
        assert m.mapped
        assert abs(m.locus - 10_000) <= 1
        assert m.support >= read.size * 0.9
        assert m.mapq > 30

    def test_noisy_reads_map_within_tolerance(self, reference, mapper):
        rng = np.random.default_rng(0)
        correct = 0
        for _ in range(15):
            start = int(rng.integers(0, reference.size - 3000))
            read = mutate(reference[start : start + 3000], rate=0.06,
                          indel_rate=0.01, seed=int(rng.integers(2**31)))
            m = mapper.map_read(read)
            if m.mapped and abs(m.locus - start) <= mapper.tolerance:
                correct += 1
        assert correct >= 13

    def test_random_read_unmapped_or_weak(self, mapper):
        import repro

        read = repro.random_dna(2000, seed=999)
        m = mapper.map_read(read)
        assert (not m.mapped) or m.support < 100

    def test_unmapped_fields(self, mapper):
        m = mapper.map_read(np.array([0, 1, 2], dtype=np.uint8))
        assert not m.mapped
        assert m.mapq == 0 and m.n_seeds == 0

    def test_ambiguous_read_low_mapq(self, reference):
        """A read copied from a repeat consensus maps with depressed MAPQ."""
        # duplicate a segment far away so the read has two perfect loci
        ref = reference.copy()
        ref[40_000:42_000] = ref[5_000:7_000]
        mapper = ReadMapper(ref, min_seed=20, seed_length=9)
        read = ref[5_200:6_800]
        m = mapper.map_read(read)
        unique_read = ref[20_000:21_600]
        m_unique = mapper.map_read(unique_read)
        assert m.mapq < m_unique.mapq

    def test_map_reads_batch(self, reference, mapper):
        reads = [reference[0:1500], reference[30_000:31_500]]
        out = mapper.map_reads(reads)
        assert len(out) == 2 and all(isinstance(m, ReadMapping) for m in out)

    def test_validation(self, reference):
        with pytest.raises(InvalidParameterError):
            ReadMapper(reference, tolerance=0)
