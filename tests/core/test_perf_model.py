"""Tests for repro.core.perf_model (the Fig. 7 analytic model)."""

import numpy as np
import pytest

from repro.core.params import GpuMemParams
from repro.core.perf_model import ModelResult, load_balance_speedup, model_extraction
from repro.core.simulated import simulated_find_mems
from repro.sequence.synthetic import markov_dna, plant_homology, plant_repeats


@pytest.fixture(scope="module")
def skewed_pair():
    """Small but seed-skewed input (repeat family => hot seeds)."""
    R = plant_repeats(
        markov_dna(6000, seed=1), seed=2, n_families=2,
        family_length=(60, 120), copies_per_family=(60, 120),
        copy_divergence=0.01,
    )
    Q = plant_homology(R, 5000, seed=3, coverage=0.7, divergence=0.01)
    return R, Q


@pytest.fixture(scope="module")
def params():
    return GpuMemParams(min_length=16, seed_length=6,
                        threads_per_block=32, blocks_per_tile=4)


class TestModelBasics:
    def test_result_fields(self, skewed_pair, params):
        R, Q = skewed_pair
        res = model_extraction(R, Q, params, balanced=True)
        assert isinstance(res, ModelResult)
        assert res.cycles > 0 and res.seconds > 0
        assert 0 <= res.imbalance < 1

    def test_balanced_less_imbalance(self, skewed_pair, params):
        R, Q = skewed_pair
        on = model_extraction(R, Q, params, balanced=True)
        off = model_extraction(R, Q, params, balanced=False)
        assert on.imbalance < off.imbalance

    def test_speedup_dict(self, skewed_pair, params):
        R, Q = skewed_pair
        res = load_balance_speedup(R, Q, params)
        assert set(res) == {
            "balanced_seconds", "unbalanced_seconds", "speedup",
            "balanced_imbalance", "unbalanced_imbalance",
        }
        assert res["speedup"] > 1.0  # balancing must pay off on skewed input


class TestModelValidation:
    def test_model_tracks_simulator_ratio(self, skewed_pair, params):
        """The model's headline quantity — the balanced/unbalanced ratio —
        must agree with the thread-level simulator within a loose factor."""
        R, Q = skewed_pair
        _, s_on = simulated_find_mems(R, Q, params)
        _, s_off = simulated_find_mems(R, Q, params.with_(load_balancing=False))
        sim_ratio = s_off["sim_match_seconds"] / s_on["sim_match_seconds"]
        model = load_balance_speedup(R, Q, params)
        assert model["speedup"] == pytest.approx(sim_ratio, rel=0.4)

    def test_uniform_input_near_parity(self, params):
        """Without skew, balancing buys (almost) nothing."""
        rng = np.random.default_rng(9)
        R = rng.integers(0, 4, 4000).astype(np.uint8)
        Q = rng.integers(0, 4, 4000).astype(np.uint8)
        res = load_balance_speedup(R, Q, params)
        assert 0.5 < res["speedup"] < 1.5
