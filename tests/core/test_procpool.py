"""Process-sharded execution tier: spawn safety, equivalence, registries.

Everything here runs against real spawned worker processes (kept small:
one shared ``workers=2`` pool, reused across tests via the process-wide
pool registry), plus pure pickle round-trip checks that gate what may
cross the process boundary.
"""

import pickle

import numpy as np
import pytest

from repro.core import GpuMem, GpuMemParams, MemSession, brute_force_mems
from repro.core import procpool
from repro.core.batch import BatchError, BatchResult
from repro.core.executors import EXECUTOR_NAMES, make_executor
from repro.types import mems_equal, unique_mems

SMALL = dict(seed_length=3, threads_per_block=4, blocks_per_tile=2)
L = 5
WORKERS = 2


def params(**kw):
    base = dict(min_length=L, **SMALL)
    base.update(kw)
    return GpuMemParams(**base)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    ref = rng.integers(0, 4, 600).astype(np.uint8)
    qry = np.concatenate([ref[50:200], rng.integers(0, 4, 80).astype(np.uint8)])
    return ref, qry


class TestSpawnSafety:
    """Pickle round-trips for everything that crosses the boundary."""

    def test_params_round_trip(self):
        p = params(executor="process", workers=4)
        assert pickle.loads(pickle.dumps(p)) == p

    def test_worker_params_forces_serial(self):
        wp = procpool.worker_params(params(executor="process", workers=4))
        assert wp.executor == "serial"
        assert wp.workers is None
        # and survives the boundary without re-resolving from env
        assert pickle.loads(pickle.dumps(wp)).executor == "serial"

    def test_worker_params_noop_for_serial(self):
        p = params(executor="serial")
        assert procpool.worker_params(p) is p

    def test_batch_result_round_trip(self):
        r = BatchResult(index=1, label="x", value=[1, 2], seconds=0.5)
        r2 = pickle.loads(pickle.dumps(r))
        assert (r2.index, r2.label, r2.value, r2.ok) == (1, "x", [1, 2], True)

    def test_batch_error_round_trip(self):
        e = BatchError(index=2, label=None, error=ValueError("boom"),
                       seconds=0.1)
        e2 = pickle.loads(pickle.dumps(e))
        assert not e2.ok
        assert isinstance(e2.error, ValueError)
        assert str(e2.error) == "boom"

    def test_spec_round_trip_inline(self, data):
        ref, qry = data
        spec = procpool.make_spec(ref, params(), query=qry)
        spec2 = pickle.loads(pickle.dumps(spec))
        assert spec2.ref.packed == spec.ref.packed
        assert spec2.ref.fingerprint == spec.ref.fingerprint
        assert spec2.query == qry.astype(np.uint8).tobytes()
        # a 600-base reference packs far below the inline threshold
        assert spec.ref.handle is None

    def test_large_reference_uses_shared_segment(self):
        rng = np.random.default_rng(3)
        big = rng.integers(0, 4, 4 * procpool.INLINE_PACKED_BYTES + 64)
        locator = procpool.publish_reference(big.astype(np.uint8))
        assert locator.packed is None
        assert locator.handle is not None
        info = procpool.registry_info()
        assert locator.handle.shm_name in info["segment_names"]
        # republishing the same genome reuses the one segment
        again = procpool.publish_reference(big.astype(np.uint8))
        assert again.handle.shm_name == locator.handle.shm_name


class TestProcessExecutor:
    def test_registered(self):
        assert "process" in EXECUTOR_NAMES
        ex = make_executor("process", workers=WORKERS)
        assert ex.name == "process"
        assert ex.needs_spec

    def test_invalid_workers(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            make_executor("process", workers=0)

    def test_cold_one_shot_matches_oracle(self, data):
        ref, qry = data
        matcher = GpuMem(params(executor="process", workers=WORKERS))
        got = matcher.find_mems(ref, qry)
        oracle = unique_mems(brute_force_mems(ref, qry, L))
        assert unique_mems(got.array).tobytes() == oracle.tobytes()
        assert matcher.stats.executor == "process"
        assert matcher.stats["workers"] == WORKERS

    def test_matches_serial_executor(self, data):
        ref, qry = data
        serial = GpuMem(params(executor="serial")).find_mems(ref, qry)
        proc = GpuMem(params(executor="process", workers=WORKERS)).find_mems(
            ref, qry
        )
        assert mems_equal(proc.array, serial.array)

    def test_warm_session_contract(self, data):
        ref, qry = data
        session = MemSession(ref, params(executor="process", workers=WORKERS))
        assert session.warm() >= 0.0
        info = session.cache_info()
        assert info["n_cached"] == session.n_rows > 1
        result = session.find_mems(qry)
        assert mems_equal(result.array, brute_force_mems(ref, qry, L))
        # warm runs must show the serial tier's all-hit accounting
        assert result.stats.index_cache_hits == session.n_rows
        assert result.stats.index_cache_misses == 0
        assert result.stats.index_time == 0.0

    def test_warm_is_idempotent(self, data):
        ref, _ = data
        session = MemSession(ref, params(executor="process", workers=WORKERS))
        session.warm()
        before = session.cache_info()["n_cached"]
        session.warm()
        assert session.cache_info()["n_cached"] == before

    def test_cold_session_counts_misses(self, data):
        ref, qry = data
        session = MemSession(ref, params(executor="process", workers=WORKERS))
        result = session.find_mems(qry)
        assert result.stats.index_cache_misses == session.n_rows
        assert result.stats.index_cache_hits == 0
        assert mems_equal(result.array, brute_force_mems(ref, qry, L))

    def test_pool_registry_reuses_pools(self):
        pool = procpool.get_pool(WORKERS)
        assert procpool.get_pool(WORKERS) is pool
        assert procpool.registry_info()["n_pools"] >= 1


class TestRunQueryTask:
    """The batch/serve worker entry point, driven in-process."""

    def test_ok_payload(self, data):
        ref, qry = data
        spec = procpool.make_spec(ref, params(), query=qry, assume_warm=True)
        payload = procpool.run_query_task(spec, 3, "lbl")
        assert payload["ok"]
        assert (payload["index"], payload["label"]) == (3, "lbl")
        assert mems_equal(
            unique_mems(payload["array"]),
            brute_force_mems(ref, qry, L),
        )
        assert payload["seconds"] >= 0.0

    def test_error_payload_is_picklable(self, data):
        ref, _ = data
        # a query with out-of-range codes fails validation inside the task
        bad = np.full(40, 9, dtype=np.uint8)
        spec = procpool.make_spec(ref, params(), query=bad)
        payload = procpool.run_query_task(spec, 0, None)
        assert not payload["ok"]
        err = pickle.loads(pickle.dumps(payload["error"]))
        assert isinstance(err, Exception)


class TestObsShipping:
    """Worker entry points carry observability freight when asked."""

    def _spec(self, data, **kw):
        from repro.obs import Tracer

        ref, _ = data
        return procpool.make_spec(ref, params(), tracer=Tracer(), **kw)

    def test_make_spec_sets_ship_obs_from_tracer(self, data):
        ref, _ = data
        assert procpool.make_spec(ref, params()).ship_obs is False
        assert self._spec(data).ship_obs is True

    def test_run_query_task_obs_none_without_tracer(self, data):
        ref, qry = data
        spec = procpool.make_spec(ref, params(), query=qry)
        payload = procpool.run_query_task(spec, 0, None)
        assert payload["ok"]
        assert payload["obs"] is None

    def test_run_query_task_ships_payload(self, data):
        from repro.obs.shipping import ObsPayload

        _, qry = data
        spec = self._spec(data, query=qry)
        payload = procpool.run_query_task(spec, 0, "q0")
        assert payload["ok"]
        obs = payload["obs"]
        assert isinstance(obs, ObsPayload)
        assert obs.n_spans >= 1  # at least the pipeline spans
        assert pickle.loads(pickle.dumps(payload))["obs"] == obs

    def test_failing_query_task_still_ships_obs(self, data):
        from repro.obs.shipping import ObsPayload

        spec = self._spec(data, query=np.full(30, 9, dtype=np.uint8))
        payload = procpool.run_query_task(spec, 0, None)
        assert not payload["ok"]
        assert isinstance(payload["error"], Exception)
        assert isinstance(payload["obs"], ObsPayload)

    def test_run_row_band_tuple_shape(self, data):
        from repro.obs.shipping import ObsPayload

        ref, qry = data
        plain = procpool.make_spec(ref, params(), query=qry)
        results, obs = procpool.run_row_band(plain, [0])
        assert results and obs is None
        shipped_results, shipped = procpool.run_row_band(
            self._spec(data, query=qry), [0]
        )
        assert isinstance(shipped, ObsPayload)
        assert [r.row for r in shipped_results] == [r.row for r in results]

    def test_build_rows_tuple_shape(self, data):
        from repro.obs.shipping import ObsPayload

        ref, _ = data
        triples, obs = procpool.build_rows(
            procpool.make_spec(ref, params(), use_cache=False), [0]
        )
        assert triples and obs is None
        triples2, shipped = procpool.build_rows(
            self._spec(data, use_cache=False), [0]
        )
        assert isinstance(shipped, ObsPayload)
        assert [t[0] for t in triples2] == [t[0] for t in triples]


def _attach_and_die(handle):
    """Spawn target: attach to the parent's segment, then die uncleanly —
    the worker never reaches close_shared (the crash window of the
    attach/compute/detach protocol)."""
    import os
    import signal

    from repro.sequence.packed import PackedSequence

    seq = PackedSequence.from_shared(handle)
    assert len(seq) == handle.n_bases
    os.kill(os.getpid(), signal.SIGKILL)


class TestWorkerCrash:
    """A worker dying mid-attach must not strand the parent's teardown."""

    def test_killed_worker_does_not_strand_parent_unlink(self):
        import multiprocessing as mp
        import signal

        from multiprocessing import shared_memory

        from repro.sequence.packed import PackedSequence

        seq = PackedSequence("ACGT" * 200, name="crash-ref")
        handle = seq.to_shared()
        ctx = mp.get_context("spawn")
        proc = ctx.Process(target=_attach_and_die, args=(handle,))
        proc.start()
        proc.join(timeout=60)
        assert proc.exitcode == -signal.SIGKILL
        # The crashed attacher's multiprocessing resource tracker may (on
        # pre-3.13 attach registration) reap the segment name before the
        # owner gets here; unlink_shared must succeed either way.
        seq.unlink_shared()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.shm_name)

    def test_unlink_tolerates_externally_reaped_segment(self):
        """Deterministic form of the crash race: the segment name is
        destroyed out from under the owner before its unlink runs."""
        from multiprocessing import shared_memory

        from repro.sequence.packed import PackedSequence

        seq = PackedSequence("ACGT" * 200)
        handle = seq.to_shared()
        reaper = shared_memory.SharedMemory(name=handle.shm_name)
        reaper.close()
        reaper.unlink()  # poses as the crashed worker's reaper
        seq.unlink_shared()  # must swallow the FileNotFoundError
