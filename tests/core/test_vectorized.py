"""Tests for repro.core.vectorized (tile stage internals)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.tiling import Tile
from repro.core.vectorized import (
    expand_ranges,
    extend_and_classify,
    stage_tile,
    tile_candidates,
)
from repro.index.kmer_index import build_kmer_index
from repro.sequence.packed import kmer_codes

from tests.conftest import dna


class TestExpandRanges:
    def test_simple(self):
        flat, owner = expand_ranges(np.array([10, 20]), np.array([2, 3]))
        assert flat.tolist() == [10, 11, 20, 21, 22]
        assert owner.tolist() == [0, 0, 1, 1, 1]

    def test_empty_ranges_skipped(self):
        flat, owner = expand_ranges(np.array([5, 9, 7]), np.array([0, 2, 0]))
        assert flat.tolist() == [9, 10]
        assert owner.tolist() == [1, 1]

    def test_all_empty(self):
        flat, owner = expand_ranges(np.array([1, 2]), np.array([0, 0]))
        assert flat.size == 0 and owner.size == 0

    @settings(max_examples=40)
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 6)), max_size=20))
    def test_matches_naive(self, ranges):
        starts = np.array([s for s, _ in ranges], dtype=np.int64)
        counts = np.array([c for _, c in ranges], dtype=np.int64)
        flat, owner = expand_ranges(starts, counts)
        expect_flat, expect_owner = [], []
        for i, (s, c) in enumerate(ranges):
            for j in range(c):
                expect_flat.append(s + j)
                expect_owner.append(i)
        assert flat.tolist() == expect_flat
        assert owner.tolist() == expect_owner


def full_tile(nr, nq):
    return Tile(row=0, col=0, r_start=0, r_end=nr, q_start=0, q_end=nq)


class TestTileCandidates:
    def test_finds_all_seed_alignments(self):
        rng = np.random.default_rng(0)
        R = rng.integers(0, 2, 60).astype(np.uint8)
        Q = rng.integers(0, 2, 50).astype(np.uint8)
        ls, step = 3, 2
        idx = build_kmer_index(R, seed_length=ls, step=step)
        qk = kmer_codes(Q, ls)
        r, q, counts = tile_candidates(qk, full_tile(60, 50), idx, 50, ls)
        got = set(zip(r.tolist(), q.tolist(), strict=True))
        rk = kmer_codes(R, ls)
        expect = {
            (rr, qq)
            for qq in range(50 - ls + 1)
            for rr in range(0, 60 - ls + 1, step)
            if rk[rr] == qk[qq]
        }
        assert got == expect

    def test_respects_tile_column(self):
        R = np.zeros(30, dtype=np.uint8)
        Q = np.zeros(30, dtype=np.uint8)
        idx = build_kmer_index(R, seed_length=2, step=1)
        qk = kmer_codes(Q, 2)
        tile = Tile(row=0, col=1, r_start=0, r_end=30, q_start=10, q_end=20)
        _, q, _ = tile_candidates(qk, tile, idx, 30, 2)
        assert q.min() >= 10 and q.max() < 20

    def test_query_window_must_fit_sequence(self):
        R = np.zeros(10, dtype=np.uint8)
        Q = np.zeros(5, dtype=np.uint8)
        idx = build_kmer_index(R, seed_length=3, step=1)
        qk = kmer_codes(Q, 3)
        _, q, _ = tile_candidates(qk, full_tile(10, 5), idx, 5, 3)
        assert q.max() <= 2

    def test_empty_tile(self):
        R = np.zeros(10, dtype=np.uint8)
        idx = build_kmer_index(R, seed_length=3, step=1)
        tile = Tile(row=0, col=0, r_start=0, r_end=10, q_start=4, q_end=4)
        r, q, c = tile_candidates(np.empty(0, np.int64), tile, idx, 4, 3)
        assert r.size == 0


class TestExtendAndClassify:
    def test_interior_mem_is_final(self):
        # match strictly inside the tile with mismatches on both sides
        R = np.array([3, 0, 1, 2, 3, 3], dtype=np.uint8)
        Q = np.array([2, 0, 1, 2, 0, 2], dtype=np.uint8)
        tile = full_tile(6, 6)
        # seed (1,1) of length 2 -> extends to (1,1,3)
        res = extend_and_classify(R, Q, tile, np.array([1]), np.array([1]), 2, 2)
        assert [tuple(map(int, m)) for m in res.in_tile] == [(1, 1, 3)]
        assert res.out_tile.size == 0

    def test_boundary_touching_goes_out(self):
        R = np.array([0, 1, 2], dtype=np.uint8)
        Q = np.array([0, 1, 2], dtype=np.uint8)
        tile = Tile(row=0, col=0, r_start=0, r_end=2, q_start=0, q_end=2)
        res = extend_and_classify(R, Q, tile, np.array([0]), np.array([0]), 2, 1)
        # extension crosses the box at (2,2) -> touching
        assert res.in_tile.size == 0
        assert res.out_tile.size == 1

    def test_mismatch_exactly_on_boundary_is_final(self):
        # DESIGN.md §5: precise touching — a true mismatch on the box edge
        # still yields an in-tile MEM
        R = np.array([0, 1, 3], dtype=np.uint8)
        Q = np.array([0, 1, 2], dtype=np.uint8)
        tile = Tile(row=0, col=0, r_start=0, r_end=2, q_start=0, q_end=2)
        res = extend_and_classify(R, Q, tile, np.array([0]), np.array([0]), 2, 1)
        assert [tuple(map(int, m)) for m in res.in_tile] == [(0, 0, 2)]

    def test_short_touching_fragment_kept(self):
        # DESIGN.md §5 note 1: boundary fragments are never length-filtered
        R = np.array([0, 0, 0, 0], dtype=np.uint8)
        Q = np.array([0, 0, 0, 0], dtype=np.uint8)
        tile = Tile(row=0, col=0, r_start=0, r_end=2, q_start=0, q_end=2)
        res = extend_and_classify(
            R, Q, tile, np.array([0]), np.array([0]), 2, 100
        )
        assert res.out_tile.size == 1  # kept although λ << min_length

    def test_deduplication(self):
        # two seed hits inside the same MEM give identical triplets
        R = np.array([0, 1, 0, 1, 2], dtype=np.uint8)
        Q = np.array([0, 1, 0, 1, 3], dtype=np.uint8)
        res = extend_and_classify(
            R, Q, full_tile(5, 5), np.array([0, 2]), np.array([0, 2]), 2, 2
        )
        assert res.in_tile.size == 1

    def test_empty_candidates(self):
        R = np.zeros(4, dtype=np.uint8)
        res = extend_and_classify(
            R, R, full_tile(4, 4), np.empty(0, np.int64), np.empty(0, np.int64), 2, 1
        )
        assert res.in_tile.size == 0 and res.out_tile.size == 0


class TestStageTile:
    @settings(max_examples=40, deadline=None)
    @given(dna(min_size=8, max_size=80, alphabet=2), dna(min_size=8, max_size=80, alphabet=2))
    def test_full_tile_equals_brute_force(self, R, Q):
        """With one tile covering everything and step=1, the stage alone
        must produce exactly the brute-force MEM set."""
        from repro.core.reference import brute_force_mems
        from repro.types import mems_equal, concat_triplets

        ls, L = 2, 3
        idx = build_kmer_index(R, seed_length=ls, step=1)
        qk = kmer_codes(Q, ls) if Q.size >= ls else np.empty(0, dtype=np.int64)
        res = stage_tile(R, Q, qk, full_tile(R.size, Q.size), idx, L)
        # the whole space is one tile: in_tile + re-extended out_tile == all
        from repro.core.host_merge import host_merge

        crossing = host_merge(R, Q, res.out_tile, L)
        got = concat_triplets([res.in_tile, crossing])
        assert mems_equal(got, brute_force_mems(R, Q, L))

    def test_hit_stats(self):
        R = np.zeros(20, dtype=np.uint8)
        Q = np.zeros(10, dtype=np.uint8)
        idx = build_kmer_index(R, seed_length=2, step=1)
        qk = kmer_codes(Q, 2)
        res = stage_tile(R, Q, qk, full_tile(20, 10), idx, 3)
        assert res.n_query_seeds_with_hits == 9
        assert res.n_candidates == 9 * 19
