"""BatchRunner: equivalence with serial loops, streaming, isolation.

The batched engine's contract is exact: over any query set it must return
byte-identical MEM sets to a serial ``session.find_mems`` loop — ordered
or as-completed, any worker count, both backends — while bounding
in-flight work and isolating per-query failures.
"""

from __future__ import annotations

import io
import threading

import numpy as np
import pytest

from repro.core.batch import (
    BatchError,
    BatchResult,
    BatchRunner,
    find_mems_batch,
)
from repro.core.params import GpuMemParams
from repro.core.session import MemSession
from repro.errors import InvalidParameterError, InvalidSequenceError
from repro.obs import Tracer
from repro.sequence.fasta import iter_fasta, read_fasta
from repro.sequence.synthetic import markov_dna


@pytest.fixture(scope="module")
def reference():
    return markov_dna(20_000, seed=7)


def _queries(reference, n, size=300, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        at = int(rng.integers(0, reference.size - size))
        read = reference[at : at + size].copy()
        flips = rng.integers(0, read.size, max(1, read.size // 50))
        read[flips] = (read[flips] + rng.integers(1, 4, flips.size)) % 4
        out.append(read)
    return out


class TestEquivalence:
    @pytest.mark.parametrize("ordered", [True, False])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_matches_serial_loop_vectorized(self, reference, ordered, workers):
        queries = _queries(reference, 64)
        session = MemSession(reference, min_length=30)
        serial = [session.find_mems(q).as_tuples() for q in queries]
        runner = BatchRunner(
            MemSession(reference, min_length=30), workers=workers
        )
        results = sorted(
            runner.run(queries, ordered=ordered), key=lambda r: r.index
        )
        assert all(r.ok for r in results)
        assert [r.value.as_tuples() for r in results] == serial

    def test_matches_serial_loop_simulated(self, reference):
        queries = _queries(reference[:2_000], 8, size=120)
        params = GpuMemParams(
            min_length=20, seed_length=8, backend="simulated"
        )
        session = MemSession(reference[:2_000], params)
        serial = [session.find_mems(q).as_tuples() for q in queries]
        runner = BatchRunner(MemSession(reference[:2_000], params), workers=3)
        results = list(runner.run(queries))
        assert [r.value.as_tuples() for r in results] == serial

    def test_ordered_vs_as_completed_same_results(self, reference):
        queries = _queries(reference, 16, seed=3)
        runner = BatchRunner(reference, min_length=30, workers=4)
        ordered = [r.value.as_tuples() for r in runner.run(queries)]
        completed = sorted(
            runner.run(queries, ordered=False), key=lambda r: r.index
        )
        assert [r.value.as_tuples() for r in completed] == ordered

    def test_indexes_follow_submission_order(self, reference):
        queries = _queries(reference, 10)
        runner = BatchRunner(reference, min_length=30, workers=2)
        assert [r.index for r in runner.run(queries)] == list(range(10))

    def test_convenience_wrapper(self, reference):
        queries = _queries(reference, 4)
        results = find_mems_batch(reference, queries, 30, workers=2)
        session = MemSession(reference, min_length=30)
        assert [r.value.as_tuples() for r in results] == [
            session.find_mems(q).as_tuples() for q in queries
        ]


class TestEdgeCases:
    def test_empty_query_stream(self, reference):
        runner = BatchRunner(reference, min_length=30)
        assert list(runner.run([])) == []

    def test_single_record(self, reference):
        queries = _queries(reference, 1)
        runner = BatchRunner(reference, min_length=30, workers=4)
        [result] = list(runner.run(queries))
        assert result.index == 0 and result.ok
        assert result.value.as_tuples() == MemSession(
            reference, min_length=30
        ).find_mems(queries[0]).as_tuples()

    def test_record_longer_than_reference(self, reference):
        short_ref = reference[:500]
        long_query = np.concatenate([short_ref, short_ref, short_ref])
        runner = BatchRunner(short_ref, min_length=30, workers=2)
        [result] = list(runner.run([long_query]))
        assert result.ok
        serial = MemSession(short_ref, min_length=30).find_mems(long_query)
        assert result.value.as_tuples() == serial.as_tuples()
        assert len(result.value) > 0

    def test_mixed_case_and_n_bases_via_fasta(self, reference):
        text = ">lower\nacgtacgtacgtacgtacgtacgtacgtacgt\n>mixed\nAcGtNNacgTACGTnnACGTACGTacgtACGT\n"
        records = read_fasta(io.BytesIO(text.encode()), invalid="random")
        runner = BatchRunner(reference, min_length=8, seed_length=8, workers=2)
        results = list(runner.run(records))
        assert [r.label for r in results] == ["lower", "mixed"]
        assert all(r.ok for r in results)

    def test_empty_sequence_record(self, reference):
        records = read_fasta(io.BytesIO(b">empty\n"))
        runner = BatchRunner(reference, min_length=30)
        [result] = list(runner.run(records))
        assert result.ok and len(result.value) == 0

    def test_empty_fasta_file_raises_in_producer(self, reference):
        runner = BatchRunner(reference, min_length=30)
        with pytest.raises(InvalidSequenceError):
            list(runner.run(iter_fasta(io.BytesIO(b""))))


class TestErrorIsolation:
    def test_poisoned_record_mid_stream(self, reference):
        queries = _queries(reference, 6)
        poisoned = queries[:3] + ["NOT*DNA"] + queries[3:]
        runner = BatchRunner(reference, min_length=30, workers=3)
        results = list(runner.run(poisoned))
        assert len(results) == 7
        bad = results[3]
        assert isinstance(bad, BatchError) and not bad.ok
        assert isinstance(bad.error, Exception)
        with pytest.raises(type(bad.error)):
            bad.reraise()
        good = [r for r in results if r.ok]
        session = MemSession(reference, min_length=30)
        assert [r.value.as_tuples() for r in good] == [
            session.find_mems(q).as_tuples() for q in queries
        ]

    def test_errors_raise_mode(self, reference):
        runner = BatchRunner(
            reference, min_length=30, workers=2, errors="raise"
        )
        with pytest.raises(Exception):
            list(runner.run(["BAD!"]))

    def test_map_is_fail_fast(self, reference):
        runner = BatchRunner(reference, min_length=30, workers=2)

        def boom(query):
            raise RuntimeError("poisoned")

        with pytest.raises(RuntimeError, match="poisoned"):
            runner.map(boom, _queries(reference, 2))


class TestBackpressure:
    def test_in_flight_never_exceeds_bound(self, reference):
        max_in_flight = 3
        lock = threading.Lock()
        state = {"now": 0, "peak": 0}
        release = threading.Event()

        def fn(query):
            with lock:
                state["now"] += 1
                state["peak"] = max(state["peak"], state["now"])
            release.wait(timeout=0.05)
            with lock:
                state["now"] -= 1
            return query

        runner = BatchRunner(
            reference, min_length=30, workers=8, max_in_flight=max_in_flight
        )
        results = list(runner.run(list(range(20)), fn=fn, ordered=False))
        assert len(results) == 20
        assert state["peak"] <= max_in_flight

    def test_streaming_input_pulled_lazily(self, reference):
        pulled = {"n": 0}

        def producer():
            for i in range(100):
                pulled["n"] += 1
                yield i

        runner = BatchRunner(
            reference, min_length=30, workers=1, max_in_flight=2
        )
        stream = runner.run(producer(), fn=lambda q: q)
        first = next(stream)
        assert first.value == 0
        # With a window of 2, the producer may be at most a few items
        # ahead of consumption — never materialized.
        assert pulled["n"] <= 4
        rest = list(stream)
        assert len(rest) == 99 and pulled["n"] == 100

    def test_invalid_knobs_rejected(self, reference):
        with pytest.raises(InvalidParameterError):
            BatchRunner(reference, min_length=30, workers=0)
        with pytest.raises(InvalidParameterError):
            BatchRunner(reference, min_length=30, max_in_flight=0)
        with pytest.raises(InvalidParameterError):
            BatchRunner(reference, min_length=30, errors="ignore")
        with pytest.raises(InvalidParameterError):
            BatchRunner(
                MemSession(reference, min_length=30), min_length=30
            )


class TestLabelsAndObservability:
    def test_fasta_records_carry_labels(self, reference):
        text = ">first\nACGTACGTACGTACGT\n>second\nTTTTACGTACGTAAAA\n"
        records = read_fasta(io.BytesIO(text.encode()))
        runner = BatchRunner(reference, min_length=8, seed_length=8, workers=2)
        results = list(runner.run(records))
        assert [r.label for r in results] == ["first", "second"]

    def test_label_value_pairs(self, reference):
        queries = _queries(reference, 2)
        runner = BatchRunner(reference, min_length=30)
        results = list(
            runner.run([("a", queries[0]), ("b", queries[1])])
        )
        assert [r.label for r in results] == ["a", "b"]

    def test_batch_spans_and_metrics(self, reference):
        tracer = Tracer()
        queries = _queries(reference, 5)
        runner = BatchRunner(
            reference, min_length=30, workers=2, tracer=tracer
        )
        results = list(runner.run(queries))
        assert all(isinstance(r, BatchResult) for r in results)
        assert len(tracer.find("batch.run")) == 1
        spans = tracer.find("batch.query")
        assert len(spans) == 5
        assert sorted(s.attrs["index"] for s in spans) == list(range(5))
        run_span = tracer.find("batch.run")[0]
        assert run_span.attrs["n_queries"] == 5
        assert run_span.attrs["n_errors"] == 0
        formatted = tracer.metrics.format()
        assert "batch.queued" in formatted
        assert "batch.query_seconds" in formatted
        assert "batch.queries{outcome=ok}" in formatted

    def test_per_query_seconds_recorded(self, reference):
        runner = BatchRunner(reference, min_length=30)
        [result] = list(runner.run(_queries(reference, 1)))
        assert result.seconds > 0.0


class TestProcessTier:
    """tier="process": whole queries shipped to the shared worker pool."""

    def test_matches_serial_loop(self, reference):
        queries = _queries(reference, 8)
        session = MemSession(reference, min_length=30)
        serial = [session.find_mems(q).as_tuples() for q in queries]
        runner = BatchRunner(
            reference, min_length=30, tier="process", workers=2
        )
        results = list(runner.run(queries, ordered=True))
        assert [r.index for r in results] == list(range(len(queries)))
        assert all(r.ok for r in results)
        assert [r.value.as_tuples() for r in results] == serial
        assert runner._in_flight == 0

    def test_as_completed_same_results(self, reference):
        queries = _queries(reference, 6, seed=3)
        runner = BatchRunner(
            reference, min_length=30, tier="process", workers=2
        )
        ordered = [
            r.value.as_tuples() for r in runner.run(queries, ordered=True)
        ]
        unordered = sorted(
            runner.run(queries, ordered=False), key=lambda r: r.index
        )
        assert [r.value.as_tuples() for r in unordered] == ordered
        assert runner._in_flight == 0

    def test_worker_stats_travel_back(self, reference):
        runner = BatchRunner(
            reference, min_length=30, tier="process", workers=2
        )
        (result,) = runner.run(_queries(reference, 1))
        # the batch tier pre-warms worker sessions (assume_warm)
        assert result.value.stats.index_cache_misses == 0
        assert result.seconds >= 0.0

    def test_poisoned_record_isolated(self, reference):
        queries = _queries(reference, 3)
        stream = queries[:2] + ["ACGT!!"] + queries[2:]
        runner = BatchRunner(
            reference, min_length=30, tier="process", workers=2
        )
        results = list(runner.run(stream, ordered=True))
        assert [r.ok for r in results] == [True, True, False, True]
        assert isinstance(results[2], BatchError)
        assert runner._in_flight == 0

    def test_custom_fn_rejected(self, reference):
        runner = BatchRunner(
            reference, min_length=30, tier="process", workers=2
        )
        with pytest.raises(InvalidParameterError, match="process tier"):
            runner.run([], fn=lambda q: q)
        with pytest.raises(InvalidParameterError, match="process tier"):
            runner.map(lambda q: q, [])

    def test_invalid_tier_rejected(self, reference):
        with pytest.raises(InvalidParameterError, match="tier"):
            BatchRunner(reference, min_length=30, tier="gpu")

    def test_worker_obs_merged_into_parent(self, reference):
        import os

        tracer = Tracer()
        queries = _queries(reference, 4, seed=5)
        runner = BatchRunner(
            reference, min_length=30, tier="process", workers=2, tracer=tracer
        )
        results = list(runner.run(queries))
        assert all(r.ok for r in results)
        metrics = tracer.metrics.to_dict()
        # one payload per task, carrying the worker-side cache counters
        assert metrics["proc.obs.payloads"]["value"] == len(queries)
        assert metrics["session.cache.queries"]["value"] == len(queries)
        # worker spans joined the parent trace under their own pids
        pids = {ev["pid"] for ev in tracer.foreign_events}
        assert pids and os.getpid() not in pids
