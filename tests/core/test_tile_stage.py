"""Tests for repro.core.tile_stage."""

import numpy as np

from repro.core.tile_stage import expand_triplets_in_box, tile_combine
from repro.core.tiling import Tile
from repro.gpu.device import TEST_DEVICE
from repro.gpu.kernel import Device
from repro.types import triplets_from_tuples


def box(r0, r1, q0, q1):
    return Tile(row=0, col=0, r_start=r0, r_end=r1, q_start=q0, q_end=q1)


class TestExpandTripletsInBox:
    def test_interior_expansion(self):
        R = np.array([3, 0, 1, 2, 3], dtype=np.uint8)
        Q = np.array([2, 0, 1, 2, 0], dtype=np.uint8)
        inside, touching, ops = expand_triplets_in_box(
            R, Q, triplets_from_tuples([(2, 2, 1)]), box(0, 5, 0, 5)
        )
        assert [tuple(map(int, m)) for m in inside] == [(1, 1, 3)]
        assert touching.size == 0
        assert ops > 0

    def test_crossing_is_touching(self):
        R = np.arange(8, dtype=np.uint8) % 4
        Q = R.copy()
        inside, touching, _ = expand_triplets_in_box(
            R, Q, triplets_from_tuples([(2, 2, 2)]), box(0, 4, 0, 4)
        )
        assert inside.size == 0
        assert [tuple(map(int, m)) for m in touching] == [(0, 0, 4)]  # clipped

    def test_empty(self):
        R = np.zeros(4, dtype=np.uint8)
        inside, touching, ops = expand_triplets_in_box(
            R, R, triplets_from_tuples([]), box(0, 4, 0, 4)
        )
        assert inside.size == 0 and touching.size == 0 and ops == 0


class TestTileCombine:
    def test_block_fragments_fuse_to_in_tile(self):
        """A MEM spanning two block strips whose fragments meet at the strip
        boundary must come out as one in-tile MEM."""
        R = np.array([3, 0, 1, 2, 0, 1, 2, 3], dtype=np.uint8)
        Q = np.array([2, 0, 1, 2, 0, 1, 2, 0], dtype=np.uint8)
        # true MEM: (1,1,6). Fragments clipped at block boundary q=4:
        frags = triplets_from_tuples([(1, 1, 3), (4, 4, 3)])
        in_tile, out_tile = tile_combine(R, Q, box(0, 8, 0, 8), frags, 4)
        assert [tuple(map(int, m)) for m in in_tile] == [(1, 1, 6)]
        assert out_tile.size == 0

    def test_missing_middle_fragment_recovered(self):
        """DESIGN.md §5 note 2 at tile level: re-expansion bridges a strip
        with no sampled hit."""
        R = np.array([3] + list(range(9)) + [3], dtype=np.uint8) % 4
        R = R.astype(np.uint8)
        Q = R.copy()
        Q[0] = (Q[0] + 1) % 4
        Q[-1] = (Q[-1] + 1) % 4
        # MEM is (1,1,9); only the first strip's fragment exists
        frags = triplets_from_tuples([(1, 1, 3)])
        in_tile, out_tile = tile_combine(R, Q, box(0, 11, 0, 11), frags, 5)
        assert [tuple(map(int, m)) for m in in_tile] == [(1, 1, 9)]

    def test_touching_tile_box_goes_out(self):
        R = np.arange(8, dtype=np.uint8) % 4
        Q = R.copy()
        frags = triplets_from_tuples([(0, 0, 4)])
        in_tile, out_tile = tile_combine(R, Q, box(0, 4, 0, 4), frags, 2)
        assert in_tile.size == 0
        assert out_tile.size == 1

    def test_min_length_filter_only_for_in_tile(self):
        R = np.array([3, 0, 1, 3], dtype=np.uint8)
        Q = np.array([2, 0, 1, 2], dtype=np.uint8)
        frags = triplets_from_tuples([(1, 1, 2)])
        in_tile, out_tile = tile_combine(R, Q, box(0, 4, 0, 4), frags, 100)
        assert in_tile.size == 0 and out_tile.size == 0

    def test_device_cost_charged(self):
        dev = Device(TEST_DEVICE)
        R = np.zeros(6, dtype=np.uint8)
        frags = triplets_from_tuples([(0, 0, 3)])
        tile_combine(R, R, box(0, 6, 0, 6), frags, 2, device=dev)
        assert dev.reports[-1].name == "tile:combine"

    def test_empty_input(self):
        R = np.zeros(4, dtype=np.uint8)
        in_tile, out_tile = tile_combine(
            R, R, box(0, 4, 0, 4), triplets_from_tuples([]), 2
        )
        assert in_tile.size == 0 and out_tile.size == 0
