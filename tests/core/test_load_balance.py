"""Tests for repro.core.load_balance (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.load_balance import (
    balance_loads,
    imbalance_ratio,
    static_plan,
)
from repro.errors import InvalidParameterError

loads_strategy = st.lists(st.integers(0, 50), min_size=1, max_size=64).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


class TestBalanceLoads:
    def test_paper_invariants(self):
        loads = np.array([0, 5, 0, 0, 1, 0, 0, 10], dtype=np.int64)
        plan = balance_loads(loads)
        assert plan.n_seeds == 3
        assert plan.t_idle == 5
        assert plan.t_load == 16
        # assign partitions [0, tau)
        assert plan.assign[0] == 0 and plan.assign[-1] == loads.size

    def test_every_thread_assigned_when_work_exists(self):
        plan = balance_loads(np.array([3, 0, 0, 0], dtype=np.int64))
        assert (plan.group >= 0).all()

    def test_heavy_seed_gets_more_threads(self):
        loads = np.array([1, 0, 0, 0, 0, 0, 0, 100], dtype=np.int64)
        plan = balance_loads(loads)
        light = plan.members(0).size
        heavy = plan.members(1).size
        assert heavy > light

    def test_proportionality(self):
        loads = np.zeros(64, dtype=np.int64)
        loads[0] = 10
        loads[1] = 30
        plan = balance_loads(loads)
        m0, m1 = plan.members(0).size, plan.members(1).size
        assert m0 + m1 == 64
        # 30/40 of the idle pool should serve seed 1 (within rounding)
        assert abs(m1 - 3 * m0) <= 4

    def test_every_nonempty_seed_has_a_thread(self):
        loads = np.array([1] * 16, dtype=np.int64)
        plan = balance_loads(loads)
        for rank in range(plan.n_seeds):
            assert plan.members(rank).size >= 1

    def test_all_empty(self):
        plan = balance_loads(np.zeros(8, dtype=np.int64))
        assert plan.n_seeds == 0
        assert (plan.group == -1).all()
        assert plan.per_thread_share().sum() == 0

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            balance_loads(np.empty(0, dtype=np.int64))

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            balance_loads(np.array([-1], dtype=np.int64))

    @settings(max_examples=80)
    @given(loads_strategy)
    def test_structural_properties(self, loads):
        plan = balance_loads(loads)
        tau = loads.size
        n_seeds = int((loads > 0).sum())
        assert plan.n_seeds == n_seeds
        if n_seeds:
            # assign is a monotone partition of [0, tau)
            assert plan.assign[0] == 0 and plan.assign[-1] == tau
            assert (np.diff(plan.assign) >= 1).all()
            # group is consistent with assign
            for tid in range(tau):
                g = plan.group[tid]
                assert plan.assign[g] <= tid < plan.assign[g + 1]

    @settings(max_examples=80)
    @given(loads_strategy)
    def test_share_conserves_work(self, loads):
        plan = balance_loads(loads)
        assert plan.per_thread_share().sum() == loads.sum()

    @settings(max_examples=50)
    @given(loads_strategy)
    def test_balancing_reduces_max_share(self, loads):
        balanced = balance_loads(loads).per_thread_share()
        static = static_plan(loads).per_thread_share()
        assert balanced.max(initial=0) <= static.max(initial=0)


class TestStaticPlan:
    def test_owner_keeps_seed(self):
        loads = np.array([0, 7, 0, 2], dtype=np.int64)
        plan = static_plan(loads)
        assert plan.group.tolist() == [-1, 0, -1, 1]
        assert plan.per_thread_share().tolist() == [0, 7, 0, 2]

    def test_all_empty(self):
        plan = static_plan(np.zeros(4, dtype=np.int64))
        assert plan.n_seeds == 0


class TestImbalanceRatio:
    def test_perfectly_balanced(self):
        assert imbalance_ratio(np.full(32, 5), 32) == pytest.approx(0.0)

    def test_single_hot_thread(self):
        share = np.zeros(32)
        share[0] = 32
        assert imbalance_ratio(share, 32) == pytest.approx(1 - 1 / 32)

    def test_empty(self):
        assert imbalance_ratio(np.zeros(8), 4) == 0.0
