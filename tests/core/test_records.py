"""Tests for repro.core.records (multi-record matching)."""

import numpy as np
import pytest

from repro.core.records import best_pairing, find_mems_records, total_matches
from repro.errors import InvalidParameterError
from repro.sequence.fasta import FastaRecord


@pytest.fixture
def refs(rng):
    return [
        ("chrA", rng.integers(0, 4, 2000).astype(np.uint8)),
        ("chrB", rng.integers(0, 4, 1500).astype(np.uint8)),
    ]


class TestFindMemsRecords:
    def test_cartesian_product(self, refs):
        queries = [("q1", refs[0][1][100:600]), ("q2", refs[1][1][200:700])]
        out = find_mems_records(refs, queries, min_length=30, seed_length=8)
        assert len(out) == 4
        names = {(m.reference_name, m.query_name) for m in out}
        assert names == {("chrA", "q1"), ("chrA", "q2"), ("chrB", "q1"),
                         ("chrB", "q2")}

    def test_coordinates_are_record_local(self, refs):
        queries = [("q1", refs[0][1][100:600])]
        out = find_mems_records(refs, queries, min_length=30, seed_length=8)
        hit = next(m for m in out if (m.reference_name, m.query_name) == ("chrA", "q1"))
        assert (100, 0, 500) in set(hit.mems.as_tuples())

    def test_matches_never_cross_records(self, refs):
        # concatenation artifact check: a query spanning the A|B junction of
        # a naive concatenation must NOT be reported by the record driver
        junction = np.concatenate([refs[0][1][-50:], refs[1][1][:50]])
        out = find_mems_records(refs, [("junction", junction)],
                                min_length=60, seed_length=8)
        assert total_matches(out) == 0

    def test_accepts_fasta_records_and_bare_arrays(self, refs):
        fr = FastaRecord(header="fr", codes=refs[0][1][:300])
        out = find_mems_records([fr], [refs[0][1][:300]], min_length=30,
                                seed_length=8)
        assert out[0].reference_name == "fr"
        assert out[0].query_name == "seq0"
        assert len(out[0]) >= 1

    def test_empty_rejected(self, refs):
        with pytest.raises(InvalidParameterError):
            find_mems_records([], refs, min_length=20)


class TestBestPairing:
    def test_assigns_query_to_homolog(self, refs):
        queries = [("q1", refs[0][1][100:900]), ("q2", refs[1][1][100:900])]
        out = find_mems_records(refs, queries, min_length=30, seed_length=8)
        best = best_pairing(out)
        assert best["q1"].reference_name == "chrA"
        assert best["q2"].reference_name == "chrB"
