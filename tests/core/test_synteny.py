"""Tests for repro.core.synteny."""

import numpy as np
import pytest

import repro
from repro.core.synteny import SyntenyBlock, block_coverage, synteny_blocks
from repro.errors import InvalidParameterError
from repro.types import triplets_from_tuples


class TestSyntenyBlocks:
    def test_empty(self):
        assert synteny_blocks(triplets_from_tuples([])) == []

    def test_single_anchor(self):
        blocks = synteny_blocks(triplets_from_tuples([(10, 20, 5)]))
        assert len(blocks) == 1
        b = blocks[0]
        assert (b.r_start, b.r_end, b.q_start, b.q_end) == (10, 15, 20, 25)
        assert b.n_anchors == 1 and b.anchored_bases == 5

    def test_near_diagonal_anchors_merge(self):
        # same diagonal, small gap
        blocks = synteny_blocks(
            triplets_from_tuples([(0, 0, 10), (30, 30, 10)]), max_gap=50
        )
        assert len(blocks) == 1
        assert blocks[0].n_anchors == 2

    def test_far_query_gap_splits(self):
        blocks = synteny_blocks(
            triplets_from_tuples([(0, 0, 10), (5000, 5000, 10)]), max_gap=100
        )
        assert len(blocks) == 2

    def test_diagonal_drift_tolerated(self):
        # a 20-base indel between two anchors of one conserved segment
        blocks = synteny_blocks(
            triplets_from_tuples([(0, 0, 30), (50, 70, 30)]),
            max_gap=100, max_diagonal_drift=25,
        )
        assert len(blocks) == 1

    def test_diagonal_jump_splits(self):
        # same query region, wildly different reference locus (a repeat hit)
        blocks = synteny_blocks(
            triplets_from_tuples([(0, 0, 30), (9000, 10, 30)]),
            max_gap=100, max_diagonal_drift=100,
        )
        assert len(blocks) == 2

    def test_transitive_clustering(self):
        # chain A-B-C where A and C are only connected through B
        blocks = synteny_blocks(
            triplets_from_tuples([(0, 0, 10), (60, 60, 10), (120, 120, 10)]),
            max_gap=60,
        )
        assert len(blocks) == 1
        assert blocks[0].n_anchors == 3

    def test_filters(self):
        trips = triplets_from_tuples([(0, 0, 5), (900, 5000, 50)])
        blocks = synteny_blocks(trips, min_bases=20)
        assert len(blocks) == 1 and blocks[0].anchored_bases == 50
        blocks = synteny_blocks(trips, min_anchors=2)
        assert blocks == []

    def test_sorted_by_query(self):
        trips = triplets_from_tuples([(0, 9000, 10), (5000, 0, 10)])
        blocks = synteny_blocks(trips, max_gap=10)
        assert blocks[0].q_start < blocks[1].q_start

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            synteny_blocks(triplets_from_tuples([(0, 0, 1)]), max_gap=-1)
        with pytest.raises(TypeError):
            synteny_blocks([1, 2, 3])

    def test_planted_rearrangement_recovered(self):
        """Query = two reference segments glued in swapped order: two blocks
        with the right diagonals."""
        R = repro.random_dna(6000, seed=3)
        Q = np.concatenate([R[3000:4500], R[500:2000]])
        mems = repro.find_mems(R, Q, min_length=25, seed_length=8)
        blocks = synteny_blocks(mems.array, max_gap=300, min_bases=500)
        assert len(blocks) == 2
        # first block (query start 0) copies R[3000:], diagonal ~ +3000;
        # second (query start 1500) copies R[500:], diagonal ~ -1000
        assert abs(blocks[0].diagonal - 3000) < 50
        assert abs(blocks[1].diagonal - (-1000)) < 50
        # density of pure copies is ~1
        assert all(b.density > 0.9 for b in blocks)


class TestBlockCoverage:
    def test_empty(self):
        assert block_coverage([], 100) == 0.0

    def test_full_cover(self):
        b = SyntenyBlock(0, 10, 0, 100, 1, 100)
        assert block_coverage([b], 100) == 1.0

    def test_partial(self):
        b = SyntenyBlock(0, 10, 25, 75, 1, 50)
        assert block_coverage([b], 100) == pytest.approx(0.5)

    def test_overlapping_blocks_not_double_counted(self):
        blocks = [SyntenyBlock(0, 1, 0, 60, 1, 60),
                  SyntenyBlock(0, 1, 40, 100, 1, 60)]
        assert block_coverage(blocks, 100) == 1.0
