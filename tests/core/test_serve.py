"""MemServer: admission control, burst shedding, graceful drain, tiers."""

import pickle
import threading

import numpy as np
import pytest

from repro.core import GpuMemParams, MemServer, MemSession, brute_force_mems
from repro.core.serve import SERVE_TIERS, ServeResult
from repro.errors import (
    InvalidParameterError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.types import mems_equal

SMALL = dict(seed_length=3, threads_per_block=4, blocks_per_tile=2)
L = 5


def params(**kw):
    base = dict(min_length=L, **SMALL)
    base.update(kw)
    return GpuMemParams(**base)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    ref = rng.integers(0, 4, 600).astype(np.uint8)
    qry = np.concatenate([ref[50:200], rng.integers(0, 4, 80).astype(np.uint8)])
    return ref, qry


class TestThreadTier:
    def test_round_trip(self, data):
        ref, qry = data
        with MemServer(ref, params(), workers=2, admission_limit=32) as server:
            futures = [server.submit(qry, label=f"q{i}") for i in range(6)]
            for i, future in enumerate(futures):
                res = future.result(timeout=60)
                assert isinstance(res, ServeResult)
                assert res.ok and res.error is None
                assert res.label == f"q{i}"
                assert mems_equal(res.value.array, brute_force_mems(ref, qry, L))
                assert res.seconds >= 0.0

    def test_request_sync_helper(self, data):
        ref, qry = data
        with MemServer(ref, params(), workers=1) as server:
            res = server.request(qry, timeout=60)
            assert res.ok and len(res.value) > 0

    def test_error_isolated_in_result(self, data):
        ref, qry = data
        with MemServer(ref, params(), workers=1) as server:
            bad = server.request(np.full(30, 9, dtype=np.uint8), timeout=60)
            assert not bad.ok and bad.value is None
            assert isinstance(bad.error, Exception)
            # the server survives: next request succeeds
            assert server.request(qry, timeout=60).ok

    def test_existing_session_binding(self, data):
        ref, qry = data
        session = MemSession(ref, params())
        session.warm()
        with MemServer(session, workers=2) as server:
            res = server.request(qry, timeout=60)
            assert res.ok
            assert res.value.stats.index_cache_misses == 0

    def test_invalid_tier(self, data):
        ref, _ = data
        assert "thread" in SERVE_TIERS and "process" in SERVE_TIERS
        with pytest.raises(InvalidParameterError):
            MemServer(ref, params(), tier="fiber")


class TestAdmissionControl:
    def _gated_server(self, data, **kw):
        """A server whose find_mems blocks until the returned event is set."""
        ref, _ = data
        gate = threading.Event()
        server = MemServer(ref, params(), **kw)
        real = server.session.find_mems

        def gated(query):
            gate.wait(timeout=60)
            return real(query)

        server.session.find_mems = gated
        return server, gate

    def test_burst_sheds_structured_above_limit(self, data):
        _, qry = data
        server, gate = self._gated_server(
            data, workers=1, max_in_flight=1, admission_limit=2
        )
        try:
            # keep submitting until the admission queue overflows; with the
            # executor gated shut this takes at most 1 (in flight) +
            # 2 (queued) + 1 (shed) submissions, timing-independent
            admitted = []
            with pytest.raises(ServerOverloadedError) as info:
                for _ in range(50):
                    admitted.append(server.submit(qry))
            assert 2 <= len(admitted) <= 3
            assert info.value.admission_limit == 2
            assert info.value.queue_depth >= 2
            assert server.stats()["shed"] >= 1
        finally:
            gate.set()
            final = server.close()
        # every admitted request still completed correctly
        for future in admitted:
            assert future.result(timeout=60).ok
        assert final["completed"] >= len(admitted)

    def test_shed_error_pickles(self):
        exc = pickle.loads(pickle.dumps(ServerOverloadedError(5, 4)))
        assert (exc.queue_depth, exc.admission_limit) == (5, 4)

    def test_drain_completes_queued_work(self, data):
        _, qry = data
        server, gate = self._gated_server(
            data, workers=1, max_in_flight=1, admission_limit=8
        )
        futures = [server.submit(qry) for _ in range(4)]
        gate.set()
        final = server.close(drain=True)
        assert all(f.result(timeout=1).ok for f in futures)
        assert final["completed"] == 4
        assert final["cancelled"] == 0
        assert final["drain_seconds"] >= 0.0

    def test_close_without_drain_cancels_queued(self, data):
        _, qry = data
        server, gate = self._gated_server(
            data, workers=1, max_in_flight=1, admission_limit=8
        )
        futures = [server.submit(qry) for _ in range(4)]
        gate.set()
        final = server.close(drain=False)
        results = [f.result(timeout=60) for f in futures]
        cancelled = [r for r in results if isinstance(r.error, ServerClosedError)]
        completed = [r for r in results if r.ok]
        assert len(cancelled) + len(completed) == 4
        assert final["cancelled"] == len(cancelled)

    def test_submit_after_close_raises(self, data):
        ref, qry = data
        server = MemServer(ref, params(), workers=1)
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit(qry)

    def test_close_idempotent(self, data):
        ref, _ = data
        server = MemServer(ref, params(), workers=1)
        server.close()
        server.close()

    def test_defaults(self, data):
        ref, _ = data
        server = MemServer(ref, params(), workers=3)
        try:
            assert server.max_in_flight == 3
            assert server.admission_limit == 6
        finally:
            server.close()


class TestProcessTier:
    def test_round_trip_and_warm_stats(self, data):
        ref, qry = data
        with MemServer(ref, params(), tier="process", workers=2) as server:
            res = server.request(qry, timeout=120)
            assert res.ok, res.error
            assert mems_equal(res.value.array, brute_force_mems(ref, qry, L))
            # the serve tier pre-warms worker sessions
            assert res.value.stats.index_cache_misses == 0

    def test_error_isolated_across_boundary(self, data):
        ref, qry = data
        with MemServer(ref, params(), tier="process", workers=2) as server:
            bad = server.request(np.full(30, 9, dtype=np.uint8), timeout=120)
            assert not bad.ok
            assert isinstance(bad.error, Exception)
            assert server.request(qry, timeout=120).ok


class TestMetrics:
    def test_serve_metrics_recorded(self, data):
        from repro.obs import Tracer

        ref, qry = data
        tracer = Tracer()
        with MemServer(ref, params(), workers=1, tracer=tracer) as server:
            assert server.request(qry, timeout=60).ok
        formatted = tracer.metrics.format()
        assert "serve.requests" in formatted
        assert "serve.request_seconds" in formatted
        names = {s.name for s in tracer.spans}
        assert "serve.request" in names
