"""MemServer: admission control, burst shedding, graceful drain, tiers."""

import json
import pickle
import threading
import time

import numpy as np
import pytest

from repro.core import GpuMemParams, MemServer, MemSession, brute_force_mems
from repro.core.serve import SERVE_TIERS, ServeResult
from repro.errors import (
    InvalidParameterError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.types import mems_equal

SMALL = dict(seed_length=3, threads_per_block=4, blocks_per_tile=2)
L = 5


def params(**kw):
    base = dict(min_length=L, **SMALL)
    base.update(kw)
    return GpuMemParams(**base)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    ref = rng.integers(0, 4, 600).astype(np.uint8)
    qry = np.concatenate([ref[50:200], rng.integers(0, 4, 80).astype(np.uint8)])
    return ref, qry


class TestThreadTier:
    def test_round_trip(self, data):
        ref, qry = data
        with MemServer(ref, params(), workers=2, admission_limit=32) as server:
            futures = [server.submit(qry, label=f"q{i}") for i in range(6)]
            for i, future in enumerate(futures):
                res = future.result(timeout=60)
                assert isinstance(res, ServeResult)
                assert res.ok and res.error is None
                assert res.label == f"q{i}"
                assert mems_equal(res.value.array, brute_force_mems(ref, qry, L))
                assert res.seconds >= 0.0

    def test_request_sync_helper(self, data):
        ref, qry = data
        with MemServer(ref, params(), workers=1) as server:
            res = server.request(qry, timeout=60)
            assert res.ok and len(res.value) > 0

    def test_error_isolated_in_result(self, data):
        ref, qry = data
        with MemServer(ref, params(), workers=1) as server:
            bad = server.request(np.full(30, 9, dtype=np.uint8), timeout=60)
            assert not bad.ok and bad.value is None
            assert isinstance(bad.error, Exception)
            # the server survives: next request succeeds
            assert server.request(qry, timeout=60).ok

    def test_existing_session_binding(self, data):
        ref, qry = data
        session = MemSession(ref, params())
        session.warm()
        with MemServer(session, workers=2) as server:
            res = server.request(qry, timeout=60)
            assert res.ok
            assert res.value.stats.index_cache_misses == 0

    def test_invalid_tier(self, data):
        ref, _ = data
        assert "thread" in SERVE_TIERS and "process" in SERVE_TIERS
        with pytest.raises(InvalidParameterError):
            MemServer(ref, params(), tier="fiber")


class TestAdmissionControl:
    def _gated_server(self, data, **kw):
        """A server whose find_mems blocks until the returned event is set."""
        ref, _ = data
        gate = threading.Event()
        server = MemServer(ref, params(), **kw)
        real = server.session.find_mems

        def gated(query):
            gate.wait(timeout=60)
            return real(query)

        server.session.find_mems = gated
        return server, gate

    def test_burst_sheds_structured_above_limit(self, data):
        _, qry = data
        server, gate = self._gated_server(
            data, workers=1, max_in_flight=1, admission_limit=2
        )
        try:
            # keep submitting until the admission queue overflows; with the
            # executor gated shut this takes at most 1 (in flight) +
            # 2 (queued) + 1 (shed) submissions, timing-independent
            admitted = []
            with pytest.raises(ServerOverloadedError) as info:
                for _ in range(50):
                    admitted.append(server.submit(qry))
            assert 2 <= len(admitted) <= 3
            assert info.value.admission_limit == 2
            assert info.value.queue_depth >= 2
            assert server.stats()["shed"] >= 1
        finally:
            gate.set()
            final = server.close()
        # every admitted request still completed correctly
        for future in admitted:
            assert future.result(timeout=60).ok
        assert final["completed"] >= len(admitted)

    def test_shed_error_pickles(self):
        exc = pickle.loads(pickle.dumps(ServerOverloadedError(5, 4)))
        assert (exc.queue_depth, exc.admission_limit) == (5, 4)

    def test_drain_completes_queued_work(self, data):
        _, qry = data
        server, gate = self._gated_server(
            data, workers=1, max_in_flight=1, admission_limit=8
        )
        futures = [server.submit(qry) for _ in range(4)]
        gate.set()
        final = server.close(drain=True)
        assert all(f.result(timeout=1).ok for f in futures)
        assert final["completed"] == 4
        assert final["cancelled"] == 0
        assert final["drain_seconds"] >= 0.0

    def test_close_without_drain_cancels_queued(self, data):
        _, qry = data
        server, gate = self._gated_server(
            data, workers=1, max_in_flight=1, admission_limit=8
        )
        futures = [server.submit(qry) for _ in range(4)]
        gate.set()
        final = server.close(drain=False)
        results = [f.result(timeout=60) for f in futures]
        cancelled = [r for r in results if isinstance(r.error, ServerClosedError)]
        completed = [r for r in results if r.ok]
        assert len(cancelled) + len(completed) == 4
        assert final["cancelled"] == len(cancelled)

    def test_submit_after_close_raises(self, data):
        ref, qry = data
        server = MemServer(ref, params(), workers=1)
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit(qry)

    def test_close_idempotent(self, data):
        ref, _ = data
        server = MemServer(ref, params(), workers=1)
        server.close()
        server.close()

    def test_defaults(self, data):
        ref, _ = data
        server = MemServer(ref, params(), workers=3)
        try:
            assert server.max_in_flight == 3
            assert server.admission_limit == 6
        finally:
            server.close()


class TestProcessTier:
    def test_round_trip_and_warm_stats(self, data):
        ref, qry = data
        with MemServer(ref, params(), tier="process", workers=2) as server:
            res = server.request(qry, timeout=120)
            assert res.ok, res.error
            assert mems_equal(res.value.array, brute_force_mems(ref, qry, L))
            # the serve tier pre-warms worker sessions
            assert res.value.stats.index_cache_misses == 0

    def test_error_isolated_across_boundary(self, data):
        ref, qry = data
        with MemServer(ref, params(), tier="process", workers=2) as server:
            bad = server.request(np.full(30, 9, dtype=np.uint8), timeout=120)
            assert not bad.ok
            assert isinstance(bad.error, Exception)
            assert server.request(qry, timeout=120).ok


class TestMetrics:
    def test_serve_metrics_recorded(self, data):
        from repro.obs import Tracer

        ref, qry = data
        tracer = Tracer()
        with MemServer(ref, params(), workers=1, tracer=tracer) as server:
            assert server.request(qry, timeout=60).ok
        formatted = tracer.metrics.format()
        assert "serve.requests" in formatted
        assert "serve.request_seconds" in formatted
        names = {s.name for s in tracer.spans}
        assert "serve.request" in names


class TestServeCounters:
    """The serve.* metric taxonomy through a full burst-shed-drain cycle."""

    def test_counters_through_burst_shed_drain(self, data):
        from repro.obs import Tracer

        ref, qry = data
        tracer = Tracer()
        gate = threading.Event()
        server = MemServer(
            ref, params(), workers=1, max_in_flight=1, admission_limit=2,
            tracer=tracer,
        )
        real = server.session.find_mems

        def gated(query):
            gate.wait(timeout=60)
            return real(query)

        server.session.find_mems = gated
        admitted = []
        try:
            with pytest.raises(ServerOverloadedError):
                for _ in range(50):
                    admitted.append(server.submit(qry))
        finally:
            gate.set()
            server.close()
        for future in admitted:
            assert future.result(timeout=60).ok

        metrics = tracer.metrics.to_dict()
        n_admitted = metrics["serve.requests{outcome=admitted}"]["value"]
        assert n_admitted == len(admitted)
        assert metrics["serve.requests{outcome=shed}"]["value"] >= 1
        assert metrics["serve.requests{outcome=ok}"]["value"] == len(admitted)
        assert "serve.requests{outcome=error}" not in metrics
        # drain resets the depth gauge; latency histograms saw every request
        assert metrics["serve.queue_depth"]["value"] == 0
        assert metrics["serve.request_seconds"]["count"] == len(admitted)
        assert metrics["serve.queue_wait_seconds"]["count"] == len(admitted)
        assert metrics["serve.drain_seconds"]["count"] == 1

    def test_error_outcome_counted(self, data):
        from repro.obs import Tracer

        ref, _ = data
        tracer = Tracer()
        with MemServer(ref, params(), workers=1, tracer=tracer) as server:
            bad = server.request(np.full(30, 9, dtype=np.uint8), timeout=60)
            assert not bad.ok
        metrics = tracer.metrics.to_dict()
        assert metrics["serve.requests{outcome=error}"]["value"] == 1
        assert "serve.requests{outcome=ok}" not in metrics

    def test_cancelled_outcome_counted(self, data):
        from repro.obs import Tracer

        ref, qry = data
        tracer = Tracer()
        gate = threading.Event()
        server = MemServer(
            ref, params(), workers=1, max_in_flight=1, admission_limit=8,
            tracer=tracer,
        )
        real = server.session.find_mems
        server.session.find_mems = lambda q: (gate.wait(60), real(q))[1]
        futures = [server.submit(qry) for _ in range(4)]
        gate.set()
        server.close(drain=False)
        results = [f.result(timeout=60) for f in futures]
        n_cancelled = sum(
            isinstance(r.error, ServerClosedError) for r in results
        )
        metrics = tracer.metrics.to_dict()
        counted = metrics.get("serve.requests{outcome=cancelled}", {})
        assert counted.get("value", 0) == n_cancelled


class TestTelemetry:
    def test_interval_validated(self, data):
        ref, _ = data
        with pytest.raises(InvalidParameterError):
            MemServer(ref, params(), workers=1, telemetry_interval=0)

    def test_snapshot_keys(self, data):
        from repro.obs import Tracer

        ref, qry = data
        with MemServer(ref, params(), workers=1, tracer=Tracer()) as server:
            assert server.request(qry, timeout=60).ok
            snap = server.snapshot()
        assert snap["tier"] == "thread"
        assert snap["ts"] > 0
        assert snap["completed"] == 1
        latency = snap["latency"]
        assert latency["count"] == 1
        assert latency["p50"] is not None
        json.dumps(snap)  # the heartbeat line must be JSON-clean

    def test_snapshot_without_metrics_has_no_latency(self, data):
        ref, qry = data
        with MemServer(ref, params(), workers=1) as server:
            assert server.request(qry, timeout=60).ok
            snap = server.snapshot()
        assert "latency" not in snap

    def test_heartbeats_appended_and_final_snapshot(self, data, tmp_path):
        ref, qry = data
        stats_file = tmp_path / "stats.jsonl"
        with MemServer(
            ref, params(), workers=1,
            telemetry_path=stats_file, telemetry_interval=0.05,
        ) as server:
            assert server.request(qry, timeout=60).ok
            time.sleep(0.2)  # let a few heartbeats land
        lines = stats_file.read_text().strip().splitlines()
        assert len(lines) >= 2  # periodic beats plus the close() snapshot
        snaps = [json.loads(line) for line in lines]
        assert all(s["tier"] == "thread" for s in snaps)
        # the final heartbeat shows the drained end state
        assert snaps[-1]["completed"] == 1
        assert snaps[-1]["in_flight"] == 0
        assert snaps[-1]["queue_depth"] == 0
        # timestamps advance monotonically
        ts = [s["ts"] for s in snaps]
        assert ts == sorted(ts)

    def test_no_telemetry_thread_without_path(self, data):
        ref, _ = data
        server = MemServer(ref, params(), workers=1)
        try:
            assert server._telemetry is None
        finally:
            server.close()


class TestProcessTierObs:
    def test_worker_obs_merged_into_parent(self, data):
        import os

        from repro.obs import Tracer, validate_chrome_trace

        ref, qry = data
        tracer = Tracer()
        with MemServer(
            ref, params(), tier="process", workers=2, tracer=tracer
        ) as server:
            for _ in range(3):
                assert server.request(qry, timeout=120).ok
        metrics = tracer.metrics.to_dict()
        # worker-side series aggregated in the parent registry
        assert metrics["proc.obs.payloads"]["value"] >= 3
        assert metrics["proc.obs.spans"]["value"] >= 3
        assert metrics["session.cache.queries"]["value"] == 3
        # worker spans landed as pid-tagged foreign events
        worker_pids = {ev["pid"] for ev in tracer.foreign_events}
        assert worker_pids and os.getpid() not in worker_pids
        doc = tracer.to_chrome_trace()
        assert validate_chrome_trace(doc) == []

    def test_no_foreign_events_without_tracer(self, data):
        from repro.obs import NULL_TRACER

        ref, qry = data
        before = len(NULL_TRACER.foreign_events)
        with MemServer(ref, params(), tier="process", workers=1) as server:
            assert server.request(qry, timeout=120).ok
        # uninstrumented serving ships nothing across the boundary
        assert len(NULL_TRACER.foreign_events) == before == 0
