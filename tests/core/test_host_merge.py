"""Tests for repro.core.host_merge."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.combine import chain_merge_expected
from repro.core.host_merge import combine_diagonal, finalize_mems, host_merge
from repro.types import triplets_from_tuples


class TestCombineDiagonal:
    def test_empty(self):
        assert combine_diagonal(triplets_from_tuples([])).size == 0

    def test_single(self):
        t = triplets_from_tuples([(3, 1, 5)])
        out = combine_diagonal(t)
        assert [tuple(map(int, m)) for m in out] == [(3, 1, 5)]

    def test_overlap_merges(self):
        t = triplets_from_tuples([(0, 0, 5), (3, 3, 5)])
        out = combine_diagonal(t)
        assert [tuple(map(int, m)) for m in out] == [(0, 0, 8)]

    def test_touching_merges(self):
        t = triplets_from_tuples([(0, 0, 3), (3, 3, 3)])
        out = combine_diagonal(t)
        assert [tuple(map(int, m)) for m in out] == [(0, 0, 6)]

    def test_gap_stays_split(self):
        t = triplets_from_tuples([(0, 0, 2), (4, 4, 2)])
        out = combine_diagonal(t)
        assert out.size == 2

    def test_different_diagonals_never_merge(self):
        t = triplets_from_tuples([(0, 0, 10), (5, 4, 10)])
        assert combine_diagonal(t).size == 2

    def test_contained_interval(self):
        t = triplets_from_tuples([(0, 0, 10), (2, 2, 3)])
        out = combine_diagonal(t)
        assert [tuple(map(int, m)) for m in out] == [(0, 0, 10)]

    def test_chain_through_middle(self):
        t = triplets_from_tuples([(0, 0, 4), (4, 4, 4), (8, 8, 4)])
        out = combine_diagonal(t)
        assert [tuple(map(int, m)) for m in out] == [(0, 0, 12)]

    @settings(max_examples=80)
    @given(st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30), st.integers(1, 10)),
        max_size=15,
    ))
    def test_matches_transitive_closure(self, trips):
        arr = triplets_from_tuples([(q + d, q, l) for d, q, l in trips])
        got = {tuple(map(int, m)) for m in combine_diagonal(arr)}
        assert got == chain_merge_expected(
            [(q + d, q, l) for d, q, l in trips]
        )

    def test_group_stride_product_overflow(self):
        """Regression: ``group * stride`` silently wrapped int64.

        With far-apart query offsets the per-group stride is ~2^61; at five
        or more diagonal groups the keyed offsets exceed 2^63 - 1, NumPy
        wraps, and the segmented cummax leaks across diagonals — merging
        triplets that belong to different chains. Constructed so the old
        arithmetic is tripped: a contained interval late in a wrapped group
        would be mis-detected as a new chain (or vice versa).
        """
        far = 2**61
        trips = []
        # Six diagonal groups; each has an overlapping pair that must merge
        # and a separated triplet that must not.
        for g in range(6):
            base_q = 10 + g if g < 3 else far + g  # spread makes stride huge
            diag = g * 7
            trips += [
                (base_q + diag, base_q, 20),
                (base_q + diag + 10, base_q + 10, 20),  # overlaps → merges
                (base_q + diag + 100, base_q + 100, 5),  # gap → separate
            ]
        arr = triplets_from_tuples(trips)
        # Exact Python-int keyed offsets overflow int64 for this input —
        # the guard must route to the per-group fallback.
        stride = int(max(q + l for _, q, l in trips)) - 10 + 1
        assert 5 * stride > np.iinfo(np.int64).max
        got = {tuple(map(int, m)) for m in combine_diagonal(arr)}
        assert got == chain_merge_expected(trips)

    def test_large_but_safe_offsets_use_fast_path(self):
        trips = [(1_000_000 + 5, 1_000_000, 30),
                 (1_000_000 + 25, 1_000_000 + 20, 30),
                 (50, 10, 8)]
        got = {tuple(map(int, m)) for m in combine_diagonal(
            triplets_from_tuples(trips)
        )}
        assert got == chain_merge_expected(trips)


class TestFinalize:
    def test_re_extension_restores_maximality(self):
        # fragment (2,2,2) of the full match (0,0,6) in identical sequences
        R = np.arange(6, dtype=np.uint8) % 4
        Q = R.copy()
        frag = triplets_from_tuples([(2, 2, 2)])
        out = finalize_mems(R, Q, frag, 3)
        assert [tuple(map(int, m)) for m in out] == [(0, 0, 6)]

    def test_length_filter_after_extension(self):
        R = np.array([0, 1, 2, 3], dtype=np.uint8)
        Q = np.array([1, 2, 0, 0], dtype=np.uint8)  # match "12" at (1,0)
        frag = triplets_from_tuples([(1, 0, 1)])
        assert finalize_mems(R, Q, frag, 3).size == 0
        assert finalize_mems(R, Q, frag, 2).size == 1

    def test_duplicates_collapse(self):
        R = np.zeros(5, dtype=np.uint8)
        Q = np.zeros(5, dtype=np.uint8)
        frags = triplets_from_tuples([(1, 1, 2), (2, 2, 2)])
        out = finalize_mems(R, Q, frags, 1)
        assert [tuple(map(int, m)) for m in out] == [(0, 0, 5)]

    def test_empty(self):
        R = np.zeros(3, dtype=np.uint8)
        assert finalize_mems(R, R, triplets_from_tuples([]), 1).size == 0


class TestHostMerge:
    def test_fragments_of_one_mem_reassemble(self):
        """The DESIGN.md §5 note 2 scenario: a missing middle fragment is
        recovered by re-extension."""
        R = np.arange(12, dtype=np.uint8) % 4
        Q = R.copy()
        # fragments from two tiles, middle tile's fragment missing
        frags = triplets_from_tuples([(0, 0, 3), (9, 9, 3)])
        out = host_merge(R, Q, frags, 5)
        assert [tuple(map(int, m)) for m in out] == [(0, 0, 12)]

    def test_distinct_mems_stay_distinct(self):
        R = np.array([0, 1, 2, 3, 3, 2, 1, 0], dtype=np.uint8)
        Q = np.array([0, 1, 2, 0, 0, 2, 1, 0], dtype=np.uint8)
        frags = triplets_from_tuples([(0, 0, 3), (5, 5, 3)])
        out = host_merge(R, Q, frags, 2)
        assert {tuple(map(int, m)) for m in out} == {(0, 0, 3), (5, 5, 3)}
