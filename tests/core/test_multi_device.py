"""Tests for multi-device (row-banded) extraction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core.multi_device import find_mems_multi_device, partition_rows
from repro.core.params import GpuMemParams
from repro.core.reference import brute_force_mems
from repro.errors import InvalidParameterError
from repro.types import mems_equal

from tests.conftest import dna_pair


class TestPartitionRows:
    def test_covers_all_rows(self):
        bands = partition_rows(10, 3)
        assert sum(bands, []) == list(range(10))

    def test_near_equal(self):
        sizes = [len(b) for b in partition_rows(10, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_devices_than_rows(self):
        bands = partition_rows(2, 5)
        assert sum(bands, []) == [0, 1]
        assert len(bands) == 5  # some bands empty

    def test_bad_count(self):
        with pytest.raises(InvalidParameterError):
            partition_rows(4, 0)


class TestMultiDeviceCorrectness:
    @settings(max_examples=15, deadline=None)
    @given(dna_pair(max_size=150), st.integers(1, 4))
    def test_equals_brute_force(self, pair, n_devices):
        R, Q = pair
        L = 5
        p = GpuMemParams(min_length=L, seed_length=3,
                         threads_per_block=4, blocks_per_tile=2)
        mems, stats = find_mems_multi_device(R, Q, p, n_devices=n_devices)
        assert mems_equal(mems.array, brute_force_mems(R, Q, L))
        assert stats["n_devices"] == n_devices

    def test_mem_crossing_band_boundary(self):
        # identical sequences: one huge MEM crossing every band
        R = (np.arange(400) % 4).astype(np.uint8)
        Q = R.copy()
        p = GpuMemParams(min_length=10, seed_length=4,
                         threads_per_block=4, blocks_per_tile=2)
        mems, stats = find_mems_multi_device(R, Q, p, n_devices=3)
        assert (0, 0, 400) in set(mems.as_tuples())
        assert stats["n_cross_band_fragments"] > 0

    def test_single_device_equals_standard_matcher(self):
        rng = np.random.default_rng(0)
        R = rng.integers(0, 3, 300).astype(np.uint8)
        Q = rng.integers(0, 3, 300).astype(np.uint8)
        p = GpuMemParams(min_length=6, seed_length=3,
                         threads_per_block=8, blocks_per_tile=2)
        multi, _ = find_mems_multi_device(R, Q, p, n_devices=1)
        single = repro.GpuMem(p).find_mems(R, Q)
        assert multi == single


class TestMultiDeviceTiming:
    def test_stats_structure(self):
        rng = np.random.default_rng(1)
        R = rng.integers(0, 4, 500).astype(np.uint8)
        Q = rng.integers(0, 4, 500).astype(np.uint8)
        p = GpuMemParams(min_length=8, seed_length=4,
                         threads_per_block=8, blocks_per_tile=2)
        _, stats = find_mems_multi_device(R, Q, p, n_devices=3)
        assert len(stats["device_seconds"]) == 3
        assert stats["parallel_seconds"] <= stats["serial_seconds"] + 1e-9
        assert sum(stats["rows_per_device"]) == stats["n_rows"]
