"""Tests for repro.core.distance (MEM-coverage genomic distance)."""

import numpy as np
import pytest

from repro.core.distance import distance_matrix, mem_coverage, mem_distance
from repro.errors import InvalidParameterError
from repro.sequence.synthetic import markov_dna, mutate


@pytest.fixture(scope="module")
def reference():
    return markov_dna(30_000, seed=41)


class TestMemCoverage:
    def test_identical_full_coverage(self, reference):
        assert mem_coverage(reference, reference.copy(), min_length=30) == 1.0

    def test_unrelated_near_zero(self, reference):
        import repro

        other = repro.random_dna(10_000, seed=5)
        assert mem_coverage(reference, other, min_length=30) < 0.02

    def test_empty_query(self, reference):
        assert mem_coverage(reference, np.empty(0, np.uint8)) == 0.0

    def test_monotone_in_divergence(self, reference):
        covs = [
            mem_coverage(reference, mutate(reference, rate=d, seed=50 + i),
                         min_length=30)
            for i, d in enumerate((0.005, 0.02, 0.08))
        ]
        assert covs[0] > covs[1] > covs[2]

    def test_monotone_in_min_length(self, reference):
        q = mutate(reference, rate=0.02, seed=60)
        c30 = mem_coverage(reference, q, min_length=30)
        c80 = mem_coverage(reference, q, min_length=80)
        assert c80 <= c30


class TestMemDistance:
    def test_self_distance_zero(self, reference):
        assert mem_distance(reference, reference.copy()) == pytest.approx(0.0)

    def test_symmetric_by_default(self, reference):
        q = mutate(reference, rate=0.03, indel_rate=0.002, seed=70)
        assert mem_distance(reference, q) == pytest.approx(mem_distance(q, reference))

    def test_asymmetric_option(self, reference):
        # query = half the reference: coverage asymmetry shows
        q = reference[: reference.size // 2]
        d_q = mem_distance(reference, q, symmetric=False)
        d_r = mem_distance(q, reference, symmetric=False)
        assert d_q < 0.05  # the half is fully covered
        assert d_r > 0.4  # the missing half is not


class TestDistanceMatrix:
    def test_matrix_properties(self, reference):
        seqs = [
            reference[:8000],
            mutate(reference[:8000], rate=0.01, seed=80),
            mutate(reference[:8000], rate=0.10, seed=81),
        ]
        m = distance_matrix(seqs, min_length=25)
        assert m.shape == (3, 3)
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 0.0)
        # closer mutant is closer in the matrix
        assert m[0, 1] < m[0, 2]

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            distance_matrix([])
