"""Tests for repro.core.chaining."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chaining import chain_anchors, chain_anchors_naive
from repro.types import triplets_from_tuples

anchors_strategy = st.lists(
    st.tuples(st.integers(0, 60), st.integers(0, 60), st.integers(1, 8)),
    max_size=25,
).map(lambda xs: triplets_from_tuples(sorted(set(xs))))


class TestChainAnchors:
    def test_empty(self):
        chain = chain_anchors(triplets_from_tuples([]))
        assert len(chain) == 0 and chain.score == 0

    def test_single(self):
        chain = chain_anchors(triplets_from_tuples([(5, 7, 3)]))
        assert chain.anchors == ((5, 7, 3),)
        assert chain.score == 3

    def test_simple_collinear(self):
        chain = chain_anchors(triplets_from_tuples([(0, 0, 2), (5, 5, 3)]))
        assert chain.anchors == ((0, 0, 2), (5, 5, 3))
        assert chain.score == 5

    def test_crossing_anchors_exclude_each_other(self):
        # (0,10,2) and (10,0,2) cannot be chained together
        chain = chain_anchors(triplets_from_tuples([(0, 10, 2), (10, 0, 5)]))
        assert chain.score == 5
        assert chain.anchors == ((10, 0, 5),)

    def test_overlap_forbidden_by_default(self):
        # second starts inside the first on the reference
        chain = chain_anchors(triplets_from_tuples([(0, 0, 10), (5, 20, 4)]))
        assert chain.anchors == ((0, 0, 10),)

    def test_overlap_mode_allows_start_order(self):
        chain = chain_anchors(
            triplets_from_tuples([(0, 0, 10), (5, 20, 4)]), overlap=True
        )
        assert chain.score == 14

    def test_weights_prefer_long_anchor(self):
        # one long anchor beats two short crossing ones
        chain = chain_anchors(
            triplets_from_tuples([(0, 50, 3), (10, 40, 3), (20, 0, 10)])
        )
        assert chain.score == 10

    def test_spans(self):
        chain = chain_anchors(triplets_from_tuples([(2, 3, 4), (10, 9, 5)]))
        assert chain.reference_span == (2, 15)
        assert chain.query_span == (3, 14)

    def test_accepts_matchset(self):
        from repro.types import MatchSet

        ms = MatchSet(triplets_from_tuples([(0, 0, 3)]))
        assert chain_anchors(ms).score == 3

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            chain_anchors(np.zeros(3))

    @settings(max_examples=80, deadline=None)
    @given(anchors_strategy, st.booleans())
    def test_matches_quadratic_dp_score(self, anchors, overlap):
        fast = chain_anchors(anchors, overlap=overlap)
        slow = chain_anchors_naive(anchors, overlap=overlap)
        assert fast.score == slow.score
        # and the fast chain is itself valid + has the claimed score
        total = 0
        prev = None
        for r, q, length in fast.anchors:
            total += length
            if prev is not None:
                pr, pq, pl = prev
                if overlap:
                    assert pr < r and pq < q
                else:
                    assert pr + pl <= r and pq + pl <= q
            prev = (r, q, length)
        assert total == fast.score

    def test_end_to_end_with_real_mems(self, homologous_pair):
        import repro

        R, Q = homologous_pair
        R, Q = R[:5000], Q[:5000]
        mems = repro.find_mems(R, Q, min_length=20, seed_length=8)
        chain = chain_anchors(mems)
        assert chain.score > 0
        assert len(chain) >= 1
        # chained bases can't exceed the query span
        assert chain.score <= Q.size
