"""Tests for repro.core.params (Table I symbols + Eq. 1)."""

import pytest

from repro.core.params import BACKENDS, GpuMemParams
from repro.errors import InvalidParameterError


class TestDefaults:
    def test_paper_default_step_is_eq1_max(self):
        p = GpuMemParams(min_length=50, seed_length=10)
        assert p.step == 41  # L - ℓs + 1

    def test_w_equals_step(self):
        # §III-B2: w = Δs is required for exactly-once extraction
        p = GpuMemParams(min_length=50, seed_length=10)
        assert p.work_per_thread == p.step

    def test_derived_sizes(self):
        p = GpuMemParams(min_length=50, seed_length=10,
                         threads_per_block=128, blocks_per_tile=64)
        assert p.block_width == 128 * 41
        assert p.tile_size == 64 * 128 * 41

    def test_locs_per_row_formula(self):
        # §III-A: n_locs = ceil(ℓtile / Δs)
        p = GpuMemParams(min_length=50, seed_length=10)
        assert p.locs_per_row() == -(-p.tile_size // p.step)

    def test_n_seed_values(self):
        assert GpuMemParams(min_length=20, seed_length=6).n_seed_values == 4**6


class TestValidation:
    def test_rejects_step_over_eq1(self):
        with pytest.raises(InvalidParameterError, match="Eq"):
            GpuMemParams(min_length=50, seed_length=10, step=42)

    def test_accepts_step_at_eq1(self):
        GpuMemParams(min_length=50, seed_length=10, step=41)

    def test_rejects_w_not_step(self):
        with pytest.raises(InvalidParameterError, match="w="):
            GpuMemParams(min_length=50, seed_length=10, work_per_thread=10)

    def test_rejects_seed_longer_than_L(self):
        with pytest.raises(InvalidParameterError):
            GpuMemParams(min_length=8, seed_length=10)

    def test_rejects_non_power_of_two_tau(self):
        with pytest.raises(InvalidParameterError):
            GpuMemParams(min_length=20, threads_per_block=96)

    def test_rejects_tau_one(self):
        with pytest.raises(InvalidParameterError):
            GpuMemParams(min_length=20, threads_per_block=1)

    def test_rejects_bad_min_length(self):
        with pytest.raises(InvalidParameterError):
            GpuMemParams(min_length=0)

    def test_rejects_huge_seed(self):
        with pytest.raises(InvalidParameterError):
            GpuMemParams(min_length=100, seed_length=14)

    def test_rejects_bad_backend(self):
        with pytest.raises(InvalidParameterError):
            GpuMemParams(min_length=20, backend="cuda")

    def test_backends_list(self):
        assert set(BACKENDS) == {"vectorized", "simulated"}

    def test_rejects_zero_blocks(self):
        with pytest.raises(InvalidParameterError):
            GpuMemParams(min_length=20, blocks_per_tile=0)


class TestWith:
    def test_with_revalidates(self):
        p = GpuMemParams(min_length=50, seed_length=10)
        with pytest.raises(InvalidParameterError):
            p.with_(min_length=5)

    def test_with_rederives_step(self):
        p = GpuMemParams(min_length=50, seed_length=10)
        # explicit None re-derives the Eq. 1 maximum for the new L
        q = p.with_(min_length=30, step=None, work_per_thread=None)
        assert q.step == 21

    def test_immutable(self):
        p = GpuMemParams(min_length=50)
        with pytest.raises(AttributeError):  # dataclasses.FrozenInstanceError
            p.min_length = 10

    def test_describe_mentions_symbols(self):
        text = GpuMemParams(min_length=50, seed_length=10).describe()
        for sym in ("L=50", "ℓs=10", "Δs=41", "τ="):
            assert sym in text
