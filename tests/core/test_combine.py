"""Tests for repro.core.combine (Algorithm 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.combine import (
    active_pairs,
    chain_merge_expected,
    combine_distances,
    combine_reference,
    is_active,
    log2_int,
    try_merge,
)
from repro.errors import InvalidParameterError


class TestSchedule:
    def test_distances_16(self):
        # Fig. 3: 16 threads -> 7 iterations with d = 1,2,4,8,4,2,1
        assert combine_distances(16) == [1, 2, 4, 8, 4, 2, 1]

    def test_distances_2(self):
        assert combine_distances(2) == [1]

    def test_distances_1(self):
        assert combine_distances(1) == []

    def test_iteration_count_formula(self):
        # 2*log2(tau) - 1 iterations (paper §III-B3)
        for tau in (2, 4, 8, 16, 32, 64):
            k = log2_int(tau)
            assert len(combine_distances(tau)) == 2 * k - 1

    def test_log2_validation(self):
        with pytest.raises(InvalidParameterError):
            log2_int(3)
        with pytest.raises(InvalidParameterError):
            log2_int(0)

    def test_active_up_phase(self):
        # iteration 0 (d=1): seeds with rank % 2 == 0 are active
        assert is_active(0, 0, 8) and is_active(2, 0, 8)
        assert not is_active(1, 0, 8)

    def test_active_down_phase(self):
        # paper: down-phase active iff i >= d and i % 2d == d
        tau = 16
        k = 4
        it = k  # first down iteration, d = 4
        assert is_active(4, it, tau) and is_active(12, it, tau)
        assert not is_active(0, it, tau) and not is_active(8, it, tau)

    def test_no_pair_reads_and_writes_same_iteration(self):
        """The conflict-freedom argument: within one iteration, the set of
        sources and the set of targets are disjoint."""
        for tau in (4, 8, 16, 32):
            for it in range(len(combine_distances(tau))):
                pairs = active_pairs(it, tau, tau)
                srcs = {s for s, _ in pairs}
                trgts = {t for _, t in pairs}
                assert not (srcs & trgts), (tau, it)


class TestTryMerge:
    def test_overlap_merges(self):
        assert try_merge([0, 0, 5], [3, 3, 5]) == [0, 0, 8]

    def test_touching_merges(self):
        # δ == λ is allowed (0 < δ <= λ)
        assert try_merge([0, 0, 3], [3, 3, 4]) == [0, 0, 7]

    def test_gap_does_not_merge(self):
        assert try_merge([0, 0, 2], [3, 3, 4]) is None

    def test_different_diagonal(self):
        assert try_merge([0, 0, 5], [3, 2, 5]) is None

    def test_zero_delta_does_not_merge(self):
        assert try_merge([0, 0, 5], [0, 0, 5]) is None

    def test_deleted_triplets_ignored(self):
        assert try_merge([0, 0, 0], [1, 1, 3]) is None
        assert try_merge([0, 0, 3], [1, 1, 0]) is None


def gpumem_round_pattern(draw_chains, tau, w):
    """Build per-rank triplet lists the way a GPUMEM round produces them:
    each chain covers consecutive ranks, triplets are w apart, every
    non-final triplet has λ >= w."""
    lists = [[] for _ in range(tau)]
    expected = []
    for start_rank, n_hits, tail_len, diag in draw_chains:
        if start_rank + n_hits > tau:
            continue
        for j in range(n_hits):
            q = (start_rank + j) * w
            lam = w if j < n_hits - 1 else tail_len
            lists[start_rank + j].append([q + diag, q, lam])
        total = (n_hits - 1) * w + tail_len
        q0 = start_rank * w
        expected.append((q0 + diag, q0, total))
    return lists, expected


class TestCombineReference:
    @settings(max_examples=60)
    @given(
        st.integers(1, 5).map(lambda k: 2**k),  # tau
        st.integers(2, 6),  # w
        st.lists(
            st.tuples(
                st.integers(0, 31),  # start rank
                st.integers(1, 8),  # hits in chain
                st.integers(1, 6),  # tail length
                st.integers(0, 1000),  # diagonal offset (distinct-ish)
            ),
            max_size=4,
        ),
    )
    def test_merges_chains_exactly(self, tau, w, chains):
        # keep diagonals distinct so chains don't interact
        seen = set()
        chains = [c for c in chains if not (c[3] in seen or seen.add(c[3]))]
        lists, expected = gpumem_round_pattern(chains, tau, w)
        merged = combine_reference(lists, tau)
        got = [tuple(t) for lst in merged for t in lst]
        flat_inputs = [tuple(t) for lst in lists for t in lst]
        # the parallel schedule must merge exactly the transitive overlap
        # components (and those equal the per-chain expectations)
        assert set(got) == chain_merge_expected(flat_inputs)
        assert len(got) == len(set(got))

    def test_single_long_chain(self):
        tau, w = 8, 3
        lists, expected = gpumem_round_pattern([(0, 8, 2, 0)], tau, w)
        merged = combine_reference(lists, tau)
        got = [tuple(t) for lst in merged for t in lst]
        assert got == expected

    def test_chain_not_starting_at_zero(self):
        tau, w = 16, 4
        lists, expected = gpumem_round_pattern([(3, 7, 1, 5)], tau, w)
        merged = combine_reference(lists, tau)
        got = [tuple(t) for lst in merged for t in lst]
        assert got == expected

    def test_multiple_triplets_per_rank(self):
        # two chains on different diagonals sharing ranks
        tau, w = 8, 3
        lists, expected = gpumem_round_pattern(
            [(1, 4, 2, 0), (1, 4, 1, 100)], tau, w
        )
        merged = combine_reference(lists, tau)
        got = sorted(tuple(t) for lst in merged for t in lst)
        assert got == sorted(expected)

    def test_tau_one_noop(self):
        lists = [[[0, 0, 3]]]
        assert combine_reference(lists, 1) == [[[0, 0, 3]]]
