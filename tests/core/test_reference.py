"""Tests for repro.core.reference (the brute-force oracle itself)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.reference import brute_force_mems
from repro.errors import InvalidParameterError

from tests.conftest import dna_pair, naive_mems


class TestBruteForce:
    def test_single_mem(self):
        R = np.array([0, 1, 2, 3], dtype=np.uint8)
        Q = np.array([1, 2], dtype=np.uint8)
        out = brute_force_mems(R, Q, 2)
        assert [tuple(map(int, m)) for m in out] == [(1, 0, 2)]

    def test_maximality_both_sides(self):
        # R=ACGTA, Q=CGT: match CGT at (1,0,3); bounded by sequence edges on Q
        R = np.array([0, 1, 2, 3, 0], dtype=np.uint8)
        Q = np.array([1, 2, 3], dtype=np.uint8)
        out = brute_force_mems(R, Q, 3)
        assert [tuple(map(int, m)) for m in out] == [(1, 0, 3)]

    def test_non_maximal_not_reported(self):
        R = np.array([0, 0, 0], dtype=np.uint8)
        Q = np.array([0, 0], dtype=np.uint8)
        out = {tuple(map(int, m)) for m in brute_force_mems(R, Q, 1)}
        # diagonals give maximal runs only
        assert (1, 0, 2) in out
        assert (1, 1, 1) not in out  # extendable left

    def test_identical_sequences(self):
        R = np.array([0, 1, 2, 3], dtype=np.uint8)
        out = brute_force_mems(R, R.copy(), 4)
        assert (0, 0, 4) in {tuple(map(int, m)) for m in out}

    def test_no_matches(self):
        R = np.zeros(5, dtype=np.uint8)
        Q = np.ones(5, dtype=np.uint8)
        assert brute_force_mems(R, Q, 1).size == 0

    def test_empty_inputs(self):
        assert brute_force_mems(np.empty(0, np.uint8), np.zeros(3, np.uint8), 1).size == 0

    def test_min_length_validated(self):
        with pytest.raises(InvalidParameterError):
            brute_force_mems(np.zeros(2, np.uint8), np.zeros(2, np.uint8), 0)

    @settings(max_examples=60, deadline=None)
    @given(dna_pair(max_size=40), st.integers(1, 5))
    def test_matches_independent_loop_oracle(self, pair, L):
        """Two independently-written oracles must agree exactly."""
        R, Q = pair
        got = {tuple(map(int, m)) for m in brute_force_mems(R, Q, L)}
        assert got == naive_mems(R, Q, L)

    def test_all_same_letter_quadratic_case(self):
        R = np.zeros(12, dtype=np.uint8)
        Q = np.zeros(9, dtype=np.uint8)
        got = {tuple(map(int, m)) for m in brute_force_mems(R, Q, 3)}
        assert got == naive_mems(R, Q, 3)
