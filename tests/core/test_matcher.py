"""Tests for repro.core.matcher (the public GpuMem driver)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.matcher import GpuMem, find_mems
from repro.core.params import GpuMemParams
from repro.core.reference import brute_force_mems
from repro.sequence.packed import PackedSequence
from repro.types import mems_equal

from tests.conftest import dna_pair


class TestPublicApi:
    def test_kwargs_construction(self):
        m = GpuMem(min_length=40, seed_length=8)
        assert m.params.min_length == 40

    def test_params_plus_overrides(self):
        p = GpuMemParams(min_length=40, seed_length=8)
        m = GpuMem(p, load_balancing=False)
        assert m.params.load_balancing is False
        assert p.load_balancing is True  # original untouched

    def test_accepts_strings(self):
        result = find_mems("ACGTACGTAC", "ACGTACGTAC", min_length=4, seed_length=3)
        assert (0, 0, 10) in set(result.as_tuples())

    def test_accepts_packed_sequences(self):
        R = PackedSequence("ACGTACGTACGT")
        result = find_mems(R, R, min_length=4, seed_length=3)
        assert (0, 0, 12) in set(result.as_tuples())

    def test_find_mems_convenience_matches_class(self):
        rng = np.random.default_rng(0)
        R = rng.integers(0, 3, 200).astype(np.uint8)
        Q = rng.integers(0, 3, 200).astype(np.uint8)
        a = find_mems(R, Q, min_length=5, seed_length=3)
        b = GpuMem(min_length=5, seed_length=3).find_mems(R, Q)
        assert a == b

    def test_stats_after_run(self):
        rng = np.random.default_rng(1)
        R = rng.integers(0, 4, 500).astype(np.uint8)
        Q = rng.integers(0, 4, 500).astype(np.uint8)
        m = GpuMem(min_length=8, seed_length=4)
        result = m.find_mems(R, Q)
        for key in ("index_time", "match_time", "host_merge_time", "total_time",
                    "n_tiles", "n_candidates", "max_index_bytes"):
            assert key in m.stats
        assert m.stats == result.stats

    def test_index_only_positive(self):
        rng = np.random.default_rng(2)
        R = rng.integers(0, 4, 2000).astype(np.uint8)
        assert GpuMem(min_length=20, seed_length=8).index_only(R) > 0


class TestCorrectnessAcrossTilings:
    @settings(max_examples=30, deadline=None)
    @given(dna_pair(max_size=150), st.integers(1, 3), st.sampled_from([4, 8]))
    def test_tiling_invariance(self, pair, blocks, tau):
        """The MEM set must be independent of tile/block geometry."""
        R, Q = pair
        L, ls = 5, 3
        expect = brute_force_mems(R, Q, L)
        p = GpuMemParams(
            min_length=L, seed_length=ls,
            threads_per_block=tau, blocks_per_tile=blocks,
        )
        got = GpuMem(p).find_mems(R, Q)
        assert mems_equal(got.array, expect)

    def test_degenerate_all_same_letter(self):
        R = np.zeros(100, dtype=np.uint8)
        Q = np.zeros(80, dtype=np.uint8)
        p = GpuMemParams(min_length=10, seed_length=4,
                         threads_per_block=4, blocks_per_tile=2)
        got = GpuMem(p).find_mems(R, Q)
        assert mems_equal(got.array, brute_force_mems(R, Q, 10))

    def test_alternating_adversarial(self):
        R = np.tile([0, 1], 60).astype(np.uint8)
        Q = np.tile([0, 1], 50).astype(np.uint8)
        p = GpuMemParams(min_length=8, seed_length=3,
                         threads_per_block=4, blocks_per_tile=2)
        got = GpuMem(p).find_mems(R, Q)
        assert mems_equal(got.array, brute_force_mems(R, Q, 8))

    def test_query_shorter_than_seed(self):
        R = np.zeros(50, dtype=np.uint8)
        Q = np.zeros(3, dtype=np.uint8)
        got = GpuMem(min_length=5, seed_length=5).find_mems(R, Q)
        assert len(got) == 0

    def test_empty_inputs(self):
        R = np.zeros(10, dtype=np.uint8)
        got = GpuMem(min_length=3, seed_length=2).find_mems(R, np.empty(0, np.uint8))
        assert len(got) == 0
        got = GpuMem(min_length=3, seed_length=2).find_mems(np.empty(0, np.uint8), R)
        assert len(got) == 0

    def test_sparsification_invariance(self):
        """Eq. (1): any legal Δs yields the identical MEM set."""
        rng = np.random.default_rng(3)
        R = rng.integers(0, 2, 300).astype(np.uint8)
        Q = rng.integers(0, 2, 300).astype(np.uint8)
        L, ls = 10, 4
        expect = brute_force_mems(R, Q, L)
        for step in (1, 2, 3, 5, 7):
            p = GpuMemParams(min_length=L, seed_length=ls, step=step)
            got = GpuMem(p).find_mems(R, Q)
            assert mems_equal(got.array, expect), step


class TestSimulatedBackendDispatch:
    def test_backend_simulated(self):
        rng = np.random.default_rng(4)
        R = rng.integers(0, 3, 120).astype(np.uint8)
        Q = rng.integers(0, 3, 120).astype(np.uint8)
        m = GpuMem(min_length=5, seed_length=3, backend="simulated",
                   threads_per_block=4, blocks_per_tile=2)
        got = m.find_mems(R, Q)
        assert mems_equal(got.array, brute_force_mems(R, Q, 5))
        assert m.stats["backend"] == "simulated"
