"""Tests for the simulated backend (block kernel + tile stage + driver)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.params import GpuMemParams
from repro.core.reference import brute_force_mems
from repro.core.simulated import simulated_find_mems
from repro.gpu.device import TEST_DEVICE
from repro.types import mems_equal, unique_mems

from tests.conftest import dna_pair


def tiny_params(L, ls, *, balancing=True, tau=4, blocks=2):
    return GpuMemParams(
        min_length=L,
        seed_length=ls,
        threads_per_block=tau,
        blocks_per_tile=blocks,
        load_balancing=balancing,
    )


class TestSimulatedCorrectness:
    @settings(max_examples=25, deadline=None)
    @given(dna_pair(max_size=120), st.booleans())
    def test_equals_brute_force(self, pair, balancing):
        R, Q = pair
        L, ls = 5, 3
        params = tiny_params(L, ls, balancing=balancing)
        mems, _ = simulated_find_mems(R, Q, params, spec=TEST_DEVICE)
        assert mems_equal(mems, brute_force_mems(R, Q, L))

    def test_many_tile_crossings(self):
        rng = np.random.default_rng(5)
        R = rng.integers(0, 2, 300).astype(np.uint8)
        Q = rng.integers(0, 2, 250).astype(np.uint8)
        # tile size = blocks * tau * w = 2*4*(6-3+1)=32 -> ~10x8 tiles
        params = tiny_params(6, 3)
        mems, stats = simulated_find_mems(R, Q, params, spec=TEST_DEVICE)
        assert stats["n_tiles"] > 20
        assert mems_equal(mems, brute_force_mems(R, Q, 6))

    def test_long_mem_across_everything(self):
        R = np.arange(200, dtype=np.uint8) % 4
        Q = R.copy()
        params = tiny_params(6, 3)
        mems, _ = simulated_find_mems(R, Q, params, spec=TEST_DEVICE)
        got = {tuple(map(int, m)) for m in unique_mems(mems)}
        assert (0, 0, 200) in got

    def test_balanced_equals_unbalanced(self):
        rng = np.random.default_rng(6)
        R = rng.integers(0, 3, 200).astype(np.uint8)
        Q = rng.integers(0, 3, 200).astype(np.uint8)
        a, _ = simulated_find_mems(R, Q, tiny_params(5, 2, balancing=True),
                                   spec=TEST_DEVICE)
        b, _ = simulated_find_mems(R, Q, tiny_params(5, 2, balancing=False),
                                   spec=TEST_DEVICE)
        assert mems_equal(a, b)

    def test_matches_vectorized_backend(self):
        from repro.core.matcher import GpuMem

        rng = np.random.default_rng(7)
        R = rng.integers(0, 3, 300).astype(np.uint8)
        Q = rng.integers(0, 3, 220).astype(np.uint8)
        params = tiny_params(5, 3, tau=8)
        sim, _ = simulated_find_mems(R, Q, params, spec=TEST_DEVICE)
        vec = GpuMem(params).find_mems(R, Q)
        assert mems_equal(sim, vec.array)


class TestSimulatedStats:
    def test_stats_populated(self):
        rng = np.random.default_rng(8)
        R = rng.integers(0, 4, 150).astype(np.uint8)
        Q = rng.integers(0, 4, 150).astype(np.uint8)
        _, stats = simulated_find_mems(R, Q, tiny_params(5, 2), spec=TEST_DEVICE)
        assert stats["backend"] == "simulated"
        assert stats["sim_total_seconds"] > 0
        assert stats["sim_index_seconds"] > 0
        assert stats["kernel_launches"] > 0
        assert stats["device"] == TEST_DEVICE.name

    def test_transfer_accounting(self):
        rng = np.random.default_rng(9)
        R = rng.integers(0, 2, 200).astype(np.uint8)
        Q = rng.integers(0, 2, 200).astype(np.uint8)
        mems, stats = simulated_find_mems(R, Q, tiny_params(5, 2), spec=TEST_DEVICE)
        assert mems.size > 0
        assert stats["sim_transfer_seconds"] > 0
        assert stats["sim_transfer_seconds"] < stats["sim_total_seconds"]

    def test_empty_query(self):
        R = np.zeros(50, dtype=np.uint8)
        Q = np.empty(0, dtype=np.uint8)
        mems, stats = simulated_find_mems(R, Q, tiny_params(4, 2), spec=TEST_DEVICE)
        assert mems.size == 0
