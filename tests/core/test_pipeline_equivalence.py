"""Cross-path equivalence: every executor/session path = one MEM set.

The staged pipeline promises that *how* the independent tile rows run —
serially (the seed behaviour), on a thread pool, banded across model
devices, or against a warm session cache — never changes *what* is
extracted. This suite pins that promise on random and adversarial inputs,
always cross-checked against the independent ``brute_force_mems`` oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BandedExecutor,
    GpuMem,
    GpuMemParams,
    MemSession,
    PipelineStats,
    SerialExecutor,
    ThreadPoolRowExecutor,
    brute_force_mems,
    clear_session_cache,
    get_session,
    make_executor,
)
from repro.core.multi_device import find_mems_multi_device
from repro.errors import InvalidParameterError
from repro.types import mems_equal, unique_mems

from tests.conftest import dna_pair

#: Small geometry so even tiny inputs exercise many rows/tiles/boundaries.
SMALL = dict(seed_length=3, threads_per_block=4, blocks_per_tile=2)
L = 5


def _params(**overrides) -> GpuMemParams:
    kwargs = dict(min_length=L, **SMALL)
    kwargs.update(overrides)
    return GpuMemParams(**kwargs)


def _all_paths(reference: np.ndarray, query: np.ndarray) -> dict[str, np.ndarray]:
    """Sorted triplet bytes from every supported execution path."""
    out: dict[str, np.ndarray] = {}
    out["serial"] = GpuMem(_params()).find_mems(reference, query).array
    out["threads"] = (
        GpuMem(_params(executor="threads", workers=3))
        .find_mems(reference, query)
        .array
    )
    out["banded"] = (
        GpuMem(_params(executor="banded", workers=3))
        .find_mems(reference, query)
        .array
    )
    session = MemSession(reference, _params())
    out["session-cold"] = session.find_mems(query).array
    out["session-warm"] = session.find_mems(query).array  # 100% cache hits
    mems, _ = find_mems_multi_device(reference, query, _params(), n_devices=3)
    out["multi-device"] = mems.array
    return out


def _assert_all_equal(reference, query, paths: dict[str, np.ndarray]) -> None:
    oracle = unique_mems(brute_force_mems(reference, query, L))
    for name, arr in paths.items():
        got = unique_mems(arr)
        assert got.tobytes() == oracle.tobytes(), (
            f"{name} diverged: {got.size} vs oracle {oracle.size} MEMs"
        )


class TestPathEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(dna_pair(max_size=120))
    def test_random_pairs(self, pair):
        R, Q = pair
        _assert_all_equal(R, Q, _all_paths(R, Q))

    def test_empty_query(self):
        R = (np.arange(64) % 4).astype(np.uint8)
        Q = np.empty(0, dtype=np.uint8)
        _assert_all_equal(R, Q, _all_paths(R, Q))

    def test_empty_reference(self):
        R = np.empty(0, dtype=np.uint8)
        Q = (np.arange(40) % 4).astype(np.uint8)
        _assert_all_equal(R, Q, _all_paths(R, Q))

    def test_single_letter_highly_repetitive(self):
        # One letter everywhere: maximal candidate density, every extension
        # runs into a tile border, the host merge does all the work.
        R = np.zeros(90, dtype=np.uint8)
        Q = np.zeros(70, dtype=np.uint8)
        paths = _all_paths(R, Q)
        _assert_all_equal(R, Q, paths)
        # one boundary-delimited MEM per diagonal of length >= L
        n_diagonals = sum(
            1 for d in range(-(Q.size - 1), R.size)
            if min(R.size - max(d, 0), Q.size - max(-d, 0)) >= L
        )
        assert all(arr.size == n_diagonals for arr in paths.values())

    def test_periodic_repeats(self):
        R = np.tile(np.array([0, 1, 2, 0, 1], dtype=np.uint8), 30)
        Q = np.tile(np.array([0, 1, 2, 0, 1], dtype=np.uint8), 20)
        _assert_all_equal(R, Q, _all_paths(R, Q))

    def test_query_shorter_than_seed(self):
        R = (np.arange(50) % 4).astype(np.uint8)
        Q = np.array([0, 1], dtype=np.uint8)  # shorter than seed_length
        _assert_all_equal(R, Q, _all_paths(R, Q))

    @settings(max_examples=10, deadline=None)
    @given(dna_pair(max_size=100), st.integers(1, 5))
    def test_any_worker_count(self, pair, workers):
        R, Q = pair
        serial = GpuMem(_params()).find_mems(R, Q).array
        for name in ("threads", "banded"):
            arr = (
                GpuMem(_params(executor=name, workers=workers))
                .find_mems(R, Q)
                .array
            )
            assert mems_equal(arr, serial)


class TestSessionCaching:
    def test_warm_session_hits_cache(self):
        rng = np.random.default_rng(7)
        R = rng.integers(0, 4, 600).astype(np.uint8)
        session = MemSession(R, _params())
        build_seconds = session.warm()
        assert build_seconds >= 0.0
        info = session.cache_info()
        assert info["n_cached"] == session.n_rows > 1

        Q = np.concatenate([R[50:200], rng.integers(0, 4, 80).astype(np.uint8)])
        result = session.find_mems(Q)
        assert mems_equal(result.array, brute_force_mems(R, Q, L))
        # warm run: the row-index stage must never rebuild
        assert result.stats.index_cache_hits == session.n_rows
        assert result.stats.index_cache_misses == 0
        assert result.stats.index_time == 0.0

    def test_batch_matches_individual(self, rng):
        R = rng.integers(0, 3, 400).astype(np.uint8)
        queries = [rng.integers(0, 3, 120).astype(np.uint8) for _ in range(4)]
        session = MemSession(R, _params())
        batch = session.find_mems_batch(queries)
        for q, got in zip(queries, batch, strict=True):
            assert mems_equal(got.array, brute_force_mems(R, q, L))

    def test_warm_is_idempotent_and_cheap(self):
        R = (np.arange(500) % 4).astype(np.uint8)
        session = MemSession(R, _params())
        session.warm()
        n_built = session.cache_info()["n_cached"]
        session.warm()  # second warm builds nothing new
        assert session.cache_info()["n_cached"] == n_built

    def test_drop_indexes_stays_correct(self):
        R = (np.arange(300) % 3).astype(np.uint8)
        Q = R[40:200].copy()
        session = MemSession(R, _params())
        first = session.find_mems(Q)
        session.drop_indexes()
        assert session.cache_info()["n_cached"] == 0
        again = session.find_mems(Q)
        assert mems_equal(first.array, again.array)

    def test_get_session_is_shared_and_keyed(self):
        clear_session_cache()
        R1 = (np.arange(200) % 4).astype(np.uint8)
        R2 = (np.arange(200) % 3).astype(np.uint8)
        a = get_session(R1, _params())
        b = get_session(R1, _params())
        c = get_session(R2, _params())
        d = get_session(R1, _params(min_length=6))
        assert a is b
        assert a is not c
        assert a is not d
        clear_session_cache()


class TestPipelineStatsContract:
    def test_matcher_stats_defined_before_first_call(self):
        g = GpuMem(_params())
        assert isinstance(g.stats, PipelineStats)
        # historical dict-style access works on the zeroed stats too
        assert g.stats["n_tiles"] == 0
        assert g.stats["total_time"] == 0.0
        assert "index_time" in g.stats

    def test_matchset_exposes_same_stats_object(self):
        R = (np.arange(200) % 4).astype(np.uint8)
        g = GpuMem(_params())
        result = g.find_mems(R, R[20:150])
        assert result.stats is g.stats
        assert result.stats["n_rows"] == result.stats.n_rows >= 1

    def test_mapping_protocol_roundtrip(self):
        stats = PipelineStats(n_tiles=7)
        stats["custom"] = "x"
        stats["n_candidates"] = 3
        as_dict = dict(stats)
        assert as_dict["n_tiles"] == 7
        assert as_dict["custom"] == "x"
        assert stats.n_candidates == 3
        assert stats.get("missing", 42) == 42
        back = PipelineStats.from_dict(as_dict)
        assert back.n_tiles == 7
        assert back.extra["custom"] == "x"

    def test_executor_recorded(self):
        R = (np.arange(120) % 4).astype(np.uint8)
        g = GpuMem(_params(executor="threads", workers=2))
        g.find_mems(R, R[10:90])
        assert g.stats.executor == "threads"
        assert g.stats["workers"] == 2


class TestExecutorRegistry:
    def test_make_executor_names(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("threads", 2), ThreadPoolRowExecutor)
        assert isinstance(make_executor("banded", 3), BandedExecutor)
        with pytest.raises(InvalidParameterError):
            make_executor("cuda")

    def test_params_validate_executor(self):
        with pytest.raises(InvalidParameterError):
            _params(executor="bogus")
        with pytest.raises(InvalidParameterError):
            _params(workers=0)
