"""Session ↔ persistent index store integration: warm restarts.

The tentpole contract: a process (or session) restart against the same
``(reference, params)`` must serve row indexes from the store's warm tier —
mmap loads, near-zero index seconds — instead of rebuilding, and results
must be bit-identical either way.
"""

import numpy as np
import pytest

from repro.core import GpuMemParams, MemSession
from repro.core.session import clear_session_cache, get_session
from repro.index.store import STORE_ENV_VAR, IndexStore, clear_store_registry, store_at

SMALL = dict(seed_length=3, threads_per_block=4, blocks_per_tile=2)
L = 5


def params(**kw):
    base = dict(min_length=L, **SMALL)
    base.update(kw)
    return GpuMemParams(**base)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(21)
    ref = rng.integers(0, 4, 900).astype(np.uint8)
    qry = np.concatenate([ref[100:300], rng.integers(0, 4, 60).astype(np.uint8)])
    return ref, qry


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    monkeypatch.delenv(STORE_ENV_VAR, raising=False)
    clear_session_cache()
    clear_store_registry()
    yield
    clear_session_cache()
    clear_store_registry()


class TestSessionStore:
    def test_no_store_by_default(self, data):
        ref, _ = data
        assert MemSession(ref, params()).store is None

    def test_results_identical_with_and_without_store(self, data, tmp_path):
        ref, qry = data
        plain = MemSession(ref, params()).find_mems(qry)
        stored = MemSession(ref, params(), store=tmp_path).find_mems(qry)
        assert np.array_equal(plain.array, stored.array)

    def test_fresh_session_warm_starts_from_store(self, data, tmp_path):
        ref, qry = data
        store = store_at(tmp_path)
        s1 = MemSession(ref, params(), store=store)
        m1 = s1.find_mems(qry)
        built = store.stats()["builds"]
        assert built == s1.n_rows  # cold run persisted every row

        store.clear_hot()  # simulate a restart (hot tier dies with process)
        s2 = MemSession(ref, params(), store=store)
        m2 = s2.find_mems(qry)
        assert np.array_equal(m1.array, m2.array)
        st = store.stats()
        assert st["builds"] == built  # nothing rebuilt
        assert st["warm_hits"] >= s2.n_rows
        # warm rows flow through the session's normal miss accounting
        # (they weren't in *session* memory): counted as misses, not hits
        assert s2.cache_info()["misses"] == s2.n_rows

    def test_warm_never_rebuilds_through_store(self, data, tmp_path):
        ref, _ = data
        store = store_at(tmp_path)
        s1 = MemSession(ref, params(), store=store)
        s1.warm()
        store.clear_hot()
        s2 = MemSession(ref, params(), store=store)
        s2.warm()
        st = store.stats()
        assert st["builds"] == s1.n_rows  # only the first warm() built
        assert st["warm_hits"] >= s2.n_rows

    def test_env_var_attaches_store(self, data, tmp_path, monkeypatch):
        ref, qry = data
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path))
        session = MemSession(ref, params())
        assert session.store is not None
        session.find_mems(qry)
        assert session.store.stats()["builds"] == session.n_rows

    def test_explicit_store_beats_env(self, data, tmp_path, monkeypatch):
        ref, _ = data
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "env"))
        session = MemSession(ref, params(), store=tmp_path / "mine")
        assert str(session.store.cache_dir).endswith("mine")

    def test_get_session_keyed_by_store(self, data, tmp_path):
        ref, _ = data
        a = get_session(ref, params())
        b = get_session(ref, params(), store=tmp_path)
        c = get_session(ref, params(), store=tmp_path)
        assert a is not b and b is c
        assert b.store is store_at(tmp_path)

    def test_different_params_different_bundles(self, data, tmp_path):
        ref, qry = data
        store = store_at(tmp_path)
        MemSession(ref, params(), store=store).find_mems(qry)
        n1 = store.stats()["n_bundles"]
        MemSession(ref, params(seed_length=4), store=store).find_mems(qry)
        assert store.stats()["n_bundles"] > n1

    def test_store_survives_drop_indexes(self, data, tmp_path):
        ref, qry = data
        store = store_at(tmp_path)
        session = MemSession(ref, params(), store=store)
        session.find_mems(qry)
        built = store.stats()["builds"]
        session.drop_indexes()
        store.clear_hot()
        session.find_mems(qry)
        assert store.stats()["builds"] == built  # refilled from warm tier


class TestThreadedExecutorWithStore:
    def test_threads_executor_single_flight_per_row(self, data, tmp_path):
        ref, qry = data
        store = store_at(tmp_path)
        session = MemSession(
            ref, params(executor="threads", workers=4), store=store
        )
        plain = MemSession(ref, params()).find_mems(qry)
        got = session.find_mems(qry)
        assert np.array_equal(plain.array, got.array)
        assert store.stats()["builds"] == session.n_rows  # once per row


class TestProcessExecutorWithStore:
    def test_workers_share_the_store(self, data, tmp_path):
        """Spawned workers persist rows; a later serial session warm-loads."""
        ref, qry = data
        store = store_at(tmp_path)
        proc = MemSession(
            ref, params(executor="process", workers=2), store=store
        )
        got = proc.find_mems(qry)
        plain = MemSession(ref, params()).find_mems(qry)
        assert np.array_equal(plain.array, got.array)
        # builds happened in the workers; the parent store saw none but
        # the bundles are on disk under the shared cache dir
        st = store.stats()
        assert st["builds"] == 0
        assert st["n_bundles"] == proc.n_rows

        serial = MemSession(ref, params(), store=store)
        again = serial.find_mems(qry)
        assert np.array_equal(plain.array, again.array)
        st = store.stats()
        assert st["builds"] == 0  # warm-loaded everything the workers made
        assert st["warm_hits"] + st["hot_hits"] >= serial.n_rows

    def test_spec_carries_store_dir(self, data, tmp_path):
        from repro.core import procpool

        ref, _ = data
        store = store_at(tmp_path)
        spec = procpool.make_spec(ref, params(), store=store)
        assert spec.store_dir == str(store.cache_dir)
        assert procpool.make_spec(ref, params()).store_dir is None
