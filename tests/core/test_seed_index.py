"""Tests for repro.core.seed_index (Algorithm 1 on the simulator)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.seed_index import build_kmer_index_gpu
from repro.gpu.device import TEST_DEVICE
from repro.gpu.kernel import Device
from repro.index.kmer_index import build_kmer_index

from tests.conftest import dna


class TestGpuIndexBuild:
    @settings(max_examples=30, deadline=None)
    @given(dna(min_size=1, max_size=150), st.integers(1, 3), st.integers(1, 4))
    def test_equals_cpu_reference(self, codes, ls, step):
        dev = Device(TEST_DEVICE)
        gpu = build_kmer_index_gpu(dev, codes, seed_length=ls, step=step, block=8)
        cpu = build_kmer_index(codes, seed_length=ls, step=step)
        assert np.array_equal(gpu.ptrs, cpu.ptrs)
        assert np.array_equal(gpu.locs, cpu.locs)

    def test_region_build(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 4, 200).astype(np.uint8)
        dev = Device(TEST_DEVICE)
        gpu = build_kmer_index_gpu(
            dev, codes, seed_length=2, step=3, region_start=50, region_end=150,
            block=8,
        )
        cpu = build_kmer_index(codes, seed_length=2, step=3,
                               region_start=50, region_end=150)
        assert np.array_equal(gpu.ptrs, cpu.ptrs)
        assert np.array_equal(gpu.locs, cpu.locs)

    def test_four_steps_recorded(self):
        dev = Device(TEST_DEVICE)
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 4, 100).astype(np.uint8)
        build_kmer_index_gpu(dev, codes, seed_length=2, step=1, block=8)
        names = [r.name for r in dev.reports]
        assert names == ["index:count", "GPUPrefixSum", "index:fill", "GPUSegmentSort"]

    def test_device_memory_released(self):
        dev = Device(TEST_DEVICE)
        codes = np.zeros(50, dtype=np.uint8)
        build_kmer_index_gpu(dev, codes, seed_length=2, step=1, block=8)
        assert dev.memory.used_bytes == 0

    def test_empty_region(self):
        dev = Device(TEST_DEVICE)
        codes = np.zeros(20, dtype=np.uint8)
        idx = build_kmer_index_gpu(
            dev, codes, seed_length=3, step=1, region_start=19, region_end=19,
        )
        assert idx.n_locs == 0

    def test_sim_time_positive(self):
        dev = Device(TEST_DEVICE)
        rng = np.random.default_rng(2)
        codes = rng.integers(0, 4, 300).astype(np.uint8)
        build_kmer_index_gpu(dev, codes, seed_length=3, step=2, block=8)
        assert dev.total_sim_seconds() > 0

    def test_locs_sorted_within_seed_despite_shuffled_fill(self):
        """Step 4's purpose: atomic fill order is shuffled, sort restores
        per-seed order."""
        dev = Device(TEST_DEVICE, schedule_seed=99)
        codes = np.zeros(100, dtype=np.uint8)  # single hot seed
        idx = build_kmer_index_gpu(dev, codes, seed_length=2, step=1, block=8)
        idx.check()  # asserts strict per-seed ordering
