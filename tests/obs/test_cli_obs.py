"""CLI observability: --trace/--metrics, gpumem trace, gpumem profile."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.obs import validate_chrome_trace
from repro.sequence.fasta import write_fasta
from repro.sequence.synthetic import markov_dna, plant_homology


@pytest.fixture
def fasta_pair(tmp_path):
    ref = markov_dna(2500, seed=5)
    qry = plant_homology(ref, 1500, seed=6, coverage=0.7, divergence=0.02)
    rp, qp = tmp_path / "ref.fa", tmp_path / "qry.fa"
    write_fasta(rp, [("ref", ref)])
    write_fasta(qp, [("qry", qry)])
    return str(rp), str(qp)


@pytest.fixture
def tiny_pair(tmp_path):
    ref = markov_dna(250, seed=7)
    qry = ref[50:170].copy()
    rp, qp = tmp_path / "tref.fa", tmp_path / "tqry.fa"
    write_fasta(rp, [("ref", ref)])
    write_fasta(qp, [("qry", qry)])
    return str(rp), str(qp)


class TestMatchTrace:
    def test_trace_flag_writes_valid_chrome_trace(self, fasta_pair, tmp_path,
                                                  capsys):
        rp, qp = fasta_pair
        out = tmp_path / "trace.json"
        rc = main(["match", rp, qp, "-l", "30", "-s", "8",
                   "--trace", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"pipeline.run", "stage:prep", "stage:row_index",
                "stage:tile_match", "stage:host_merge"} <= names
        assert "session.cache.queries" in doc["metrics"]
        err = capsys.readouterr().err
        assert "# trace:" in err

    def test_metrics_flag_prints_registry(self, fasta_pair, capsys):
        rp, qp = fasta_pair
        rc = main(["match", rp, qp, "-l", "30", "-s", "8", "--metrics"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "== metrics ==" in err
        assert "pipeline.runs{backend=vectorized}" in err
        assert "load_balance.seed_slots" in err

    def test_no_flags_no_observability_output(self, fasta_pair, capsys):
        rp, qp = fasta_pair
        rc = main(["match", rp, qp, "-l", "30", "-s", "8"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "# trace:" not in err
        assert "== metrics ==" not in err

    def test_index_subcommand_traces_warm(self, fasta_pair, tmp_path):
        rp, _ = fasta_pair
        out = tmp_path / "idx.json"
        rc = main(["index", rp, "-l", "30", "-s", "8", "--trace", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "session.warm" in names
        assert "pipeline.build_row_indexes" in names


class TestTraceSubcommand:
    def _record(self, fasta_pair, tmp_path):
        rp, qp = fasta_pair
        out = tmp_path / "trace.json"
        main(["match", rp, qp, "-l", "30", "-s", "8", "--trace", str(out)])
        return out

    def test_valid_trace_exit_zero(self, fasta_pair, tmp_path, capsys):
        out = self._record(fasta_pair, tmp_path)
        rc = main(["trace", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "schema: OK" in text
        assert "hottest spans" in text
        assert "pipeline.run" in text

    def test_tree_rendering(self, fasta_pair, tmp_path, capsys):
        out = self._record(fasta_pair, tmp_path)
        rc = main(["trace", str(out), "--tree"])
        assert rc == 0
        text = capsys.readouterr().out
        assert f"-- lane pid={os.getpid()} tid=0 --" in text
        assert "stage:tile_match" in text

    def test_invalid_schema_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [
            {"ph": "X", "name": "a", "ts": 0, "dur": 10, "tid": 0},
            {"ph": "X", "name": "b", "ts": 5, "dur": 10, "tid": 0},
        ]}))
        rc = main(["trace", str(bad)])
        assert rc == 1
        assert "schema problem" in capsys.readouterr().out

    def test_unreadable_file_exit_two(self, tmp_path, capsys):
        rc = main(["trace", str(tmp_path / "missing.json")])
        assert rc == 2
        assert "cannot load" in capsys.readouterr().err


class TestProfileSubcommand:
    def test_prints_device_rollup(self, tiny_pair, capsys):
        rp, qp = tiny_pair
        rc = main(["profile", rp, qp, "-l", "15", "-s", "6"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "== device profile:" in text
        assert "match:block" in text
        assert "kernel launches:" in text

    def test_profile_with_trace(self, tiny_pair, tmp_path, capsys):
        rp, qp = tiny_pair
        out = tmp_path / "prof.json"
        rc = main(["profile", rp, qp, "-l", "15", "-s", "6",
                   "--trace", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert any(n.startswith("kernel:") for n in names)
