"""Tracer unit tests: nesting, threads, decorator, null path."""

from __future__ import annotations

import threading

import pytest

from repro.obs import NULL_TRACER, NullTracer, Tracer, get_tracer


class TestSpans:
    def test_parent_child_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert a.end <= b.start

    def test_attrs_at_open_and_set(self):
        tracer = Tracer()
        with tracer.span("s", cat="test", row=3) as sp:
            sp.set(n_mems=7)
        (got,) = tracer.find("s")
        assert got.attrs == {"row": 3, "n_mems": 7}
        assert got.cat == "test"

    def test_exception_records_error_and_closes(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (sp,) = tracer.find("boom")
        assert sp.attrs["error"] == "ValueError"
        assert sp.end is not None
        # the stack recovered: a new root span is really a root
        with tracer.span("after") as after:
            pass
        assert after.parent_id is None

    def test_duration_nonnegative(self):
        tracer = Tracer()
        with tracer.span("t"):
            pass
        (sp,) = tracer.find("t")
        assert sp.duration >= 0.0

    def test_wrap_decorator(self):
        tracer = Tracer()

        @tracer.wrap("helper", cat="func")
        def helper(x):
            return x + 1

        assert helper(1) == 2
        (sp,) = tracer.find("helper")
        assert sp.cat == "func"

    def test_clear_and_find(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        assert len(tracer.find("x")) == 1
        tracer.clear()
        assert tracer.spans == []


class TestThreads:
    def test_worker_threads_get_own_lanes(self):
        tracer = Tracer()
        barrier = threading.Barrier(3)

        def work(i):
            barrier.wait()
            with tracer.span(f"worker-{i}"):
                with tracer.span("child"):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(3)]
        with tracer.span("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        lanes = {s.tid for s in tracer.spans if s.name.startswith("worker")}
        assert len(lanes) == 3
        # children nest under their own thread's worker span, not "main"
        for child in tracer.find("child"):
            parent = next(
                s for s in tracer.spans if s.span_id == child.parent_id
            )
            assert parent.name.startswith("worker-")
            assert parent.tid == child.tid

    def test_span_ids_unique_across_threads(self):
        tracer = Tracer()

        def work():
            for _ in range(50):
                with tracer.span("s"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = [s.span_id for s in tracer.spans]
        assert len(ids) == len(set(ids)) == 200


class TestNullTracer:
    def test_get_tracer_normalizes(self):
        assert get_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert get_tracer(tracer) is tracer

    def test_null_span_is_shared_noop(self):
        a = NULL_TRACER.span("x", cat="y", k=1)
        b = NULL_TRACER.span("z")
        assert a is b
        with a as sp:
            assert sp.set(n=1) is sp
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.find("x") == []

    def test_null_metrics_attached(self):
        assert not NULL_TRACER.enabled
        assert not NULL_TRACER.metrics.enabled
        # writes are all no-ops
        NULL_TRACER.metrics.counter("c", k="v").inc()
        NULL_TRACER.metrics.histogram("h").observe(1.0)
        assert NULL_TRACER.metrics.to_dict() == {}

    def test_null_wrap_returns_function_unchanged(self):
        def fn():
            return 42

        assert NullTracer().wrap("n")(fn) is fn
