"""Golden-schema tests: real pipeline traces must be valid Chrome-trace JSON.

The acceptance contract of the observability layer: a full pipeline run
(both backends) exports a document that chrome://tracing/Perfetto can load,
with the four stage spans properly nested inside ``pipeline.run`` and
non-overlapping within their lane, and the metrics block carrying the
session-cache and load-balance counters.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

import repro
from repro.obs import (
    NULL_TRACER,
    Tracer,
    format_event_tree,
    load_chrome_trace,
    to_chrome_trace,
    top_spans,
    validate_chrome_trace,
)
from repro.obs.shipping import WorkerObs, merge_payload

STAGES = ("stage:prep", "stage:row_index", "stage:tile_match", "stage:host_merge")


@pytest.fixture(scope="module")
def sequences():
    ref = repro.random_dna(3000, seed=11)
    qry = repro.mutate(ref[:2000], rate=0.02, seed=12)
    return ref, qry


def _events_by_name(doc):
    byname = {}
    for ev in doc["traceEvents"]:
        if ev.get("ph") == "X":
            byname.setdefault(ev["name"], []).append(ev)
    return byname


def _assert_nested(inner, outer):
    assert inner["ts"] >= outer["ts"] - 1e-6
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6


class TestVectorizedTraceSchema:
    @pytest.fixture(scope="class")
    def doc(self, sequences):
        ref, qry = sequences
        tracer = Tracer()
        matcher = repro.GpuMem(
            repro.GpuMemParams(min_length=40, seed_length=10), tracer=tracer
        )
        matcher.find_mems(ref, qry)
        return to_chrome_trace(tracer, run="golden")

    def test_schema_valid(self, doc):
        assert validate_chrome_trace(doc) == []

    def test_json_serializable(self, doc):
        json.dumps(doc)  # numpy attrs must have been coerced

    def test_all_four_stage_spans_present(self, doc):
        byname = _events_by_name(doc)
        for stage in STAGES:
            assert byname.get(stage), f"missing {stage} span"

    def test_stage_spans_nest_inside_pipeline_run(self, doc):
        byname = _events_by_name(doc)
        (run,) = byname["pipeline.run"]
        for stage in STAGES:
            for ev in byname[stage]:
                assert ev["tid"] == run["tid"]
                _assert_nested(ev, run)

    def test_stage_spans_do_not_overlap_each_other(self, doc):
        byname = _events_by_name(doc)
        stages = sorted(
            (ev for s in STAGES for ev in byname[s]), key=lambda e: e["ts"]
        )
        for a, b in zip(stages, stages[1:], strict=False):
            assert a["ts"] + a["dur"] <= b["ts"] + 1e-6, (
                f"{a['name']} overlaps {b['name']}"
            )

    def test_metrics_block_has_cache_and_balance_counters(self, doc):
        metrics = doc["metrics"]
        assert metrics["session.cache.queries"]["value"] == 1
        assert metrics["session.cache.misses"]["value"] >= 1
        for series in (
            "load_balance.seed_slots",
            "load_balance.active_seeds",
            "load_balance.idle_threads",
            "load_balance.redistributed_threads",
        ):
            assert series in metrics, f"missing {series}"
        assert metrics["pipeline.runs{backend=vectorized}"]["value"] == 1

    def test_metadata_and_display_unit(self, doc):
        assert doc["displayTimeUnit"] == "ms"
        assert doc["metadata"]["tool"] == "repro.obs"
        assert doc["metadata"]["run"] == "golden"

    def test_file_roundtrip_and_inspection(self, doc, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(doc))
        loaded = load_chrome_trace(path)
        assert validate_chrome_trace(loaded) == []
        tree = format_event_tree(loaded)
        assert "pipeline.run" in tree
        assert "stage:tile_match" in tree
        names = [name for name, _, _ in top_spans(loaded)]
        assert "pipeline.run" in names


class TestSimulatedTraceSchema:
    @pytest.fixture(scope="class")
    def doc(self):
        from repro.core.params import GpuMemParams
        from repro.core.simulated import simulated_find_mems

        ref = repro.random_dna(300, seed=21)
        qry = repro.mutate(ref[:150], rate=0.02, seed=22)
        tracer = Tracer()
        params = GpuMemParams(
            min_length=15, seed_length=6, backend="simulated"
        )
        simulated_find_mems(ref, qry, params, tracer=tracer)
        return to_chrome_trace(tracer)

    def test_schema_valid(self, doc):
        assert validate_chrome_trace(doc) == []

    def test_all_four_stage_spans_present(self, doc):
        byname = _events_by_name(doc)
        for stage in STAGES:
            assert byname.get(stage), f"missing {stage} span"

    def test_kernel_spans_nested_in_their_stages(self, doc):
        """Each kernel-launching stage holds >= 1 kernel:* span."""
        byname = _events_by_name(doc)
        kernels = [
            ev for name, evs in byname.items()
            if name.startswith("kernel:") for ev in evs
        ]
        assert kernels
        for stage in ("stage:row_index", "stage:tile_match"):
            (ev,) = byname[stage]
            inside = [
                k for k in kernels
                if ev["ts"] - 1e-6 <= k["ts"]
                and k["ts"] + k["dur"] <= ev["ts"] + ev["dur"] + 1e-6
            ]
            assert inside, f"no kernel span inside {stage}"

    def test_kernel_spans_carry_sim_time(self, doc):
        byname = _events_by_name(doc)
        (ev,) = byname["kernel:match:block"]
        assert ev["args"]["sim_seconds"] > 0
        assert ev["args"]["sim_cycles"] > 0
        assert "imbalance" in ev["args"]

    def test_kernel_and_memcpy_metrics(self, doc):
        metrics = doc["metrics"]
        assert metrics["kernel.launches{kernel=match:block}"]["value"] >= 1
        assert metrics["pipeline.runs{backend=simulated}"]["value"] == 1
        memcpy = [k for k in metrics if k.startswith("memcpy.transfers")]
        assert memcpy


class TestValidatorRejectsBadDocs:
    def test_non_dict(self):
        assert validate_chrome_trace([]) != []

    def test_missing_events(self):
        assert validate_chrome_trace({}) == ["missing or non-list 'traceEvents'"]

    def test_bad_phase_and_name(self):
        doc = {"traceEvents": [
            {"ph": "B", "name": "x"},
            {"ph": "X", "name": "", "ts": 0, "dur": 1},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("unsupported phase" in p for p in problems)
        assert any("missing string 'name'" in p for p in problems)

    def test_negative_timestamps(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "x", "ts": -1, "dur": 1}
        ]}
        assert any("bad 'ts'" in p for p in validate_chrome_trace(doc))

    def test_partial_overlap_in_lane(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "a", "ts": 0, "dur": 10, "tid": 0},
            {"ph": "X", "name": "b", "ts": 5, "dur": 10, "tid": 0},
        ]}
        assert any("overlaps" in p for p in validate_chrome_trace(doc))

    def test_same_spans_in_different_lanes_are_fine(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "a", "ts": 0, "dur": 10, "tid": 0},
            {"ph": "X", "name": "b", "ts": 5, "dur": 10, "tid": 1},
        ]}
        assert validate_chrome_trace(doc) == []


class TestDisabledOverhead:
    def test_null_tracer_hot_loop_is_cheap(self):
        """Smoke bound: 200k disabled spans + metric writes in well under 1 s."""
        t0 = time.perf_counter()
        for _ in range(200_000):
            with NULL_TRACER.span("hot", cat="x"):
                pass
            if NULL_TRACER.metrics.enabled:  # the guarded-hot-path idiom
                NULL_TRACER.metrics.counter("c").inc()
        assert time.perf_counter() - t0 < 1.0

    def test_pipeline_records_nothing_without_tracer(self, sequences):
        ref, qry = sequences
        before = len(NULL_TRACER.spans)
        matcher = repro.GpuMem(repro.GpuMemParams(min_length=40, seed_length=10))
        matcher.find_mems(ref, qry)
        assert len(NULL_TRACER.spans) == before == 0
        assert NULL_TRACER.metrics.to_dict() == {}


class TestSessionCacheSurfacing:
    def test_pipeline_stats_expose_cache_counters(self, sequences):
        ref, qry = sequences
        session = repro.MemSession(ref, min_length=40, seed_length=10)
        session.find_mems(qry)
        assert session.stats.session_cache_misses >= 1
        assert session.stats.session_cache_hits == 0
        session.find_mems(qry[: qry.size // 2])
        assert session.stats.session_cache_hits >= 1

    def test_cache_counters_reach_metrics(self, sequences):
        ref, qry = sequences
        tracer = Tracer()
        session = repro.MemSession(
            ref, min_length=40, seed_length=10, tracer=tracer
        )
        session.find_mems(qry)
        session.find_mems(qry)
        metrics = tracer.metrics.to_dict()
        assert metrics["session.cache.queries"]["value"] == 2
        assert metrics["session.cache.hits"]["value"] >= 1

    def test_np_int_attrs_serialize(self):
        tracer = Tracer()
        with tracer.span("s", n=np.int64(3)):
            pass
        doc = to_chrome_trace(tracer)
        dumped = json.dumps(
            doc, default=lambda o: o.item() if hasattr(o, "item") else str(o)
        )
        assert '"n": 3' in dumped


class TestMultiPidLanes:
    """Worker payloads merged into a parent must export as pid lane groups."""

    @pytest.fixture(scope="class")
    def doc(self):
        import os

        parent = Tracer()
        with parent.span("dispatch", cat="proc"):
            pass
        # Simulate two workers: WorkerObs payloads whose pid we rewrite so
        # the export sees lanes distinct from the parent's real pid.
        for fake_pid in (70001, 70002):
            obs = WorkerObs()
            with obs.tracer.span("task", cat="proc"):
                with obs.tracer.span("stage:tile_match", cat="pipeline"):
                    pass
            obs.tracer.metrics.counter("session.cache.queries").inc()
            payload = obs.collect()
            object.__setattr__(payload, "pid", fake_pid)
            merge_payload(parent, payload)
        trace = to_chrome_trace(parent, run="multi-pid")
        trace["_parent_pid"] = os.getpid()
        return trace

    def test_schema_valid(self, doc):
        assert validate_chrome_trace(doc) == []

    def test_worker_lanes_present(self, doc):
        pids = {
            ev["pid"] for ev in doc["traceEvents"] if ev.get("ph") == "X"
        }
        assert pids == {doc["_parent_pid"], 70001, 70002}

    def test_lane_metadata_names_workers(self, doc):
        names = {
            ev["pid"]: ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev.get("ph") == "M" and ev["name"] == "process_name"
        }
        assert names[doc["_parent_pid"]] == "gpumem"
        assert names[70001] == "gpumem worker (pid 70001)"
        assert names[70002] == "gpumem worker (pid 70002)"

    def test_sort_index_pins_parent_first(self, doc):
        sort_keys = {
            ev["pid"]: ev["args"]["sort_index"]
            for ev in doc["traceEvents"]
            if ev.get("ph") == "M" and ev["name"] == "process_sort_index"
        }
        assert sort_keys[doc["_parent_pid"]] == 0
        assert sort_keys[70001] >= 1 and sort_keys[70002] >= 1

    def test_metadata_records_parent_pid(self, doc):
        assert doc["metadata"]["parent_pid"] == doc["_parent_pid"]

    def test_merged_worker_metrics_in_block(self, doc):
        assert doc["metrics"]["session.cache.queries"]["value"] == 2
        assert doc["metrics"]["proc.obs.payloads"]["value"] == 2

    def test_event_tree_renders_worker_lanes(self, doc):
        clean = {k: v for k, v in doc.items() if not k.startswith("_")}
        tree = format_event_tree(clean)
        assert "-- lane pid=70001 tid=0 --" in tree
        assert "stage:tile_match" in tree
