"""MetricsRegistry unit tests: instruments, labels, export, null path."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    NULL_METRICS,
    MetricsRegistry,
    metrics_to_json,
    series_name,
)


class TestInstruments:
    def test_counter_get_or_create(self):
        m = MetricsRegistry()
        m.counter("hits").inc()
        m.counter("hits").inc(2)
        assert m.counter("hits").value == 3

    def test_labels_separate_series(self):
        m = MetricsRegistry()
        m.counter("launches", kernel="a").inc()
        m.counter("launches", kernel="b").inc(5)
        assert m.counter("launches", kernel="a").value == 1
        assert m.counter("launches", kernel="b").value == 5

    def test_label_order_irrelevant(self):
        m = MetricsRegistry()
        m.counter("c", x="1", y="2").inc()
        assert m.counter("c", y="2", x="1").value == 1

    def test_gauge_set_add(self):
        m = MetricsRegistry()
        g = m.gauge("bytes")
        g.set(100)
        g.add(-25)
        assert m.gauge("bytes").value == 75

    def test_histogram_summary_and_buckets(self):
        m = MetricsRegistry()
        h = m.histogram("seconds")
        for v in (0.5e-6, 0.05, 2.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 3
        assert d["min"] == 0.5e-6
        assert d["max"] == 2.0
        assert abs(d["sum"] - 2.0500005) < 1e-9
        assert d["buckets"]["1e-06"] == 1
        assert d["buckets"]["0.1"] == 1
        assert d["buckets"]["10.0"] == 1
        assert d["buckets"]["+inf"] == 0

    def test_series_name(self):
        assert series_name("c", {}) == "c"
        assert series_name("c", {"b": 1, "a": 2}) == "c{a=2,b=1}"

    def test_thread_safety(self):
        m = MetricsRegistry()

        def work():
            for _ in range(1000):
                m.counter("n").inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("n").value == 4000


class TestExport:
    def test_to_dict_flat_keys(self):
        m = MetricsRegistry()
        m.counter("runs", backend="vectorized").inc()
        m.gauge("resident").set(10)
        m.histogram("dt", stage="prep").observe(0.5)
        d = m.to_dict()
        assert d["runs{backend=vectorized}"] == {"type": "counter", "value": 1}
        assert d["resident"]["type"] == "gauge"
        assert d["dt{stage=prep}"]["count"] == 1

    def test_format_lists_every_series(self):
        m = MetricsRegistry()
        m.counter("a").inc()
        m.histogram("b").observe(1)
        text = m.format()
        assert "== metrics ==" in text
        assert "a" in text and "count=1" in text

    def test_metrics_to_json_roundtrips(self):
        m = MetricsRegistry()
        m.counter("c").inc(3)
        assert json.loads(metrics_to_json(m))["c"]["value"] == 3

    def test_clear(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.clear()
        assert m.to_dict() == {}


class TestNullRegistry:
    def test_disabled_flag(self):
        assert MetricsRegistry().enabled
        assert not NULL_METRICS.enabled

    def test_all_writes_noop_and_shared(self):
        c = NULL_METRICS.counter("c", k="v")
        assert c is NULL_METRICS.histogram("h")
        c.inc()
        c.set(1)
        c.add(1)
        c.observe(1)
        assert NULL_METRICS.to_dict() == {}

class TestPercentiles:
    def test_percentile_empty_is_none(self):
        h = MetricsRegistry().histogram("h")
        assert h.percentile(50) is None
        s = h.summary()
        assert s["count"] == 0
        assert s["min"] is None and s["max"] is None
        assert s["p50"] is None and s["p99"] is None

    def test_percentile_validates_q(self):
        h = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_percentile_single_observation_is_exact(self):
        h = MetricsRegistry().histogram("h")
        h.observe(0.042)
        # One sample: every percentile collapses to it (bucket interpolation
        # is clamped to the observed [min, max]).
        for q in (0, 50, 95, 100):
            assert h.percentile(q) == pytest.approx(0.042)

    def test_percentile_tracks_distribution(self):
        h = MetricsRegistry().histogram("h")
        for _ in range(90):
            h.observe(0.005)   # 0.001-0.01 bucket
        for _ in range(10):
            h.observe(5.0)     # 1-10 bucket
        p50, p99 = h.percentile(50), h.percentile(99)
        assert p50 is not None and p50 <= 0.01
        assert p99 is not None and p99 >= 1.0

    def test_percentiles_monotone(self):
        h = MetricsRegistry().histogram("h")
        rng = [1e-4, 3e-3, 0.02, 0.4, 1.2, 8.0, 0.07, 0.9]
        for v in rng * 5:
            h.observe(v)
        qs = [h.percentile(q) for q in (10, 50, 90, 99)]
        assert qs == sorted(qs)
        assert min(rng) <= qs[0] and qs[-1] <= max(rng)

    def test_summary_fields(self):
        h = MetricsRegistry().histogram("h")
        for v in (0.01, 0.02, 0.03):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["min"] == 0.01 and s["max"] == 0.03
        assert s["mean"] == pytest.approx(0.02)
        assert set(s) == {"count", "mean", "min", "max", "p50", "p95", "p99"}
        assert 0.01 <= s["p50"] <= s["p95"] <= s["p99"] <= 0.03


class TestDeltaMerge:
    def test_counter_delta_and_merge(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        snap = worker.snapshot()
        worker.counter("c", k="v").inc(3)
        delta = worker.delta_since(snap)
        assert [d["kind"] for d in delta] == ["counter"]
        parent.counter("c", k="v").inc(10)
        parent.merge(delta)
        assert parent.counter("c", k="v").value == 13

    def test_unchanged_series_omitted(self):
        worker = MetricsRegistry()
        worker.counter("c").inc()
        worker.gauge("g").set(4)
        worker.histogram("h").observe(1.0)
        snap = worker.snapshot()
        assert worker.delta_since(snap) == []

    def test_deltas_are_increments_not_totals(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(5)
        snap = worker.snapshot()
        worker.counter("c").inc(2)
        (entry,) = worker.delta_since(snap)
        assert entry["value"] == 2  # not the lifetime 7

    def test_gauge_merge_last_write_wins(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        parent.gauge("depth").set(9)
        worker.gauge("depth").set(4)
        parent.merge(worker.delta_since(None))
        assert parent.gauge("depth").value == 4

    def test_histogram_merge_preserves_shape(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        direct = MetricsRegistry()
        values = [0.002, 0.05, 0.05, 3.0]
        snap = worker.snapshot()
        for v in values:
            worker.histogram("h").observe(v)
            direct.histogram("h").observe(v)
        parent.merge(worker.delta_since(snap))
        merged, expected = parent.histogram("h").to_dict(), direct.histogram("h").to_dict()
        assert merged["count"] == expected["count"]
        assert merged["sum"] == pytest.approx(expected["sum"])
        assert merged["min"] == expected["min"]
        assert merged["max"] == expected["max"]
        assert merged["buckets"] == expected["buckets"]

    def test_histogram_merge_rebuckets_foreign_ladder(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.histogram("h", buckets=(1.0, 100.0)).observe(50.0)
        parent.histogram("h").observe(0.5)  # default ladder, same series
        parent.merge(worker.delta_since(None))
        d = parent.histogram("h").to_dict()
        assert d["count"] == 2
        # The foreign observation re-buckets on its source upper bound
        # (100.0), landing in the parent ladder's 100.0 bucket.
        assert d["buckets"]["100.0"] == 1
        assert d["min"] == 0.5 and d["max"] == 50.0

    def test_delta_and_snapshot_advances_baseline(self):
        worker = MetricsRegistry()
        worker.counter("c").inc()
        delta, snap = worker.delta_and_snapshot(None)
        assert len(delta) == 1
        delta2, _ = worker.delta_and_snapshot(snap)
        assert delta2 == []

    def test_merge_into_disabled_registry_noop(self):
        worker = MetricsRegistry()
        worker.counter("c").inc()
        NULL_METRICS.merge(worker.delta_since(None))
        assert NULL_METRICS.to_dict() == {}

    def test_delta_roundtrips_through_json(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(2)
        worker.histogram("h").observe(0.5)
        worker.gauge("g").set(7)
        delta = worker.delta_since(None)
        rebuilt = json.loads(json.dumps(delta))
        parent = MetricsRegistry()
        parent.merge(rebuilt)
        assert parent.counter("c").value == 2
        assert parent.histogram("h").count == 1
        assert parent.gauge("g").value == 7
