"""MetricsRegistry unit tests: instruments, labels, export, null path."""

from __future__ import annotations

import json
import threading

from repro.obs import (
    NULL_METRICS,
    MetricsRegistry,
    metrics_to_json,
    series_name,
)


class TestInstruments:
    def test_counter_get_or_create(self):
        m = MetricsRegistry()
        m.counter("hits").inc()
        m.counter("hits").inc(2)
        assert m.counter("hits").value == 3

    def test_labels_separate_series(self):
        m = MetricsRegistry()
        m.counter("launches", kernel="a").inc()
        m.counter("launches", kernel="b").inc(5)
        assert m.counter("launches", kernel="a").value == 1
        assert m.counter("launches", kernel="b").value == 5

    def test_label_order_irrelevant(self):
        m = MetricsRegistry()
        m.counter("c", x="1", y="2").inc()
        assert m.counter("c", y="2", x="1").value == 1

    def test_gauge_set_add(self):
        m = MetricsRegistry()
        g = m.gauge("bytes")
        g.set(100)
        g.add(-25)
        assert m.gauge("bytes").value == 75

    def test_histogram_summary_and_buckets(self):
        m = MetricsRegistry()
        h = m.histogram("seconds")
        for v in (0.5e-6, 0.05, 2.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 3
        assert d["min"] == 0.5e-6
        assert d["max"] == 2.0
        assert abs(d["sum"] - 2.0500005) < 1e-9
        assert d["buckets"]["1e-06"] == 1
        assert d["buckets"]["0.1"] == 1
        assert d["buckets"]["10.0"] == 1
        assert d["buckets"]["+inf"] == 0

    def test_series_name(self):
        assert series_name("c", {}) == "c"
        assert series_name("c", {"b": 1, "a": 2}) == "c{a=2,b=1}"

    def test_thread_safety(self):
        m = MetricsRegistry()

        def work():
            for _ in range(1000):
                m.counter("n").inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("n").value == 4000


class TestExport:
    def test_to_dict_flat_keys(self):
        m = MetricsRegistry()
        m.counter("runs", backend="vectorized").inc()
        m.gauge("resident").set(10)
        m.histogram("dt", stage="prep").observe(0.5)
        d = m.to_dict()
        assert d["runs{backend=vectorized}"] == {"type": "counter", "value": 1}
        assert d["resident"]["type"] == "gauge"
        assert d["dt{stage=prep}"]["count"] == 1

    def test_format_lists_every_series(self):
        m = MetricsRegistry()
        m.counter("a").inc()
        m.histogram("b").observe(1)
        text = m.format()
        assert "== metrics ==" in text
        assert "a" in text and "count=1" in text

    def test_metrics_to_json_roundtrips(self):
        m = MetricsRegistry()
        m.counter("c").inc(3)
        assert json.loads(metrics_to_json(m))["c"]["value"] == 3

    def test_clear(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.clear()
        assert m.to_dict() == {}


class TestNullRegistry:
    def test_disabled_flag(self):
        assert MetricsRegistry().enabled
        assert not NULL_METRICS.enabled

    def test_all_writes_noop_and_shared(self):
        c = NULL_METRICS.counter("c", k="v")
        assert c is NULL_METRICS.histogram("h")
        c.inc()
        c.set(1)
        c.add(1)
        c.observe(1)
        assert NULL_METRICS.to_dict() == {}
