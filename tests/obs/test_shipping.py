"""Cross-process shipping tests: WorkerObs capture, payload merge, lanes."""

from __future__ import annotations

import os
import pickle

from repro.obs import NULL_TRACER, Tracer
from repro.obs.shipping import (
    SPAN_SHIP_CAP,
    ObsPayload,
    WorkerObs,
    merge_payload,
    payload_events,
    serialize_span,
)


def _record_some_work(obs: WorkerObs) -> None:
    with obs.tracer.span("task", cat="proc"):
        with obs.tracer.span("stage:match", cat="pipeline"):
            pass
    obs.tracer.metrics.counter("session.cache.miss").inc()
    obs.tracer.metrics.histogram("stage.seconds", stage="match").observe(0.01)


class TestWorkerObs:
    def test_collect_drains_spans_and_metrics(self):
        obs = WorkerObs()
        _record_some_work(obs)
        payload = obs.collect()
        assert payload.pid == os.getpid()
        assert payload.wall_epoch == obs.tracer.wall_epoch
        assert [s["name"] for s in payload.spans] == ["stage:match", "task"]
        assert payload.dropped_spans == 0
        assert {m["name"] for m in payload.metrics} == {
            "session.cache.miss", "stage.seconds",
        }
        # Drained: the worker tracer holds nothing for the next task.
        assert obs.tracer.spans == []

    def test_second_collect_ships_increments_only(self):
        obs = WorkerObs()
        obs.tracer.metrics.counter("c").inc(5)
        obs.collect()
        obs.tracer.metrics.counter("c").inc(2)
        payload = obs.collect()
        (entry,) = [m for m in payload.metrics if m["name"] == "c"]
        assert entry["value"] == 2
        # Nothing new -> empty freight.
        final = obs.collect()
        assert final.spans == [] and final.metrics == []

    def test_span_cap_counts_overflow(self):
        obs = WorkerObs(cap=3)
        for i in range(5):
            with obs.tracer.span(f"s{i}"):
                pass
        payload = obs.collect()
        assert payload.n_spans == 3
        assert payload.dropped_spans == 2
        # Over-cap spans are discarded, not deferred to the next payload.
        assert obs.collect().spans == []

    def test_payload_is_picklable(self):
        obs = WorkerObs()
        _record_some_work(obs)
        payload = obs.collect()
        clone = pickle.loads(pickle.dumps(payload))
        assert clone == payload

    def test_default_cap(self):
        assert WorkerObs().cap == SPAN_SHIP_CAP


class TestSerializeSpan:
    def test_wire_fields(self):
        tracer = Tracer()
        with tracer.span("work", cat="demo", row=3) as sp:
            sp.set(n=7)
        wire = serialize_span(tracer.spans[0])
        assert wire["name"] == "work" and wire["cat"] == "demo"
        assert wire["attrs"] == {"row": 3, "n": 7}
        assert wire["end"] >= wire["start"] >= 0.0
        # attrs are copied, never aliased into the payload
        assert wire["attrs"] is not tracer.spans[0].attrs


class TestPayloadEvents:
    def _payload(self, spans, wall_epoch=100.0, pid=4242):
        return ObsPayload(pid=pid, wall_epoch=wall_epoch, spans=spans)

    def test_reanchors_on_parent_epoch(self):
        span = {"name": "w", "cat": "c", "tid": 0, "start": 0.5, "end": 0.7,
                "attrs": {}}
        events = payload_events(self._payload([span], wall_epoch=101.0),
                                parent_wall_epoch=100.0)
        (ev,) = events
        # worker started 1s after the parent epoch, span at +0.5s -> 1.5s
        assert ev["ts"] == (1.0 + 0.5) * 1e6
        assert ev["dur"] == (0.7 - 0.5) * 1e6
        assert ev["pid"] == 4242 and ev["ph"] == "X"

    def test_negative_offset_clamps_whole_lane(self):
        spans = [
            {"name": "a", "cat": "c", "tid": 0, "start": 0.2, "end": 0.3,
             "attrs": {}},
            {"name": "b", "cat": "c", "tid": 0, "start": 0.4, "end": 0.5,
             "attrs": {}},
        ]
        # worker epoch predates the parent by 10s: shift the lane as a
        # block so the earliest span lands at ts=0 and nesting survives
        events = payload_events(self._payload(spans, wall_epoch=90.0),
                                parent_wall_epoch=100.0)
        assert events[0]["ts"] == 0.0
        assert events[1]["ts"] == (0.4 - 0.2) * 1e6
        assert all(ev["ts"] >= 0.0 for ev in events)


class TestMergePayload:
    def test_none_is_noop(self):
        tracer = Tracer()
        merge_payload(tracer, None)
        assert tracer.foreign_events == []
        assert tracer.metrics.to_dict() == {}

    def test_disabled_tracer_ignores_payload(self):
        obs = WorkerObs()
        _record_some_work(obs)
        merge_payload(NULL_TRACER, obs.collect())
        assert NULL_TRACER.foreign_events == []

    def test_merges_metrics_and_counts_shipping(self):
        obs = WorkerObs()
        _record_some_work(obs)
        parent = Tracer()
        parent.metrics.counter("session.cache.miss").inc(10)
        merge_payload(parent, obs.collect())
        # series-preserving merge: worker counters add into parent series
        assert parent.metrics.counter("session.cache.miss").value == 11
        assert parent.metrics.histogram("stage.seconds", stage="match").count == 1
        # and the shipping itself is measured
        assert parent.metrics.counter("proc.obs.payloads").value == 1
        assert parent.metrics.counter("proc.obs.spans").value == 2
        assert len(parent.foreign_events) == 2

    def test_dropped_spans_counter(self):
        obs = WorkerObs(cap=1)
        for _ in range(3):
            with obs.tracer.span("s"):
                pass
        parent = Tracer()
        merge_payload(parent, obs.collect())
        assert parent.metrics.counter("proc.obs.spans_dropped").value == 2
