"""Tests for repro.types."""

import numpy as np
import pytest

from repro.types import (
    TRIPLET_DTYPE,
    MatchSet,
    concat_triplets,
    empty_triplets,
    make_triplets,
    mems_equal,
    sort_mems,
    triplets_from_tuples,
    unique_mems,
)


class TestTriplets:
    def test_make(self):
        t = make_triplets([1, 2], [3, 4], [5, 6])
        assert t.dtype == TRIPLET_DTYPE
        assert t["r"].tolist() == [1, 2]

    def test_make_shape_mismatch(self):
        with pytest.raises(ValueError):
            make_triplets([1], [2, 3], [4])

    def test_empty(self):
        assert empty_triplets().size == 0

    def test_concat(self):
        a = make_triplets([1], [2], [3])
        b = make_triplets([4], [5], [6])
        assert concat_triplets([a, b]).size == 2
        assert concat_triplets([]).size == 0
        assert concat_triplets([empty_triplets(), a]).size == 1

    def test_from_tuples_round_trip(self):
        tuples = [(1, 2, 3), (4, 5, 6)]
        arr = triplets_from_tuples(tuples)
        assert [tuple(int(v) for v in row) for row in arr] == tuples
        assert triplets_from_tuples([]).size == 0


class TestSorting:
    def test_diagonal_sort(self):
        # §III-C1 order: (r - q, then q)
        t = make_triplets([5, 1, 3], [1, 1, 2], [2, 2, 2])  # diags 4, 0, 1
        s = sort_mems(t)
        assert (s["r"] - s["q"]).tolist() == [0, 1, 4]

    def test_tie_on_q(self):
        t = make_triplets([4, 2], [3, 1], [2, 2])  # both diag 1
        s = sort_mems(t)
        assert s["q"].tolist() == [1, 3]

    def test_unique_drops_duplicates(self):
        t = make_triplets([1, 1, 2], [1, 1, 2], [3, 3, 3])
        assert unique_mems(t).size == 2

    def test_mems_equal_order_insensitive(self):
        a = make_triplets([1, 2], [1, 2], [3, 3])
        b = make_triplets([2, 1], [2, 1], [3, 3])
        assert mems_equal(a, b)
        assert not mems_equal(a, a[:1])


class TestMatchSet:
    def make(self):
        return MatchSet(make_triplets([1, 5, 1], [0, 2, 0], [4, 3, 4]))

    def test_dedup_on_construction(self):
        assert len(self.make()) == 2

    def test_iteration_yields_tuples(self):
        items = list(self.make())
        assert all(isinstance(x, tuple) and len(x) == 3 for x in items)

    def test_indexing(self):
        ms = self.make()
        assert isinstance(ms[0], tuple)

    def test_equality(self):
        assert self.make() == self.make()

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(self.make())

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TypeError):
            MatchSet(np.zeros(3, dtype=np.int64))

    def test_lengths_and_total(self):
        ms = self.make()
        assert sorted(ms.lengths().tolist()) == [3, 4]
        assert ms.total_matched_bases() == 7

    def test_filter_min_length(self):
        assert len(self.make().filter_min_length(4)) == 1

    def test_stats_dict(self):
        ms = MatchSet(empty_triplets(), stats={"a": 1})
        assert ms.stats["a"] == 1

    def test_repr(self):
        assert "n=2" in repr(self.make())

    def test_as_tuples(self):
        assert set(self.make().as_tuples()) == {(1, 0, 4), (5, 2, 3)}
