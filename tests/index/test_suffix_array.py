"""Tests for repro.index.suffix_array."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import IndexError_
from repro.index.suffix_array import (
    naive_suffix_array,
    rank_array,
    suffix_array,
    verify_suffix_array,
)

from tests.conftest import dna


class TestSuffixArray:
    def test_known_banana_like(self):
        # "ABAAB" over codes: suffixes sorted: AAB(2) AB(3) ABAAB(0) B(4) BAAB(1)
        codes = np.array([0, 1, 0, 0, 1], dtype=np.uint8)
        assert suffix_array(codes).tolist() == [2, 3, 0, 4, 1]

    def test_empty(self):
        assert suffix_array(np.empty(0, dtype=np.uint8)).size == 0

    def test_single(self):
        assert suffix_array(np.array([2], dtype=np.uint8)).tolist() == [0]

    def test_all_same_letter(self):
        # shorter suffixes first under the sentinel convention
        codes = np.full(6, 3, dtype=np.uint8)
        assert suffix_array(codes).tolist() == [5, 4, 3, 2, 1, 0]

    def test_strictly_decreasing(self):
        codes = np.array([3, 2, 1, 0], dtype=np.uint8)
        assert suffix_array(codes).tolist() == [3, 2, 1, 0]

    def test_strictly_increasing(self):
        codes = np.array([0, 1, 2, 3], dtype=np.uint8)
        assert suffix_array(codes).tolist() == [0, 1, 2, 3]

    def test_negative_symbols_rejected(self):
        with pytest.raises(IndexError_):
            suffix_array(np.array([-1, 0], dtype=np.int64))

    def test_large_alphabet_symbols(self):
        codes = np.array([100, 5, 100, 5], dtype=np.int64)
        assert suffix_array(codes).tolist() == naive_suffix_array_like(codes)

    @settings(max_examples=80)
    @given(dna(min_size=1, max_size=120, alphabet=2))
    def test_matches_naive_binary(self, codes):
        assert np.array_equal(suffix_array(codes), naive_suffix_array(codes))

    @settings(max_examples=40)
    @given(dna(min_size=1, max_size=120, alphabet=4))
    def test_matches_naive_dna(self, codes):
        assert np.array_equal(suffix_array(codes), naive_suffix_array(codes))

    def test_periodic_adversarial(self):
        codes = np.tile(np.array([0, 1], dtype=np.uint8), 40)
        assert verify_suffix_array(codes, suffix_array(codes))

    def test_fibonacci_word(self):
        a, b = [0], [0, 1]
        for _ in range(8):
            a, b = b, b + a
        codes = np.array(b, dtype=np.uint8)
        assert np.array_equal(suffix_array(codes), naive_suffix_array(codes))


def naive_suffix_array_like(codes):
    items = sorted(range(len(codes)), key=lambda i: list(codes[i:]))
    return items


class TestRankArray:
    def test_inverse_permutation(self):
        codes = np.array([0, 1, 0, 2, 1], dtype=np.uint8)
        sa = suffix_array(codes)
        rank = rank_array(sa)
        assert np.array_equal(rank[sa], np.arange(sa.size))
        assert np.array_equal(sa[rank], np.arange(sa.size))


class TestVerify:
    def test_accepts_correct(self):
        codes = np.array([0, 1, 2, 0, 1], dtype=np.uint8)
        assert verify_suffix_array(codes, suffix_array(codes))

    def test_rejects_swapped(self):
        codes = np.array([0, 1, 2, 0, 1], dtype=np.uint8)
        sa = suffix_array(codes)
        sa[0], sa[1] = sa[1], sa[0]
        assert not verify_suffix_array(codes, sa)

    def test_rejects_non_permutation(self):
        codes = np.array([0, 1], dtype=np.uint8)
        assert not verify_suffix_array(codes, np.array([0, 0]))

    def test_rejects_wrong_size(self):
        codes = np.array([0, 1], dtype=np.uint8)
        assert not verify_suffix_array(codes, np.array([0]))

    def test_empty_ok(self):
        assert verify_suffix_array(np.empty(0, np.uint8), np.empty(0, np.int64))
