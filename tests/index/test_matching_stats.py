"""Matching-statistics cross-validation across engines."""

import numpy as np
from hypothesis import given, settings

from repro.baselines import SlaMemFinder
from repro.index.matching import SuffixArraySearcher

from tests.conftest import dna_pair


def naive_ms(R, Q):
    out = np.zeros(len(Q), dtype=np.int64)
    for q in range(len(Q)):
        best = 0
        for r in range(len(R)):
            lam = 0
            while r + lam < len(R) and q + lam < len(Q) and R[r + lam] == Q[q + lam]:
                lam += 1
            best = max(best, lam)
        out[q] = best
    return out


class TestMatchingStatistics:
    @settings(max_examples=25, deadline=None)
    @given(dna_pair(max_size=60))
    def test_suffix_array_matches_naive(self, pair):
        R, Q = pair
        s = SuffixArraySearcher(R)
        assert np.array_equal(s.matching_statistics(Q), naive_ms(R, Q))

    @settings(max_examples=15, deadline=None)
    @given(dna_pair(max_size=60))
    def test_fm_recurrence_matches_suffix_array(self, pair):
        R, Q = pair
        f = SlaMemFinder(occ_rate=8, sa_rate=4)
        f.build_index(R)
        s = SuffixArraySearcher(R)
        assert np.array_equal(f.matching_statistics(Q), s.matching_statistics(Q))

    def test_ms_lipschitz_property(self):
        """MS[q] <= MS[q+1] + 1 — the classic matching-statistics bound."""
        rng = np.random.default_rng(0)
        R = rng.integers(0, 3, 300).astype(np.uint8)
        Q = rng.integers(0, 3, 200).astype(np.uint8)
        ms = SuffixArraySearcher(R).matching_statistics(Q)
        assert (ms[:-1] <= ms[1:] + 1).all()

    def test_position_subset(self):
        rng = np.random.default_rng(1)
        R = rng.integers(0, 3, 100).astype(np.uint8)
        Q = rng.integers(0, 3, 80).astype(np.uint8)
        s = SuffixArraySearcher(R)
        full = s.matching_statistics(Q)
        sub = s.matching_statistics(Q, np.array([3, 40, 79]))
        assert sub.tolist() == [full[3], full[40], full[79]]

    def test_identical_sequences(self):
        R = (np.arange(50) % 4).astype(np.uint8)
        ms = SuffixArraySearcher(R).matching_statistics(R.copy())
        assert ms[0] == 50
        assert (ms == np.arange(50, 0, -1)).all()
