"""Tests for repro.index.esa (LCP intervals + enhanced sparse SA)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import InvalidParameterError
from repro.index.esa import EnhancedSparseSuffixArray, LCPIntervals
from repro.index.lcp import lcp_array
from repro.index.suffix_array import suffix_array

from tests.conftest import dna


def build_intervals(codes):
    sa = suffix_array(codes)
    return LCPIntervals(lcp_array(codes, sa)), sa


class TestLCPIntervals:
    def test_depth_of_whole_array(self):
        codes = np.array([0, 1, 0, 1], dtype=np.uint8)
        iv, _ = build_intervals(codes)
        assert iv.depth(0, codes.size) == 0

    def test_depth_scalar_and_vector(self):
        codes = np.array([0, 0, 0, 1], dtype=np.uint8)
        iv, _ = build_intervals(codes)
        lo = np.array([0, 1])
        hi = np.array([2, 3])
        vec = iv.depth(lo, hi)
        assert vec[0] == iv.depth(0, 2)
        assert vec[1] == iv.depth(1, 3)

    def test_parent_of_root_is_root(self):
        codes = np.array([0, 1, 2, 3], dtype=np.uint8)
        iv, _ = build_intervals(codes)
        plo, phi, pd = iv.parent(0, 4)
        assert (plo, phi, pd) == (0, 4, 0)

    @staticmethod
    def _pattern_interval(codes, sa, pos, length):
        """SA interval of the substring codes[pos:pos+length] (naive)."""
        pat = codes[pos : pos + length].tobytes()
        raw = codes.tobytes()
        members = [i for i in range(sa.size) if raw[sa[i] : sa[i] + length] == pat]
        return members[0], members[-1] + 1

    @settings(max_examples=40)
    @given(dna(min_size=3, max_size=60, alphabet=2))
    def test_parent_is_prefix_interval(self, codes):
        # parent() is defined on genuine pattern intervals: the parent of
        # the interval of P must be the interval of P[:pd].
        iv, sa = build_intervals(codes)
        rng = np.random.default_rng(0)
        for _ in range(8):
            pos = int(rng.integers(0, codes.size))
            length = int(rng.integers(1, codes.size - pos + 1))
            lo, hi = self._pattern_interval(codes, sa, pos, length)
            plo, phi, pd = iv.parent(lo, hi)
            assert plo <= lo and phi >= hi
            assert pd < length
            assert (plo, phi) == self._pattern_interval(codes, sa, pos, pd)

    @settings(max_examples=30)
    @given(dna(min_size=3, max_size=60, alphabet=2))
    def test_parent_scalar_matches_vector(self, codes):
        iv, sa = build_intervals(codes)
        rng = np.random.default_rng(1)
        for _ in range(8):
            pos = int(rng.integers(0, codes.size))
            length = int(rng.integers(1, codes.size - pos + 1))
            lo, hi = self._pattern_interval(codes, sa, pos, length)
            assert iv.parent_scalar(lo, hi) == iv.parent(lo, hi)

    def test_parent_is_minimal_enclosing(self):
        # all-same-letter text: interval tree is a path
        codes = np.full(6, 1, dtype=np.uint8)
        iv, _ = build_intervals(codes)
        # suffixes sorted by length; interval [3,6) groups the 3 longest
        plo, phi, pd = iv.parent(5, 6)
        assert plo < 5 or phi > 6


class TestEnhancedSparseSuffixArray:
    def test_has_prefix_table_by_default(self):
        rng = np.random.default_rng(2)
        R = rng.integers(0, 4, 300).astype(np.uint8)
        e = EnhancedSparseSuffixArray(R, sparseness=2)
        assert e.prefix_table_k >= 1
        assert e._pt_lo is not None

    def test_rejects_no_table(self):
        with pytest.raises(InvalidParameterError):
            EnhancedSparseSuffixArray(np.zeros(10, np.uint8), sparseness=1,
                                      prefix_table_k=0)

    def test_same_candidates_as_plain_sparse(self):
        from repro.index.sparse_sa import SparseSuffixArray

        rng = np.random.default_rng(3)
        R = rng.integers(0, 3, 150).astype(np.uint8)
        Q = rng.integers(0, 3, 100).astype(np.uint8)
        a = SparseSuffixArray(R, sparseness=2)
        b = EnhancedSparseSuffixArray(R, sparseness=2, prefix_table_k=4)
        qpos = np.arange(Q.size)
        ra = a.enumerate_candidates(Q, qpos, 4)
        rb = b.enumerate_candidates(Q, qpos, 4)
        assert set(zip(*[x.tolist() for x in ra])) == set(zip(*[x.tolist() for x in rb]))

    def test_intervals_attached(self):
        e = EnhancedSparseSuffixArray(np.zeros(20, np.uint8), sparseness=2)
        assert isinstance(e.intervals, LCPIntervals)
