"""Tests for repro.index.sais — the third, independent SA builder."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import IndexError_
from repro.index.sais import sais_suffix_array
from repro.index.suffix_array import naive_suffix_array, suffix_array

from tests.conftest import dna


class TestSais:
    def test_classic_example(self):
        # "banana" over a mapped alphabet b=1,a=0,n=2
        codes = np.array([1, 0, 2, 0, 2, 0], dtype=np.uint8)
        assert sais_suffix_array(codes).tolist() == [5, 3, 1, 0, 4, 2]

    def test_empty_and_single(self):
        assert sais_suffix_array(np.empty(0, dtype=np.uint8)).size == 0
        assert sais_suffix_array(np.array([2], dtype=np.uint8)).tolist() == [0]

    def test_all_same_letter(self):
        codes = np.full(9, 1, dtype=np.uint8)
        assert sais_suffix_array(codes).tolist() == list(range(8, -1, -1))

    def test_two_letters(self):
        codes = np.array([1, 0], dtype=np.uint8)
        assert sais_suffix_array(codes).tolist() == [1, 0]

    def test_negative_rejected(self):
        with pytest.raises(IndexError_):
            sais_suffix_array(np.array([-1], dtype=np.int64))

    @settings(max_examples=80, deadline=None)
    @given(dna(min_size=1, max_size=100, alphabet=2))
    def test_three_builders_agree_binary(self, codes):
        expect = naive_suffix_array(codes)
        assert np.array_equal(sais_suffix_array(codes), expect)
        assert np.array_equal(suffix_array(codes), expect)

    @settings(max_examples=40, deadline=None)
    @given(dna(min_size=1, max_size=120, alphabet=4))
    def test_three_builders_agree_dna(self, codes):
        expect = suffix_array(codes)
        assert np.array_equal(sais_suffix_array(codes), expect)

    def test_deep_recursion_input(self):
        # Fibonacci-like words force recursive naming collisions
        a, b = [0], [0, 1]
        for _ in range(10):
            a, b = b, b + a
        codes = np.array(b, dtype=np.uint8)
        assert np.array_equal(sais_suffix_array(codes), suffix_array(codes))

    def test_periodic_input(self):
        codes = np.tile(np.array([0, 1, 1, 0, 1], dtype=np.uint8), 25)
        assert np.array_equal(sais_suffix_array(codes), suffix_array(codes))

    def test_large_alphabet(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 200, 150).astype(np.int64)
        assert np.array_equal(sais_suffix_array(codes), suffix_array(codes))

    def test_realistic_dna(self):
        from repro.sequence.synthetic import markov_dna, plant_repeats

        codes = plant_repeats(markov_dna(2000, seed=1), seed=2)
        assert np.array_equal(sais_suffix_array(codes), suffix_array(codes))
