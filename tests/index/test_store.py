"""Tests for the persistent tiered index store (hot → warm → build)."""

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.index.kmer_index import build_kmer_index
from repro.index.store import (
    STORE_ENV_VAR,
    IndexStore,
    clear_store_registry,
    default_store,
    resolve_store,
    row_key,
    searcher_key,
    store_at,
)


@pytest.fixture
def ref(rng):
    return rng.integers(0, 4, 800).astype(np.uint8)


@pytest.fixture(autouse=True)
def _clean_registry():
    clear_store_registry()
    yield
    clear_store_registry()


def _build_counter(codes, calls, **kw):
    """A builder closure that counts its invocations."""

    def build():
        calls.append(1)
        t0 = time.perf_counter()
        index = build_kmer_index(codes, **kw)
        return index, time.perf_counter() - t0

    return build


FP = "f" * 40  # a syntactically plausible fingerprint


class TestKeying:
    def test_row_key_deterministic(self):
        a = row_key(FP, seed_length=4, step=3, region_start=0, region_end=100)
        b = row_key(FP, seed_length=4, step=3, region_start=0, region_end=100)
        assert a == b and a.startswith(f"row-{FP}-")

    def test_row_key_params_distinct(self):
        base = dict(seed_length=4, step=3, region_start=0, region_end=100)
        keys = {row_key(FP, **base)}
        for change in (
            dict(seed_length=5), dict(step=2),
            dict(region_start=100, region_end=200), dict(region_end=101),
        ):
            keys.add(row_key(FP, **{**base, **change}))
        assert len(keys) == 5  # every param participates in identity

    def test_searcher_key_distinct_from_row_key(self):
        r = row_key(FP, seed_length=4, step=3, region_start=0, region_end=100)
        s = searcher_key(FP, sparseness=1, prefix_table_k=0)
        assert r != s and s.startswith(f"sa-{FP}-")

    def test_keys_are_filesystem_safe(self):
        key = row_key(FP, seed_length=4, step=3, region_start=0, region_end=9)
        assert "/" not in key and key == os.path.basename(key)


class TestTierWalk:
    def test_cold_then_hot_then_warm(self, ref, tmp_path):
        store = IndexStore(tmp_path)
        calls = []
        build = _build_counter(ref, calls, seed_length=4, step=3)

        idx1, sec1, src1 = store.get_or_build_row(
            FP, seed_length=4, step=3, region_start=0,
            region_end=ref.size, build=build,
        )
        assert src1 == "build" and calls == [1]

        idx2, sec2, src2 = store.get_or_build_row(
            FP, seed_length=4, step=3, region_start=0,
            region_end=ref.size, build=build,
        )
        assert src2 == "hot" and idx2 is idx1 and sec2 == 0.0
        assert calls == [1]

        store.clear_hot()
        idx3, _, src3 = store.get_or_build_row(
            FP, seed_length=4, step=3, region_start=0,
            region_end=ref.size, build=build,
        )
        assert src3 == "warm" and calls == [1]  # loaded, not rebuilt
        assert isinstance(idx3.locs, np.memmap)  # mmap-backed
        assert np.array_equal(idx3.locs, idx1.locs)
        assert np.array_equal(idx3.ptrs, idx1.ptrs)

    def test_counters(self, ref, tmp_path):
        store = IndexStore(tmp_path)
        build = _build_counter(ref, [], seed_length=4, step=3)
        kw = dict(seed_length=4, step=3, region_start=0, region_end=ref.size)
        store.get_or_build_row(FP, build=build, **kw)
        store.get_or_build_row(FP, build=build, **kw)
        store.clear_hot()
        store.get_or_build_row(FP, build=build, **kw)
        s = store.stats()
        assert s["builds"] == 1 and s["misses"] == 1
        assert s["hot_hits"] == 1 and s["warm_hits"] == 1
        assert s["bytes_mmapped"] > 0
        assert s["n_bundles"] == 1
        assert s["lock_wait_seconds"] >= 0.0

    def test_distinct_keys_distinct_bundles(self, ref, tmp_path):
        store = IndexStore(tmp_path)
        for step in (2, 3):
            store.get_or_build_row(
                FP, seed_length=4, step=step, region_start=0,
                region_end=ref.size,
                build=_build_counter(ref, [], seed_length=4, step=step),
            )
        assert store.stats()["n_bundles"] == 2

    def test_hot_lru_eviction(self, ref, tmp_path):
        store = IndexStore(tmp_path, hot_capacity=2)
        for step in (1, 2, 3):
            store.get_or_build_row(
                FP, seed_length=4, step=step, region_start=0,
                region_end=ref.size,
                build=_build_counter(ref, [], seed_length=4, step=step),
            )
        assert store.stats()["n_hot"] == 2  # oldest evicted
        assert store.stats()["n_bundles"] == 3  # disk keeps everything

    def test_metrics_and_spans(self, ref, tmp_path):
        from repro.obs import Tracer

        tracer = Tracer()
        store = IndexStore(tmp_path, tracer=tracer)
        kw = dict(seed_length=4, step=3, region_start=0, region_end=ref.size)
        build = _build_counter(ref, [], seed_length=4, step=3)
        store.get_or_build_row(FP, build=build, **kw)
        store.get_or_build_row(FP, build=build, **kw)
        store.clear_hot()
        store.get_or_build_row(FP, build=build, **kw)
        m = tracer.metrics
        assert m.counter("index.store.misses").value == 1
        assert m.counter("index.store.builds").value == 1
        assert m.counter("index.store.hits", tier="hot").value == 1
        assert m.counter("index.store.hits", tier="warm").value == 1
        assert m.counter("index.store.bytes_mmapped").value > 0
        assert m.histogram("index.store.lock_wait_seconds").count >= 1
        names = {s.name for s in tracer.spans}
        assert {"store.get", "store.load", "store.build",
                "store.persist", "store.lock"} <= names

    def test_per_call_tracer_overrides_store_tracer(self, ref, tmp_path):
        from repro.obs import Tracer

        call_tracer = Tracer()
        store = IndexStore(tmp_path)  # null default tracer
        store.get_or_build_row(
            FP, seed_length=4, step=3, region_start=0, region_end=ref.size,
            build=_build_counter(ref, [], seed_length=4, step=3),
            tracer=call_tracer,
        )
        assert call_tracer.metrics.counter("index.store.builds").value == 1


class TestInvalidBundleRecovery:
    def _fill(self, store, ref):
        kw = dict(seed_length=4, step=3, region_start=0, region_end=ref.size)
        _, _, src = store.get_or_build_row(
            FP, build=_build_counter(ref, [], seed_length=4, step=3), **kw
        )
        return kw

    def test_truncated_bundle_is_rebuilt(self, ref, tmp_path):
        store = IndexStore(tmp_path)
        kw = self._fill(store, ref)
        store.clear_hot()
        key = row_key(FP, **kw)
        locs = store.root / key / "locs.npy"
        locs.write_bytes(locs.read_bytes()[:8])  # external corruption
        calls = []
        idx, _, src = store.get_or_build_row(
            FP, build=_build_counter(ref, calls, seed_length=4, step=3), **kw
        )
        assert src == "build" and calls == [1]
        assert store.stats()["invalid_bundles"] >= 1
        # the rebuilt bundle is valid again
        store.clear_hot()
        _, _, src2 = store.get_or_build_row(
            FP, build=_build_counter(ref, calls, seed_length=4, step=3), **kw
        )
        assert src2 == "warm" and calls == [1]

    def test_wiped_manifest_is_rebuilt(self, ref, tmp_path):
        store = IndexStore(tmp_path)
        kw = self._fill(store, ref)
        store.clear_hot()
        (store.root / row_key(FP, **kw) / "meta.json").write_text("{oops")
        calls = []
        _, _, src = store.get_or_build_row(
            FP, build=_build_counter(ref, calls, seed_length=4, step=3), **kw
        )
        assert src == "build" and calls == [1]


class TestSearcherTier:
    def test_searcher_through_tiers(self, ref, tmp_path):
        store = IndexStore(tmp_path)
        s1, _, src1 = store.get_or_build_searcher(
            ref, sparseness=4, prefix_table_k=3
        )
        assert src1 == "build"
        store.clear_hot()
        s2, _, src2 = store.get_or_build_searcher(
            ref, sparseness=4, prefix_table_k=3
        )
        assert src2 == "warm"
        assert isinstance(s2.sa, np.memmap)
        assert isinstance(s2._pt_lo, np.memmap)  # table loaded, not rebuilt
        assert np.array_equal(s1.sa, s2.sa)

    def test_searcher_params_distinct(self, ref, tmp_path):
        store = IndexStore(tmp_path)
        _, _, a = store.get_or_build_searcher(ref, sparseness=1)
        _, _, b = store.get_or_build_searcher(ref, sparseness=4)
        assert (a, b) == ("build", "build")
        assert store.stats()["n_bundles"] == 2


class TestWholeReference:
    def test_reference_index_round_trip(self, ref, tmp_path):
        store = IndexStore(tmp_path)
        idx, _, src = store.get_or_build_reference_index(
            ref, seed_length=4, step=3
        )
        assert src == "build"
        expect = build_kmer_index(ref, seed_length=4, step=3)
        assert np.array_equal(idx.locs, expect.locs)
        store.clear_hot()
        idx2, _, src2 = store.get_or_build_reference_index(
            ref, seed_length=4, step=3
        )
        assert src2 == "warm"
        assert np.array_equal(idx2.locs, expect.locs)


class TestRegistryAndEnv:
    def test_store_at_shares_instances(self, tmp_path):
        a = store_at(tmp_path)
        b = store_at(tmp_path)
        assert a is b

    def test_default_store_reads_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert default_store() is None
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path))
        store = default_store()
        assert store is not None
        assert str(store.cache_dir) == str(tmp_path.resolve())

    def test_resolve_store(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert resolve_store(None) is None
        store = store_at(tmp_path)
        assert resolve_store(store) is store
        assert resolve_store(tmp_path) is store
        assert resolve_store(str(tmp_path)) is store

    def test_purge(self, tmp_path, rng):
        ref = rng.integers(0, 4, 200).astype(np.uint8)
        store = IndexStore(tmp_path)
        store.get_or_build_reference_index(ref, seed_length=3, step=2)
        assert store.stats()["n_bundles"] == 1
        store.purge()
        assert store.stats()["n_bundles"] == 0
        assert store.stats()["n_hot"] == 0


# -- cross-process single-flight ------------------------------------------------

_HAMMER = """
import sys, time
import numpy as np
from repro.index.store import IndexStore

cache_dir, log_path = sys.argv[1], sys.argv[2]
ref = (np.arange(4096, dtype=np.uint8) * 7 + 3) % 4
store = IndexStore(cache_dir)

def build():
    # Record every real build; the file lock must make this happen once
    # across all racing processes.
    with open(log_path, "a") as fh:
        fh.write("build\\n")
    time.sleep(0.2)  # widen the race window
    from repro.index.kmer_index import build_kmer_index
    t0 = time.perf_counter()
    idx = build_kmer_index(ref, seed_length=4, step=3)
    return idx, time.perf_counter() - t0

fp = "a" * 40
idx, _, source = store.get_or_build_row(
    fp, seed_length=4, step=3, region_start=0, region_end=ref.size,
    build=build,
)
assert int(idx.ptrs[-1]) == int(idx.locs.size)
print(source)
"""


class TestCrossProcessSingleFlight:
    def test_n_processes_one_build(self, tmp_path):
        """N racing processes produce exactly one on-disk build per key."""
        cache = tmp_path / "cache"
        log = tmp_path / "builds.log"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(p) for p in sys.path if p] or [""]
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _HAMMER, str(cache), str(log)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                env=env, text=True,
            )
            for _ in range(4)
        ]
        sources = []
        for p in procs:
            out, err = p.communicate(timeout=120)
            assert p.returncode == 0, err
            sources.append(out.strip())
        # exactly one process built; everyone else warm-loaded the bundle
        assert log.read_text().count("build") == 1
        assert sorted(sources).count("build") == 1
        assert sources.count("warm") == 3
        # and exactly one bundle landed on disk, with no temp litter
        store = IndexStore(cache)
        bundles = [p for p in store.root.iterdir() if p.is_dir()]
        assert len(bundles) == 1
        assert not [p for p in store.root.iterdir()
                    if p.name.startswith(".") and p.is_dir()]


class TestLockFdLifetime:
    """A build exception inside the single-flight critical section must
    release the per-key fcntl lock (no orphaned .lock fd)."""

    def test_build_exception_releases_key_lock(self, ref, tmp_path,
                                               resource_tracker):
        store = IndexStore(tmp_path)

        def explode():
            raise RuntimeError("planted build failure")

        with pytest.raises(RuntimeError, match="planted build failure"):
            store.get_or_build_row(
                FP, seed_length=4, step=3, region_start=0,
                region_end=ref.size, build=explode,
            )
        # the tracker saw the acquire; the finally released it
        orphaned = [r for r in resource_tracker.leaks() if r.kind == "lock"]
        assert orphaned == [], [r.format() for r in orphaned]

        # and the key is actually lockable again: a fresh build proceeds
        calls = []
        _, _, src = store.get_or_build_row(
            FP, seed_length=4, step=3, region_start=0, region_end=ref.size,
            build=_build_counter(ref, calls, seed_length=4, step=3),
        )
        assert src == "build" and calls == [1]
