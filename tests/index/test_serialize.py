"""Tests for index persistence."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.index.kmer_index import build_kmer_index
from repro.index.matching import SuffixArraySearcher
from repro.index.serialize import (
    load_kmer_index,
    load_searcher,
    save_kmer_index,
    save_searcher,
)


@pytest.fixture
def ref(rng):
    return rng.integers(0, 4, 500).astype(np.uint8)


class TestKmerIndexRoundTrip:
    def test_round_trip(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        p = tmp_path / "idx.npz"
        save_kmer_index(idx, p)
        back = load_kmer_index(p)
        assert back.seed_length == 4 and back.step == 3
        assert np.array_equal(back.ptrs, idx.ptrs)
        assert np.array_equal(back.locs, idx.locs)

    def test_loaded_index_matches(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        p = tmp_path / "idx.npz"
        save_kmer_index(idx, p)
        back = load_kmer_index(p)
        # identical lookups
        seeds = np.arange(50, dtype=np.int64)
        a = idx.lookup(seeds)
        b = back.lookup(seeds)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_corruption_detected(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=3, step=1)
        p = tmp_path / "idx.npz"
        # corrupt locs ordering before saving
        bad_locs = idx.locs.copy()
        sizes = np.diff(idx.ptrs)
        seed = int(np.argmax(sizes))
        lo = int(idx.ptrs[seed])
        bad_locs[lo], bad_locs[lo + 1] = bad_locs[lo + 1], bad_locs[lo].copy()
        from dataclasses import replace

        save_kmer_index(replace(idx, locs=bad_locs), p)
        with pytest.raises(IndexError_, match="corrupt"):
            load_kmer_index(p)

    def test_wrong_magic(self, ref, tmp_path):
        s = SuffixArraySearcher(ref)
        p = tmp_path / "sa.npz"
        save_searcher(s, p)
        with pytest.raises(IndexError_, match="not a"):
            load_kmer_index(p)


class TestSearcherRoundTrip:
    @pytest.mark.parametrize("sparseness,k", [(1, 0), (1, 3), (4, 3)])
    def test_round_trip_equivalent_queries(self, ref, tmp_path, rng, sparseness, k):
        s = SuffixArraySearcher(ref, sparseness=sparseness, prefix_table_k=k)
        p = tmp_path / "sa.npz"
        save_searcher(s, p)
        back = load_searcher(p)
        Q = rng.integers(0, 4, 300).astype(np.uint8)
        qpos = np.arange(Q.size)
        got = back.enumerate_candidates(Q, qpos, 5)
        expect = s.enumerate_candidates(Q, qpos, 5)
        assert all(np.array_equal(g, e) for g, e in zip(got, expect, strict=True))

    def test_corrupt_sa_detected(self, ref, tmp_path):
        s = SuffixArraySearcher(ref)
        s.sa[0], s.sa[1] = s.sa[1], s.sa[0].copy()
        p = tmp_path / "sa.npz"
        save_searcher(s, p)
        with pytest.raises(IndexError_, match="corrupt"):
            load_searcher(p)

    def test_future_version_rejected(self, ref, tmp_path):
        s = SuffixArraySearcher(ref)
        p = tmp_path / "sa.npz"
        save_searcher(s, p)
        data = dict(np.load(p, allow_pickle=False))
        data["version"] = np.array(99)
        np.savez_compressed(p, **data)
        with pytest.raises(IndexError_, match="newer"):
            load_searcher(p)
