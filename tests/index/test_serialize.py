"""Tests for index persistence."""

import subprocess
import sys

import numpy as np
import pytest

from repro.errors import IndexError_, IndexIntegrityError
from repro.index.kmer_index import build_kmer_index
from repro.index.matching import SuffixArraySearcher
from repro.index.serialize import (
    FORMAT_VERSION,
    load_kmer_bundle,
    load_kmer_index,
    load_searcher,
    load_searcher_bundle,
    npz_path,
    save_kmer_bundle,
    save_kmer_index,
    save_searcher,
    save_searcher_bundle,
)


@pytest.fixture
def ref(rng):
    return rng.integers(0, 4, 500).astype(np.uint8)


class TestKmerIndexRoundTrip:
    def test_round_trip(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        p = tmp_path / "idx.npz"
        save_kmer_index(idx, p)
        back = load_kmer_index(p)
        assert back.seed_length == 4 and back.step == 3
        assert np.array_equal(back.ptrs, idx.ptrs)
        assert np.array_equal(back.locs, idx.locs)

    def test_loaded_index_matches(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        p = tmp_path / "idx.npz"
        save_kmer_index(idx, p)
        back = load_kmer_index(p)
        # identical lookups
        seeds = np.arange(50, dtype=np.int64)
        a = idx.lookup(seeds)
        b = back.lookup(seeds)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_corruption_detected(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=3, step=1)
        p = tmp_path / "idx.npz"
        # corrupt locs ordering before saving
        bad_locs = idx.locs.copy()
        sizes = np.diff(idx.ptrs)
        seed = int(np.argmax(sizes))
        lo = int(idx.ptrs[seed])
        bad_locs[lo], bad_locs[lo + 1] = bad_locs[lo + 1], bad_locs[lo].copy()
        from dataclasses import replace

        save_kmer_index(replace(idx, locs=bad_locs), p)
        with pytest.raises(IndexError_, match="corrupt"):
            load_kmer_index(p)

    def test_wrong_magic(self, ref, tmp_path):
        s = SuffixArraySearcher(ref)
        p = tmp_path / "sa.npz"
        save_searcher(s, p)
        with pytest.raises(IndexError_, match="not a"):
            load_kmer_index(p)


class TestSearcherRoundTrip:
    @pytest.mark.parametrize("sparseness,k", [(1, 0), (1, 3), (4, 3)])
    def test_round_trip_equivalent_queries(self, ref, tmp_path, rng, sparseness, k):
        s = SuffixArraySearcher(ref, sparseness=sparseness, prefix_table_k=k)
        p = tmp_path / "sa.npz"
        save_searcher(s, p)
        back = load_searcher(p)
        Q = rng.integers(0, 4, 300).astype(np.uint8)
        qpos = np.arange(Q.size)
        got = back.enumerate_candidates(Q, qpos, 5)
        expect = s.enumerate_candidates(Q, qpos, 5)
        assert all(np.array_equal(g, e) for g, e in zip(got, expect, strict=True))

    def test_corrupt_sa_detected(self, ref, tmp_path):
        s = SuffixArraySearcher(ref)
        s.sa[0], s.sa[1] = s.sa[1], s.sa[0].copy()
        p = tmp_path / "sa.npz"
        save_searcher(s, p)
        with pytest.raises(IndexError_, match="corrupt"):
            load_searcher(p)

    def test_future_version_rejected(self, ref, tmp_path):
        s = SuffixArraySearcher(ref)
        p = tmp_path / "sa.npz"
        save_searcher(s, p)
        data = dict(np.load(p, allow_pickle=False))
        data["version"] = np.array(99)
        np.savez_compressed(p, **data)
        with pytest.raises(IndexError_, match="newer"):
            load_searcher(p)


class TestSuffixNormalization:
    """np.savez silently appends .npz; save/load must agree on the name."""

    def test_save_without_suffix_load_without_suffix(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        p = tmp_path / "idx"  # no .npz
        written = save_kmer_index(idx, p)
        assert written == npz_path(p) and written.exists()
        assert not p.exists()  # nothing at the bare name
        back = load_kmer_index(p)  # bare spelling resolves to .npz
        assert np.array_equal(back.locs, idx.locs)

    def test_save_without_suffix_load_with_suffix(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        save_kmer_index(idx, tmp_path / "idx")
        back = load_kmer_index(tmp_path / "idx.npz")
        assert np.array_equal(back.ptrs, idx.ptrs)

    def test_searcher_suffix_normalized(self, ref, tmp_path):
        s = SuffixArraySearcher(ref)
        written = save_searcher(s, tmp_path / "sa")
        assert written.name == "sa.npz"
        load_searcher(tmp_path / "sa")


class TestCrashSafety:
    def test_no_temp_litter_after_save(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        save_kmer_index(idx, tmp_path / "idx.npz")
        save_searcher(SuffixArraySearcher(ref), tmp_path / "sa.npz")
        names = {p.name for p in tmp_path.iterdir()}
        assert names == {"idx.npz", "sa.npz"}  # no .tmp files left behind

    def test_truncated_archive_rejected_structurally(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        p = save_kmer_index(idx, tmp_path / "idx.npz")
        whole = p.read_bytes()
        p.write_bytes(whole[: len(whole) // 2])  # simulate external truncation
        with pytest.raises(IndexError_, match="truncated or corrupt"):
            load_kmer_index(p)

    def test_garbage_file_rejected(self, tmp_path):
        p = tmp_path / "junk.npz"
        p.write_bytes(b"this is not a zip archive")
        with pytest.raises(IndexError_):
            load_kmer_index(p)

    def test_overwrite_is_atomic_replacement(self, ref, tmp_path):
        idx_a = build_kmer_index(ref, seed_length=4, step=3)
        idx_b = build_kmer_index(ref, seed_length=4, step=4)
        p = tmp_path / "idx.npz"
        save_kmer_index(idx_a, p)
        save_kmer_index(idx_b, p)  # replaces, never appends/mixes
        assert load_kmer_index(p).step == 4


class TestHeaderValidation:
    def _raw(self, p):
        return dict(np.load(p, allow_pickle=False))

    def test_missing_version_rejected(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        p = save_kmer_index(idx, tmp_path / "idx.npz")
        data = self._raw(p)
        del data["version"]
        np.savez_compressed(p, **data)
        with pytest.raises(IndexError_, match="no format version"):
            load_kmer_index(p)

    def test_missing_array_rejected(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        p = save_kmer_index(idx, tmp_path / "idx.npz")
        data = self._raw(p)
        del data["locs"]
        np.savez_compressed(p, **data)
        with pytest.raises(IndexError_, match="missing required array"):
            load_kmer_index(p)

    def test_dtype_mismatch_rejected_not_converted(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        p = save_kmer_index(idx, tmp_path / "idx.npz")
        data = self._raw(p)
        data["ptrs"] = data["ptrs"].astype(np.int32)
        np.savez_compressed(p, **data)
        with pytest.raises(IndexError_, match="dtype"):
            load_kmer_index(p)

    def test_wrong_endianness_rejected(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        p = save_kmer_index(idx, tmp_path / "idx.npz")
        data = self._raw(p)
        data["locs"] = data["locs"].astype(np.dtype(">i8"))
        np.savez_compressed(p, **data)
        with pytest.raises(IndexError_, match="dtype"):
            load_kmer_index(p)

    def test_v1_archive_loads_under_v2(self, ref, tmp_path):
        """The .npz layout didn't change in v2: v1 files must keep loading."""
        idx = build_kmer_index(ref, seed_length=4, step=3)
        p = save_kmer_index(idx, tmp_path / "idx.npz")
        data = self._raw(p)
        data["version"] = np.array(1)
        np.savez_compressed(p, **data)
        back = load_kmer_index(p)
        assert np.array_equal(back.locs, idx.locs)

    def test_check_raises_structured_error_under_python_O(self, tmp_path):
        """-O strips asserts; integrity checks must survive it."""
        code = (
            "import numpy as np\n"
            "from repro.errors import IndexIntegrityError\n"
            "from repro.index.kmer_index import build_kmer_index\n"
            "idx = build_kmer_index("
            "np.arange(64, dtype=np.uint8) % 4, seed_length=3, step=1)\n"
            "idx.ptrs[-1] += 1\n"
            "try:\n"
            "    idx.check()\n"
            "except IndexIntegrityError:\n"
            "    raise SystemExit(0)\n"
            "raise SystemExit(1)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-O", "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr


class TestKmerBundle:
    def test_round_trip_mmap(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        d = save_kmer_bundle(idx, tmp_path / "bundle")
        back = load_kmer_bundle(d, mmap=True, check=True)
        assert isinstance(back.ptrs, np.memmap)  # zero-copy load
        assert np.array_equal(back.ptrs, idx.ptrs)
        assert np.array_equal(back.locs, idx.locs)
        assert back.seed_length == 4 and back.step == 3
        assert back.region_start == idx.region_start
        assert back.region_end == idx.region_end

    def test_round_trip_materialized(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        d = save_kmer_bundle(idx, tmp_path / "bundle")
        back = load_kmer_bundle(d, mmap=False)
        assert not isinstance(back.locs, np.memmap)
        assert np.array_equal(back.locs, idx.locs)

    def test_missing_meta_is_file_not_found(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError):
            load_kmer_bundle(tmp_path / "empty")
        with pytest.raises(FileNotFoundError):
            load_kmer_bundle(tmp_path / "never-created")

    def test_wrong_magic_bundle(self, ref, tmp_path):
        d = save_searcher_bundle(SuffixArraySearcher(ref), tmp_path / "sa")
        with pytest.raises(IndexError_, match="not a"):
            load_kmer_bundle(d)

    def test_truncated_array_file_rejected(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        d = save_kmer_bundle(idx, tmp_path / "bundle")
        locs = d / "locs.npy"
        locs.write_bytes(locs.read_bytes()[:16])
        with pytest.raises(IndexError_):
            load_kmer_bundle(d)

    def test_deleted_array_file_rejected(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        d = save_kmer_bundle(idx, tmp_path / "bundle")
        (d / "ptrs.npy").unlink()
        with pytest.raises(IndexError_, match="missing array file"):
            load_kmer_bundle(d)

    def test_future_version_rejected(self, ref, tmp_path):
        import json

        idx = build_kmer_index(ref, seed_length=4, step=3)
        d = save_kmer_bundle(idx, tmp_path / "bundle")
        meta = json.loads((d / "meta.json").read_text())
        assert meta["version"] == FORMAT_VERSION
        meta["version"] = 99
        (d / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(IndexError_, match="newer"):
            load_kmer_bundle(d)

    def test_corrupt_manifest_rejected(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        d = save_kmer_bundle(idx, tmp_path / "bundle")
        (d / "meta.json").write_text("{not json")
        with pytest.raises(IndexError_, match="manifest"):
            load_kmer_bundle(d)

    def test_mmap_arrays_are_read_only(self, ref, tmp_path):
        idx = build_kmer_index(ref, seed_length=4, step=3)
        d = save_kmer_bundle(idx, tmp_path / "bundle")
        back = load_kmer_bundle(d, mmap=True)
        with pytest.raises((ValueError, OSError)):
            back.locs[0] = 0

    def test_check_detects_corruption(self, ref, tmp_path):
        from dataclasses import replace

        idx = build_kmer_index(ref, seed_length=3, step=1)
        bad = idx.locs.copy()
        sizes = np.diff(idx.ptrs)
        lo = int(idx.ptrs[int(np.argmax(sizes))])
        bad[lo], bad[lo + 1] = bad[lo + 1], bad[lo].copy()
        d = save_kmer_bundle(replace(idx, locs=bad), tmp_path / "bundle")
        load_kmer_bundle(d, check=False)  # structural pass: shapes/dtypes OK
        with pytest.raises(IndexIntegrityError, match="corrupt"):
            load_kmer_bundle(d, check=True)


class TestSearcherBundle:
    @pytest.mark.parametrize("sparseness,k", [(1, 0), (1, 3), (4, 3)])
    def test_round_trip_equivalent_queries(self, ref, tmp_path, rng, sparseness, k):
        s = SuffixArraySearcher(ref, sparseness=sparseness, prefix_table_k=k)
        d = save_searcher_bundle(s, tmp_path / "sa")
        back = load_searcher_bundle(d, mmap=True, verify=True)
        Q = rng.integers(0, 4, 300).astype(np.uint8)
        qpos = np.arange(Q.size)
        got = back.enumerate_candidates(Q, qpos, 5)
        expect = s.enumerate_candidates(Q, qpos, 5)
        assert all(np.array_equal(g, e) for g, e in zip(got, expect, strict=True))

    def test_prefix_table_persisted_not_rebuilt(self, ref, tmp_path):
        s = SuffixArraySearcher(ref, prefix_table_k=3)
        d = save_searcher_bundle(s, tmp_path / "sa")
        assert (d / "pt_lo.npy").exists() and (d / "pt_hi.npy").exists()
        back = load_searcher_bundle(d, mmap=True)
        # loaded straight off disk, not recomputed: they're memmaps
        assert isinstance(back._pt_lo, np.memmap)
        assert np.array_equal(back._pt_lo, s._pt_lo)
        assert np.array_equal(back._pt_hi, s._pt_hi)

    def test_no_prefix_table_no_files(self, ref, tmp_path):
        s = SuffixArraySearcher(ref, prefix_table_k=0)
        d = save_searcher_bundle(s, tmp_path / "sa")
        assert not (d / "pt_lo.npy").exists()
        back = load_searcher_bundle(d)
        assert back._pt_lo is None

    def test_verify_catches_corrupt_sa(self, ref, tmp_path):
        s = SuffixArraySearcher(ref)
        d = save_searcher_bundle(s, tmp_path / "sa")
        sa = np.load(d / "sa.npy")
        sa[0], sa[1] = sa[1], sa[0].copy()
        np.save(d / "sa.npy", sa)
        with pytest.raises(IndexIntegrityError, match="corrupt"):
            load_searcher_bundle(d, verify=True)
