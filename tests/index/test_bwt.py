"""Tests for repro.index.bwt."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import IndexError_
from repro.index.bwt import (
    FM_SIGMA,
    SENTINEL,
    bwt_from_sa,
    bwt_transform,
    inverse_bwt,
)

from tests.conftest import dna


class TestBwtTransform:
    def test_round_trip_simple(self):
        codes = np.array([2, 0, 1, 3, 0], dtype=np.uint8)
        bwt, sa = bwt_transform(codes)
        assert bwt.size == codes.size + 1
        assert np.array_equal(inverse_bwt(bwt), codes)

    def test_single_sentinel(self):
        codes = np.array([0, 0, 1], dtype=np.uint8)
        bwt, _ = bwt_transform(codes)
        assert (bwt == SENTINEL).sum() == 1

    def test_empty_sequence(self):
        bwt, sa = bwt_transform(np.empty(0, dtype=np.uint8))
        assert bwt.tolist() == [SENTINEL]
        assert inverse_bwt(bwt).size == 0

    def test_symbol_shift(self):
        # shifted alphabet: bases occupy 1..4
        codes = np.array([0, 3], dtype=np.uint8)
        bwt, _ = bwt_transform(codes)
        assert set(bwt.tolist()) <= set(range(FM_SIGMA))

    def test_bwt_is_permutation_of_text(self):
        codes = np.array([1, 1, 2, 3, 0, 2], dtype=np.uint8)
        bwt, _ = bwt_transform(codes)
        assert sorted(bwt.tolist()) == sorted(list(codes + 1) + [SENTINEL])

    @settings(max_examples=60)
    @given(dna(max_size=120))
    def test_round_trip_property(self, codes):
        bwt, _ = bwt_transform(codes)
        assert np.array_equal(inverse_bwt(bwt), codes)

    def test_repeat_heavy(self):
        codes = np.tile(np.array([0, 1, 2], dtype=np.uint8), 30)
        bwt, _ = bwt_transform(codes)
        assert np.array_equal(inverse_bwt(bwt), codes)


class TestBwtFromSa:
    def test_size_mismatch(self):
        with pytest.raises(IndexError_):
            bwt_from_sa(np.zeros(3, np.uint8), np.zeros(2, np.int64))


class TestInverseBwt:
    def test_no_sentinel_raises(self):
        with pytest.raises(IndexError_):
            inverse_bwt(np.array([1, 2], dtype=np.uint8))

    def test_two_sentinels_raise(self):
        with pytest.raises(IndexError_):
            inverse_bwt(np.array([0, 0, 1], dtype=np.uint8))

    def test_empty(self):
        assert inverse_bwt(np.empty(0, dtype=np.uint8)).size == 0
