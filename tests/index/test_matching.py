"""Tests for repro.index.matching (the batched SA search engine)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError
from repro.index.matching import SuffixArraySearcher, sparse_suffix_positions
from repro.index.suffix_array import suffix_array

from tests.conftest import dna, dna_pair


def naive_candidates(R, Q, sparseness, min_len):
    out = set()
    for q in range(len(Q)):
        for r in range(0, len(R), sparseness):
            lam = 0
            while r + lam < len(R) and q + lam < len(Q) and R[r + lam] == Q[q + lam]:
                lam += 1
            if lam >= min_len:
                out.add((r, q, lam))
    return out


class TestConstruction:
    def test_full_sa_matches_reference_builder(self):
        rng = np.random.default_rng(0)
        R = rng.integers(0, 4, 200).astype(np.uint8)
        s = SuffixArraySearcher(R, sparseness=1)
        assert np.array_equal(s.sa, suffix_array(R))

    @settings(max_examples=40)
    @given(dna(min_size=1, max_size=120, alphabet=3), st.integers(1, 5))
    def test_sparse_sa_is_sorted_subset(self, R, K):
        s = SuffixArraySearcher(R, sparseness=K)
        expect_positions = sparse_suffix_positions(R.size, K)
        assert sorted(s.sa.tolist()) == expect_positions.tolist()
        # sorted in true suffix order
        full = suffix_array(R)
        rank = np.empty(R.size, dtype=np.int64)
        rank[full] = np.arange(R.size)
        assert np.array_equal(np.argsort(rank[s.sa]), np.arange(s.m))

    def test_sparseness_bounds(self):
        R = np.zeros(10, dtype=np.uint8)
        with pytest.raises(InvalidParameterError):
            SuffixArraySearcher(R, sparseness=0)
        with pytest.raises(InvalidParameterError):
            SuffixArraySearcher(R, sparseness=27)

    def test_nbytes_grows_with_density(self):
        rng = np.random.default_rng(1)
        R = rng.integers(0, 4, 1000).astype(np.uint8)
        full = SuffixArraySearcher(R, sparseness=1)
        sparse = SuffixArraySearcher(R, sparseness=4)
        assert sparse.nbytes < full.nbytes

    def test_prefix_table_included_in_nbytes(self):
        rng = np.random.default_rng(1)
        R = rng.integers(0, 4, 200).astype(np.uint8)
        plain = SuffixArraySearcher(R)
        tabled = SuffixArraySearcher(R, prefix_table_k=4)
        assert tabled.nbytes > plain.nbytes


class TestInsertionPoints:
    @settings(max_examples=40)
    @given(dna_pair(max_size=80), st.integers(0, 4))
    def test_prefix_table_equivalence(self, pair, k):
        R, Q = pair
        a = SuffixArraySearcher(R, sparseness=1)
        b = SuffixArraySearcher(R, sparseness=1, prefix_table_k=max(k, 1))
        qpos = np.arange(Q.size)
        assert np.array_equal(a.insertion_points(Q, qpos), b.insertion_points(Q, qpos))

    def test_insertion_point_definition(self):
        rng = np.random.default_rng(2)
        R = rng.integers(0, 3, 60).astype(np.uint8)
        Q = rng.integers(0, 3, 40).astype(np.uint8)
        s = SuffixArraySearcher(R)
        ins = s.insertion_points(Q, np.arange(Q.size))
        raw = R.tobytes()
        for q in range(Q.size):
            expect = sum(1 for i in range(R.size) if raw[i:] < Q.tobytes()[q:])
            assert ins[q] == expect


class TestEnumerateCandidates:
    @settings(max_examples=50, deadline=None)
    @given(dna_pair(max_size=70), st.integers(1, 4), st.integers(2, 5))
    def test_matches_naive(self, pair, K, min_len):
        R, Q = pair
        s = SuffixArraySearcher(R, sparseness=K)
        r, q, lam = s.enumerate_candidates(Q, np.arange(Q.size), min_len)
        got = set(zip(r.tolist(), q.tolist(), lam.tolist(), strict=True))
        assert got == naive_candidates(R, Q, K, min_len)

    def test_position_subset(self):
        rng = np.random.default_rng(3)
        R = rng.integers(0, 2, 80).astype(np.uint8)
        Q = rng.integers(0, 2, 60).astype(np.uint8)
        s = SuffixArraySearcher(R)
        sub = np.array([5, 17, 33], dtype=np.int64)
        r, q, lam = s.enumerate_candidates(Q, sub, 3)
        assert set(q.tolist()) <= set(sub.tolist())
        full = naive_candidates(R, Q, 1, 3)
        expect = {(rr, qq, ll) for rr, qq, ll in full if qq in set(sub.tolist())}
        assert set(zip(r.tolist(), q.tolist(), lam.tolist(), strict=True)) == expect

    def test_empty_inputs(self):
        R = np.zeros(5, dtype=np.uint8)
        s = SuffixArraySearcher(R)
        r, q, lam = s.enumerate_candidates(np.zeros(0, np.uint8), np.empty(0, np.int64), 1)
        assert r.size == q.size == lam.size == 0

    def test_min_len_validation(self):
        s = SuffixArraySearcher(np.zeros(4, np.uint8))
        with pytest.raises(InvalidParameterError):
            s.enumerate_candidates(np.zeros(4, np.uint8), np.arange(4), 0)

    def test_hot_seed_enumeration(self):
        # every reference position matches: candidate walk must not stall
        R = np.zeros(40, dtype=np.uint8)
        Q = np.zeros(10, dtype=np.uint8)
        s = SuffixArraySearcher(R)
        r, q, lam = s.enumerate_candidates(Q, np.arange(Q.size), 5)
        got = set(zip(r.tolist(), q.tolist(), lam.tolist(), strict=True))
        assert got == naive_candidates(R, Q, 1, 5)
