"""Tests for repro.index.rmq."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.index.rmq import SparseTableRMQ


class TestSparseTableRMQ:
    def test_simple(self):
        rmq = SparseTableRMQ(np.array([5, 2, 7, 1, 9]))
        assert rmq.query(0, 5) == 1
        assert rmq.query(0, 2) == 2
        assert rmq.query(2, 3) == 7
        assert rmq.query(3, 5) == 1

    def test_empty_range(self):
        rmq = SparseTableRMQ(np.array([3, 4]))
        assert rmq.query(1, 1) == np.iinfo(np.int64).max

    def test_custom_empty_value(self):
        rmq = SparseTableRMQ(np.array([3]), empty_value=-7)
        assert rmq.query(0, 0) == -7

    def test_out_of_range_is_empty(self):
        rmq = SparseTableRMQ(np.array([3, 1]))
        assert rmq.query(-1, 1) == np.iinfo(np.int64).max
        assert rmq.query(0, 3) == np.iinfo(np.int64).max

    def test_vectorized_query(self):
        rmq = SparseTableRMQ(np.array([4, 3, 2, 1]))
        lo = np.array([0, 1, 2])
        hi = np.array([2, 4, 3])
        assert rmq.query(lo, hi).tolist() == [3, 1, 2]

    def test_empty_array(self):
        rmq = SparseTableRMQ(np.empty(0, dtype=np.int64))
        assert rmq.query(0, 0) == np.iinfo(np.int64).max

    def test_single_element(self):
        rmq = SparseTableRMQ(np.array([42]))
        assert rmq.query(0, 1) == 42

    @settings(max_examples=60)
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=80),
           st.data())
    def test_matches_naive(self, values, data):
        arr = np.array(values, dtype=np.int64)
        rmq = SparseTableRMQ(arr)
        lo = data.draw(st.integers(0, arr.size - 1))
        hi = data.draw(st.integers(lo + 1, arr.size))
        assert rmq.query(lo, hi) == int(arr[lo:hi].min())
        assert rmq.query_scalar(lo, hi) == int(arr[lo:hi].min())

    def test_scalar_matches_vector(self):
        rng = np.random.default_rng(1)
        arr = rng.integers(0, 50, size=200)
        rmq = SparseTableRMQ(arr)
        for _ in range(50):
            lo = int(rng.integers(0, 199))
            hi = int(rng.integers(lo + 1, 201))
            assert rmq.query_scalar(lo, hi) == rmq.query(lo, hi)
