"""Tests for repro.index.lcp."""

import numpy as np
from hypothesis import given, settings

from repro.index.lcp import lcp_array, lcp_kasai, naive_lcp_array
from repro.index.suffix_array import suffix_array

from tests.conftest import dna


class TestLcpArray:
    def test_known_example(self):
        # "AABAA": SA = [3(AA),0(AABAA),4(A? wait) ...] compute via naive
        codes = np.array([0, 0, 1, 0, 0], dtype=np.uint8)
        sa = suffix_array(codes)
        assert np.array_equal(lcp_array(codes, sa), naive_lcp_array(codes, sa))

    def test_first_entry_zero(self):
        codes = np.array([1, 0, 1], dtype=np.uint8)
        sa = suffix_array(codes)
        assert lcp_array(codes, sa)[0] == 0

    def test_all_same_letter(self):
        codes = np.full(8, 2, dtype=np.uint8)
        sa = suffix_array(codes)
        # sorted shortest-first, adjacent lcp = length of shorter suffix
        assert lcp_array(codes, sa).tolist() == [0, 1, 2, 3, 4, 5, 6, 7]

    def test_empty(self):
        assert lcp_array(np.empty(0, np.uint8), np.empty(0, np.int64)).size == 0

    def test_single(self):
        codes = np.array([0], dtype=np.uint8)
        assert lcp_array(codes, suffix_array(codes)).tolist() == [0]

    @settings(max_examples=60)
    @given(dna(min_size=1, max_size=100, alphabet=2))
    def test_three_implementations_agree(self, codes):
        sa = suffix_array(codes)
        expect = naive_lcp_array(codes, sa)
        assert np.array_equal(lcp_array(codes, sa), expect)
        assert np.array_equal(lcp_kasai(codes, sa), expect)

    @settings(max_examples=25)
    @given(dna(min_size=2, max_size=120, alphabet=3))
    def test_lcp_bounds_property(self, codes):
        sa = suffix_array(codes)
        lcp = lcp_array(codes, sa)
        n = codes.size
        # lcp[i] can never exceed the length of either suffix
        for i in range(1, n):
            assert lcp[i] <= n - sa[i] and lcp[i] <= n - sa[i - 1]
        # adjacent suffixes differ at position lcp[i] (or one ends there)
        for i in range(1, n):
            a, b, h = sa[i - 1], sa[i], lcp[i]
            if a + h < n and b + h < n:
                assert codes[a + h] != codes[b + h]
