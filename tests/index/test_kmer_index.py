"""Tests for repro.index.kmer_index (GPUMEM's locs/ptrs structure)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError
from repro.index.kmer_index import (
    build_kmer_index,
    max_step,
    validate_sparsity,
)
from repro.sequence.packed import kmer_codes

from tests.conftest import dna


class TestEq1Validation:
    def test_max_step_formula(self):
        # Eq. (1): Δs <= L - ℓs + 1
        assert max_step(13, 50) == 38
        assert max_step(10, 10) == 1

    def test_validate_accepts_max(self):
        validate_sparsity(10, 41, 50)

    def test_validate_rejects_over_max(self):
        with pytest.raises(InvalidParameterError, match="Eq."):
            validate_sparsity(10, 42, 50)

    def test_validate_rejects_bad_lengths(self):
        with pytest.raises(InvalidParameterError):
            validate_sparsity(0, 1, 5)
        with pytest.raises(InvalidParameterError):
            validate_sparsity(5, 0, 5)
        with pytest.raises(InvalidParameterError):
            validate_sparsity(6, 1, 5)  # L < ℓs

    def test_max_step_requires_L_ge_seed(self):
        with pytest.raises(InvalidParameterError):
            max_step(10, 5)


class TestBuildIndex:
    def test_structure_small(self):
        codes = np.array([0, 1, 0, 1, 0], dtype=np.uint8)  # ACACA
        idx = build_kmer_index(codes, seed_length=2, step=1)
        idx.check()
        # AC at 0,2; CA at 1,3
        assert idx.locations_of(1).tolist() == [0, 2]  # AC = 0*4+1
        assert idx.locations_of(4).tolist() == [1, 3]  # CA = 1*4+0
        assert idx.n_locs == 4

    def test_step_grid_is_global(self):
        codes = np.zeros(20, dtype=np.uint8)
        idx = build_kmer_index(codes, seed_length=2, step=3, region_start=4, region_end=16)
        # grid positions ≡ 0 (mod 3) within [4,16): 6, 9, 12, 15
        assert sorted(idx.locs.tolist()) == [6, 9, 12, 15]

    def test_window_may_cross_region_end(self):
        codes = np.zeros(10, dtype=np.uint8)
        idx = build_kmer_index(codes, seed_length=4, step=1, region_start=0, region_end=5)
        # starts 0..4 allowed; windows read past region_end but not past n
        assert sorted(idx.locs.tolist()) == [0, 1, 2, 3, 4]

    def test_window_never_crosses_sequence_end(self):
        codes = np.zeros(6, dtype=np.uint8)
        idx = build_kmer_index(codes, seed_length=4, step=1)
        assert idx.locs.max() == 2

    def test_empty_region(self):
        codes = np.zeros(10, dtype=np.uint8)
        idx = build_kmer_index(codes, seed_length=3, step=1, region_start=9, region_end=9)
        assert idx.n_locs == 0
        idx.check()

    def test_sequence_shorter_than_seed(self):
        idx = build_kmer_index(np.zeros(2, np.uint8), seed_length=5, step=1)
        assert idx.n_locs == 0

    def test_bad_params(self):
        with pytest.raises(InvalidParameterError):
            build_kmer_index(np.zeros(5, np.uint8), seed_length=0, step=1)
        with pytest.raises(InvalidParameterError):
            build_kmer_index(np.zeros(5, np.uint8), seed_length=2, step=0)
        with pytest.raises(InvalidParameterError):
            build_kmer_index(np.zeros(5, np.uint8), seed_length=32, step=1)

    @settings(max_examples=50)
    @given(dna(min_size=1, max_size=120), st.integers(1, 4), st.integers(1, 5))
    def test_matches_naive_everywhere(self, codes, ls, step):
        idx = build_kmer_index(codes, seed_length=ls, step=step)
        idx.check()
        km = kmer_codes(codes, ls)
        for s in range(4**ls):
            expect = [p for p in range(0, max(0, codes.size - ls + 1), step)
                      if km[p] == s]
            assert idx.locations_of(s).tolist() == expect

    def test_full_index_when_step_one(self):
        codes = np.arange(12, dtype=np.uint8) % 4
        idx = build_kmer_index(codes, seed_length=3, step=1)
        assert idx.n_locs == 10  # every window


class TestLookup:
    def test_vectorized_lookup(self):
        codes = np.array([0, 1, 0, 1], dtype=np.uint8)
        idx = build_kmer_index(codes, seed_length=2, step=1)
        starts, counts = idx.lookup(np.array([1, 4, 15]))  # AC, CA, TT
        assert counts.tolist() == [2, 1, 0]
        assert idx.locs[starts[0] : starts[0] + counts[0]].tolist() == [0, 2]

    def test_negative_seed_is_empty(self):
        codes = np.array([0, 1], dtype=np.uint8)
        idx = build_kmer_index(codes, seed_length=1, step=1)
        _, counts = idx.lookup(np.array([-1]))
        assert counts.tolist() == [0]

    def test_out_of_range_seed_is_empty(self):
        codes = np.array([0, 1], dtype=np.uint8)
        idx = build_kmer_index(codes, seed_length=1, step=1)
        _, counts = idx.lookup(np.array([4]))
        assert counts.tolist() == [0]

    def test_locations_of_out_of_range(self):
        idx = build_kmer_index(np.array([0], dtype=np.uint8), seed_length=1, step=1)
        assert idx.locations_of(99).size == 0


class TestSizing:
    def test_nbytes_packed_positive(self):
        idx = build_kmer_index(np.zeros(100, np.uint8), seed_length=3, step=2)
        assert idx.nbytes_packed > 0

    def test_sparser_is_smaller(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 4, 10_000).astype(np.uint8)
        dense = build_kmer_index(codes, seed_length=5, step=1)
        sparse = build_kmer_index(codes, seed_length=5, step=10)
        assert sparse.n_locs * 10 <= dense.n_locs + 10
        assert sparse.nbytes_packed < dense.nbytes_packed

    def test_paper_size_formula(self):
        # n_locs = ceil(region / Δs) when the region is interior
        codes = np.zeros(1000, dtype=np.uint8)
        idx = build_kmer_index(codes, seed_length=4, step=7,
                               region_start=0, region_end=700)
        assert idx.n_locs == 100
