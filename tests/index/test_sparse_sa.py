"""Tests for repro.index.sparse_sa."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.index.sparse_sa import SparseSuffixArray


class TestSparseSuffixArray:
    def test_candidate_threshold(self):
        R = np.zeros(50, dtype=np.uint8)
        s = SparseSuffixArray(R, sparseness=4)
        assert s.candidate_threshold(20) == 17
        assert s.candidate_threshold(4) == 1
        assert s.candidate_threshold(2) == 1  # floor at 1

    def test_threshold_validation(self):
        s = SparseSuffixArray(np.zeros(10, np.uint8), sparseness=2)
        with pytest.raises(InvalidParameterError):
            s.candidate_threshold(0)

    def test_memory_reduction(self):
        rng = np.random.default_rng(0)
        R = rng.integers(0, 4, 1000).astype(np.uint8)
        s = SparseSuffixArray(R, sparseness=4)
        assert abs(s.memory_reduction - 0.25) < 0.01

    def test_anchor_guarantee(self):
        """Eq-1-style guarantee: every MEM of length >= L contains a sampled
        anchor whose agreement is >= threshold — checked exhaustively."""
        rng = np.random.default_rng(1)
        R = rng.integers(0, 2, 120).astype(np.uint8)
        Q = rng.integers(0, 2, 100).astype(np.uint8)
        K, L = 3, 8
        s = SparseSuffixArray(R, sparseness=K)
        thr = s.candidate_threshold(L)
        r_c, q_c, lam_c = s.enumerate_candidates(Q, np.arange(Q.size), thr)
        anchors = set(zip(r_c.tolist(), q_c.tolist(), strict=True))
        from repro.core.reference import brute_force_mems

        for mem in brute_force_mems(R, Q, L):
            r0, q0, length = int(mem["r"]), int(mem["q"]), int(mem["length"])
            has_anchor = any(
                (r0 + j) % K == 0 and (r0 + j, q0 + j) in anchors
                for j in range(min(K, length))
            )
            assert has_anchor, (r0, q0, length)
