"""Tests for repro.index.fm_index."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import IndexError_
from repro.index.fm_index import FMIndex

from tests.conftest import dna


def naive_count(text, pattern):
    n, m = len(text), len(pattern)
    return sum(
        1 for i in range(n - m + 1) if np.array_equal(text[i : i + m], pattern)
    )


@pytest.fixture(scope="module")
def fm_and_text():
    rng = np.random.default_rng(3)
    text = rng.integers(0, 4, size=400).astype(np.uint8)
    return FMIndex(text, occ_rate=16, sa_rate=8), text


class TestConstruction:
    def test_sizes(self, fm_and_text):
        fm, text = fm_and_text
        assert fm.n == text.size + 1
        assert fm.bwt.size == fm.n

    def test_c_array(self, fm_and_text):
        fm, text = fm_and_text
        # C over the shifted alphabet: C[1] counts the single sentinel
        assert fm.C[0] == 0
        assert fm.C[1] == 1
        counts = np.bincount(text, minlength=4)
        for sym in range(4):
            assert fm.C[sym + 2] - fm.C[sym + 1] == counts[sym]

    def test_bad_rates(self):
        with pytest.raises(IndexError_):
            FMIndex(np.zeros(4, np.uint8), occ_rate=0)
        with pytest.raises(IndexError_):
            FMIndex(np.zeros(4, np.uint8), sa_rate=0)

    def test_nbytes_positive(self, fm_and_text):
        fm, _ = fm_and_text
        assert fm.nbytes > 0


class TestOcc:
    def test_occ_zero_pos(self, fm_and_text):
        fm, _ = fm_and_text
        for sym in range(5):
            assert fm.occ(sym, 0) == 0

    def test_occ_full_equals_total(self, fm_and_text):
        fm, _ = fm_and_text
        for sym in range(5):
            assert fm.occ(sym, fm.n) == int((fm.bwt == sym).sum())

    def test_occ_matches_naive_everywhere(self):
        rng = np.random.default_rng(4)
        text = rng.integers(0, 4, size=97).astype(np.uint8)
        fm = FMIndex(text, occ_rate=7)
        for sym in range(5):
            run = 0
            for pos in range(fm.n + 1):
                assert fm.occ(sym, pos) == run
                assert fm.occ_scalar(sym, pos) == run
                if pos < fm.n and fm.bwt[pos] == sym:
                    run += 1

    def test_occ_vectorized(self, fm_and_text):
        fm, _ = fm_and_text
        pos = np.arange(0, fm.n, 13)
        syms = np.full(pos.size, 2, dtype=np.int64)
        out = fm.occ(syms, pos)
        for i, p in enumerate(pos):
            assert out[i] == fm.occ(2, int(p))

    def test_occ_out_of_range(self, fm_and_text):
        fm, _ = fm_and_text
        with pytest.raises(IndexError_):
            fm.occ(0, fm.n + 1)


class TestSearch:
    @settings(max_examples=40, deadline=None)
    @given(dna(min_size=1, max_size=150, alphabet=3), dna(min_size=1, max_size=6, alphabet=3))
    def test_count_matches_naive(self, text, pattern):
        fm = FMIndex(text, occ_rate=8, sa_rate=4)
        assert fm.count(pattern) == naive_count(text, pattern)

    def test_empty_pattern_counts_all(self, fm_and_text):
        fm, text = fm_and_text
        lo, hi = fm.search(np.empty(0, dtype=np.uint8))
        assert hi - lo == fm.n

    def test_absent_pattern(self):
        text = np.zeros(20, dtype=np.uint8)
        fm = FMIndex(text)
        assert fm.count(np.array([1], dtype=np.uint8)) == 0

    def test_pattern_longer_than_text(self):
        text = np.zeros(3, dtype=np.uint8)
        fm = FMIndex(text)
        assert fm.count(np.zeros(10, dtype=np.uint8)) == 0

    def test_backward_extend_scalar_matches_vector(self, fm_and_text):
        fm, _ = fm_and_text
        lo, hi = fm.whole_interval()
        for sym in range(4):
            a = fm.backward_extend(lo, hi, sym)
            b = fm.backward_extend_scalar(lo, hi, sym)
            assert (int(a[0]), int(a[1])) == b


class TestLocate:
    @settings(max_examples=25, deadline=None)
    @given(dna(min_size=2, max_size=100, alphabet=2), dna(min_size=1, max_size=4, alphabet=2))
    def test_locate_matches_naive(self, text, pattern):
        fm = FMIndex(text, occ_rate=8, sa_rate=4)
        lo, hi = fm.search(pattern)
        got = sorted(int(x) for x in fm.locate(lo, hi))
        expect = sorted(
            i
            for i in range(text.size - pattern.size + 1)
            if np.array_equal(text[i : i + pattern.size], pattern)
        )
        assert got == expect

    def test_full_suffix_array_is_permutation(self, fm_and_text):
        fm, text = fm_and_text
        sa = fm.full_suffix_array()
        assert np.array_equal(np.sort(sa), np.arange(text.size + 1))

    def test_lf_walk_consistency(self, fm_and_text):
        fm, _ = fm_and_text
        # LF is a bijection on rows
        rows = np.arange(fm.n)
        lf = fm.lf(rows)
        assert np.array_equal(np.sort(lf), np.arange(fm.n))
