"""Tests for repro.index.compare — the batched comparison kernels."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.index.compare import (
    CHUNK,
    common_prefix_len,
    common_suffix_len,
    compare_positions,
)

from tests.conftest import dna


def naive_cpl(a, b, pa, pb, limit=None):
    n = 0
    while pa + n < len(a) and pb + n < len(b) and a[pa + n] == b[pb + n]:
        n += 1
        if limit is not None and n >= limit:
            break
    if pa < 0 or pb < 0 or pa > len(a) or pb > len(b):
        return 0
    return n


class TestCommonPrefixLen:
    def test_simple(self):
        a = np.array([0, 1, 2, 3], dtype=np.uint8)
        b = np.array([0, 1, 3], dtype=np.uint8)
        assert common_prefix_len(a, b, [0], [0])[0] == 2

    def test_full_match_ends_at_shorter(self):
        a = np.array([1, 2, 3], dtype=np.uint8)
        b = np.array([1, 2, 3, 0], dtype=np.uint8)
        assert common_prefix_len(a, b, [0], [0])[0] == 3

    def test_run_longer_than_chunk(self):
        a = np.zeros(3 * CHUNK + 5, dtype=np.uint8)
        b = np.zeros(3 * CHUNK + 9, dtype=np.uint8)
        assert common_prefix_len(a, b, [0], [0])[0] == 3 * CHUNK + 5

    def test_mismatch_on_chunk_boundary(self):
        a = np.zeros(CHUNK + 1, dtype=np.uint8)
        b = np.zeros(CHUNK + 1, dtype=np.uint8)
        b[CHUNK] = 1
        assert common_prefix_len(a, b, [0], [0])[0] == CHUNK

    def test_out_of_range_positions(self):
        a = np.zeros(5, dtype=np.uint8)
        out = common_prefix_len(a, a, [-1, 6, 5], [0, 0, 5])
        assert out.tolist() == [0, 0, 0]

    def test_position_at_end(self):
        a = np.zeros(5, dtype=np.uint8)
        assert common_prefix_len(a, a, [5], [0])[0] == 0

    def test_limit_caps(self):
        a = np.zeros(100, dtype=np.uint8)
        assert common_prefix_len(a, a, [0], [1], limit=7)[0] == 7

    def test_empty_batch(self):
        a = np.zeros(3, dtype=np.uint8)
        assert common_prefix_len(a, a, [], []).size == 0

    def test_self_comparison_same_position(self):
        a = np.arange(10, dtype=np.uint8) % 4
        assert common_prefix_len(a, a, [3], [3])[0] == 7

    @settings(max_examples=60)
    @given(dna(max_size=150, alphabet=2), dna(max_size=150, alphabet=2),
           st.integers(0, 160), st.integers(0, 160))
    def test_matches_naive(self, a, b, pa, pb):
        got = common_prefix_len(a, b, [pa], [pb])[0]
        assert got == naive_cpl(a, b, pa, pb)

    @settings(max_examples=30)
    @given(dna(min_size=5, max_size=80, alphabet=2), st.integers(1, 20))
    def test_limit_property(self, a, limit):
        full = common_prefix_len(a, a, [0], [1])[0]
        capped = common_prefix_len(a, a, [0], [1], limit=limit)[0]
        assert capped == min(full, limit)


class TestCommonSuffixLen:
    def test_simple(self):
        a = np.array([0, 1, 2], dtype=np.uint8)
        b = np.array([3, 1, 2], dtype=np.uint8)
        assert common_suffix_len(a, b, [3], [3])[0] == 2

    def test_at_start(self):
        a = np.array([1, 2], dtype=np.uint8)
        assert common_suffix_len(a, a, [0], [2])[0] == 0

    @settings(max_examples=60)
    @given(dna(min_size=1, max_size=100, alphabet=2),
           dna(min_size=1, max_size=100, alphabet=2),
           st.integers(0, 100), st.integers(0, 100))
    def test_matches_naive(self, a, b, pa, pb):
        pa = min(pa, a.size)
        pb = min(pb, b.size)
        got = common_suffix_len(a, b, [pa], [pb])[0]
        n = 0
        while pa - n > 0 and pb - n > 0 and a[pa - n - 1] == b[pb - n - 1]:
            n += 1
        assert got == n

    def test_left_extension_semantics(self):
        # match at (r, q): how far can it grow left?
        R = np.array([0, 1, 2, 3], dtype=np.uint8)
        Q = np.array([9 % 4, 1, 2, 3], dtype=np.uint8)
        # match starting at r=2,q=2; left chars R[1]==Q[1]==1, R[0]!=Q[0]
        assert common_suffix_len(R, Q, [2], [2])[0] == 1


class TestComparePositions:
    def test_basic_order(self):
        a = np.array([0, 1], dtype=np.uint8)
        b = np.array([0, 2], dtype=np.uint8)
        assert compare_positions(a, b, [0], [0])[0] == -1
        assert compare_positions(b, a, [0], [0])[0] == 1

    def test_equal_suffixes(self):
        a = np.array([1, 2, 3], dtype=np.uint8)
        assert compare_positions(a, a, [1], [1])[0] == 0

    def test_prefix_is_smaller(self):
        # "AB" < "ABC": shorter suffix wins (sentinel convention)
        a = np.array([0, 1], dtype=np.uint8)
        b = np.array([0, 1, 2], dtype=np.uint8)
        assert compare_positions(a, b, [0], [0])[0] == -1

    def test_empty_suffix_smallest(self):
        a = np.array([0], dtype=np.uint8)
        assert compare_positions(a, a, [1], [0])[0] == -1

    @settings(max_examples=60)
    @given(dna(min_size=1, max_size=60, alphabet=2),
           st.integers(0, 59), st.integers(0, 59))
    def test_matches_python_bytes_order(self, a, i, j):
        i, j = min(i, a.size - 1), min(j, a.size - 1)
        raw = a.tobytes()
        expect = (raw[i:] > raw[j:]) - (raw[i:] < raw[j:])
        assert compare_positions(a, a, [i], [j])[0] == expect
