"""Tests for repro.gpu.kernel — SIMT execution semantics."""

import numpy as np
import pytest

from repro.errors import BarrierDivergenceError, KernelError
from repro.gpu.costmodel import GLOBAL_MEM_COST
from repro.gpu.device import TEST_DEVICE
from repro.gpu.kernel import Device


def make_device():
    return Device(TEST_DEVICE, schedule_seed=1)


class TestLaunchBasics:
    def test_every_thread_runs(self):
        dev = make_device()
        out = np.zeros(16, dtype=np.int64)

        def kernel(ctx, out):
            out[ctx.gtid] = ctx.gtid + 1
            yield

        dev.launch(kernel, 2, 8, out)
        assert np.array_equal(out, np.arange(1, 17))

    def test_block_and_thread_ids(self):
        dev = make_device()
        ids = []

        def kernel(ctx):
            ids.append((ctx.bid, ctx.tid, ctx.bdim, ctx.gdim))
            yield

        dev.launch(kernel, 3, 4)
        assert len(ids) == 12
        assert set(b for b, *_ in ids) == {0, 1, 2}
        assert all(bd == 4 and gd == 3 for _, _, bd, gd in ids)

    def test_bad_launch_params(self):
        dev = make_device()

        def kernel(ctx):
            yield

        with pytest.raises(KernelError):
            dev.launch(kernel, 0, 4)
        with pytest.raises(KernelError):
            dev.launch(kernel, 1, TEST_DEVICE.max_threads_per_block + 1)

    def test_report_recorded(self):
        dev = make_device()

        def kernel(ctx):
            ctx.work(3)
            yield

        rep = dev.launch(kernel, 1, 4, name="k")
        assert rep.name == "k"
        assert rep.total_thread_ops == 12
        assert dev.reports[-1] is rep


class TestBarriers:
    def test_barrier_orders_phases(self):
        """All writes before a barrier are visible after it, regardless of
        the shuffled schedule."""
        dev = make_device()
        tau = 8
        data = np.zeros(tau, dtype=np.int64)
        ok = np.zeros(tau, dtype=np.int64)

        def kernel(ctx, data, ok):
            data[ctx.tid] = ctx.tid
            yield
            # read a neighbour: must already be written
            ok[ctx.tid] = data[(ctx.tid + 1) % ctx.bdim] == (ctx.tid + 1) % ctx.bdim
            yield

        dev.launch(kernel, 1, tau, data, ok)
        assert ok.all()

    def test_barrier_divergence_detected(self):
        dev = make_device()

        def kernel(ctx):
            if ctx.tid == 0:
                yield  # only thread 0 hits the barrier -> UB on real HW
            yield

        with pytest.raises(KernelError, match="barrier divergence"):
            dev.launch(kernel, 1, 4)

    def test_threads_may_finish_together_early(self):
        dev = make_device()

        def kernel(ctx):
            yield
            # all threads return after one barrier — fine

        rep = dev.launch(kernel, 1, 4)
        assert rep.n_phases >= 1

    def test_different_trip_counts_rejected(self):
        dev = make_device()

        def kernel(ctx):
            for _ in range(ctx.tid + 1):  # non-uniform loop of barriers
                yield

        with pytest.raises(KernelError):
            dev.launch(kernel, 1, 4)

    def test_divergence_error_is_structured(self):
        """Regression: divergence raises a typed error naming thread/block/
        phase instead of desyncing or producing a free-text-only message."""
        dev = make_device()

        def kernel(ctx):
            if ctx.tid < 2:
                yield  # threads 2,3 skip the first barrier
            yield

        with pytest.raises(BarrierDivergenceError) as exc:
            dev.launch(kernel, 1, 4, name="diverge")
        err = exc.value
        assert isinstance(err, KernelError)  # stays catchable as before
        assert err.kernel == "diverge"
        assert err.block == 0
        assert err.phase == 1
        assert err.exited == (2, 3)
        assert err.waiting == (0, 1)
        assert "barrier divergence" in str(err)


class TestAtomics:
    def test_atomic_add_counts_all(self):
        dev = make_device()
        counter = np.zeros(1, dtype=np.int64)

        def kernel(ctx, counter):
            for _ in range(5):
                ctx.atomic_add(counter, 0, 1)
            yield

        dev.launch(kernel, 2, 8, counter)
        assert counter[0] == 2 * 8 * 5

    def test_atomic_add_returns_old(self):
        dev = make_device()
        counter = np.zeros(1, dtype=np.int64)
        olds = []

        def kernel(ctx, counter):
            olds.append(ctx.atomic_add(counter, 0, 1))
            yield

        dev.launch(kernel, 1, 8, counter)
        assert sorted(olds) == list(range(8))

    def test_shuffled_schedule_randomizes_order(self):
        """Arrival order differs from thread order (Algorithm 1's unsorted
        locs effect)."""
        dev = make_device()
        order = np.zeros(16, dtype=np.int64)
        slot = np.zeros(1, dtype=np.int64)

        def kernel(ctx, order, slot):
            order[ctx.atomic_add(slot, 0, 1)] = ctx.tid
            yield

        dev.launch(kernel, 1, 16, order, slot)
        assert not np.array_equal(order, np.arange(16))
        assert sorted(order.tolist()) == list(range(16))

    def test_atomics_charged_at_memory_weight(self):
        dev = make_device()
        c = np.zeros(1, dtype=np.int64)

        def kernel(ctx, c):
            ctx.atomic_add(c, 0, 1)
            yield

        rep = dev.launch(kernel, 1, 1, c)
        assert rep.total_thread_ops == GLOBAL_MEM_COST

    def test_atomic_max_and_exch(self):
        dev = make_device()
        arr = np.zeros(1, dtype=np.int64)

        def kernel(ctx, arr):
            ctx.atomic_max(arr, 0, ctx.tid)
            yield

        dev.launch(kernel, 1, 8, arr)
        assert arr[0] == 7


class TestSanitizedMode:
    """Kernel tests can opt into the SIMT race detector (docs/analysis.md)."""

    def test_launch_results_unchanged_under_sanitizer(self, sanitized_device):
        out = np.zeros(16, dtype=np.int64)

        def kernel(ctx, out):
            out[ctx.gtid] = ctx.gtid + 1
            yield

        sanitized_device.launch(kernel, 2, 8, out)
        assert np.array_equal(out, np.arange(1, 17))

    def test_atomics_unchanged_under_sanitizer(self, sanitized_device):
        counter = np.zeros(1, dtype=np.int64)

        def kernel(ctx, counter):
            ctx.atomic_add(counter, 0, 1)
            yield

        sanitized_device.launch(kernel, 2, 8, counter)
        assert counter[0] == 16


class TestCostAccounting:
    def test_warp_max_semantics(self):
        """A warp costs its max thread: one busy thread serializes it."""
        dev = make_device()  # warp size 4

        def busy_one(ctx):
            if ctx.tid == 0:
                ctx.work(100)
            yield

        def busy_all(ctx):
            ctx.work(100)
            yield

        r1 = dev.launch(busy_one, 1, 4)
        r2 = dev.launch(busy_all, 1, 4)
        assert r1.warp_max_ops == r2.warp_max_ops == 100
        assert r1.total_thread_ops == 100
        assert r2.total_thread_ops == 400
        assert r1.imbalance > r2.imbalance == 0.0

    def test_sim_seconds_positive(self):
        dev = make_device()

        def kernel(ctx):
            ctx.work(10)
            yield

        rep = dev.launch(kernel, 4, 8)
        assert rep.sim_cycles > 0
        assert rep.sim_seconds == pytest.approx(
            rep.sim_cycles / TEST_DEVICE.clock_hz
        )
        assert dev.total_sim_seconds() >= rep.sim_seconds

    def test_more_blocks_more_time(self):
        dev = make_device()

        def kernel(ctx):
            ctx.work(50)
            yield

        small = dev.launch(kernel, 2, 8).sim_cycles
        big = dev.launch(kernel, 64, 8).sim_cycles
        assert big > small

    def test_reset_reports(self):
        dev = make_device()

        def kernel(ctx):
            yield

        dev.launch(kernel, 1, 2)
        dev.reset_reports()
        assert dev.total_sim_cycles() == 0
