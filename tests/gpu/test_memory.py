"""Tests for repro.gpu.memory."""

import numpy as np
import pytest

from repro.errors import MemoryBudgetError
from repro.gpu.device import DeviceSpec
from repro.gpu.memory import GlobalMemory, SharedMemory

SMALL = DeviceSpec("small", 1, 32, 32, 1e6, 1024, shared_mem_per_block=64)


class TestGlobalMemory:
    def test_alloc_and_get(self):
        mem = GlobalMemory(SMALL)
        arr = mem.alloc("a", 10, np.int8)
        assert arr.shape == (10,)
        assert mem.get("a") is arr
        assert "a" in mem

    def test_zero_initialized(self):
        mem = GlobalMemory(SMALL)
        assert mem.alloc("a", 5, np.int64).sum() == 0

    def test_budget_enforced(self):
        mem = GlobalMemory(SMALL)
        with pytest.raises(MemoryBudgetError, match="OOM"):
            mem.alloc("big", 2048, np.int8)

    def test_budget_counts_existing(self):
        mem = GlobalMemory(SMALL)
        mem.alloc("a", 1000, np.int8)
        with pytest.raises(MemoryBudgetError):
            mem.alloc("b", 100, np.int8)

    def test_free_releases_budget(self):
        mem = GlobalMemory(SMALL)
        mem.alloc("a", 1000, np.int8)
        mem.free("a")
        mem.alloc("b", 1000, np.int8)  # should fit again

    def test_duplicate_name(self):
        mem = GlobalMemory(SMALL)
        mem.alloc("a", 1, np.int8)
        with pytest.raises(MemoryBudgetError):
            mem.alloc("a", 1, np.int8)

    def test_free_unknown(self):
        with pytest.raises(MemoryBudgetError):
            GlobalMemory(SMALL).free("nope")

    def test_peak_tracking(self):
        mem = GlobalMemory(SMALL)
        mem.alloc("a", 600, np.int8)
        mem.free("a")
        mem.alloc("b", 100, np.int8)
        assert mem.peak_bytes == 600

    def test_upload_copies(self):
        mem = GlobalMemory(SMALL)
        host = np.arange(5, dtype=np.int8)
        dev = mem.upload("h", host)
        host[0] = 99
        assert dev[0] == 0

    def test_free_all(self):
        mem = GlobalMemory(SMALL)
        mem.alloc("a", 10, np.int8)
        mem.free_all()
        assert mem.used_bytes == 0


class TestSharedMemory:
    def test_get_or_create(self):
        sh = SharedMemory(SMALL)
        a = sh.array("x", 4, np.int8)
        b = sh.array("x", 4, np.int8)
        assert a is b

    def test_budget(self):
        sh = SharedMemory(SMALL)
        with pytest.raises(MemoryBudgetError):
            sh.array("big", 100, np.int8)

    def test_budget_cumulative(self):
        sh = SharedMemory(SMALL)
        sh.array("a", 40, np.int8)
        with pytest.raises(MemoryBudgetError):
            sh.array("b", 40, np.int8)
