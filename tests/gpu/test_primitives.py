"""Tests for repro.gpu.primitives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelError
from repro.gpu.device import TEST_DEVICE
from repro.gpu.kernel import Device
from repro.gpu.primitives import (
    exclusive_prefix_sum_kernel,
    gpu_prefix_sum,
    gpu_segment_sort,
)


class TestGpuPrefixSum:
    def test_exclusive(self):
        dev = Device(TEST_DEVICE)
        arr = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        gpu_prefix_sum(dev, arr, exclusive=True)
        assert arr.tolist() == [0, 3, 4, 8, 9]

    def test_inclusive(self):
        dev = Device(TEST_DEVICE)
        arr = np.array([3, 1, 4], dtype=np.int64)
        gpu_prefix_sum(dev, arr, exclusive=False)
        assert arr.tolist() == [3, 4, 8]

    def test_empty(self):
        dev = Device(TEST_DEVICE)
        arr = np.empty(0, dtype=np.int64)
        gpu_prefix_sum(dev, arr)
        assert arr.size == 0

    def test_cost_charged(self):
        dev = Device(TEST_DEVICE)
        gpu_prefix_sum(dev, np.ones(1000, dtype=np.int64))
        assert dev.reports[-1].name == "GPUPrefixSum"
        assert dev.reports[-1].sim_cycles > 0

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 100), max_size=60))
    def test_matches_cumsum(self, values):
        dev = Device(TEST_DEVICE)
        arr = np.array(values, dtype=np.int64)
        expect = np.concatenate(([0], np.cumsum(arr)[:-1])) if arr.size else arr
        gpu_prefix_sum(dev, arr, exclusive=True)
        assert np.array_equal(arr, expect)


class TestBlellochKernel:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_matches_exclusive_cumsum(self, n):
        dev = Device(TEST_DEVICE, schedule_seed=3)
        rng = np.random.default_rng(n)
        data = rng.integers(0, 50, size=n).astype(np.int64)
        expect = np.concatenate(([0], np.cumsum(data)[:-1]))
        dev.launch(exclusive_prefix_sum_kernel, 1, max(n // 2, 1), data, n)
        assert np.array_equal(data, expect)


class TestSegmentSort:
    def test_sorts_each_segment(self):
        dev = Device(TEST_DEVICE)
        values = np.array([5, 3, 9, 1, 2, 8, 7], dtype=np.int64)
        seg = np.array([0, 3, 3, 7], dtype=np.int64)
        gpu_segment_sort(dev, values, seg)
        assert values.tolist() == [3, 5, 9, 1, 2, 7, 8]

    def test_bad_segments(self):
        dev = Device(TEST_DEVICE)
        with pytest.raises(KernelError):
            gpu_segment_sort(dev, np.zeros(3, np.int64), np.array([1, 3]))

    def test_cost_reflects_skew(self):
        dev = Device(TEST_DEVICE)
        n = 256
        vals = np.arange(n)[::-1].astype(np.int64).copy()
        balanced = np.arange(0, n + 1, 8, dtype=np.int64)  # 32 segments of 8
        skewed = np.array([0] + [n] * 1, dtype=np.int64)  # wait: one big segment
        skewed = np.array([0, n], dtype=np.int64)
        gpu_segment_sort(dev, vals.copy(), balanced)
        cost_balanced = dev.reports[-1].sim_cycles
        gpu_segment_sort(dev, vals.copy(), skewed)
        cost_skewed = dev.reports[-1].sim_cycles
        assert cost_skewed > cost_balanced
