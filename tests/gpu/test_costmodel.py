"""Tests for repro.gpu.costmodel."""

import pytest

from repro.gpu.costmodel import GLOBAL_MEM_COST, CostModel
from repro.gpu.device import TESLA_K20C, DeviceSpec


class TestScheduleBlocks:
    def setup_method(self):
        self.model = CostModel(DeviceSpec("s", 2, 8, 4, 1e6, 1 << 20))

    def test_empty(self):
        assert self.model.schedule_blocks([]) == 0.0

    def test_single_block(self):
        assert self.model.schedule_blocks([10.0]) == 10.0

    def test_perfect_split(self):
        assert self.model.schedule_blocks([5.0, 5.0]) == 5.0

    def test_makespan_is_max_sm(self):
        # 2 SMs, blocks [6,5,4,3]: LPT -> {6,3}, {5,4} -> makespan 9
        assert self.model.schedule_blocks([6.0, 5.0, 4.0, 3.0]) == 9.0

    def test_imbalanced_block_dominates(self):
        assert self.model.schedule_blocks([100.0, 1.0, 1.0]) == 100.0

    def test_more_sms_never_slower(self):
        few = CostModel(DeviceSpec("a", 2, 8, 4, 1e6, 1))
        many = CostModel(DeviceSpec("b", 8, 8, 4, 1e6, 1))
        blocks = [float(x) for x in range(1, 20)]
        assert many.schedule_blocks(blocks) <= few.schedule_blocks(blocks)


class TestGlobalMemCost:
    def test_weight_is_meaningfully_large(self):
        # the modeling assumption: global memory ≫ shared-memory ops
        assert 10 <= GLOBAL_MEM_COST <= 100


class TestTimeKernel:
    def test_fills_cycles_and_seconds(self):
        from repro.gpu.kernel import KernelReport

        model = CostModel(TESLA_K20C)
        rep = KernelReport(
            name="x", grid=2, block=32, n_phases=1,
            warp_max_ops=100, total_thread_ops=100,
            block_cycles=[60.0, 60.0],
        )
        model.time_kernel(rep)
        assert rep.sim_cycles == 10.0  # 60/6 warps-in-flight, 2 blocks on 2 SMs
        assert rep.sim_seconds == pytest.approx(10.0 / TESLA_K20C.clock_hz)
