"""Tests for repro.gpu.device."""

import pytest

from repro.errors import InvalidParameterError
from repro.gpu.device import TESLA_K20C, TEST_DEVICE, DeviceSpec


class TestDeviceSpec:
    def test_k20c_matches_paper(self):
        # §IV: 13 SMs, 192 cores/SM (2496 total), 700 MHz, 4.8 GB
        assert TESLA_K20C.sm_count == 13
        assert TESLA_K20C.cores_per_sm == 192
        assert TESLA_K20C.total_cores == 2496
        assert TESLA_K20C.clock_hz == 700e6
        assert TESLA_K20C.global_mem_bytes == int(4.8 * 2**30)
        assert TESLA_K20C.warp_size == 32

    def test_warps_in_flight(self):
        assert TESLA_K20C.warps_in_flight_per_sm == 6  # 192 / 32

    def test_seconds_from_cycles(self):
        assert TESLA_K20C.seconds_from_cycles(700e6) == pytest.approx(1.0)

    def test_test_device_small(self):
        assert TEST_DEVICE.total_cores < TESLA_K20C.total_cores

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            DeviceSpec("x", 0, 1, 1, 1.0, 1)
        with pytest.raises(InvalidParameterError):
            DeviceSpec("x", 1, 1, 3, 1.0, 1)  # warp not power of two
        with pytest.raises(InvalidParameterError):
            DeviceSpec("x", 1, 1, 2, 0.0, 1)
