"""Tests for repro.gpu.profiler."""

import numpy as np

from repro.gpu.device import TEST_DEVICE
from repro.gpu.kernel import Device
from repro.gpu.profiler import profile_device


def busy_kernel(ctx):
    ctx.work(10 if ctx.tid == 0 else 1)
    yield


def light_kernel(ctx):
    ctx.work(1)
    yield


class TestProfileDevice:
    def test_rollup_counts_launches(self):
        dev = Device(TEST_DEVICE)
        dev.launch(busy_kernel, 1, 4, name="busy")
        dev.launch(busy_kernel, 1, 4, name="busy")
        dev.launch(light_kernel, 1, 4, name="light")
        prof = profile_device(dev)
        assert prof.kernels["busy"].launches == 2
        assert prof.kernels["light"].launches == 1
        assert prof.total_seconds == sum(r.sim_seconds for r in dev.reports)

    def test_shares_sum_to_one(self):
        dev = Device(TEST_DEVICE)
        dev.launch(busy_kernel, 2, 4, name="a")
        dev.launch(light_kernel, 2, 4, name="b")
        prof = profile_device(dev)
        assert abs(prof.share("a") + prof.share("b") - 1.0) < 1e-9

    def test_efficiency_reflects_divergence(self):
        dev = Device(TEST_DEVICE)
        dev.launch(busy_kernel, 1, 4, name="skewed")
        dev.launch(light_kernel, 1, 4, name="even")
        prof = profile_device(dev)
        assert prof.kernels["even"].efficiency == 1.0
        assert prof.kernels["skewed"].efficiency < 0.5

    def test_hottest_ordering(self):
        dev = Device(TEST_DEVICE)
        dev.launch(light_kernel, 1, 4, name="cold")
        dev.launch(busy_kernel, 8, 4, name="hot")
        prof = profile_device(dev)
        assert prof.hottest(1)[0].name == "hot"

    def test_format_contains_rows(self):
        dev = Device(TEST_DEVICE)
        dev.launch(light_kernel, 1, 4, name="k1")
        text = profile_device(dev).format()
        assert "device profile" in text and "k1" in text and "total" in text

    def test_empty_device(self):
        prof = profile_device(Device(TEST_DEVICE))
        assert prof.total_seconds == 0.0
        assert prof.share("anything") == 0.0

    def test_on_real_pipeline(self):
        from repro.core.params import GpuMemParams
        from repro.core.simulated import simulated_find_mems
        from repro.gpu.kernel import Device as Dev

        rng = np.random.default_rng(0)
        R = rng.integers(0, 3, 200).astype(np.uint8)
        Q = rng.integers(0, 3, 200).astype(np.uint8)
        dev = Dev(TEST_DEVICE)
        params = GpuMemParams(min_length=5, seed_length=3,
                              threads_per_block=4, blocks_per_tile=2)
        simulated_find_mems(R, Q, params, device=dev)
        prof = profile_device(dev)
        assert "match:block" in prof.kernels
        assert "index:count" in prof.kernels
        assert prof.total_seconds > 0
