"""Tests for affine-gap (Gotoh) and banded alignment."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align.affine import banded_align, global_align_affine
from repro.align.pairwise import global_align
from repro.errors import InvalidParameterError

from tests.conftest import dna


def naive_affine_score(a, b, match=1, mismatch=-1, gap_open=-3, gap_extend=-1):
    """Reference Gotoh DP (dictionary-of-states, no vectorization)."""
    NEG = -(10**9)
    n, m = len(a), len(b)
    M = [[NEG] * (m + 1) for _ in range(n + 1)]
    D = [[NEG] * (m + 1) for _ in range(n + 1)]
    I = [[NEG] * (m + 1) for _ in range(n + 1)]
    M[0][0] = 0
    for i in range(1, n + 1):
        D[i][0] = gap_open + i * gap_extend
    for j in range(1, m + 1):
        I[0][j] = gap_open + j * gap_extend
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            s = match if a[i - 1] == b[j - 1] else mismatch
            M[i][j] = max(M[i - 1][j - 1], D[i - 1][j - 1], I[i - 1][j - 1]) + s
            D[i][j] = max(
                M[i - 1][j] + gap_open + gap_extend,
                D[i - 1][j] + gap_extend,
                I[i - 1][j] + gap_open + gap_extend,
            )
            I[i][j] = max(
                M[i][j - 1] + gap_open + gap_extend,
                I[i][j - 1] + gap_extend,
                D[i][j - 1] + gap_open + gap_extend,
            )
    return max(M[n][m], D[n][m], I[n][m])


class TestGlobalAlignAffine:
    def test_identical(self):
        a = np.array([0, 1, 2, 3], dtype=np.uint8)
        res = global_align_affine(a, a.copy())
        assert res.score == 4 and res.cigar_string == "4M"

    def test_long_gap_cheaper_than_linear(self):
        # a 6-base deletion: affine charges open once
        a = np.concatenate([np.arange(4), np.full(6, 3), np.arange(4)]).astype(np.uint8) % 4
        b = np.concatenate([np.arange(4), np.arange(4)]).astype(np.uint8) % 4
        res = global_align_affine(a, b, gap_open=-3, gap_extend=-1)
        assert res.n_delete >= 6
        # affine score: 8 matches - (3 + 6) = -1-ish; linear gap=-2 gives 8-12
        assert res.score > global_align(a, b, gap=-2).score

    def test_one_empty(self):
        a = np.empty(0, dtype=np.uint8)
        b = np.array([1, 2, 3], dtype=np.uint8)
        res = global_align_affine(a, b, gap_open=-3, gap_extend=-1)
        assert res.score == -6 and res.cigar_string == "3I"

    def test_cigar_consumption(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, 25).astype(np.uint8)
        b = rng.integers(0, 4, 31).astype(np.uint8)
        res = global_align_affine(a, b)
        r_used = sum(r for op, r in res.cigar if op in "MD")
        q_used = sum(r for op, r in res.cigar if op in "MI")
        assert (r_used, q_used) == (a.size, b.size)

    @settings(max_examples=40, deadline=None)
    @given(dna(max_size=18, alphabet=3), dna(max_size=18, alphabet=3),
           st.integers(-4, -1), st.integers(-2, -1))
    def test_score_matches_naive_gotoh(self, a, b, gap_open, gap_extend):
        got = global_align_affine(a, b, gap_open=gap_open, gap_extend=gap_extend)
        assert got.score == naive_affine_score(
            a, b, gap_open=gap_open, gap_extend=gap_extend
        )

    @settings(max_examples=25, deadline=None)
    @given(dna(max_size=16, alphabet=2), dna(max_size=16, alphabet=2))
    def test_traceback_score_consistent(self, a, b):
        """Replaying the CIGAR must reproduce the reported score."""
        res = global_align_affine(a, b, gap_open=-3, gap_extend=-1)
        score = res.n_match * 1 + res.n_mismatch * -1
        for op, run in res.cigar:
            if op in "ID":
                score += -3 + run * -1
        assert score == res.score

    def test_guards(self):
        a = np.zeros(3, dtype=np.uint8)
        with pytest.raises(InvalidParameterError):
            global_align_affine(a, a, gap_open=1)


class TestBandedAlign:
    def test_exact_within_band(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, 60).astype(np.uint8)
        b = a.copy()
        b[30] = (b[30] + 1) % 4
        banded = banded_align(a, b, band=3)
        full = global_align(a, b)
        assert banded.score == full.score
        assert banded.cigar == full.cigar

    @settings(max_examples=30, deadline=None)
    @given(dna(min_size=1, max_size=40, alphabet=3))
    def test_small_indels_recovered_exactly(self, a):
        # drop one base -> optimal path within band 2
        if a.size < 3:
            return
        b = np.delete(a, a.size // 2)
        banded = banded_align(a, b, band=2)
        full = global_align(a, b)
        assert banded.score == full.score

    def test_band_too_narrow_for_corner(self):
        a = np.zeros(10, dtype=np.uint8)
        b = np.zeros(2, dtype=np.uint8)
        with pytest.raises(InvalidParameterError, match="corner"):
            banded_align(a, b, band=3)

    def test_band_zero_pure_diagonal(self):
        a = np.array([0, 1, 2, 0], dtype=np.uint8)
        b = np.array([0, 1, 3, 0], dtype=np.uint8)
        res = banded_align(a, b, band=0)
        assert res.cigar_string == "4M" and res.n_mismatch == 1

    def test_consumption(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 4, 50).astype(np.uint8)
        b = np.insert(a, 10, rng.integers(0, 4, 3).astype(np.uint8))
        res = banded_align(a, b, band=6)
        r_used = sum(r for op, r in res.cigar if op in "MD")
        q_used = sum(r for op, r in res.cigar if op in "MI")
        assert (r_used, q_used) == (a.size, b.size)

    def test_empty_sides(self):
        a = np.empty(0, dtype=np.uint8)
        b = np.array([1, 2], dtype=np.uint8)
        res = banded_align(a, b, band=2)
        assert res.cigar_string == "2I"
