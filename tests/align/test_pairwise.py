"""Tests for repro.align.pairwise."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align.pairwise import edit_distance, global_align
from repro.errors import InvalidParameterError

from tests.conftest import dna


def naive_nw_score(a, b, match=1, mismatch=-1, gap=-2):
    n, m = len(a), len(b)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        dp[i][0] = i * gap
    for j in range(1, m + 1):
        dp[0][j] = j * gap
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            s = match if a[i - 1] == b[j - 1] else mismatch
            dp[i][j] = max(dp[i - 1][j - 1] + s, dp[i - 1][j] + gap,
                           dp[i][j - 1] + gap)
    return dp[n][m]


def naive_edit(a, b):
    n, m = len(a), len(b)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dp[i][0] = i
    for j in range(m + 1):
        dp[0][j] = j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            dp[i][j] = min(
                dp[i - 1][j - 1] + (a[i - 1] != b[j - 1]),
                dp[i - 1][j] + 1,
                dp[i][j - 1] + 1,
            )
    return dp[n][m]


class TestGlobalAlign:
    def test_identical(self):
        a = np.array([0, 1, 2, 3], dtype=np.uint8)
        res = global_align(a, a.copy())
        assert res.score == 4
        assert res.cigar_string == "4M"
        assert res.identity == 1.0
        assert res.n_mismatch == 0

    def test_single_mismatch(self):
        a = np.array([0, 1, 2], dtype=np.uint8)
        b = np.array([0, 3, 2], dtype=np.uint8)
        res = global_align(a, b)
        assert res.score == 1  # 2 match - 1 mismatch
        assert res.n_mismatch == 1

    def test_pure_insertion(self):
        a = np.array([0, 1], dtype=np.uint8)
        b = np.array([0, 2, 1], dtype=np.uint8)
        res = global_align(a, b)
        assert res.n_insert == 1
        assert res.score == 2 * 1 - 2

    def test_pure_deletion(self):
        a = np.array([0, 2, 1], dtype=np.uint8)
        b = np.array([0, 1], dtype=np.uint8)
        res = global_align(a, b)
        assert res.n_delete == 1

    def test_empty_vs_something(self):
        a = np.empty(0, dtype=np.uint8)
        b = np.array([1, 2], dtype=np.uint8)
        res = global_align(a, b)
        assert res.score == -4
        assert res.cigar_string == "2I"
        res = global_align(b, a)
        assert res.cigar_string == "2D"

    def test_both_empty(self):
        a = np.empty(0, dtype=np.uint8)
        res = global_align(a, a)
        assert res.score == 0 and res.cigar == ()

    def test_cigar_consumption(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, 30).astype(np.uint8)
        b = rng.integers(0, 4, 25).astype(np.uint8)
        res = global_align(a, b)
        consumed_r = sum(r for op, r in res.cigar if op in "MD")
        consumed_q = sum(r for op, r in res.cigar if op in "MI")
        assert consumed_r == a.size and consumed_q == b.size

    @settings(max_examples=40, deadline=None)
    @given(dna(max_size=25, alphabet=3), dna(max_size=25, alphabet=3))
    def test_score_matches_naive(self, a, b):
        assert global_align(a, b).score == naive_nw_score(a, b)

    @settings(max_examples=25, deadline=None)
    @given(dna(max_size=20), dna(max_size=20), st.integers(-3, -1))
    def test_score_matches_naive_other_gaps(self, a, b, gap):
        got = global_align(a, b, gap=gap)
        assert got.score == naive_nw_score(a, b, gap=gap)

    def test_guards(self):
        big = np.zeros(10_000, dtype=np.uint8)
        with pytest.raises(InvalidParameterError):
            global_align(big, big)
        with pytest.raises(InvalidParameterError):
            global_align(big[:2], big[:2], gap=1)


class TestEditDistance:
    def test_known(self):
        a = np.array([0, 1, 2], dtype=np.uint8)
        b = np.array([0, 2], dtype=np.uint8)
        assert edit_distance(a, b) == 1

    def test_symmetry_and_identity(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, 40).astype(np.uint8)
        b = rng.integers(0, 4, 33).astype(np.uint8)
        assert edit_distance(a, b) == edit_distance(b, a)
        assert edit_distance(a, a) == 0

    @settings(max_examples=50, deadline=None)
    @given(dna(max_size=25, alphabet=3), dna(max_size=25, alphabet=3))
    def test_matches_naive(self, a, b):
        assert edit_distance(a, b) == naive_edit(a, b)

    @settings(max_examples=25, deadline=None)
    @given(dna(max_size=30), dna(max_size=30), dna(max_size=30))
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)
