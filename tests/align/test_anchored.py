"""Tests for repro.align.anchored (the full MEM->chain->align pipeline)."""

import numpy as np
import pytest

import repro
from repro.align.anchored import align_from_anchors
from repro.core.chaining import Chain, chain_anchors
from repro.errors import InvalidParameterError
from repro.sequence.synthetic import markov_dna, mutate


class TestAlignFromAnchors:
    def test_single_anchor_pure_match(self):
        R = np.array([0, 1, 2, 3], dtype=np.uint8)
        chain = Chain(anchors=((0, 0, 4),), score=4)
        aln = align_from_anchors(R, R.copy(), chain)
        assert aln.cigar_string == "4M"
        assert aln.identity == 1.0
        assert aln.score == 4
        assert aln.n_anchors == 1

    def test_gap_between_anchors_aligned(self):
        # R: AAAA T CCCC ; Q: AAAA G CCCC — anchors on the A and C runs
        R = np.array([0] * 4 + [3] + [1] * 4, dtype=np.uint8)
        Q = np.array([0] * 4 + [2] + [1] * 4, dtype=np.uint8)
        chain = Chain(anchors=((0, 0, 4), (5, 5, 4)), score=8)
        aln = align_from_anchors(R, Q, chain)
        assert aln.n_match == 8 and aln.n_mismatch == 1
        assert aln.cigar_string == "9M"
        assert aln.consumes() == (9, 9)

    def test_indel_gap(self):
        R = np.array([0] * 4 + [1] * 4, dtype=np.uint8)
        Q = np.array([0] * 4 + [3, 3] + [1] * 4, dtype=np.uint8)
        chain = Chain(anchors=((0, 0, 4), (4, 6, 4)), score=8)
        aln = align_from_anchors(R, Q, chain)
        assert aln.n_insert == 2
        assert aln.consumes() == (8, 10)

    def test_rejects_empty_chain(self):
        with pytest.raises(InvalidParameterError):
            align_from_anchors(np.zeros(3, np.uint8), np.zeros(3, np.uint8),
                               Chain(anchors=(), score=0))

    def test_rejects_overlapping_chain(self):
        R = np.zeros(10, dtype=np.uint8)
        bad = Chain(anchors=((0, 0, 5), (3, 3, 5)), score=10)
        with pytest.raises(InvalidParameterError):
            align_from_anchors(R, R.copy(), bad)

    def test_end_to_end_mem_chain_align(self):
        """The paper's full pipeline: MEM anchors -> chain -> alignment."""
        rng = np.random.default_rng(7)
        R = markov_dna(4000, seed=7)
        Q = mutate(R, rate=0.03, indel_rate=0.002, seed=8)
        mems = repro.find_mems(R, Q, min_length=15, seed_length=8)
        chain = chain_anchors(mems)
        aln = align_from_anchors(R, Q, chain)
        # 3% divergence -> identity in the mid-90s over the chained span
        assert aln.identity > 0.90
        r_used, q_used = aln.consumes()
        assert r_used == aln.r_end - aln.r_start
        assert q_used == aln.q_end - aln.q_start
        assert aln.n_match >= chain.score  # anchors alone give that many

    def test_affine_gap_model(self):
        R = np.array([0] * 4 + [1] * 4, dtype=np.uint8)
        Q = np.array([0] * 4 + [3, 3, 3, 3] + [1] * 4, dtype=np.uint8)
        chain = Chain(anchors=((0, 0, 4), (4, 8, 4)), score=8)
        linear = align_from_anchors(R, Q, chain, gap=-2)
        affine = align_from_anchors(R, Q, chain, gap_model="affine",
                                    gap_open=-3, gap_extend=-1)
        assert affine.n_insert == linear.n_insert == 4
        assert affine.score > linear.score  # one open beats 4x linear

    def test_bad_gap_model(self):
        chain = Chain(anchors=((0, 0, 2),), score=2)
        R = np.zeros(4, dtype=np.uint8)
        with pytest.raises(InvalidParameterError):
            align_from_anchors(R, R.copy(), chain, gap_model="quadratic")

    def test_long_gap_uses_band_and_stays_exact(self):
        # two anchors separated by a 600-base near-diagonal gap
        rng = np.random.default_rng(13)
        mid_r = rng.integers(0, 4, 600).astype(np.uint8)
        mid_q = mid_r.copy()
        mid_q[100] = (mid_q[100] + 1) % 4
        mid_q = np.delete(mid_q, 300)
        A = np.array([0, 1, 2, 3] * 3, dtype=np.uint8)
        R = np.concatenate([A, mid_r, A])
        Q = np.concatenate([A, mid_q, A])
        chain = Chain(
            anchors=((0, 0, 12), (12 + 600, 12 + mid_q.size, 12)), score=24
        )
        aln = align_from_anchors(R, Q, chain)
        assert aln.n_delete == 1 and aln.n_mismatch <= 2
        r_used, q_used = aln.consumes()
        assert r_used == R.size and q_used == Q.size

    def test_alignment_reconstructs_sequences(self):
        rng = np.random.default_rng(9)
        R = markov_dna(1500, seed=9)
        Q = mutate(R, rate=0.05, indel_rate=0.004, seed=10)
        mems = repro.find_mems(R, Q, min_length=12, seed_length=6)
        chain = chain_anchors(mems)
        aln = align_from_anchors(R, Q, chain)
        # replay the CIGAR over both sequences
        i, j = aln.r_start, aln.q_start
        for op, run in aln.cigar:
            if op == "M":
                i += run
                j += run
            elif op == "D":
                i += run
            else:
                j += run
        assert (i, j) == (aln.r_end, aln.q_end)
