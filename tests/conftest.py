"""Shared test fixtures and hypothesis strategies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings as hyp_settings
from hypothesis import strategies as st

# Kernel tests can take the `sanitized_device` / `simt_sanitizer` fixtures to
# run launches under the SIMT race detector (docs/analysis.md); host tests
# can take `lock_tracker` (or set REPRO_LOCK_TRACKER=1 — CI's
# tests-locktracker leg) to run under the runtime lock-order sanitizer;
# IPC-heavy tests can take `resource_tracker` (or set
# REPRO_RESOURCE_TRACKER=1 — CI's tests-resource leg) to run under the
# runtime shm/mmap/file-lock leak audit.
pytest_plugins = [
    "repro.analysis.pytest_sanitizer",
    "repro.analysis.pytest_lock_tracker",
    "repro.analysis.pytest_resource_tracker",
]

# NumPy batch sizes make per-example wall time noisy; correctness, not
# latency, is what these properties check.
hyp_settings.register_profile("repro", deadline=None)
hyp_settings.load_profile("repro")


def dna(min_size: int = 0, max_size: int = 120, alphabet: int = 4):
    """Hypothesis strategy for DNA code arrays.

    Small alphabets (2-3 letters) make matches — and therefore edge cases —
    far denser, so most property tests draw from them.
    """
    return st.lists(
        st.integers(0, alphabet - 1), min_size=min_size, max_size=max_size
    ).map(lambda xs: np.array(xs, dtype=np.uint8))


@st.composite
def dna_pair(draw, max_size: int = 100, alphabet: int = 3):
    """A (reference, query) pair, sometimes with planted shared content."""
    ref = draw(dna(min_size=1, max_size=max_size, alphabet=alphabet))
    qry = draw(dna(min_size=1, max_size=max_size, alphabet=alphabet))
    if draw(st.booleans()) and ref.size >= 4:
        # splice a reference segment into the query to guarantee matches
        lo = draw(st.integers(0, ref.size - 2))
        hi = draw(st.integers(lo + 1, ref.size))
        at = draw(st.integers(0, qry.size))
        qry = np.concatenate([qry[:at], ref[lo:hi], qry[at:]]).astype(np.uint8)
    return ref, qry


def naive_mems(reference: np.ndarray, query: np.ndarray, min_length: int):
    """Second, loop-based oracle (independent of repro.core.reference)."""
    out = set()
    nr, nq = len(reference), len(query)
    for r in range(nr):
        for q in range(nq):
            if reference[r] != query[q]:
                continue
            if r > 0 and q > 0 and reference[r - 1] == query[q - 1]:
                continue  # not left-maximal
            length = 0
            while (
                r + length < nr
                and q + length < nq
                and reference[r + length] == query[q + length]
            ):
                length += 1
            if length >= min_length:
                out.add((r, q, length))
    return out


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def homologous_pair():
    """A realistic mid-size pair with repeats and homology (session cached)."""
    from repro.sequence.synthetic import markov_dna, plant_homology, plant_repeats

    ref = plant_repeats(
        markov_dna(20_000, seed=91),
        seed=92,
        n_families=3,
        family_length=(40, 120),
        copies_per_family=(15, 60),
        copy_divergence=0.02,
    )
    qry = plant_homology(ref, 15_000, seed=93, coverage=0.5, divergence=0.02)
    return ref, qry
