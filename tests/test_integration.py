"""Cross-cutting integration and property tests.

The library's headline invariant: **every engine returns the identical MEM
set** — GPUMEM vectorized (any tiling), GPUMEM simulated, and all four CPU
baselines — and that set equals the brute-force definition of §II.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro.baselines import (
    EssaMemFinder,
    MummerFinder,
    SlaMemFinder,
    SparseMemFinder,
)
from repro.core.params import GpuMemParams
from repro.core.reference import brute_force_mems
from repro.core.simulated import simulated_find_mems
from repro.gpu.device import TEST_DEVICE
from repro.types import mems_equal

from tests.conftest import dna_pair


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(dna_pair(max_size=90), st.integers(4, 7))
def test_every_engine_agrees(pair, L):
    R, Q = pair
    expect = brute_force_mems(R, Q, L)

    # GPUMEM vectorized, two tilings
    for blocks, tau in ((1, 8), (2, 4)):
        p = GpuMemParams(min_length=L, seed_length=3,
                         threads_per_block=tau, blocks_per_tile=blocks)
        got = repro.GpuMem(p).find_mems(R, Q)
        assert mems_equal(got.array, expect), ("vectorized", blocks, tau)

    # GPUMEM simulated
    p = GpuMemParams(min_length=L, seed_length=3,
                     threads_per_block=4, blocks_per_tile=2)
    sim, _ = simulated_find_mems(R, Q, p, spec=TEST_DEVICE)
    assert mems_equal(sim, expect)

    # CPU baselines
    for finder in (MummerFinder(), SparseMemFinder(sparseness=3),
                   EssaMemFinder(sparseness=2, prefix_table_k=3),
                   SlaMemFinder(occ_rate=8, sa_rate=4)):
        finder.build_index(R)
        got = finder.find_mems(Q, L)
        assert mems_equal(got.mems.array, expect), finder.name


class TestAdversarialInputs:
    CASES = {
        "all_same": (np.zeros(150, np.uint8), np.zeros(90, np.uint8)),
        "alternating": (
            np.tile([0, 1], 70).astype(np.uint8),
            np.tile([1, 0], 60).astype(np.uint8),
        ),
        "period3_vs_period2": (
            np.tile([0, 1, 2], 50).astype(np.uint8),
            np.tile([0, 1], 60).astype(np.uint8),
        ),
        "identical": (
            (np.arange(140) % 4).astype(np.uint8),
            (np.arange(140) % 4).astype(np.uint8),
        ),
        "disjoint_alphabets": (
            np.zeros(100, np.uint8),
            np.full(100, 3, np.uint8),
        ),
        "single_base_query": ((np.arange(99) % 4).astype(np.uint8),
                              np.array([2], np.uint8)),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_case(self, name):
        R, Q = self.CASES[name]
        L = 6 if Q.size >= 6 else 1
        ls = min(3, L)
        expect = brute_force_mems(R, Q, L)
        p = GpuMemParams(min_length=L, seed_length=ls,
                         threads_per_block=4, blocks_per_tile=2)
        got = repro.GpuMem(p).find_mems(R, Q)
        assert mems_equal(got.array, expect)
        for finder in (MummerFinder(), SlaMemFinder(occ_rate=8, sa_rate=4)):
            finder.build_index(R)
            assert mems_equal(finder.find_mems(Q, L).mems.array, expect), (
                name, finder.name,
            )


class TestMemDefinitionProperties:
    """Hypothesis checks of the §II definition on GPUMEM's output alone."""

    @settings(max_examples=25, deadline=None)
    @given(dna_pair(max_size=100))
    def test_output_mems_are_real_and_maximal(self, pair):
        R, Q = pair
        L = 4
        got = repro.find_mems(R, Q, min_length=L, seed_length=3)
        for r, q, length in got:
            assert length >= L
            assert np.array_equal(R[r : r + length], Q[q : q + length])
            assert r == 0 or q == 0 or R[r - 1] != Q[q - 1]
            assert (
                r + length == R.size
                or q + length == Q.size
                or R[r + length] != Q[q + length]
            )

    @settings(max_examples=20, deadline=None)
    @given(dna_pair(max_size=100), st.integers(4, 8), st.integers(5, 9))
    def test_min_length_monotone(self, pair, l1, l2):
        """MEMs at a larger L are a subset of MEMs at a smaller L."""
        R, Q = pair
        lo, hi = min(l1, l2), max(l1, l2)
        small = set(repro.find_mems(R, Q, min_length=lo, seed_length=3).as_tuples())
        large = set(repro.find_mems(R, Q, min_length=hi, seed_length=3).as_tuples())
        assert large <= small

    @settings(max_examples=20, deadline=None)
    @given(dna_pair(max_size=80))
    def test_symmetry(self, pair):
        """Swapping reference and query transposes the MEM set."""
        R, Q = pair
        fwd = set(repro.find_mems(R, Q, min_length=4, seed_length=3).as_tuples())
        rev = set(repro.find_mems(Q, R, min_length=4, seed_length=3).as_tuples())
        assert rev == {(q, r, l) for r, q, l in fwd}

    @settings(max_examples=15, deadline=None)
    @given(dna_pair(max_size=80), st.integers(0, 20))
    def test_query_prefix_consistency(self, pair, cut):
        """Fig. 4's premise: MEMs of a query prefix are exactly the full
        query's MEMs that fit in the prefix, minus right-truncation effects
        at the cut (a MEM crossing the cut may reappear shortened or vanish)."""
        R, Q = pair
        cut = min(cut, Q.size)
        prefix_mems = set(
            repro.find_mems(R, Q[:cut], min_length=4, seed_length=3).as_tuples()
        )
        full_mems = set(repro.find_mems(R, Q, min_length=4, seed_length=3).as_tuples())
        fully_inside = {(r, q, l) for r, q, l in full_mems if q + l < cut}
        assert fully_inside <= prefix_mems


class TestScaledRealisticRun:
    def test_homologous_pair_end_to_end(self, homologous_pair):
        """A 20 kbp realistic pair: nontrivial MEM count, stats coherent."""
        R, Q = homologous_pair
        m = repro.GpuMem(min_length=25, seed_length=8, blocks_per_tile=4)
        result = m.find_mems(R, Q)
        assert len(result) > 50
        stats = m.stats
        assert stats["n_tiles"] >= 1
        assert stats["n_candidates"] > len(result)
        assert stats["total_time"] > 0
        # cross-check one more engine at this scale
        f = MummerFinder()
        f.build_index(R)
        assert mems_equal(f.find_mems(Q, 25).mems.array, result.array)
