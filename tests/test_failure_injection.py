"""Failure injection: corrupted structures and exhausted budgets must be
loud, not silent."""

import numpy as np
import pytest

from repro.errors import (
    GpuMemError,
    IndexIntegrityError,
    InvalidParameterError,
    InvalidSequenceError,
    KernelError,
    MemoryBudgetError,
)


class TestCorruptedIndex:
    def make_index(self):
        from repro.index.kmer_index import build_kmer_index

        rng = np.random.default_rng(0)
        codes = rng.integers(0, 4, 200).astype(np.uint8)
        return build_kmer_index(codes, seed_length=3, step=2)

    def test_check_catches_unsorted_locs(self):
        idx = self.make_index()
        # corrupt: swap two locations within a multi-entry seed bucket
        sizes = np.diff(idx.ptrs)
        seed = int(np.argmax(sizes))
        assert sizes[seed] >= 2
        lo = int(idx.ptrs[seed])
        idx.locs[lo], idx.locs[lo + 1] = idx.locs[lo + 1], idx.locs[lo].copy()
        # A structured error (never AssertionError: python -O strips asserts).
        with pytest.raises(IndexIntegrityError, match="not sorted"):
            idx.check()

    def test_check_catches_bad_ptrs(self):
        idx = self.make_index()
        idx.ptrs[5] = idx.ptrs[4] - 1  # non-monotone
        with pytest.raises(IndexIntegrityError, match="non-decreasing"):
            idx.check()

    def test_check_catches_bad_total(self):
        idx = self.make_index()
        idx.ptrs[-1] += 1
        with pytest.raises(IndexIntegrityError, match="endpoints"):
            idx.check()

    def test_integrity_error_is_catchable_as_gpumem_error(self):
        idx = self.make_index()
        idx.ptrs[-1] += 1
        with pytest.raises(GpuMemError):
            idx.check()


class TestDeviceBudgets:
    def test_index_build_oom_on_tiny_device(self):
        from repro.core.seed_index import build_kmer_index_gpu
        from repro.gpu.device import DeviceSpec
        from repro.gpu.kernel import Device

        tiny = DeviceSpec("tiny", 1, 8, 4, 1e6, global_mem_bytes=1024)
        dev = Device(tiny)
        codes = np.zeros(4000, dtype=np.uint8)
        with pytest.raises(MemoryBudgetError):
            # ptrs for ℓs=6 alone is 4^6 * 8 bytes >> 1 KiB
            build_kmer_index_gpu(dev, codes, seed_length=6, step=1, block=8)

    def test_shared_memory_overflow_in_kernel(self):
        from repro.gpu.device import DeviceSpec
        from repro.gpu.kernel import Device

        spec = DeviceSpec("s", 1, 8, 4, 1e6, 1 << 20, shared_mem_per_block=16)
        dev = Device(spec)

        def greedy(ctx):
            ctx.shared.array("big", 64, np.int64)
            yield

        with pytest.raises(MemoryBudgetError):
            dev.launch(greedy, 1, 4)


class TestBadSequences:
    def test_protein_sequence_rejected(self):
        import repro

        with pytest.raises(InvalidSequenceError):
            repro.find_mems("MKVL", "MKVL", min_length=2, seed_length=2)

    def test_mem_finder_rejects_garbage(self):
        from repro.baselines import MummerFinder

        with pytest.raises(InvalidSequenceError):
            MummerFinder().build_index("not dna!")


class TestErrorHierarchy:
    def test_all_library_errors_share_base(self):
        for exc in (InvalidParameterError, InvalidSequenceError,
                    MemoryBudgetError, KernelError):
            assert issubclass(exc, GpuMemError)

    def test_parameter_errors_are_value_errors(self):
        assert issubclass(InvalidParameterError, ValueError)

    def test_memory_errors_are_memory_errors(self):
        assert issubclass(MemoryBudgetError, MemoryError)
