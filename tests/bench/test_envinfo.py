"""Tests for bench environment capture."""

from repro.bench.harness import environment_info


def test_environment_info_fields():
    env = environment_info()
    for key in ("python", "numpy", "repro", "platform", "bench_div"):
        assert key in env
    assert env["repro"]
    assert isinstance(env["bench_div"], int)
