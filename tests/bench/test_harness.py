"""Tests for the bench harness (small divisors keep these fast)."""


from repro.bench.harness import (
    gpumem_params,
    run_extraction_experiment,
    run_index_experiment,
    time_call,
)
from repro.bench.harness import bench_pair as _bench_pair
from repro.bench.workloads import TOOL_COLUMNS, experiment_rows
from repro.sequence.datasets import EXPERIMENT_CONFIGS

TINY = EXPERIMENT_CONFIGS[7]  # chrXII/chrI L=20


class TestBenchPair:
    def test_slicing(self):
        ref, qry = _bench_pair(TINY, div=100)
        from repro.sequence.datasets import DATASETS

        assert ref.size == DATASETS[TINY.reference].length // 100
        assert qry.size == DATASETS[TINY.query].length // 100

    def test_gpumem_params(self):
        p = gpumem_params(TINY)
        assert p.min_length == TINY.min_length
        assert p.seed_length == TINY.seed_length


class TestRunExperiments:
    def test_index_experiment_columns(self):
        times = run_index_experiment(TINY, div=100)
        assert set(times) == set(TOOL_COLUMNS)
        assert all(t >= 0 for t in times.values())

    def test_extraction_experiment_cross_checks(self):
        times, info = run_extraction_experiment(TINY, div=100)
        # tau > L columns may be skipped; everything measured is >= 0
        assert all(t >= 0 for t in times.values())
        assert set(times) | set(info["skipped"]) == set(TOOL_COLUMNS)
        assert info["n_mems"] >= 0
        assert info["reference_len"] > 0

    def test_experiment_rows_are_the_nine(self):
        assert len(experiment_rows()) == 9


class TestTimeCall:
    def test_returns_best_and_result(self):
        seconds, result = time_call(lambda: 42, repeat=3)
        assert result == 42 and seconds >= 0
