"""Tests for repro.bench.reporting."""

from repro.bench.reporting import format_table, series_csv


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            "T", [("row1", {"a": 1.5, "b": 2.0})], ["a", "b"], precision=1
        )
        assert "== T ==" in text
        assert "row1" in text
        assert "1.5s" in text and "2.0s" in text

    def test_missing_value_dash(self):
        text = format_table("T", [("r", {"a": 1.0})], ["a", "b"])
        assert "-" in text

    def test_paper_rows_interleaved(self):
        text = format_table(
            "T",
            [("r", {"a": 1.0})],
            ["a"],
            paper={"r": {"a": 9.0}},
        )
        lines = text.splitlines()
        assert any("paper" in line for line in lines)
        assert "9.000s" in text

    def test_unit_override(self):
        text = format_table("T", [("r", {"a": 1.0})], ["a"], unit="x")
        assert "1.000x" in text


class TestSeriesCsv:
    def test_roundtrip(self):
        text = series_csv(["x", "y"], [(1, 2), (3, 4)])
        assert text == "x,y\n1,2\n3,4\n"
