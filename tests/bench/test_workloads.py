"""Tests for repro.bench.workloads (published-number transcription)."""

from repro.bench.workloads import (
    FIG4_FRACTIONS,
    FIG5_MIN_LENGTHS,
    PAPER_TABLE3,
    PAPER_TABLE4,
    TOOL_COLUMNS,
    experiment_rows,
)


class TestPaperTables:
    def test_nine_rows_each(self):
        assert len(PAPER_TABLE3) == 9
        assert len(PAPER_TABLE4) == 9

    def test_rows_match_configs(self):
        keys = {c.key for c in experiment_rows()}
        assert set(PAPER_TABLE3) == keys
        assert set(PAPER_TABLE4) == keys

    def test_all_columns_present(self):
        for table in (PAPER_TABLE3, PAPER_TABLE4):
            for row in table.values():
                assert set(row) == set(TOOL_COLUMNS)

    def test_headline_claims_hold_in_transcription(self):
        # GPUMEM fastest extraction in every published row
        for key, row in PAPER_TABLE4.items():
            others = [v for c, v in row.items() if c != "GPUMEM"]
            assert row["GPUMEM"] <= min(others), key
        # sparseMEM extraction degrades with tau (the sparseness coupling)
        big = PAPER_TABLE4["chr1m/chr2h/L50"]
        assert big["sparseMEM t=1"] < big["sparseMEM t=4"] < big["sparseMEM t=8"]
        # essaMEM improves with tau
        assert big["essaMEM t=1"] > big["essaMEM t=4"] > big["essaMEM t=8"]

    def test_index_l_dependence_only_for_gpumem(self):
        a = PAPER_TABLE3["chr1m/chr2h/L100"]
        b = PAPER_TABLE3["chr1m/chr2h/L30"]
        assert a["GPUMEM"] != b["GPUMEM"]
        assert a["MUMmer"] == b["MUMmer"]


class TestFigureSweeps:
    def test_fig4_final_point_is_full_query(self):
        assert FIG4_FRACTIONS[-1] == 1.0
        assert all(0 < f <= 1 for f in FIG4_FRACTIONS)
        assert FIG4_FRACTIONS == sorted(FIG4_FRACTIONS)

    def test_fig5_paper_values(self):
        assert FIG5_MIN_LENGTHS == [20, 40, 50, 100, 150]
