"""The shipped examples must at least compile; the fast ones must run."""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[1] / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 4


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs():
    path = next(p for p in EXAMPLES if p.name == "quickstart.py")
    proc = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True, timeout=300
    )
    assert proc.returncode == 0, proc.stderr
    assert "GPUMEM found" in proc.stdout
    assert "identical MEM set" in proc.stdout
