"""Diff fresh ``BENCH_*.json`` records against committed baselines.

Usage::

    python benchmarks/check_regression.py FRESH_DIR \
        [--baseline bench_results] [--threshold 0.25] [--strict]

``benchmarks/run_all.py`` writes one machine-readable ``BENCH_<name>.json``
per target (wall seconds, environment, git revision). This tool compares a
fresh directory of those records against the baselines committed under
``bench_results/`` and reports per-target wall-time deltas. A target whose
fresh ``seconds`` exceeds ``baseline * (1 + threshold)`` is flagged as a
regression with a GitHub Actions ``::warning::`` annotation.

Deliberately **warn-only by default** (exit 0): CI runners are shared and
noisy, and the committed baselines were recorded on different hardware, so
wall-second deltas are a smoke signal for a human to look at — not a merge
gate. ``--strict`` flips regressions to exit 1 for local A/B runs on one
quiet machine, where the comparison actually means something.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_records(directory: Path) -> dict[str, dict]:
    """``{name: record}`` for every parseable BENCH_*.json in a directory."""
    records: dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"::warning::unreadable benchmark record {path}: {exc}")
            continue
        name = record.get("name") or path.stem.removeprefix("BENCH_")
        records[name] = record
    return records


def compare(
    fresh: dict[str, dict], baseline: dict[str, dict], threshold: float
) -> list[dict]:
    """Per-target comparison rows; ``regressed`` marks over-threshold ones."""
    rows = []
    for name in sorted(fresh):
        new_seconds = fresh[name].get("seconds")
        base_record = baseline.get(name)
        base_seconds = base_record.get("seconds") if base_record else None
        row = {
            "name": name,
            "seconds": new_seconds,
            "baseline_seconds": base_seconds,
            "ratio": None,
            "regressed": False,
            "div_mismatch": False,
        }
        if base_record is not None and (
            fresh[name].get("div") != base_record.get("div")
        ):
            # Different slicing presets time different workloads — a ratio
            # between them is noise, not signal.
            row["div_mismatch"] = True
        elif (
            isinstance(new_seconds, (int, float))
            and isinstance(base_seconds, (int, float))
            and base_seconds > 0
        ):
            row["ratio"] = new_seconds / base_seconds
            row["regressed"] = row["ratio"] > 1.0 + threshold
        rows.append(row)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="directory of freshly generated "
                                      "BENCH_*.json records")
    parser.add_argument("--baseline", default="bench_results",
                        help="directory of committed baseline records "
                             "(default bench_results)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="regression threshold as a fraction "
                             "(default 0.25 = +25%% wall time)")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="also write the comparison as JSON to PATH")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any regression instead of warn-only")
    args = parser.parse_args(argv)

    fresh = load_records(Path(args.fresh))
    baseline = load_records(Path(args.baseline))
    if not fresh:
        print(f"::warning::no BENCH_*.json records found in {args.fresh}")
        return 0
    rows = compare(fresh, baseline, args.threshold)

    print(f"{'target':<24}{'baseline':>12}{'fresh':>12}{'ratio':>9}")
    n_regressed = 0
    for row in rows:
        base = (f"{row['baseline_seconds']:.3f}s"
                if row["baseline_seconds"] is not None else "(none)")
        ratio = f"{row['ratio']:.2f}x" if row["ratio"] is not None else "-"
        flag = "  << REGRESSED" if row["regressed"] else ""
        if row["div_mismatch"]:
            flag = "  (div mismatch, not compared)"
        print(f"{row['name']:<24}{base:>12}{row['seconds']:>11.3f}s"
              f"{ratio:>9}{flag}")
        if row["regressed"]:
            n_regressed += 1
            print(
                f"::warning title=bench regression::{row['name']} took "
                f"{row['seconds']:.3f}s vs baseline "
                f"{row['baseline_seconds']:.3f}s "
                f"({(row['ratio'] - 1) * 100:+.0f}%, threshold "
                f"+{args.threshold * 100:.0f}%)"
            )
    missing = sorted(set(fresh) - set(baseline))
    if missing:
        print(f"(no baseline yet for: {', '.join(missing)})")
    print(f"{n_regressed} regression(s) over +{args.threshold * 100:.0f}% "
          f"across {len(rows)} target(s)")

    if args.report:
        Path(args.report).write_text(
            json.dumps({"threshold": args.threshold, "targets": rows},
                       indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return 1 if (args.strict and n_regressed) else 0


if __name__ == "__main__":
    sys.exit(main())
