"""Batched throughput: serial find_mems loop vs BatchRunner worker sweep.

The batched engine's claim is queries/sec: a warm
:class:`repro.core.session.MemSession` serves every query at match-only
cost, and :class:`repro.core.batch.BatchRunner` overlaps those match
stages across a query-level thread pool (the hot kernels release the
GIL). This benchmark times one read-mapping-shaped workload — N mutated
reads against one fixed reference — as a serial loop and through the
runner at 1/2/4 workers in both tiers: ``thread`` (GIL-released kernels
overlapped in-process) and ``process`` (whole queries shipped to spawned
workers that attach the shared 2-bit reference and serve from warm
per-process sessions). Bars: thread ≥ 2x and process ≥ 2.5x qps at 4
workers, both on hardware with ≥ 4 cores; the recorded ``cpu_count``
keeps single-core CI runs interpretable. The process sweep takes an
untimed warm pass first (spawn + per-worker index warm), so the timed
pass measures match-only cost like the other paths.

Outputs are cross-checked identical between the serial loop and every
batched run — thread and process tiers alike — before any timing is
accepted. Standalone runs also write
``bench_results/BENCH_batch_throughput.json`` (the same record
``benchmarks/run_all.py`` produces for CI diffing).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.bench.reporting import series_csv
from repro.core.batch import BatchRunner
from repro.core.params import GpuMemParams
from repro.core.session import MemSession
from repro.sequence.synthetic import markov_dna, plant_repeats

#: Reference size (bases) and per-query size for the workload.
REFERENCE_BASES = 300_000
QUERY_BASES = 2_000

#: Queries per batch and the worker widths swept (4 is the acceptance point).
N_QUERIES = 32
WORKER_SWEEP = (1, 2, 4)

#: The obs-overhead experiment uses read-mapper-scale queries: shipping
#: cost is a fixed few-hundred-µs per task (capture + pickle + merge), so
#: the honest overhead number comes from tasks with representative compute,
#: not the micro-queries the throughput sweep uses to stress scheduling.
OBS_N_QUERIES = 12
OBS_QUERY_BASES = 48_000


def _workload(rng_seed: int = 43, n_queries: int = N_QUERIES,
              query_bases: int = QUERY_BASES):
    reference = plant_repeats(
        markov_dna(REFERENCE_BASES, seed=rng_seed),
        seed=rng_seed + 1,
        n_families=4,
        family_length=(60, 200),
        copies_per_family=(10, 40),
        copy_divergence=0.03,
    )
    rng = np.random.default_rng(rng_seed + 2)
    queries = []
    for _ in range(n_queries):
        at = int(rng.integers(0, reference.size - query_bases))
        read = reference[at : at + query_bases].copy()
        flips = rng.integers(0, read.size, read.size // 100)
        read[flips] = (read[flips] + rng.integers(1, 4, flips.size)) % 4
        queries.append(read)
    return reference, queries


def run_batch_throughput_experiment(reference, queries, params) -> dict:
    """Time the serial loop and both tier sweeps; cross-check outputs."""
    session = MemSession(reference, params)
    session.warm()  # both paths measured at match-only cost
    t0 = time.perf_counter()
    serial = [session.find_mems(q).as_tuples() for q in queries]
    serial_seconds = time.perf_counter() - t0

    def timed_sweep(tier: str) -> list[dict]:
        sweep = []
        for workers in WORKER_SWEEP:
            if tier == "thread":
                runner = BatchRunner(session, workers=workers)
            else:
                runner = BatchRunner(
                    reference, params, tier="process", workers=workers
                )
                # warm pass: spawn this pool's workers and warm their
                # per-process sessions so timing sees match-only cost,
                # symmetric with the warmed thread/serial paths
                list(runner.run(queries))
            t0 = time.perf_counter()
            results = list(runner.run(queries))
            seconds = time.perf_counter() - t0
            batched = [r.value.as_tuples() for r in results]
            if batched != serial:  # timing is meaningless on wrong output
                raise AssertionError(
                    f"{tier} output diverged from serial at workers={workers}"
                )
            sweep.append({
                "workers": workers,
                "seconds": seconds,
                "qps": len(queries) / seconds,
                "speedup": serial_seconds / seconds,
            })
        return sweep

    return {
        "serial_seconds": serial_seconds,
        "serial_qps": len(queries) / serial_seconds,
        "n_queries": len(queries),
        "n_mems": sum(len(m) for m in serial),
        "cpu_count": os.cpu_count(),
        "sweep": timed_sweep("thread"),
        "process_sweep": timed_sweep("process"),
    }


def generate_series(div: int | None = None) -> str:
    reference, queries = _workload()
    params = GpuMemParams(min_length=40, seed_length=10)
    out = run_batch_throughput_experiment(reference, queries, params)
    def rows_of(sweep, tier):
        return [
            (
                tier,
                entry["workers"],
                round(entry["seconds"], 4),
                round(entry["qps"], 2),
                round(entry["speedup"], 2),
            )
            for entry in sweep
        ]

    rows = rows_of(out["sweep"], "thread") + rows_of(
        out["process_sweep"], "process"
    )
    lines = [
        "== Batch throughput: serial find_mems loop vs BatchRunner tiers "
        f"(|R|={reference.size:,}, |Q|={QUERY_BASES:,}, "
        f"N={out['n_queries']}, L=40, cpus={out['cpu_count']}) =="
    ]
    lines.append(
        f"serial loop: {out['serial_seconds']:.4f}s "
        f"({out['serial_qps']:.2f} q/s, {out['n_mems']} MEMs)"
    )
    lines.append(
        series_csv(
            ["tier", "batch_workers", "seconds", "qps", "speedup_vs_serial"],
            rows,
        )
    )
    thread4 = out["sweep"][-1]["speedup"]
    proc4 = out["process_sweep"][-1]["speedup"]
    lines.append(
        f"# speedup at 4 workers: thread {thread4:.2f}x (bar: >= 2x), "
        f"process {proc4:.2f}x (bar: >= 2.5x) — both bars assume >= 4 "
        "cores; parallel overlap needs real cores, so single-core runs "
        "report ~1x"
    )
    return "\n".join(lines) + "\n"


def run_obs_overhead_experiment(
    reference, queries, params, *, workers: int = 2, repeats: int = 9
) -> dict:
    """Process-tier qps with observability off vs on (budget: <= 5%).

    "On" means a live parent :class:`~repro.obs.Tracer`: every worker task
    then records spans + metrics process-locally and ships an
    :class:`~repro.obs.shipping.ObsPayload` home with its result. The
    overhead measured here is therefore the full cross-process shipping
    path — capture, pickle, merge — not just in-process span bookkeeping.
    Both runners are warmed untimed (spawn + per-worker session warm),
    then the timed passes *interleave* the two modes: each repeat times
    one off pass and one on pass back to back and contributes one on/off
    ratio, and the reported overhead is the *median* of those paired
    ratios — back-to-back pairing cancels slow machine drift, the median
    discards the scheduler-hiccup outliers that dominate min-of-mins on
    shared single-core CI runners.
    """
    from repro.obs import Tracer

    tracer = Tracer()
    runner_off = BatchRunner(
        reference, params, tier="process", workers=workers
    )
    runner_on = BatchRunner(
        reference, params, tier="process", workers=workers, tracer=tracer
    )
    # Untimed warm passes: spawn the shared pool once, warm each mode's
    # per-worker sessions (the session cache keys on ship_obs).
    list(runner_off.run(queries))
    list(runner_on.run(queries))

    def timed(runner) -> float:
        t0 = time.perf_counter()
        results = list(runner.run(queries))
        seconds = time.perf_counter() - t0
        assert all(r.ok for r in results)
        return seconds

    off_times, on_times = [], []
    for _ in range(repeats):
        off_times.append(timed(runner_off))
        on_times.append(timed(runner_on))
    ratios = sorted(on / off for off, on in zip(off_times, on_times))
    median_ratio = ratios[len(ratios) // 2]
    off, on = min(off_times), min(on_times)
    shipped = tracer.metrics.to_dict()
    return {
        "workers": workers,
        "repeats": repeats,
        "n_queries": len(queries),
        "obs_off_seconds": off,
        "obs_on_seconds": on,
        "obs_off_qps": len(queries) / off,
        "obs_on_qps": len(queries) / on,
        "overhead_fraction": median_ratio - 1.0,
        "payloads_shipped": shipped.get("proc.obs.payloads", {}).get("value", 0),
        "spans_shipped": shipped.get("proc.obs.spans", {}).get("value", 0),
        "cpu_count": os.cpu_count(),
    }


def generate_obs_overhead_series(div: int | None = None) -> str:
    reference, queries = _workload(
        n_queries=OBS_N_QUERIES, query_bases=OBS_QUERY_BASES
    )
    params = GpuMemParams(min_length=40, seed_length=10)
    out = run_obs_overhead_experiment(reference, queries, params)
    lines = [
        "== Observability overhead: process tier, obs off vs on "
        f"(|R|={reference.size:,}, |Q|={OBS_QUERY_BASES:,}, "
        f"N={out['n_queries']}, workers={out['workers']}, "
        f"median of {out['repeats']} paired ratios, "
        f"cpus={out['cpu_count']}) =="
    ]
    lines.append(
        series_csv(
            ["mode", "seconds", "qps"],
            [
                ("obs_off", round(out["obs_off_seconds"], 4),
                 round(out["obs_off_qps"], 2)),
                ("obs_on", round(out["obs_on_seconds"], 4),
                 round(out["obs_on_qps"], 2)),
            ],
        )
    )
    lines.append(
        f"# shipped: {out['payloads_shipped']} payloads, "
        f"{out['spans_shipped']} spans"
    )
    lines.append(
        f"# overhead: {out['overhead_fraction'] * 100:+.2f}% "
        "(budget: <= 5%; spans + metric deltas ride the existing result "
        "pickle, so the marginal IPC cost is a few KiB per task)"
    )
    return "\n".join(lines) + "\n"


def bench_batch_throughput_4(benchmark):
    reference, queries = _workload()
    params = GpuMemParams(min_length=40, seed_length=10)
    session = MemSession(reference, params)
    session.warm()
    runner = BatchRunner(session, workers=4)

    def run():
        return list(runner.run(queries[:8]))

    benchmark(run)


def _write_standalone_json(
    text: str, seconds: float, name: str = "batch_throughput"
) -> Path:
    """Mirror run_all.py's BENCH_<name>.json record for standalone runs."""
    out_dir = Path(__file__).resolve().parents[1] / "bench_results"
    out_dir.mkdir(exist_ok=True)
    from repro.bench.harness import environment_info

    record = {
        "name": name,
        "seconds": round(seconds, 6),
        "div": None,
        "git_revision": None,
        "environment": environment_info(),
        "text": text,
    }
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


if __name__ == "__main__":
    for name, generate in (
        ("batch_throughput", generate_series),
        ("obs_overhead", generate_obs_overhead_series),
    ):
        t0 = time.perf_counter()
        series = generate()
        took = time.perf_counter() - t0
        print(series)
        print(f"[wrote {_write_standalone_json(series, took, name)}]")
