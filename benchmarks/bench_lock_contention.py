"""Lock tracker overhead: batch throughput with the tracker off vs on.

The runtime lock-order sanitizer (docs/analysis.md) is meant to run in CI
and under tests, so its cost on a real threaded workload must stay small
— the budget is **<= 10% throughput overhead** on the batch workload with
the tracker installed in raise mode with blocking probes (the exact
configuration of CI's ``tests-locktracker`` leg). This benchmark times
the same warm-session BatchRunner workload as ``bench_batch_throughput``
twice — plain locks vs ``LockTracker``-issued locks — cross-checks the
outputs, and reports the per-configuration throughput, the overhead
ratio, and the tracker's own ``lock.*`` contention series.

Standalone runs also write ``bench_results/BENCH_lock_contention.json``
(the record ``benchmarks/run_all.py`` produces for CI diffing).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis.lock_tracker import LockTracker
from repro.bench.reporting import series_csv
from repro.core.batch import BatchRunner
from repro.core.params import GpuMemParams
from repro.core.session import MemSession
from repro.sequence.synthetic import markov_dna, plant_repeats

#: Reference size (bases) and per-query size for the workload.
REFERENCE_BASES = 200_000
QUERY_BASES = 2_000

#: Queries per batch, pool width, and timing repetitions per configuration.
N_QUERIES = 24
WORKERS = 4
REPEATS = 3

#: Acceptance budget: tracked throughput must stay within 10% of plain.
OVERHEAD_BUDGET = 0.10


def _workload(rng_seed: int = 47):
    reference = plant_repeats(
        markov_dna(REFERENCE_BASES, seed=rng_seed),
        seed=rng_seed + 1,
        n_families=4,
        family_length=(60, 200),
        copies_per_family=(10, 40),
        copy_divergence=0.03,
    )
    rng = np.random.default_rng(rng_seed + 2)
    queries = []
    for _ in range(N_QUERIES):
        at = int(rng.integers(0, reference.size - QUERY_BASES))
        read = reference[at : at + QUERY_BASES].copy()
        flips = rng.integers(0, read.size, read.size // 100)
        read[flips] = (read[flips] + rng.integers(1, 4, flips.size)) % 4
        queries.append(read)
    return reference, queries


def _time_batch(reference, queries, params, lock_factory=None):
    """Best-of-REPEATS batch wall time on a warm session; returns tuples."""
    session = MemSession(reference, params, lock_factory=lock_factory)
    session.warm()
    runner = BatchRunner(session, workers=WORKERS)
    best = float("inf")
    outputs = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        results = list(runner.run(queries))
        seconds = time.perf_counter() - t0
        best = min(best, seconds)
        outputs = [r.value.as_tuples() for r in results]
    return best, outputs


def run_lock_contention_experiment(reference, queries, params) -> dict:
    """Tracker-off vs tracker-on timings plus the tracker's lock.* series."""
    plain_seconds, plain_out = _time_batch(reference, queries, params)

    tracker = LockTracker(mode="raise")
    tracker.install_blocking_probes()
    try:
        tracked_seconds, tracked_out = _time_batch(
            reference, queries, params, lock_factory=tracker.lock
        )
    finally:
        tracker.remove_blocking_probes()
    if tracked_out != plain_out:  # timing is meaningless on wrong output
        raise AssertionError("tracked run's output diverged from plain run")
    if tracker.findings:
        raise AssertionError(
            "lock tracker flagged the shipped batch engine:\n"
            + tracker.format_findings()
        )

    lock_series = {
        name: inst for name, inst in tracker.metrics.to_dict().items()
        if name.startswith("lock.")
    }
    return {
        "plain_seconds": plain_seconds,
        "tracked_seconds": tracked_seconds,
        "plain_qps": len(queries) / plain_seconds,
        "tracked_qps": len(queries) / tracked_seconds,
        "overhead": tracked_seconds / plain_seconds - 1.0,
        "n_queries": len(queries),
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "lock_series": lock_series,
    }


def generate_series(div: int | None = None) -> str:
    reference, queries = _workload()
    params = GpuMemParams(min_length=40, seed_length=10)
    out = run_lock_contention_experiment(reference, queries, params)
    rows = [
        ("off", round(out["plain_seconds"], 4), round(out["plain_qps"], 2)),
        ("on", round(out["tracked_seconds"], 4), round(out["tracked_qps"], 2)),
    ]
    lines = [
        "== Lock tracker overhead: BatchRunner throughput, tracker off vs on "
        f"(|R|={reference.size:,}, |Q|={QUERY_BASES:,}, N={out['n_queries']}, "
        f"workers={out['workers']}, cpus={out['cpu_count']}) =="
    ]
    lines.append(series_csv(["lock_tracker", "seconds", "qps"], rows))
    contended = sum(
        inst["value"] for name, inst in out["lock_series"].items()
        if name.startswith("lock.contended")
    )
    acquisitions = sum(
        inst["value"] for name, inst in out["lock_series"].items()
        if name.startswith("lock.acquisitions")
    )
    lines.append(
        f"# tracked: {acquisitions:.0f} acquisitions, {contended:.0f} "
        "contended, 0 findings"
    )
    verdict = "PASS" if out["overhead"] <= OVERHEAD_BUDGET else "EXCEEDED"
    lines.append(
        f"# overhead: {out['overhead'] * 100:+.1f}% vs budget "
        f"<= {OVERHEAD_BUDGET * 100:.0f}%: {verdict} (best-of-{REPEATS} "
        "timings; loaded runners can still exceed the budget spuriously)"
    )
    return "\n".join(lines) + "\n"


def bench_lock_contention_tracked(benchmark):
    reference, queries = _workload()
    params = GpuMemParams(min_length=40, seed_length=10)
    tracker = LockTracker(mode="raise")
    session = MemSession(reference, params, lock_factory=tracker.lock)
    session.warm()
    runner = BatchRunner(session, workers=WORKERS)

    def run():
        return list(runner.run(queries[:8]))

    benchmark(run)


def _write_standalone_json(text: str, seconds: float) -> Path:
    """Mirror run_all.py's BENCH_<name>.json record for standalone runs."""
    out_dir = Path(__file__).resolve().parents[1] / "bench_results"
    out_dir.mkdir(exist_ok=True)
    from repro.bench.harness import environment_info

    record = {
        "name": "lock_contention",
        "seconds": round(seconds, 6),
        "div": None,
        "git_revision": None,
        "environment": environment_info(),
        "text": text,
    }
    path = out_dir / "BENCH_lock_contention.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


if __name__ == "__main__":
    t0 = time.perf_counter()
    series = generate_series()
    took = time.perf_counter() - t0
    print(series)
    print(f"[wrote {_write_standalone_json(series, took)}]")
