"""Fig. 4: GPUMEM extraction time and #MEMs versus query size.

Reference chr1m, query = growing prefixes of chr2h (the paper's 50/100/150/
200/243 Mbp points, as fractions of our scaled length), L = 50.

Expected shape: both the extraction time and the number of extracted MEMs
grow ~linearly with |Q|, tracking each other.
"""

from __future__ import annotations

from repro.bench.harness import BENCH_DIV, gpumem_params
from repro.bench.reporting import series_csv
from repro.bench.workloads import FIG4_FRACTIONS
from repro.core.matcher import GpuMem
from repro.sequence.datasets import EXPERIMENT_CONFIGS, load_experiment

CONFIG = EXPERIMENT_CONFIGS[1]  # chr1m/chr2h, L = 50


def _pair(div: int):
    reference, query = load_experiment(CONFIG)
    return reference[: reference.size // div], query


def bench_fig4_smallest_prefix(benchmark):
    reference, query = _pair(BENCH_DIV)
    prefix = query[: int(query.size * FIG4_FRACTIONS[0]) // BENCH_DIV]
    matcher = GpuMem(gpumem_params(CONFIG))
    benchmark(matcher.find_mems, reference, prefix)


def generate_series(div: int | None = None) -> str:
    div = BENCH_DIV if div is None else div
    reference, query = _pair(div)
    matcher = GpuMem(gpumem_params(CONFIG))
    rows = []
    for frac in FIG4_FRACTIONS:
        prefix = query[: int(query.size * frac) // div]
        result = matcher.find_mems(reference, prefix)
        rows.append(
            (
                prefix.size,
                round(matcher.stats["total_time"] - matcher.stats["index_time"], 4),
                len(result),
            )
        )
    header = ["query_len", "extract_seconds", "n_mems"]
    lines = ["== Fig. 4: extraction time and #MEMs vs query size (L=50) =="]
    lines.append(series_csv(header, rows))
    # Shape check annotations: ratios against the smallest prefix.
    base_q, base_t, base_m = rows[0]
    for q, t, m in rows:
        lines.append(
            f"  |Q| x{q / base_q:5.2f}  time x{t / base_t if base_t else 0:5.2f}"
            f"  mems x{m / base_m if base_m else 0:5.2f}"
        )
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    print(generate_series())
