"""Table III: index-generation times of every tool on every configuration.

Benchmark targets time each tool's index build on the fly/E. coli row;
``generate_table()`` reproduces all nine rows × nine tool columns, printing
the paper's published numbers under each measured row.

Expected shape (paper §IV-B): GPUMEM's k-mer counting build is one to two
orders of magnitude cheaper than suffix-array construction; GPUMEM's build
*grows* as L shrinks (Δs shrinks → more locations) while the CPU tools are
L-independent; slaMEM's build (BWT + FM tables) is the slowest.
"""

from __future__ import annotations

from repro.baselines import EssaMemFinder, MummerFinder, SlaMemFinder, SparseMemFinder
from repro.bench.harness import gpumem_params, run_index_experiment
from repro.bench.reporting import format_table
from repro.bench.workloads import PAPER_TABLE3, TOOL_COLUMNS, experiment_rows
from repro.core.matcher import GpuMem


def bench_index_gpumem(benchmark, small_config, small_pair):
    reference, _ = small_pair
    matcher = GpuMem(gpumem_params(small_config))
    benchmark(matcher.index_only, reference)


def bench_index_mummer(benchmark, small_pair):
    reference, _ = small_pair
    benchmark(lambda: MummerFinder().build_index(reference))


def bench_index_sparsemem_t4(benchmark, small_pair):
    reference, _ = small_pair
    benchmark(lambda: SparseMemFinder(sparseness=4).build_index(reference))


def bench_index_essamem_t4(benchmark, small_pair):
    reference, _ = small_pair
    benchmark(lambda: EssaMemFinder(sparseness=4).build_index(reference))


def bench_index_slamem(benchmark, tiny_pair):
    reference, _ = tiny_pair
    benchmark(lambda: SlaMemFinder().build_index(reference))


def generate_table(div: int | None = None) -> str:
    rows = []
    for config in experiment_rows():
        rows.append((config.key, run_index_experiment(config, div)))
    return format_table(
        "Table III: index generation times",
        rows,
        TOOL_COLUMNS,
        paper=PAPER_TABLE3,
    )


if __name__ == "__main__":
    print(generate_table())
