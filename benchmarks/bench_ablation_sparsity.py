"""Ablation: the Δs sparsification trade-off (paper §III-A, Eq. 1).

The paper always uses the maximum legal step ``Δs = L − ℓs + 1``. This
ablation sweeps Δs from 1 (full index) to the maximum and measures index
size, build time, and extraction time on chrXc/chrXh — quantifying the
claim that sparsification shrinks the index by ``Δs×`` while the massive
parallelism absorbs the extra expansion work.

Expected shape: index locations fall as 1/Δs; extraction time is flat or
mildly rising with Δs; the MEM output is identical at every Δs (Eq. 1
guarantees losslessness).
"""

from __future__ import annotations

from repro.bench.harness import BENCH_DIV
from repro.bench.harness import bench_pair as _bench_pair
from repro.bench.reporting import series_csv
from repro.core.matcher import GpuMem
from repro.core.params import GpuMemParams
from repro.sequence.datasets import EXPERIMENT_CONFIGS

CONFIG = EXPERIMENT_CONFIGS[3]  # chrXc/chrXh L=50


def _steps(max_step: int) -> list[int]:
    steps = [1, 2, 4, 8, 16, 32, max_step]
    return sorted({s for s in steps if 1 <= s <= max_step})


def bench_sparsity_full_index(benchmark):
    reference, query = _bench_pair(CONFIG, div=BENCH_DIV * 2)
    params = GpuMemParams(
        min_length=CONFIG.min_length, seed_length=CONFIG.seed_length, step=1
    )
    benchmark(GpuMem(params).find_mems, reference, query)


def generate_series(div: int | None = None) -> str:
    reference, query = _bench_pair(CONFIG, div)
    max_step = CONFIG.min_length - CONFIG.seed_length + 1
    rows = []
    reference_mems = None
    for step in _steps(max_step):
        params = GpuMemParams(
            min_length=CONFIG.min_length, seed_length=CONFIG.seed_length, step=step
        )
        matcher = GpuMem(params)
        result = matcher.find_mems(reference, query)
        if reference_mems is None:
            reference_mems = result
        assert result == reference_mems, f"Δs={step} changed the MEM set!"
        rows.append(
            (
                step,
                matcher.stats["max_index_locs"],
                matcher.stats["max_index_bytes"],
                round(matcher.stats["index_time"], 4),
                round(matcher.stats["total_time"] - matcher.stats["index_time"], 4),
                len(result),
            )
        )
    lines = ["== Ablation: index step Δs sweep (chrXc/chrXh, L=50) =="]
    lines.append(
        series_csv(
            ["step", "index_locs", "index_bytes", "index_seconds",
             "extract_seconds", "n_mems"],
            rows,
        )
    )
    lines.append(
        "  (notes: ℓtile = n_block·τ·Δs scales with Δs, so the *resident*"
        " locs per tile row is pinned at ≈ n_block·τ — the paper's design"
        " point; the 1/Δs saving therefore appears as fewer tile rows and"
        " a ~15x cheaper total index build, while the ptrs table [4^ℓs"
        " entries] dominates index_bytes at bench scale)"
    )
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    print(generate_series())
