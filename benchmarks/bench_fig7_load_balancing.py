"""Fig. 7: impact of the proactive load-balancing heuristic.

For each of the nine configurations, the simulated-GPU extraction time
without load balancing and the speedup obtained with it.

Two engines produce the numbers:

- the **analytic perf model** (:mod:`repro.core.perf_model`) at dataset
  scale — validated against the thread-level simulator on small inputs;
- the **thread-level simulator** itself on a sliced input (pytest-benchmark
  target), which actually executes Algorithms 1-3.

Expected shape (paper §IV-C): speedups of ~1.6-4.4x, largest on the big
repeat-rich mammalian configurations.
"""

from __future__ import annotations

from repro.bench.harness import BENCH_DIV, gpumem_params
from repro.bench.harness import bench_pair as _bench_pair
from repro.bench.reporting import series_csv
from repro.bench.workloads import PAPER_FIG7_SPEEDUP_RANGE, experiment_rows
from repro.core.params import GpuMemParams
from repro.core.perf_model import load_balance_speedup
from repro.core.simulated import simulated_find_mems
from repro.sequence.datasets import EXPERIMENT_CONFIGS


def bench_fig7_simulated_small(benchmark):
    config = EXPERIMENT_CONFIGS[7]  # chrXII/chrI, smallest row
    reference, query = _bench_pair(config, div=BENCH_DIV * 4)
    params = GpuMemParams(
        min_length=config.min_length,
        seed_length=config.seed_length,
        threads_per_block=32,
        blocks_per_tile=8,
    )
    benchmark(simulated_find_mems, reference, query, params)


def generate_series(div: int | None = None) -> str:
    rows = []
    for config in experiment_rows():
        reference, query = _bench_pair(config, div)
        res = load_balance_speedup(reference, query, gpumem_params(config))
        rows.append(
            (
                config.key,
                round(res["unbalanced_seconds"], 6),
                round(res["balanced_seconds"], 6),
                round(res["speedup"], 2),
                round(res["unbalanced_imbalance"], 3),
                round(res["balanced_imbalance"], 3),
            )
        )
    lines = ["== Fig. 7: load-balancing speedup (modeled GPU extraction time) =="]
    lines.append(
        series_csv(
            ["config", "unbalanced_s", "balanced_s", "speedup",
             "imbalance_off", "imbalance_on"],
            rows,
        )
    )
    lines.append(
        f"  paper speedup range on the large configurations: "
        f"{PAPER_FIG7_SPEEDUP_RANGE[0]}x - {PAPER_FIG7_SPEEDUP_RANGE[1]}x"
    )
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    print(generate_series())
