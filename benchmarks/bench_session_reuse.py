"""Many-query amortization: throwaway matchers vs. a reusable MemSession.

The seed behaviour rebuilt every per-row seed index on every ``find_mems``
call; a :class:`repro.core.session.MemSession` builds them once per
reference and serves every later query at match-only cost. This benchmark
times a read-mapping-shaped workload — N short queries against one fixed
reference — both ways and reports the amortized speedup (the acceptance bar
for the staged-pipeline PR is ≥ 2× at N = 16).

Outputs are cross-checked identical inside
:func:`repro.bench.harness.run_session_reuse_experiment` before any timing
is accepted.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import run_session_reuse_experiment
from repro.bench.reporting import series_csv
from repro.core.params import GpuMemParams
from repro.sequence.synthetic import markov_dna, plant_repeats

#: Reference size (bases) and per-query size for the workload.
REFERENCE_BASES = 400_000
QUERY_BASES = 2_000

#: Workload sizes swept; 16 is the acceptance-criterion point.
N_QUERIES = (1, 4, 16)


def _workload(rng_seed: int = 41):
    reference = plant_repeats(
        markov_dna(REFERENCE_BASES, seed=rng_seed),
        seed=rng_seed + 1,
        n_families=4,
        family_length=(60, 200),
        copies_per_family=(10, 40),
        copy_divergence=0.03,
    )
    rng = np.random.default_rng(rng_seed + 2)
    queries = []
    for _ in range(max(N_QUERIES)):
        at = int(rng.integers(0, reference.size - QUERY_BASES))
        read = reference[at : at + QUERY_BASES].copy()
        flips = rng.integers(0, read.size, read.size // 100)
        read[flips] = (read[flips] + rng.integers(1, 4, flips.size)) % 4
        queries.append(read)
    return reference, queries


def generate_series(div: int | None = None) -> str:
    reference, queries = _workload()
    params = GpuMemParams(min_length=40, seed_length=10)
    rows = []
    for n in N_QUERIES:
        out = run_session_reuse_experiment(reference, queries[:n], params)
        rows.append(
            (
                n,
                round(out["per_call_seconds"], 4),
                round(out["session_seconds"], 4),
                round(out["per_call_qps"], 2),
                round(out["session_qps"], 2),
                round(out["speedup"], 2),
                out["n_mems"],
            )
        )
    lines = [
        "== Session reuse: per-call matchers vs one warm MemSession "
        f"(|R|={reference.size:,}, |Q|={QUERY_BASES:,}, L=40) =="
    ]
    lines.append(
        series_csv(
            ["n_queries", "per_call_seconds", "session_seconds",
             "per_call_qps", "session_qps", "amortized_speedup", "n_mems"],
            rows,
        )
    )
    final_speedup = rows[-1][5]
    lines.append(
        f"# amortized speedup at n={N_QUERIES[-1]}: {final_speedup}x "
        f"(acceptance bar: >= 2x)"
    )
    return "\n".join(lines) + "\n"


def bench_session_reuse_16(benchmark):
    reference, queries = _workload()
    params = GpuMemParams(min_length=40, seed_length=10)
    from repro.core.session import MemSession

    def run():
        session = MemSession(reference, params)
        return session.find_mems_batch(queries[:4])

    benchmark(run)


if __name__ == "__main__":
    print(generate_series())
