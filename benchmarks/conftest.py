"""Shared fixtures for the benchmark suite.

The pytest-benchmark targets use the *small* experiment rows (the fly/E.
coli and yeast pairs) so ``pytest benchmarks/ --benchmark-only`` completes
in minutes; each ``bench_*.py`` module also has a ``generate_*`` entry
point (and a ``__main__``) that regenerates the corresponding full paper
table/figure — ``benchmarks/run_all.py`` drives them all and writes
``bench_results/``.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import bench_pair
from repro.sequence.datasets import EXPERIMENT_CONFIGS


@pytest.fixture(scope="session")
def small_config():
    """dmelanogaster/EcoliK12 L=20 — the paper's mid-size row."""
    return EXPERIMENT_CONFIGS[5]


@pytest.fixture(scope="session")
def small_pair(small_config):
    return bench_pair(small_config)


@pytest.fixture(scope="session")
def tiny_config():
    """chrXII/chrI L=20 — the paper's smallest row."""
    return EXPERIMENT_CONFIGS[7]


@pytest.fixture(scope="session")
def tiny_pair(tiny_config):
    return bench_pair(tiny_config)
