"""Ablation: tile size (the memory-restriction knob, paper §III / Fig. 1).

Tiling exists so the partial index fits a memory-restricted device. Smaller
tiles mean a smaller resident index but more border-crossing MEMs routed
through the out-block/out-tile/host path. This sweep varies
``blocks_per_tile`` and reports the resident-index bound, the number of
out-tile fragments, and total time — all at identical output.

Expected shape: index bytes scale with tile size; out-tile fragments grow
as tiles shrink; the MEM set never changes.
"""

from __future__ import annotations

from repro.bench.harness import BENCH_DIV
from repro.bench.harness import bench_pair as _bench_pair
from repro.bench.reporting import series_csv
from repro.core.matcher import GpuMem
from repro.core.params import GpuMemParams
from repro.sequence.datasets import EXPERIMENT_CONFIGS

CONFIG = EXPERIMENT_CONFIGS[3]  # chrXc/chrXh L=50


def bench_tiling_small_tiles(benchmark):
    reference, query = _bench_pair(CONFIG, div=BENCH_DIV * 2)
    params = GpuMemParams(
        min_length=CONFIG.min_length, seed_length=CONFIG.seed_length,
        blocks_per_tile=4,
    )
    benchmark(GpuMem(params).find_mems, reference, query)


def generate_series(div: int | None = None) -> str:
    reference, query = _bench_pair(CONFIG, div)
    rows = []
    reference_mems = None
    for blocks_per_tile in (2, 8, 32, 64, 128):
        params = GpuMemParams(
            min_length=CONFIG.min_length, seed_length=CONFIG.seed_length,
            blocks_per_tile=blocks_per_tile,
        )
        matcher = GpuMem(params)
        result = matcher.find_mems(reference, query)
        if reference_mems is None:
            reference_mems = result
        assert result == reference_mems, f"tile={params.tile_size} changed the MEM set!"
        rows.append(
            (
                params.tile_size,
                matcher.stats["n_tiles"],
                matcher.stats["max_index_bytes"],
                matcher.stats["n_out_tile_fragments"],
                round(matcher.stats["total_time"], 4),
                len(result),
            )
        )
    lines = ["== Ablation: tile size sweep (chrXc/chrXh, L=50) =="]
    lines.append(
        series_csv(
            ["tile_size", "n_tiles", "index_bytes", "out_tile_fragments",
             "total_seconds", "n_mems"],
            rows,
        )
    )
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    print(generate_series())
