"""Fig. 5: GPUMEM extraction time and #MEMs versus L (log-log in the paper).

chr1m/chr2h with L in {20, 40, 50, 100, 150}.

Expected shape: both series decrease with L; the time falls faster than the
MEM count between L=20 and 30-50, then the MEM count falls faster (the
paper's crossover observation in §IV-A).
"""

from __future__ import annotations

from repro.bench.harness import BENCH_DIV
from repro.bench.reporting import series_csv
from repro.bench.workloads import FIG5_MIN_LENGTHS
from repro.core.matcher import GpuMem
from repro.core.params import GpuMemParams
from repro.sequence.datasets import EXPERIMENT_CONFIGS, load_experiment

CONFIG = EXPERIMENT_CONFIGS[1]  # chr1m/chr2h pair


def _pair(div: int):
    reference, query = load_experiment(CONFIG)
    return reference[: reference.size // div], query[: query.size // div]


def bench_fig5_L50(benchmark):
    reference, query = _pair(BENCH_DIV)
    matcher = GpuMem(GpuMemParams(min_length=50, seed_length=10))
    benchmark(matcher.find_mems, reference, query)


def generate_series(div: int | None = None) -> str:
    div = BENCH_DIV if div is None else div
    reference, query = _pair(div)
    rows = []
    for L in FIG5_MIN_LENGTHS:
        matcher = GpuMem(GpuMemParams(min_length=L, seed_length=10))
        result = matcher.find_mems(reference, query)
        rows.append(
            (
                L,
                round(matcher.stats["total_time"] - matcher.stats["index_time"], 4),
                len(result),
            )
        )
    lines = ["== Fig. 5: extraction time and #MEMs vs L (chr1m/chr2h) =="]
    lines.append(series_csv(["L", "extract_seconds", "n_mems"], rows))
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    print(generate_series())
