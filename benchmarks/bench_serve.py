"""Serving layer: sustained qps, admission-control shedding, drain cost.

``gpumem serve`` wraps :class:`repro.core.serve.MemServer` — a long-lived
front end over one warm reference with bounded concurrency
(``max_in_flight``) and bounded queueing (``admission_limit``). This
benchmark measures the three behaviors that matter for a server:

- **sustained throughput** — N requests pushed through the thread tier at
  a comfortable admission limit, reported as requests/sec against the
  same workload run as a plain serial loop (the server's scheduling
  overhead is the gap);
- **burst shedding** — the same N requests submitted as fast as possible
  against a deliberately tiny admission limit; reports how many were
  admitted vs shed with structured :class:`ServerOverloadedError`
  (never blocking, never deadlocking — the shed count is the
  backpressure signal a client retries on);
- **drain cost** — wall seconds ``close(drain=True)`` spends finishing
  the queue after the last submit.

Outputs of every admitted request are cross-checked against the serial
loop before timings are accepted. Standalone runs also write
``bench_results/BENCH_serve.json`` (the record ``benchmarks/run_all.py``
produces for CI diffing).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.bench.reporting import series_csv
from repro.core.params import GpuMemParams
from repro.core.serve import MemServer
from repro.core.session import MemSession
from repro.errors import ServerOverloadedError
from repro.sequence.synthetic import markov_dna

#: Reference size (bases), per-request size, and request count.
REFERENCE_BASES = 200_000
QUERY_BASES = 1_500
N_REQUESTS = 48

#: Serving knobs for the sustained-throughput pass.
WORKERS = 4
ADMISSION_LIMIT = 2 * N_REQUESTS  # no shedding in the throughput pass

#: Deliberately tiny queue for the burst pass.
BURST_ADMISSION_LIMIT = 4


def _workload(rng_seed: int = 47):
    reference = markov_dna(REFERENCE_BASES, seed=rng_seed)
    rng = np.random.default_rng(rng_seed + 1)
    requests = []
    for _ in range(N_REQUESTS):
        at = int(rng.integers(0, reference.size - QUERY_BASES))
        read = reference[at : at + QUERY_BASES].copy()
        flips = rng.integers(0, read.size, read.size // 100)
        read[flips] = (read[flips] + rng.integers(1, 4, flips.size)) % 4
        requests.append(read)
    return reference, requests


def run_serve_experiment(reference, requests, params) -> dict:
    """Time the serial loop, the served pass, and the burst pass."""
    session = MemSession(reference, params)
    session.warm()
    t0 = time.perf_counter()
    serial = [session.find_mems(q).as_tuples() for q in requests]
    serial_seconds = time.perf_counter() - t0

    # sustained throughput: everything admitted, everything completes
    with MemServer(
        session, workers=WORKERS, admission_limit=ADMISSION_LIMIT
    ) as server:
        t0 = time.perf_counter()
        futures = [server.submit(q) for q in requests]
        results = [f.result() for f in futures]
        served_seconds = time.perf_counter() - t0
        stats = server.stats()
    served = [r.value.as_tuples() for r in results]
    if served != serial:  # timing is meaningless on wrong output
        raise AssertionError("served output diverged from the serial loop")

    # burst: submit as fast as possible into a tiny queue; count sheds
    with MemServer(
        session, workers=WORKERS, admission_limit=BURST_ADMISSION_LIMIT
    ) as server:
        admitted = []
        n_shed = 0
        t0 = time.perf_counter()
        for q in requests:
            try:
                admitted.append(server.submit(q))
            except ServerOverloadedError:
                n_shed += 1
        for f in admitted:
            f.result()
        t_drain = time.perf_counter()
        final = server.close()
        drain_seconds = time.perf_counter() - t_drain
    burst = {
        "n_admitted": len(admitted),
        "n_shed": n_shed,
        "admission_limit": BURST_ADMISSION_LIMIT,
        "drain_seconds": drain_seconds,
        "server_counts": {k: final[k] for k in ("completed", "shed", "cancelled")},
    }

    return {
        "serial_seconds": serial_seconds,
        "serial_rps": len(requests) / serial_seconds,
        "served_seconds": served_seconds,
        "served_rps": len(requests) / served_seconds,
        "speedup": serial_seconds / served_seconds,
        "queue_stats": {k: stats[k] for k in ("submitted", "completed", "shed")},
        "burst": burst,
        "n_requests": len(requests),
        "cpu_count": os.cpu_count(),
    }


def generate_series(div: int | None = None) -> str:
    reference, requests = _workload()
    params = GpuMemParams(min_length=40, seed_length=10)
    out = run_serve_experiment(reference, requests, params)
    lines = [
        "== Serving: MemServer thread tier vs serial loop "
        f"(|R|={reference.size:,}, |Q|={QUERY_BASES:,}, "
        f"N={out['n_requests']}, workers={WORKERS}, "
        f"cpus={out['cpu_count']}) =="
    ]
    lines.append(
        f"serial loop: {out['serial_seconds']:.4f}s "
        f"({out['serial_rps']:.2f} req/s)"
    )
    lines.append(
        series_csv(
            ["mode", "seconds", "rps", "speedup_vs_serial"],
            [
                (
                    "served",
                    round(out["served_seconds"], 4),
                    round(out["served_rps"], 2),
                    round(out["speedup"], 2),
                ),
            ],
        )
    )
    burst = out["burst"]
    lines.append(
        f"burst vs admission_limit={burst['admission_limit']}: "
        f"{burst['n_admitted']} admitted, {burst['n_shed']} shed "
        f"(structured, non-blocking), drain {burst['drain_seconds']:.4f}s"
    )
    lines.append(
        "# served rps approaches the thread-tier batch qps on >= 4 cores; "
        "the gap to serial on single-core runs is pure scheduling overhead"
    )
    return "\n".join(lines) + "\n"


def bench_serve_throughput(benchmark):
    reference, requests = _workload()
    params = GpuMemParams(min_length=40, seed_length=10)
    session = MemSession(reference, params)
    session.warm()

    def run():
        with MemServer(
            session, workers=WORKERS, admission_limit=ADMISSION_LIMIT
        ) as server:
            return [server.submit(q) for q in requests[:8]]

    benchmark(run)


def _write_standalone_json(text: str, seconds: float) -> Path:
    """Mirror run_all.py's BENCH_<name>.json record for standalone runs."""
    out_dir = Path(__file__).resolve().parents[1] / "bench_results"
    out_dir.mkdir(exist_ok=True)
    from repro.bench.harness import environment_info

    record = {
        "name": "serve",
        "seconds": round(seconds, 6),
        "div": None,
        "git_revision": None,
        "environment": environment_info(),
        "text": text,
    }
    path = out_dir / "BENCH_serve.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


if __name__ == "__main__":
    t0 = time.perf_counter()
    series = generate_series()
    took = time.perf_counter() - t0
    print(series)
    print(f"[wrote {_write_standalone_json(series, took)}]")
