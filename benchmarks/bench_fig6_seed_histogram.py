"""Fig. 6: the number of seeds appearing at a given number of locations.

Built from the chr1m index and the chr2h query seeds (the configuration the
paper plots). This is the distribution that motivates the load-balancing
heuristic: most seeds occur at one location, but a heavy tail of repeat
seeds occurs at tens-to-hundreds — and in SIMT those serialize their warp.

Expected shape: monotonically decaying histogram with a long tail (the
paper shows >10M singleton seeds and >2M at six locations at full scale).
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import BENCH_DIV, gpumem_params
from repro.bench.reporting import series_csv
from repro.index.kmer_index import build_kmer_index
from repro.sequence.datasets import EXPERIMENT_CONFIGS, load_experiment
from repro.sequence.packed import kmer_codes

CONFIG = EXPERIMENT_CONFIGS[1]  # chr1m/chr2h


def seed_location_histogram(div: int):
    """#query seeds (y) appearing at a given #locations (x) in the index."""
    reference, query = load_experiment(CONFIG)
    reference = reference[: reference.size // div]
    query = query[: query.size // div]
    p = gpumem_params(CONFIG)
    index = build_kmer_index(
        reference, seed_length=p.seed_length, step=p.step,
        region_start=0, region_end=min(p.tile_size, reference.size),
    )
    qk = kmer_codes(query, p.seed_length)
    _, counts = index.lookup(qk)
    return np.bincount(counts[counts > 0])


def bench_fig6_histogram(benchmark):
    hist = benchmark(seed_location_histogram, BENCH_DIV)
    assert hist.sum() > 0


def generate_series(div: int | None = None) -> str:
    div = BENCH_DIV if div is None else div
    hist = seed_location_histogram(div)
    rows = [(x, int(hist[x])) for x in range(1, hist.size) if hist[x] > 0]
    lines = ["== Fig. 6: #seeds appearing at a given #locations (chr1m index, chr2h seeds) =="]
    lines.append(series_csv(["n_locations", "n_seeds"], rows))
    tail = [x for x, _ in rows]
    lines.append(f"  singleton seeds: {rows[0][1]}   max locations for one seed: {max(tail)}")
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    print(generate_series())
