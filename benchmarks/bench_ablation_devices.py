"""Ablation: modeled extraction time across GPU generations (paper §V).

The paper closes with "we also want to evaluate the performance of GPUMEM
with newer GPUs such as Tesla K40". The analytic cost model makes that a
parameter sweep: the same workload's modeled extraction time on the K20c
(the paper's card), the K40, and a modern many-SM part.

Expected shape: modeled time improves with SM count x clock x
warps-in-flight per SM; workloads of many small blocks (long query over a
tiny reference) spread best over a many-SM part, while a few heavy blocks
bound the gain (the busiest-SM makespan dominates).
"""

from __future__ import annotations

from repro.bench.harness import BENCH_DIV, gpumem_params
from repro.bench.harness import bench_pair as _bench_pair
from repro.bench.reporting import series_csv
from repro.core.perf_model import model_extraction
from repro.gpu.device import AMPERE_A100, TESLA_K20C, TESLA_K40
from repro.sequence.datasets import EXPERIMENT_CONFIGS

DEVICES = [TESLA_K20C, TESLA_K40, AMPERE_A100]


def bench_devices_k20_model(benchmark):
    config = EXPERIMENT_CONFIGS[7]
    reference, query = _bench_pair(config, div=BENCH_DIV * 2)
    benchmark(
        model_extraction, reference, query, gpumem_params(config),
        balanced=True, spec=TESLA_K20C,
    )


def generate_series(div: int | None = None) -> str:
    rows = []
    for config in (EXPERIMENT_CONFIGS[1], EXPERIMENT_CONFIGS[7]):
        reference, query = _bench_pair(config, div)
        params = gpumem_params(config)
        base = None
        for spec in DEVICES:
            res = model_extraction(reference, query, params, balanced=True,
                                   spec=spec)
            if base is None:
                base = res.seconds
            rows.append(
                (
                    config.key,
                    spec.name,
                    round(res.seconds, 6),
                    round(base / res.seconds, 2) if res.seconds else float("inf"),
                )
            )
    lines = ["== Ablation: modeled extraction across GPU generations =="]
    lines.append(
        series_csv(["config", "device", "modeled_seconds", "speedup_vs_K20c"], rows)
    )
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    print(generate_series())
