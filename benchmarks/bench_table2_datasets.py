"""Table II: the dataset inventory (and generation cost).

``generate_table()`` prints the Table II analogue — name, scaled length,
paper length, description — for all eight sequences. The pytest-benchmark
target times synthetic generation of the smallest chromosome, the one cost
GPUMEM's "one-time-use reference" argument (§III-A) cares about.
"""

from __future__ import annotations

from repro.sequence.datasets import DATASETS, SCALE, load_dataset


def bench_generate_chrxii(benchmark):
    spec = DATASETS["chrXII"]
    result = benchmark(spec.genome.generate)
    assert result.size == spec.length


def generate_table() -> str:
    lines = ["== Table II: datasets (synthetic analogues at 1:%d scale) ==" % SCALE]
    lines.append(f"{'name':<16}{'length':>12}{'paper (Mbp)':>14}  description")
    for spec in DATASETS.values():
        seq = load_dataset(spec.name)
        assert seq.size == spec.length
        lines.append(
            f"{spec.name:<16}{spec.length:>12,}{spec.paper_length_mbp:>14.2f}  "
            f"{spec.description}"
        )
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    print(generate_table())
