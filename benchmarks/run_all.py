"""Regenerate every table and figure of the paper's evaluation section.

Usage::

    python benchmarks/run_all.py [--div N] [--out DIR]

``--div`` is the extra prefix-slicing divisor on top of the library's 1:100
dataset scale (default: the ``REPRO_BENCH_DIV`` env var or 10). Results are
printed and written under ``bench_results/``: each target produces a
human-readable ``<name>.txt`` table plus a machine-readable
``BENCH_<name>.json`` record (timing, environment, git revision) so CI and
regression tooling can diff runs without parsing tables.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, os.path.dirname(__file__))

import bench_ablation_devices
import bench_ablation_multidevice
import bench_ablation_sparsity
import bench_ablation_tiling
import bench_batch_throughput
import bench_fig4_query_scaling
import bench_fig5_minlen_scaling
import bench_fig6_seed_histogram
import bench_fig7_load_balancing
import bench_lock_contention
import bench_resource_tracker
import bench_sa_builders
import bench_serve
import bench_session_reuse
import bench_store_warmstart
import bench_table2_datasets
import bench_table3_index_build
import bench_table4_extraction

TARGETS = [
    ("table2_datasets", lambda div: bench_table2_datasets.generate_table()),
    ("table3_index_build", bench_table3_index_build.generate_table),
    ("table4_extraction", bench_table4_extraction.generate_table),
    ("fig4_query_scaling", bench_fig4_query_scaling.generate_series),
    ("fig5_minlen_scaling", bench_fig5_minlen_scaling.generate_series),
    ("fig6_seed_histogram", bench_fig6_seed_histogram.generate_series),
    ("fig7_load_balancing", bench_fig7_load_balancing.generate_series),
    ("ablation_sparsity", bench_ablation_sparsity.generate_series),
    ("ablation_tiling", bench_ablation_tiling.generate_series),
    ("ablation_multidevice", bench_ablation_multidevice.generate_series),
    ("sa_builders", bench_sa_builders.generate_series),
    ("ablation_devices", bench_ablation_devices.generate_series),
    ("session_reuse", bench_session_reuse.generate_series),
    ("store_warmstart", bench_store_warmstart.generate_series),
    ("batch_throughput", bench_batch_throughput.generate_series),
    ("obs_overhead", bench_batch_throughput.generate_obs_overhead_series),
    ("serve", bench_serve.generate_series),
    ("lock_contention", bench_lock_contention.generate_series),
    ("resource_tracker", bench_resource_tracker.generate_series),
]


def git_revision() -> str | None:
    """The checked-out commit SHA, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def write_bench_json(out_dir: Path, name: str, *, seconds: float,
                     text: str, env: dict, rev: str | None,
                     div: int | None) -> Path:
    """Write the machine-readable ``BENCH_<name>.json`` telemetry record."""
    record = {
        "name": name,
        "seconds": round(seconds, 6),
        "div": div,
        "git_revision": rev,
        "environment": env,
        "text": text,
    }
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--div", type=int, default=None,
                        help="extra slicing divisor (default REPRO_BENCH_DIV or 10)")
    parser.add_argument("--out", default="bench_results")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of target names to run")
    args = parser.parse_args(argv)

    out_dir = Path(args.out)
    out_dir.mkdir(exist_ok=True)
    from repro.bench.harness import environment_info

    env = environment_info()
    env_text = "\n".join(f"{k}: {v}" for k, v in env.items()) + "\n"
    print(env_text)
    (out_dir / "environment.txt").write_text(env_text)
    rev = git_revision()
    for name, fn in TARGETS:
        if args.only and name not in args.only:
            continue
        t0 = time.perf_counter()
        text = fn(args.div)
        took = time.perf_counter() - t0
        print(text)
        print(f"[{name} regenerated in {took:.1f}s]\n")
        (out_dir / f"{name}.txt").write_text(text)
        write_bench_json(out_dir, name, seconds=took, text=text,
                         env=env, rev=rev, div=args.div)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
