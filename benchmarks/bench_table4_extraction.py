"""Table IV: MEM-extraction times of every tool on every configuration.

All tools' outputs are verified identical before a row is accepted
(see :func:`repro.bench.harness.run_extraction_experiment`).

Expected shape (paper §IV-B): GPUMEM fastest everywhere; essaMEM improves
with τ; sparseMEM *degrades* with τ (its index sparsens as τ grows);
extraction gets slower as L shrinks for every tool.
"""

from __future__ import annotations

from repro.baselines import EssaMemFinder, MummerFinder, SparseMemFinder, parallel_query_time
from repro.bench.harness import gpumem_params, run_extraction_experiment
from repro.bench.reporting import format_table
from repro.bench.workloads import PAPER_TABLE4, TOOL_COLUMNS, experiment_rows
from repro.core.matcher import GpuMem


def bench_extract_gpumem(benchmark, small_config, small_pair):
    reference, query = small_pair
    matcher = GpuMem(gpumem_params(small_config))
    result = benchmark(matcher.find_mems, reference, query)
    # the fly/E. coli pair has essentially no shared content at this L and
    # slice — an empty (but well-formed) result is the expected outcome
    assert result is not None and len(result) >= 0


def bench_extract_mummer(benchmark, small_config, small_pair):
    reference, query = small_pair
    finder = MummerFinder()
    finder.build_index(reference)
    benchmark(finder.find_mems, query, small_config.min_length)


def bench_extract_sparsemem_t4(benchmark, small_config, small_pair):
    reference, query = small_pair
    finder = SparseMemFinder(sparseness=4)
    finder.build_index(reference)
    benchmark(
        lambda: parallel_query_time(finder, query, small_config.min_length, 4)
    )


def bench_extract_essamem_t8(benchmark, small_config, small_pair):
    reference, query = small_pair
    finder = EssaMemFinder(sparseness=8)
    finder.build_index(reference)
    benchmark(
        lambda: parallel_query_time(finder, query, small_config.min_length, 8)
    )


def generate_table(div: int | None = None) -> str:
    rows = []
    notes = []
    for config in experiment_rows():
        times, info = run_extraction_experiment(config, div)
        rows.append((config.key, times))
        notes.append(
            f"  {config.key}: {info['n_mems']} MEMs "
            f"(|R|={info['reference_len']:,}, |Q|={info['query_len']:,})"
            + (f", skipped: {info['skipped']}" if info["skipped"] else "")
        )
    table = format_table(
        "Table IV: MEM extraction times",
        rows,
        TOOL_COLUMNS,
        paper=PAPER_TABLE4,
    )
    return table + "\n".join(notes) + "\n"


if __name__ == "__main__":
    print(generate_table())
