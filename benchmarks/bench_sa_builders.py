"""Suffix-array construction back-ends compared.

Not a paper figure — an engineering bench justifying the library's default:
vectorized prefix doubling (NumPy) versus SA-IS (linear-time but
Python-scalar) versus the naive builder, on realistic DNA. Documents why
the baselines build with doubling at benchmark scales.
"""

from __future__ import annotations

import time

from repro.bench.reporting import series_csv
from repro.index.sais import sais_suffix_array
from repro.index.suffix_array import naive_suffix_array, suffix_array
from repro.sequence.synthetic import markov_dna, plant_repeats


def _data(n: int):
    return plant_repeats(markov_dna(n, seed=5), seed=6)


def bench_sa_doubling(benchmark):
    codes = _data(20_000)
    benchmark(suffix_array, codes)


def bench_sa_sais(benchmark):
    codes = _data(5_000)
    benchmark(sais_suffix_array, codes)


def generate_series(div: int | None = None) -> str:
    rows = []
    for n in (1_000, 5_000, 20_000, 100_000):
        codes = _data(n)
        t0 = time.perf_counter()
        doubling = suffix_array(codes)
        t_doubling = time.perf_counter() - t0
        if n <= 20_000:
            t0 = time.perf_counter()
            sais = sais_suffix_array(codes)
            t_sais = time.perf_counter() - t0
            assert (sais == doubling).all()
        else:
            t_sais = float("nan")
        if n <= 5_000:
            t0 = time.perf_counter()
            naive = naive_suffix_array(codes)
            t_naive = time.perf_counter() - t0
            assert (naive == doubling).all()
        else:
            t_naive = float("nan")
        rows.append((n, round(t_doubling, 4), round(t_sais, 4), round(t_naive, 4)))
    lines = ["== SA construction back-ends (agreeing outputs asserted) =="]
    lines.append(
        series_csv(["n", "doubling_numpy_s", "sais_python_s", "naive_s"], rows)
    )
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    print(generate_series())
