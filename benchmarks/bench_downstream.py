"""Micro-benchmarks of the downstream pipeline components.

Not paper figures — engineering benches for the anchor consumers the
paper's §I motivates: collinear chaining, anchored alignment, synteny
clustering, and MEM-seeded read mapping.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.align import align_from_anchors
from repro.core.chaining import chain_anchors
from repro.core.mapping import ReadMapper
from repro.core.synteny import synteny_blocks
from repro.sequence.synthetic import markov_dna, mutate


def _anchored_pair():
    R = markov_dna(30_000, seed=71)
    Q = mutate(R, rate=0.03, indel_rate=0.002, seed=72)
    mems = repro.find_mems(R, Q, min_length=15, seed_length=8)
    return R, Q, mems


def bench_chaining(benchmark):
    _, _, mems = _anchored_pair()
    chain = benchmark(chain_anchors, mems)
    assert chain.score > 0


def bench_synteny_clustering(benchmark):
    _, _, mems = _anchored_pair()
    blocks = benchmark(synteny_blocks, mems.array, max_gap=500)
    assert blocks


def bench_anchored_alignment(benchmark):
    R, Q, mems = _anchored_pair()
    chain = chain_anchors(mems)
    aln = benchmark(align_from_anchors, R, Q, chain)
    assert aln.identity > 0.9


def bench_read_mapping(benchmark):
    R = markov_dna(100_000, seed=73)
    mapper = ReadMapper(R, min_seed=20, seed_length=9)
    read = mutate(R[40_000:43_000], rate=0.06, seed=74)
    mapping = benchmark(mapper.map_read, read)
    assert mapping.mapped
