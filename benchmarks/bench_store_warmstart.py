"""Warm-start through the persistent index store: cold build vs mmap reload.

The tiered :class:`repro.index.store.IndexStore` exists so a *restarted*
process stops paying Table III's index-construction cost: the first session
builds and persists every row bundle; every later session (same reference,
same params, any process) mmaps them back in. This benchmark measures
exactly that contract on one reference:

- ``cold``  — fresh session + empty store: build + persist every row.
- ``warm``  — fresh session + populated store, hot tier dropped (as a
  process restart would): every row served by ``np.load(mmap_mode='r')``.
- ``rebuild`` — fresh session with no store at all (the pre-store
  behaviour), as the baseline the warm path is saved from.

Results are cross-checked (warm MEMs == cold MEMs == storeless MEMs) before
any timing is accepted. The acceptance criterion for the store PR is a
near-zero warm build: ``warm_seconds`` well under ``rebuild_seconds``
(reported as ``warmstart_speedup``).
"""

from __future__ import annotations

import shutil
import tempfile
import time

import numpy as np

from repro.bench.reporting import series_csv
from repro.core.params import GpuMemParams
from repro.core.session import MemSession
from repro.index.store import IndexStore
from repro.sequence.synthetic import markov_dna, plant_repeats

#: Reference sizes swept (bases); scaled down by the harness divisor.
REFERENCE_BASES = (100_000, 400_000)
QUERY_BASES = 2_000


def _reference(n_bases: int, seed: int = 61) -> np.ndarray:
    return plant_repeats(
        markov_dna(n_bases, seed=seed),
        seed=seed + 1,
        n_families=4,
        family_length=(60, 200),
        copies_per_family=(10, 40),
        copy_divergence=0.03,
    )


def _timed_warm(session: MemSession) -> float:
    t0 = time.perf_counter()
    session.warm()
    return time.perf_counter() - t0


def run_warmstart_experiment(n_bases: int, params: GpuMemParams) -> dict:
    """Cold/warm/storeless timings + cross-checked outputs for one |R|."""
    reference = _reference(n_bases)
    rng = np.random.default_rng(63)
    at = int(rng.integers(0, reference.size - QUERY_BASES))
    query = reference[at : at + QUERY_BASES].copy()

    cache_dir = tempfile.mkdtemp(prefix="repro-store-bench-")
    try:
        store = IndexStore(cache_dir)

        cold_session = MemSession(reference, params, store=store)
        cold_seconds = _timed_warm(cold_session)
        cold_mems = cold_session.find_mems(query)

        # A restart: new session, hot tier gone, bundles still on disk.
        store.clear_hot()
        warm_session = MemSession(reference, params, store=store)
        warm_seconds = _timed_warm(warm_session)
        warm_mems = warm_session.find_mems(query)

        plain_session = MemSession(reference, params)
        rebuild_seconds = _timed_warm(plain_session)
        plain_mems = plain_session.find_mems(query)

        if not (
            np.array_equal(cold_mems.array, warm_mems.array)
            and np.array_equal(cold_mems.array, plain_mems.array)
        ):
            raise AssertionError(
                "store warm-start changed the extracted MEMs "
                f"(|R|={n_bases}): refusing to report timings"
            )
        stats = store.stats()
        if stats["builds"] != cold_session.n_rows:
            raise AssertionError(
                f"expected exactly one build per row, saw {stats['builds']} "
                f"builds for {cold_session.n_rows} rows"
            )
        return {
            "n_bases": n_bases,
            "n_rows": cold_session.n_rows,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "rebuild_seconds": rebuild_seconds,
            "warmstart_speedup": rebuild_seconds / max(warm_seconds, 1e-9),
            "warm_hits": stats["warm_hits"],
            "bytes_mmapped": stats["bytes_mmapped"],
            "n_mems": len(cold_mems),
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def generate_series(div: int | None = None) -> str:
    from repro.bench.harness import BENCH_DIV

    div = BENCH_DIV if div is None else div
    params = GpuMemParams(min_length=40, seed_length=10)
    rows = []
    for n_bases in REFERENCE_BASES:
        out = run_warmstart_experiment(max(20_000, n_bases // div), params)
        rows.append(
            (
                out["n_bases"],
                out["n_rows"],
                round(out["cold_seconds"], 4),
                round(out["warm_seconds"], 4),
                round(out["rebuild_seconds"], 4),
                round(out["warmstart_speedup"], 2),
                out["warm_hits"],
                out["bytes_mmapped"],
                out["n_mems"],
            )
        )
    lines = [
        "== Index-store warm start: cold build+persist vs mmap reload "
        f"(L=40, ls=10, |Q|={QUERY_BASES:,}) =="
    ]
    lines.append(
        series_csv(
            ["n_bases", "n_rows", "cold_seconds", "warm_seconds",
             "rebuild_seconds", "warmstart_speedup", "warm_hits",
             "bytes_mmapped", "n_mems"],
            rows,
        )
    )
    last = rows[-1]
    lines.append(
        f"# warm start at |R|={last[0]:,}: {last[3]}s vs {last[4]}s rebuild "
        f"({last[5]}x; acceptance bar: warm well under rebuild)"
    )
    return "\n".join(lines) + "\n"


def bench_store_warmstart(benchmark):
    params = GpuMemParams(min_length=40, seed_length=10)
    reference = _reference(50_000)
    cache_dir = tempfile.mkdtemp(prefix="repro-store-bench-")
    try:
        store = IndexStore(cache_dir)
        MemSession(reference, params, store=store).warm()  # populate

        def run():
            store.clear_hot()
            session = MemSession(reference, params, store=store)
            session.warm()
            return session

        benchmark(run)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    print(generate_series())
