"""Ablation: multi-device scaling (the paper's §V multi-GPU direction).

Tile rows are banded across D simulated devices; the modeled parallel
extraction time is the slowest band plus the shared host merge. Measures
how GPUMEM's row-independent tiling scales and how many cross-band
fragments the merge has to absorb.

Expected shape: near-linear speedup while rows ≫ devices, saturating when
bands shrink to a row; output identical at every D.
"""

from __future__ import annotations

from repro.bench.harness import BENCH_DIV
from repro.bench.harness import bench_pair as _bench_pair
from repro.bench.reporting import series_csv
from repro.core.multi_device import find_mems_multi_device
from repro.core.params import GpuMemParams
from repro.sequence.datasets import EXPERIMENT_CONFIGS

CONFIG = EXPERIMENT_CONFIGS[1]  # chr1m/chr2h L=50


def _params():
    # smaller tiles so several rows exist even at bench slice sizes
    return GpuMemParams(
        min_length=CONFIG.min_length, seed_length=CONFIG.seed_length,
        blocks_per_tile=8,
    )


def bench_multidevice_two(benchmark):
    reference, query = _bench_pair(CONFIG, div=BENCH_DIV * 2)
    benchmark(find_mems_multi_device, reference, query, _params(), n_devices=2)


def generate_series(div: int | None = None) -> str:
    reference, query = _bench_pair(CONFIG, div)
    params = _params()
    rows = []
    reference_mems = None
    for n_devices in (1, 2, 4, 8):
        mems, stats = find_mems_multi_device(
            reference, query, params, n_devices=n_devices
        )
        if reference_mems is None:
            reference_mems = mems
            serial = stats["serial_seconds"]
        assert mems == reference_mems, f"D={n_devices} changed the MEM set!"
        rows.append(
            (
                n_devices,
                round(stats["parallel_seconds"], 4),
                round(serial / stats["parallel_seconds"], 2),
                stats["n_cross_band_fragments"],
                len(mems),
            )
        )
    lines = ["== Ablation: multi-device row banding (chr1m/chr2h, L=50) =="]
    lines.append(
        series_csv(
            ["n_devices", "parallel_seconds", "speedup_vs_serial",
             "cross_band_fragments", "n_mems"],
            rows,
        )
    )
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    print(generate_series())
