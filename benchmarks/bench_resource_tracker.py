"""Resource tracker overhead: batch throughput with the tracker off vs on.

The runtime resource-lifecycle tracker (docs/analysis.md) is meant to run
under CI's ``tests-resource`` leg and the ``resource_tracker`` fixture,
so its cost on a real workload must stay small — the budget is **<= 5%
throughput overhead** on the batch workload with a raise-mode tracker
installed process-wide. The tracker only instruments IPC seams
(shared-memory publish/attach, store mmap opens, file locks), so the
batch number mostly prices the hook seams' ``active_tracker()`` check;
an IPC-lifecycle loop (publish → attach → close → unlink through
:class:`repro.sequence.packed.PackedSequence`) prices the hot case where
every operation actually hits the tracker's table.

Standalone runs also write ``bench_results/BENCH_resource_tracker.json``
(the record ``benchmarks/run_all.py`` produces for CI diffing).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis import resource_tracker as rt
from repro.analysis.resource_tracker import ResourceTracker
from repro.bench.reporting import series_csv
from repro.core.batch import BatchRunner
from repro.core.params import GpuMemParams
from repro.core.session import MemSession
from repro.sequence.packed import PackedSequence
from repro.sequence.synthetic import markov_dna, plant_repeats

#: Reference size (bases) and per-query size for the batch workload.
REFERENCE_BASES = 200_000
QUERY_BASES = 2_000

#: Queries per batch, pool width, and timing repetitions per configuration.
N_QUERIES = 24
WORKERS = 4
REPEATS = 3

#: Shared-memory publish/attach/close/unlink cycles per IPC timing.
IPC_CYCLES = 200

#: Acceptance budget: tracked throughput must stay within 5% of plain.
OVERHEAD_BUDGET = 0.05


def _workload(rng_seed: int = 47):
    reference = plant_repeats(
        markov_dna(REFERENCE_BASES, seed=rng_seed),
        seed=rng_seed + 1,
        n_families=4,
        family_length=(60, 200),
        copies_per_family=(10, 40),
        copy_divergence=0.03,
    )
    rng = np.random.default_rng(rng_seed + 2)
    queries = []
    for _ in range(N_QUERIES):
        at = int(rng.integers(0, reference.size - QUERY_BASES))
        read = reference[at : at + QUERY_BASES].copy()
        flips = rng.integers(0, read.size, read.size // 100)
        read[flips] = (read[flips] + rng.integers(1, 4, flips.size)) % 4
        queries.append(read)
    return reference, queries


def _time_batch(reference, queries, params):
    """Best-of-REPEATS batch wall time on a warm session; returns tuples."""
    session = MemSession(reference, params)
    session.warm()
    runner = BatchRunner(session, workers=WORKERS)
    best = float("inf")
    outputs = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        results = list(runner.run(queries))
        seconds = time.perf_counter() - t0
        best = min(best, seconds)
        outputs = [r.value.as_tuples() for r in results]
    return best, outputs


def _time_ipc_cycles(reference) -> float:
    """Best-of-REPEATS seconds for IPC_CYCLES full shm lifecycles."""
    # a 4096-base sequence: big enough for a real segment, small enough
    # that per-cycle cost is dominated by the lifecycle, not the copy
    seq = PackedSequence(reference[:4096].astype(np.uint8))
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(IPC_CYCLES):
            handle = seq.to_shared()
            attached = PackedSequence.from_shared(handle)
            attached.close_shared(materialize=False)
            seq.unlink_shared()
        best = min(best, time.perf_counter() - t0)
    return best


def run_resource_tracker_experiment(reference, queries, params) -> dict:
    """Tracker-off vs tracker-on timings plus the tracker's res.* series."""
    prev = rt.active_tracker()
    rt.uninstall()
    try:
        plain_seconds, plain_out = _time_batch(reference, queries, params)
        plain_ipc = _time_ipc_cycles(reference)

        tracker = ResourceTracker(mode="raise")
        rt.install(tracker)
        try:
            tracked_seconds, tracked_out = _time_batch(
                reference, queries, params
            )
            tracked_ipc = _time_ipc_cycles(reference)
        finally:
            rt.uninstall()
    finally:
        if prev is not None:
            rt.install(prev)
    if tracked_out != plain_out:  # timing is meaningless on wrong output
        raise AssertionError("tracked run's output diverged from plain run")
    if tracker.findings:
        raise AssertionError(
            "resource tracker flagged the shipped batch engine:\n"
            + tracker.format_findings()
        )
    leaked = tracker.leaks()
    if leaked:
        raise AssertionError(
            "resource tracker audit found leaks in the benchmark workload:\n"
            + "\n".join(r.format() for r in leaked)
        )

    res_series = {
        name: inst for name, inst in tracker.metrics.to_dict().items()
        if name.startswith("res.")
    }
    return {
        "plain_seconds": plain_seconds,
        "tracked_seconds": tracked_seconds,
        "plain_qps": len(queries) / plain_seconds,
        "tracked_qps": len(queries) / tracked_seconds,
        "overhead": tracked_seconds / plain_seconds - 1.0,
        "plain_ipc_seconds": plain_ipc,
        "tracked_ipc_seconds": tracked_ipc,
        "ipc_cycles": IPC_CYCLES,
        "n_queries": len(queries),
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "res_series": res_series,
    }


def generate_series(div: int | None = None) -> str:
    reference, queries = _workload()
    params = GpuMemParams(min_length=40, seed_length=10)
    out = run_resource_tracker_experiment(reference, queries, params)
    rows = [
        ("off", round(out["plain_seconds"], 4), round(out["plain_qps"], 2),
         round(out["plain_ipc_seconds"] * 1e6 / out["ipc_cycles"], 2)),
        ("on", round(out["tracked_seconds"], 4), round(out["tracked_qps"], 2),
         round(out["tracked_ipc_seconds"] * 1e6 / out["ipc_cycles"], 2)),
    ]
    lines = [
        "== Resource tracker overhead: BatchRunner throughput + shm "
        f"lifecycle, tracker off vs on (|R|={reference.size:,}, "
        f"|Q|={QUERY_BASES:,}, N={out['n_queries']}, "
        f"workers={out['workers']}, cpus={out['cpu_count']}) =="
    ]
    lines.append(series_csv(
        ["resource_tracker", "seconds", "qps", "ipc_us_per_cycle"], rows
    ))
    created = out["res_series"].get("res.shm.created", {}).get("value", 0)
    unlinked = out["res_series"].get("res.shm.unlinked", {}).get("value", 0)
    lines.append(
        f"# tracked: {created:.0f} segments created, {unlinked:.0f} "
        "unlinked, 0 findings, 0 leaks"
    )
    verdict = "PASS" if out["overhead"] <= OVERHEAD_BUDGET else "EXCEEDED"
    lines.append(
        f"# overhead: {out['overhead'] * 100:+.1f}% vs budget "
        f"<= {OVERHEAD_BUDGET * 100:.0f}%: {verdict} (best-of-{REPEATS} "
        "timings; loaded runners can still exceed the budget spuriously)"
    )
    return "\n".join(lines) + "\n"


def bench_resource_tracker_on(benchmark):
    reference, queries = _workload()
    params = GpuMemParams(min_length=40, seed_length=10)
    tracker = ResourceTracker(mode="raise")
    rt.install(tracker)
    session = MemSession(reference, params)
    session.warm()
    runner = BatchRunner(session, workers=WORKERS)

    def run():
        return list(runner.run(queries[:8]))

    try:
        benchmark(run)
    finally:
        rt.uninstall()


def _write_standalone_json(text: str, seconds: float) -> Path:
    """Mirror run_all.py's BENCH_<name>.json record for standalone runs."""
    out_dir = Path(__file__).resolve().parents[1] / "bench_results"
    out_dir.mkdir(exist_ok=True)
    from repro.bench.harness import environment_info

    record = {
        "name": "resource_tracker",
        "seconds": round(seconds, 6),
        "div": None,
        "git_revision": None,
        "environment": environment_info(),
        "text": text,
    }
    path = out_dir / "BENCH_resource_tracker.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


if __name__ == "__main__":
    t0 = time.perf_counter()
    series = generate_series()
    took = time.perf_counter() - t0
    print(series)
    print(f"[wrote {_write_standalone_json(series, took)}]")
