"""Whole-genome comparison: MEM anchors and a dot-plot.

The paper's motivating pipeline (§I): heuristic aligners extract shared
regions as *anchors* for a full alignment. This example compares two
synthetic chromosomes (the chrXc/chrXh pair — chimp vs human X), extracts
MEM anchors with GPUMEM, chains the consistent ones (a classic sparse
dynamic-programming chain on the anchor set, as in MUMmer's pipeline), and
renders an ASCII dot-plot.

Run::

    python examples/genome_anchors.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core.chaining import chain_anchors
from repro.core.synteny import block_coverage, synteny_blocks
from repro.sequence.datasets import EXPERIMENT_CONFIGS, load_experiment

MIN_LENGTH = 50
PLOT = 48  # dot-plot resolution


def summarize_blocks(mems, n_query):
    """Synteny-block view of the anchor set (repro.core.synteny)."""
    blocks = synteny_blocks(mems, max_gap=2000, max_diagonal_drift=200,
                            min_bases=500)
    cov = block_coverage(blocks, n_query)
    return blocks, cov


def dot_plot(mems, n_ref: int, n_query: int) -> str:
    grid = np.zeros((PLOT, PLOT), dtype=np.int64)
    arr = mems.array
    for frac in np.linspace(0.0, 1.0, 8):  # sample points along each MEM
        r = arr["r"] + (arr["length"] * frac).astype(np.int64)
        q = arr["q"] + (arr["length"] * frac).astype(np.int64)
        y = np.minimum(r * PLOT // max(n_ref, 1), PLOT - 1)
        x = np.minimum(q * PLOT // max(n_query, 1), PLOT - 1)
        np.add.at(grid, (y, x), arr["length"])
    shades = " .:*#@"
    lines = []
    nz = grid[grid > 0]
    cut = np.quantile(nz, [0.25, 0.5, 0.75, 0.95]) if nz.size else [1, 2, 3, 4]
    for row in grid:
        line = "".join(
            shades[0 if v == 0 else 1 + int(np.searchsorted(cut, v))] for v in row
        )
        lines.append(line)
    return "\n".join(lines)


def main() -> None:
    config = EXPERIMENT_CONFIGS[3]  # chrXc/chrXh, L = 50
    reference, query = load_experiment(config)
    # A 300 kbp slice keeps the example instant.
    reference, query = reference[:300_000], query[:300_000]

    mems = repro.find_mems(reference, query, min_length=MIN_LENGTH)
    total = mems.total_matched_bases()
    print(
        f"{config.reference} vs {config.query}: {len(mems)} anchors "
        f"(>= {MIN_LENGTH} bp), {total:,} anchored bases "
        f"({100 * total / query.size:.1f}% of the query)"
    )

    chain = chain_anchors(mems)
    print(f"best collinear chain: {len(chain)} anchors, {chain.score:,} bases")
    print("first/last chained anchors:")
    for r, q, length in chain.anchors[:2] + chain.anchors[-2:]:
        print(f"  R@{r:>9,}  Q@{q:>9,}  len {length}")

    blocks, cov = summarize_blocks(mems, query.size)
    print(f"\nsynteny blocks (>= 500 anchored bases): {len(blocks)}, "
          f"covering {cov:.1%} of the query")
    for b in blocks[:5]:
        print(f"  Q[{b.q_start:,}:{b.q_end:,}] ~ R[{b.r_start:,}:{b.r_end:,}]  "
              f"{b.n_anchors} anchors, density {b.density:.2f}")

    print("\nMEM dot-plot (reference down, query across):")
    print(dot_plot(mems, reference.size, query.size))


if __name__ == "__main__":
    main()
