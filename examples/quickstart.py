"""Quickstart: find maximal exact matches between two sequences.

Run::

    python examples/quickstart.py

Generates a small synthetic reference, derives a mutated query from it, and
extracts all MEMs of length >= 40 with the GPUMEM pipeline — then shows the
same result through two of the CPU baselines the paper compares against.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.baselines import EssaMemFinder, MummerFinder
from repro.sequence.alphabet import decode

MIN_LENGTH = 40


def main() -> None:
    # 1. A 100 kbp random reference and a query that shares diverged
    #    segments with it (2% divergence -> exact matches of ~50 bp).
    reference = repro.random_dna(100_000, seed=1)
    from repro.sequence.synthetic import plant_homology

    query = plant_homology(
        reference, 60_000, seed=2, coverage=0.6, divergence=0.02
    )

    # 2. GPUMEM (vectorized backend): one call.
    mems = repro.find_mems(reference, query, min_length=MIN_LENGTH)
    print(f"GPUMEM found {len(mems)} MEMs of length >= {MIN_LENGTH}")
    print("five longest:")
    top = sorted(mems, key=lambda t: -t[2])[:5]
    for r, q, length in top:
        print(f"  R[{r}:{r + length}] == Q[{q}:{q + length}]  (length {length})")
        fragment = decode(reference[r : r + min(length, 50)])
        print(f"    {fragment}{'...' if length > 50 else ''}")

    # 3. Verify a MEM really is maximal (the definition from §II).
    r, q, length = top[0]
    assert np.array_equal(reference[r : r + length], query[q : q + length])
    assert r == 0 or q == 0 or reference[r - 1] != query[q - 1]
    assert (
        r + length == reference.size
        or q + length == query.size
        or reference[r + length] != query[q + length]
    )
    print("maximality verified for the longest MEM")

    # 4. The CPU baselines produce the identical set.
    for finder in (MummerFinder(), EssaMemFinder(sparseness=4)):
        finder.build_index(reference)
        result = finder.find_mems(query, MIN_LENGTH)
        assert result.mems == mems, finder.name
        print(f"{finder.name}: identical MEM set "
              f"(build {finder.name} index: {result.seconds:.3f}s extraction)")

    # 5. Pipeline statistics from the matcher.
    matcher = repro.GpuMem(min_length=MIN_LENGTH)
    matcher.find_mems(reference, query)
    stats = matcher.stats
    print(
        f"tiles: {stats['n_tiles']}  candidates: {stats['n_candidates']:,}  "
        f"in-tile MEMs: {stats['n_in_tile']}  border fragments: "
        f"{stats['n_out_tile_fragments']}"
    )
    print(f"index {stats['index_time']:.3f}s + match {stats['match_time']:.3f}s")


if __name__ == "__main__":
    main()
