"""The full pipeline the paper motivates: MEMs -> chain -> alignment.

§I: "these heuristic approaches extract the shared regions from the
sequences and use them as anchors for the next step of a full alignment
process." This example runs that whole process on a diverged pair:

1. GPUMEM extracts MEM anchors,
2. sparse DP picks the best collinear chain,
3. the gaps between anchors are Needleman-Wunsch aligned,

and prints the resulting CIGAR, identity, and a visual excerpt.

Run::

    python examples/anchored_alignment.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.align import align_from_anchors
from repro.core.chaining import chain_anchors
from repro.sequence.alphabet import decode
from repro.sequence.synthetic import markov_dna, mutate

REF_LEN = 50_000
DIVERGENCE = 0.04
MIN_ANCHOR = 18


def render_excerpt(reference, query, aln, width=72):
    """Pretty-print the first `width` alignment columns."""
    top, mid, bot = [], [], []
    i, j = aln.r_start, aln.q_start
    for op, run in aln.cigar:
        for _ in range(run):
            if len(top) >= width:
                break
            if op == "M":
                a, b = decode(reference[i : i + 1]), decode(query[j : j + 1])
                top.append(a)
                bot.append(b)
                mid.append("|" if a == b else "x")
                i += 1
                j += 1
            elif op == "D":
                top.append(decode(reference[i : i + 1]))
                bot.append("-")
                mid.append(" ")
                i += 1
            else:
                top.append("-")
                bot.append(decode(query[j : j + 1]))
                mid.append(" ")
                j += 1
    return "\n".join("".join(x) for x in (top, mid, bot))


def main() -> None:
    reference = markov_dna(REF_LEN, seed=21)
    query = mutate(reference, rate=DIVERGENCE, indel_rate=DIVERGENCE / 8, seed=22)

    mems = repro.find_mems(reference, query, min_length=MIN_ANCHOR, seed_length=9)
    print(f"anchors: {len(mems)} MEMs of >= {MIN_ANCHOR} bp")

    chain = chain_anchors(mems)
    print(
        f"best chain: {len(chain)} anchors, {chain.score:,} anchored bases, "
        f"spans R{chain.reference_span} Q{chain.query_span}"
    )

    aln = align_from_anchors(reference, query, chain)
    cigar = aln.cigar_string
    print(
        f"alignment: score {aln.score:,}  identity {aln.identity:.2%}  "
        f"({aln.n_match:,}M= {aln.n_mismatch:,}X {aln.n_insert:,}I "
        f"{aln.n_delete:,}D)"
    )
    print(f"CIGAR ({len(aln.cigar)} runs): {cigar[:100]}"
          f"{'...' if len(cigar) > 100 else ''}")

    print("\nfirst alignment columns:")
    print(render_excerpt(reference, query, aln))

    # sanity: identity should reflect the planted divergence
    expected_identity = 1.0 - DIVERGENCE * 1.3
    assert aln.identity > expected_identity, (aln.identity, expected_identity)
    print("\nidentity consistent with the planted divergence")


if __name__ == "__main__":
    main()
