"""Long-read mapping with MEM seeds (paper §I, citing Liu & Schmidt 2012).

MEMs are the seeding step of long-read aligners: each read's MEMs against
the reference vote for a mapping locus. This example simulates noisy long
reads from a reference, maps them by GPUMEM MEM seeds + diagonal voting,
and reports mapping accuracy — exercising the library exactly the way the
"mapping long reads" application the paper cites does.

Run::

    python examples/long_read_mapping.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core.mapping import ReadMapper
from repro.sequence.synthetic import markov_dna, mutate, plant_repeats

REF_LEN = 400_000
N_READS = 60
READ_LEN = 4_000
ERROR_RATE = 0.06          # long-read-ish error rate
MIN_SEED = 24              # MEM seed length for mapping
TOLERANCE = 200            # locus tolerance for "correct" mapping


def simulate_reads(reference: np.ndarray, rng: np.random.Generator):
    reads, true_pos = [], []
    for _ in range(N_READS):
        start = int(rng.integers(0, reference.size - READ_LEN))
        read = mutate(
            reference[start : start + READ_LEN],
            rate=ERROR_RATE,
            indel_rate=ERROR_RATE / 6,
            seed=int(rng.integers(2**31)),
        )
        reads.append(read)
        true_pos.append(start)
    return reads, true_pos


def main() -> None:
    rng = np.random.default_rng(42)
    reference = plant_repeats(
        markov_dna(REF_LEN, seed=7), seed=8,
        n_families=4, copies_per_family=(20, 80),
    )
    reads, true_pos = simulate_reads(reference, rng)

    mapper = ReadMapper(reference, min_seed=MIN_SEED, seed_length=10,
                        tolerance=TOLERANCE)
    correct = unmapped = 0
    support = []
    mapqs = []
    for read, truth in zip(reads, true_pos, strict=True):
        m = mapper.map_read(read)
        if not m.mapped:
            unmapped += 1
            continue
        support.append(m.support)
        mapqs.append(m.mapq)
        if abs(m.locus - truth) <= TOLERANCE:
            correct += 1
    mapped = N_READS - unmapped
    print(
        f"{N_READS} reads of {READ_LEN} bp at {ERROR_RATE:.0%} error: "
        f"{mapped} mapped, {correct} correct "
        f"({100 * correct / max(mapped, 1):.1f}% of mapped)"
    )
    if support:
        print(
            f"seed support per read: median {int(np.median(support))} bases "
            f"(min {min(support)}, max {max(support)}); "
            f"median MAPQ {int(np.median(mapqs))}"
        )
    assert correct >= 0.9 * mapped, "mapping accuracy collapsed — seeding broken?"
    print("MEM seeding sanity check passed")


if __name__ == "__main__":
    main()
