"""Assembly comparison via MEM coverage distance (paper §I, citing
Garcia et al. 2013, "a genomic distance for assembly comparison based on
compressed maximal exact matches").

Given one reference and several assemblies (here: progressively mutated
copies), the fraction of each assembly NOT covered by MEMs against the
reference is a genomic distance. This example computes that distance
matrix with GPUMEM and checks it orders the assemblies by their true
divergence.

Run::

    python examples/assembly_distance.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core.distance import mem_coverage
from repro.sequence.synthetic import markov_dna, mutate

MIN_LENGTH = 30


def main() -> None:
    reference = markov_dna(200_000, seed=3)
    divergences = [0.002, 0.01, 0.03, 0.08, 0.15]
    assemblies = [
        mutate(reference, rate=d, indel_rate=d / 10, seed=100 + i)
        for i, d in enumerate(divergences)
    ]

    print(f"MEM-coverage distance to reference (L = {MIN_LENGTH}):")
    distances = []
    for d, asm in zip(divergences, assemblies, strict=True):
        cov = mem_coverage(reference, asm, min_length=MIN_LENGTH)
        dist = 1.0 - cov
        distances.append(dist)
        bar = "#" * int(50 * dist)
        print(f"  divergence {d:5.1%}  distance {dist:6.3f}  {bar}")

    # The distance must be monotone in the true divergence.
    assert all(a <= b + 1e-9 for a, b in zip(distances, distances[1:], strict=False)), distances
    print("distance is monotone in true divergence — matches Garcia et al.'s premise")


if __name__ == "__main__":
    main()
