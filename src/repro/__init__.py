"""GPUMEM reproduction package.

This package reproduces *Extracting Maximal Exact Matches on GPU*
(Abu-Doleh, Kaya, Abouelhoda, Çatalyürek — IPDPS Workshops 2014).

It provides:

- :mod:`repro.sequence` — DNA sequence substrate (2-bit packing, FASTA,
  synthetic genome generation mirroring the paper's Table II datasets).
- :mod:`repro.index` — index-structure substrate (suffix array, LCP, BWT,
  FM-index, sparse suffix array, enhanced suffix array, k-mer index).
- :mod:`repro.gpu` — a functional SIMT GPU simulator with a warp-level cost
  model, substituting for the paper's Tesla K20c.
- :mod:`repro.core` — GPUMEM itself: tiled 2-D search-space partitioning,
  lightweight ``locs``/``ptrs`` seed index (Algorithm 1), proactive load
  balancing (Algorithm 2), conflict-free parallel combine (Algorithm 3), and
  the in-block/out-block/in-tile/out-tile staging.
- :mod:`repro.baselines` — from-scratch implementations of the four CPU
  comparators: MUMmer-class full suffix array, sparseMEM, essaMEM, slaMEM.
- :mod:`repro.bench` — the experiment harness regenerating every table and
  figure of the paper's evaluation section.
- :mod:`repro.obs` — opt-in tracing/metrics: pass ``tracer=repro.Tracer()``
  to any entry point and export a Chrome-trace (docs/observability.md).

Quickstart::

    import repro

    ref = repro.random_dna(100_000, seed=1)
    qry = repro.mutate(ref, rate=0.02, seed=2)
    mems = repro.find_mems(ref, qry, min_length=40)
    for r, q, length in mems[:5]:
        print(r, q, length)
"""

from __future__ import annotations

from repro._version import __version__
from repro.core import (
    BatchError,
    BatchResult,
    BatchRunner,
    GpuMem,
    GpuMemParams,
    MemSession,
    Pipeline,
    PipelineStats,
    StrandedMems,
    brute_force_mems,
    find_mems,
    find_mems_both_strands,
    find_mums,
    find_rare_mems,
    get_session,
)
from repro.errors import (
    GpuMemError,
    InvalidParameterError,
    InvalidSequenceError,
    MemoryBudgetError,
)
from repro.obs import MetricsRegistry, Tracer
from repro.sequence import (
    decode,
    encode,
    mutate,
    random_dna,
    reverse_complement,
)
from repro.types import MEM_DTYPE, TRIPLET_DTYPE, MatchSet, sort_mems

__all__ = [
    "__version__",
    "GpuMemError",
    "InvalidParameterError",
    "InvalidSequenceError",
    "MemoryBudgetError",
    "MEM_DTYPE",
    "TRIPLET_DTYPE",
    "MatchSet",
    "sort_mems",
    "encode",
    "decode",
    "random_dna",
    "mutate",
    "reverse_complement",
    "GpuMem",
    "GpuMemParams",
    "MemSession",
    "BatchRunner",
    "BatchResult",
    "BatchError",
    "Pipeline",
    "PipelineStats",
    "get_session",
    "find_mems",
    "brute_force_mems",
    "find_mums",
    "find_rare_mems",
    "find_mems_both_strands",
    "StrandedMems",
    "Tracer",
    "MetricsRegistry",
]
