"""Sequence substrate: DNA alphabet, packing, FASTA I/O, synthetic genomes.

Sequences travel through the library as NumPy ``uint8`` arrays of 2-bit codes
(``A=0, C=1, G=2, T=3`` — the encoding from §III-A of the paper). The
:class:`~repro.sequence.packed.PackedSequence` wrapper provides the actual
2-bit-per-base packed storage used for memory accounting and fast k-mer /
limb extraction.
"""

from repro.sequence.alphabet import (
    ALPHABET,
    ALPHABET_SIZE,
    BASE_TO_CODE,
    CODE_TO_BASE,
    decode,
    encode,
    is_valid_codes,
    random_dna,
    reverse_complement,
)
from repro.sequence.datasets import (
    DATASETS,
    EXPERIMENT_CONFIGS,
    DatasetSpec,
    ExperimentConfig,
    load_dataset,
    load_experiment,
)
from repro.sequence.fasta import iter_fasta, read_fasta, write_fasta
from repro.sequence.packed import PackedSequence, kmer_codes, pack_bits, unpack_bits
from repro.sequence.synthetic import (
    SyntheticGenomeSpec,
    markov_dna,
    mutate,
    plant_homology,
    plant_repeats,
    synthesize_pair,
)

__all__ = [
    "ALPHABET",
    "ALPHABET_SIZE",
    "BASE_TO_CODE",
    "CODE_TO_BASE",
    "encode",
    "decode",
    "is_valid_codes",
    "random_dna",
    "reverse_complement",
    "PackedSequence",
    "kmer_codes",
    "pack_bits",
    "unpack_bits",
    "iter_fasta",
    "read_fasta",
    "write_fasta",
    "SyntheticGenomeSpec",
    "markov_dna",
    "mutate",
    "plant_homology",
    "plant_repeats",
    "synthesize_pair",
    "DATASETS",
    "EXPERIMENT_CONFIGS",
    "DatasetSpec",
    "ExperimentConfig",
    "load_dataset",
    "load_experiment",
]
