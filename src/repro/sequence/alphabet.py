"""DNA alphabet and 2-bit code conversion.

The paper (§III-A) encodes bases as ``A=00, C=01, G=10, T=11``; we keep the
same code assignment so seed integers computed here are bit-compatible with
the paper's description.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidSequenceError

#: The DNA alphabet, in code order.
ALPHABET = "ACGT"

#: Number of letters, i.e. ``|Σ| = 4``.
ALPHABET_SIZE = 4

#: Mapping base letter -> 2-bit code.
BASE_TO_CODE = {base: code for code, base in enumerate(ALPHABET)}

#: Mapping 2-bit code -> base letter.
CODE_TO_BASE = {code: base for code, base in enumerate(ALPHABET)}

# 256-entry lookup for vectorized encoding; 255 marks an invalid letter.
_ENC_LUT = np.full(256, 255, dtype=np.uint8)
for _base, _code in BASE_TO_CODE.items():
    _ENC_LUT[ord(_base)] = _code
    _ENC_LUT[ord(_base.lower())] = _code

_DEC_LUT = np.frombuffer(ALPHABET.encode("ascii"), dtype=np.uint8)


def encode(seq: "str | bytes | np.ndarray") -> np.ndarray:
    """Encode a DNA string into a ``uint8`` array of 2-bit codes.

    Accepts ``str``, ``bytes`` or an already-encoded code array (validated
    and passed through). Lower-case letters are accepted. Any other letter
    (including ``N``) raises :class:`~repro.errors.InvalidSequenceError`;
    ambiguity codes must be resolved by the caller (see
    :func:`repro.sequence.fasta.read_fasta` for the N policy).
    """
    if isinstance(seq, np.ndarray):
        codes = np.ascontiguousarray(seq, dtype=np.uint8)
        if codes.size and codes.max(initial=0) > 3:
            bad = int(codes.max())
            raise InvalidSequenceError(f"code array contains value {bad} > 3")
        return codes
    if isinstance(seq, str):
        raw = np.frombuffer(seq.encode("ascii", errors="replace"), dtype=np.uint8)
    elif isinstance(seq, (bytes, bytearray)):
        raw = np.frombuffer(bytes(seq), dtype=np.uint8)
    else:
        raise TypeError(f"cannot encode object of type {type(seq).__name__}")
    codes = _ENC_LUT[raw]
    if codes.size and codes.max(initial=0) == 255:
        bad_pos = int(np.argmax(codes == 255))
        bad_chr = chr(int(raw[bad_pos]))
        raise InvalidSequenceError(
            f"invalid base {bad_chr!r} at position {bad_pos} (alphabet is {ALPHABET})"
        )
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode a 2-bit code array back into an upper-case DNA string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max(initial=0) > 3:
        raise InvalidSequenceError(f"code array contains value {int(codes.max())} > 3")
    return _DEC_LUT[codes].tobytes().decode("ascii")


def is_valid_codes(codes: np.ndarray) -> bool:
    """True if ``codes`` is a 1-D uint8 array with all values in [0, 3]."""
    codes = np.asarray(codes)
    return (
        codes.ndim == 1
        and codes.dtype == np.uint8
        and (codes.size == 0 or int(codes.max(initial=0)) <= 3)
    )


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Reverse complement under the 2-bit code (A<->T, C<->G is ``3 - c``)."""
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    if codes.size and codes.max(initial=0) > 3:
        raise InvalidSequenceError(f"code array contains value {int(codes.max())} > 3")
    return (3 - codes[::-1]).astype(np.uint8)


def random_dna(length: int, *, seed: int | None = None, p=None) -> np.ndarray:
    """A uniform (or ``p``-weighted) random DNA code array of ``length``."""
    if length < 0:
        raise InvalidSequenceError(f"negative sequence length {length}")
    rng = np.random.default_rng(seed)
    return rng.choice(4, size=length, p=p).astype(np.uint8)
