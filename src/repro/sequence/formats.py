"""Interchange formats: MUMmer match lists and PAF alignment records.

Downstream tooling around the CPU baselines consumes two simple text
formats, both supported here so the library drops into existing pipelines:

- **MUMmer ``show-coords``-style match lines** — what ``mummer -maxmatch``
  prints and what this package's CLI emits: one ``r q length`` triple per
  line, 1-based, optionally grouped under ``> record`` headers.
- **PAF** (the minimap2 pairwise-alignment format) — 12 mandatory columns;
  we emit MEMs as exact-match records and
  :class:`~repro.align.anchored.AnchoredAlignment` objects with their
  CIGAR in the standard ``cg:Z:`` tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import InvalidSequenceError
from repro.types import MatchSet, triplets_from_tuples


# -- MUMmer-style triplet lines -------------------------------------------------

def write_mummer(matches, *, header: str | None = None) -> str:
    """Render matches as 1-based ``r q length`` lines (MUMmer convention)."""
    lines = []
    if header is not None:
        lines.append(f"> {header}")
    for r, q, length in matches:
        lines.append(f"{r + 1:>10} {q + 1:>10} {length:>10}")
    return "\n".join(lines) + ("\n" if lines else "")


def read_mummer(text: str) -> dict[str | None, MatchSet]:
    """Parse MUMmer-style output back into MatchSets, keyed by record header.

    Matches before any ``>`` header are keyed by ``None``.
    """
    sections: dict[str | None, list[tuple[int, int, int]]] = {}
    current: str | None = None
    sections[current] = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            current = line[1:].strip()
            sections.setdefault(current, [])
            continue
        parts = line.split()
        if len(parts) != 3:
            raise InvalidSequenceError(
                f"line {lineno}: expected 'r q length', got {raw!r}"
            )
        try:
            r, q, length = (int(p) for p in parts)
        except ValueError:
            raise InvalidSequenceError(
                f"line {lineno}: non-integer field in {raw!r}"
            ) from None
        if r < 1 or q < 1 or length < 1:
            raise InvalidSequenceError(
                f"line {lineno}: MUMmer coordinates are 1-based positive"
            )
        sections[current].append((r - 1, q - 1, length))
    return {
        key: MatchSet(triplets_from_tuples(vals))
        for key, vals in sections.items()
        if vals or key is None
    }


# -- PAF -------------------------------------------------------------------------

@dataclass(frozen=True)
class PafRecord:
    """One PAF line (mandatory columns + optional tags)."""

    query_name: str
    query_len: int
    query_start: int
    query_end: int
    strand: str
    target_name: str
    target_len: int
    target_start: int
    target_end: int
    n_match: int
    alignment_len: int
    mapq: int
    tags: tuple[str, ...] = ()

    def line(self) -> str:
        fields = [
            self.query_name, self.query_len, self.query_start, self.query_end,
            self.strand, self.target_name, self.target_len,
            self.target_start, self.target_end,
            self.n_match, self.alignment_len, self.mapq,
        ]
        return "\t".join(str(f) for f in fields + list(self.tags))


def mems_to_paf(
    mems,
    *,
    query_name: str,
    query_len: int,
    target_name: str,
    target_len: int,
    strand: str = "+",
) -> list[PafRecord]:
    """Each MEM as an exact-match PAF record (all columns consistent)."""
    if strand not in "+-":
        raise InvalidSequenceError(f"strand must be '+' or '-', got {strand!r}")
    out = []
    for r, q, length in mems:
        out.append(
            PafRecord(
                query_name=query_name,
                query_len=query_len,
                query_start=q,
                query_end=q + length,
                strand=strand,
                target_name=target_name,
                target_len=target_len,
                target_start=r,
                target_end=r + length,
                n_match=length,
                alignment_len=length,
                mapq=255,
                tags=("tp:A:P", "cg:Z:%dM" % length),
            )
        )
    return out


def alignment_to_paf(
    alignment,
    *,
    query_name: str,
    query_len: int,
    target_name: str,
    target_len: int,
) -> PafRecord:
    """An :class:`AnchoredAlignment` as one PAF record with its CIGAR tag."""
    cols = (
        alignment.n_match + alignment.n_mismatch
        + alignment.n_insert + alignment.n_delete
    )
    return PafRecord(
        query_name=query_name,
        query_len=query_len,
        query_start=alignment.q_start,
        query_end=alignment.q_end,
        strand="+",
        target_name=target_name,
        target_len=target_len,
        target_start=alignment.r_start,
        target_end=alignment.r_end,
        n_match=alignment.n_match,
        alignment_len=cols,
        mapq=60,
        tags=("tp:A:P", f"cg:Z:{alignment.cigar_string}"),
    )


def write_paf(records: Iterable[PafRecord]) -> str:
    return "".join(rec.line() + "\n" for rec in records)


def read_paf(text: str) -> list[PafRecord]:
    """Parse PAF lines (mandatory columns; extra columns kept as tags)."""
    out = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        if not raw.strip():
            continue
        parts = raw.split("\t")
        if len(parts) < 12:
            raise InvalidSequenceError(
                f"line {lineno}: PAF needs 12 columns, got {len(parts)}"
            )
        try:
            out.append(
                PafRecord(
                    query_name=parts[0],
                    query_len=int(parts[1]),
                    query_start=int(parts[2]),
                    query_end=int(parts[3]),
                    strand=parts[4],
                    target_name=parts[5],
                    target_len=int(parts[6]),
                    target_start=int(parts[7]),
                    target_end=int(parts[8]),
                    n_match=int(parts[9]),
                    alignment_len=int(parts[10]),
                    mapq=int(parts[11]),
                    tags=tuple(parts[12:]),
                )
            )
        except ValueError:
            raise InvalidSequenceError(
                f"line {lineno}: malformed PAF numeric field"
            ) from None
    return out
