"""2-bit packed sequence storage and vectorized k-mer extraction.

The paper stores sequences at 2 bits/base (§IV). :class:`PackedSequence`
provides that storage plus the two operations the matcher pipeline needs in
bulk:

- :func:`kmer_codes`: the integer value of the ``ℓs``-mer starting at every
  position, computed with a vectorized Horner scan (this is what both the
  index construction of Algorithm 1 and the per-thread query-seed lookups
  consume).
- :meth:`PackedSequence.limbs`: 32-base ``uint64`` windows used by the
  suffix-array baselines for fast batched suffix comparison.

For the process-sharded execution tier, :meth:`PackedSequence.to_shared` /
:meth:`PackedSequence.from_shared` move the packed buffer into a named
``multiprocessing.shared_memory`` segment: worker processes attach to the
2-bit genome *by name* (a :class:`SharedSequenceHandle` is a few strings)
instead of re-pickling megabytes of reference per task.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass

import numpy as np

from repro.analysis import resource_tracker as _res
from repro.errors import InvalidSequenceError
from repro.sequence.alphabet import decode, encode

#: Number of bases packed per uint64 limb (2 bits each).
BASES_PER_LIMB = 32


def _defuse_shared_memory(shm) -> None:
    """Make ``SharedMemory.__del__`` a no-op on a close that raced shutdown.

    When ``close()`` raises ``BufferError`` during interpreter
    finalization (an exported numpy view outlived teardown order), the
    destructor would re-raise the same error as an "Exception ignored"
    message. Blank the instance fields instead: the view's buffer chain
    keeps the mapping alive, and process exit unmaps it either way.
    """
    try:
        fd = shm._fd
        if fd >= 0:
            os.close(fd)
    except (AttributeError, OSError):  # pragma: no cover - exotic platforms
        pass
    try:
        shm._fd = -1
        shm._mmap = None
        shm._buf = None
    except AttributeError:  # pragma: no cover - stdlib layout change
        pass



@dataclass(frozen=True)
class SharedSequenceHandle:
    """Picklable pointer to a shared 2-bit packed sequence.

    Only plain strings and ints — shipping one across a process boundary
    costs a few bytes regardless of genome size. Attach with
    :meth:`PackedSequence.from_shared` (or :meth:`attach`).
    """

    #: ``multiprocessing.shared_memory`` segment name.
    shm_name: str
    #: Sequence length in bases (the packed buffer holds ``ceil(n/4)`` bytes).
    n_bases: int
    #: Optional human-readable sequence name (FASTA header etc.).
    name: str = ""

    def attach(self) -> "PackedSequence":
        """Attach to the segment (see :meth:`PackedSequence.from_shared`)."""
        return PackedSequence.from_shared(self)


def _untrack_shared_memory(shm) -> None:
    """Stop the resource tracker from reaping an attached segment.

    Before Python 3.13 (``track=False``), *attaching* also registers the
    segment with the attacher's resource tracker. For the process pools this
    repo spawns that is harmless — ``multiprocessing`` hands children the
    parent's tracker fd, so the registration is an idempotent set-add paired
    with the owner's eventual unlink, and unregistering here would delete the
    owner's entry out from under it. Only a *standalone* attacher (its own
    tracker, e.g. a separately launched process) must call this, or its
    tracker will unlink the owner's segment when the attacher exits.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - best effort across CPython versions
        pass


def pack_bits(codes: np.ndarray) -> np.ndarray:
    """Pack a 2-bit code array into a ``uint8`` buffer, 4 bases per byte.

    Base ``i`` occupies bits ``2*(i % 4) .. 2*(i % 4)+1`` of byte ``i // 4``
    (little-endian within the byte). The final partial byte is zero-padded.
    """
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    n = codes.size
    padded = np.zeros((n + 3) // 4 * 4, dtype=np.uint8)
    padded[:n] = codes
    quads = padded.reshape(-1, 4)
    return (
        quads[:, 0]
        | (quads[:, 1] << 2)
        | (quads[:, 2] << 4)
        | (quads[:, 3] << 6)
    ).astype(np.uint8)


def unpack_bits(buf: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: recover the first ``n`` base codes."""
    buf = np.asarray(buf, dtype=np.uint8)
    if n > buf.size * 4:
        raise InvalidSequenceError(f"cannot unpack {n} bases from {buf.size} bytes")
    out = np.empty(buf.size * 4, dtype=np.uint8)
    out[0::4] = buf & 0b11
    out[1::4] = (buf >> 2) & 0b11
    out[2::4] = (buf >> 4) & 0b11
    out[3::4] = (buf >> 6) & 0b11
    return out[:n]


def kmer_codes(codes: np.ndarray, k: int) -> np.ndarray:
    """Integer value of the ``k``-mer starting at each position.

    Returns an ``int64`` array of length ``len(codes) - k + 1`` where entry
    ``i`` is ``sum_j codes[i+j] * 4**(k-1-j)`` — i.e. the big-endian base-4
    value of ``codes[i:i+k]``, matching the seed integers of §III-A.

    Computed with a rolling update (one vectorized pass), so it costs
    ``O(n)`` regardless of ``k``.
    """
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    n = codes.size
    if k <= 0:
        raise InvalidSequenceError(f"k-mer length must be positive, got {k}")
    if k > 31:
        raise InvalidSequenceError(f"k-mer length {k} exceeds int64 capacity (31)")
    if n < k:
        return np.empty(0, dtype=np.int64)
    c = codes.astype(np.int64)
    # Horner for the first window, then roll: out[i+1] = (out[i] - c[i]*4^(k-1))*4 + c[i+k]
    # Vectorized equivalent: cumulative weighted sum differences.
    weights = 4 ** np.arange(k - 1, -1, -1, dtype=np.int64)
    # Sliding dot product via cumsum of c * 4^{-(i)} would lose precision;
    # use stride tricks instead: for k <= 31 and n up to tens of millions the
    # windowed matmul is memory-light because sliding_window_view is a view.
    windows = np.lib.stride_tricks.sliding_window_view(c, k)
    return windows @ weights


class PackedSequence:
    """A DNA sequence stored at 2 bits per base.

    Construction accepts a string, bytes, or a code array. The unpacked code
    array is materialized lazily and cached, because the matcher pipeline
    works on codes while memory accounting (the GPU device budget) is charged
    for the packed representation only — exactly the paper's setting.
    """

    __slots__ = ("_packed", "_n", "_codes", "name", "_shm", "_shm_owner")

    def __init__(self, seq, *, name: str = ""):
        codes = encode(seq) if not isinstance(seq, PackedSequence) else seq.codes()
        self._n = int(codes.size)
        self._packed = pack_bits(codes)
        self._codes: np.ndarray | None = np.ascontiguousarray(codes, dtype=np.uint8)
        self.name = name
        #: Live ``SharedMemory`` object when this sequence owns or is
        #: attached to a shared segment (see :meth:`to_shared`).
        self._shm = None
        self._shm_owner = False

    @classmethod
    def from_packed(cls, packed: np.ndarray, n: int, *, name: str = "") -> "PackedSequence":
        """Wrap an already 2-bit packed buffer without re-encoding.

        ``packed`` must follow the :func:`pack_bits` layout (4 bases/byte,
        zero-padded final byte); ``n`` is the base count. The buffer is
        referenced, not copied — this is the zero-copy attach path.
        """
        packed = np.asarray(packed, dtype=np.uint8)
        if n > packed.size * 4 or n < 0:
            raise InvalidSequenceError(
                f"cannot view {n} bases over {packed.size} packed bytes"
            )
        seq = cls.__new__(cls)
        seq._n = int(n)
        seq._packed = packed
        seq._codes = None
        seq.name = name
        seq._shm = None
        seq._shm_owner = False
        return seq

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __getitem__(self, item):
        if isinstance(item, slice):
            return PackedSequence(self.codes()[item], name=self.name)
        return int(self.codes()[item])

    def __eq__(self, other) -> bool:
        if isinstance(other, PackedSequence):
            return self._n == other._n and np.array_equal(self.codes(), other.codes())
        return NotImplemented

    def __hash__(self):  # pragma: no cover
        raise TypeError("PackedSequence is unhashable")

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"PackedSequence(n={self._n}{label})"

    # -- views --------------------------------------------------------------------
    def codes(self) -> np.ndarray:
        """The unpacked ``uint8`` code array (cached)."""
        if self._codes is None:
            self._codes = unpack_bits(self._packed, self._n)
        return self._codes

    def drop_code_cache(self) -> None:
        """Release the unpacked cache (keeps only the 2-bit buffer)."""
        self._codes = None

    @property
    def packed(self) -> np.ndarray:
        """The raw packed ``uint8`` buffer (4 bases/byte)."""
        return self._packed

    @property
    def nbytes_packed(self) -> int:
        """Memory footprint of the packed representation, in bytes."""
        return int(self._packed.nbytes)

    def to_string(self) -> str:
        """Decode back to an ``ACGT`` string."""
        return decode(self.codes())

    # -- shared memory ------------------------------------------------------------
    def to_shared(self, *, shm_name: str | None = None) -> SharedSequenceHandle:
        """Publish the packed buffer into a named shared-memory segment.

        Creates (or reuses, on repeat calls) a ``multiprocessing.shared_memory``
        segment holding the 2-bit buffer and returns a picklable
        :class:`SharedSequenceHandle`. The owning sequence keeps the segment
        alive; call :meth:`unlink_shared` to destroy it when all workers have
        detached.
        """
        if self._shm is not None:
            return SharedSequenceHandle(
                shm_name=self._shm.name, n_bases=self._n, name=self.name
            )
        from multiprocessing import shared_memory

        nbytes = max(1, self._packed.nbytes)  # zero-size segments are illegal
        shm = shared_memory.SharedMemory(create=True, size=nbytes, name=shm_name)
        try:
            view = np.frombuffer(shm.buf, dtype=np.uint8, count=self._packed.size)
            view[:] = self._packed
            del view  # release the exported buffer before anyone can close()
        except BaseException:
            # The segment exists in the kernel the moment create=True
            # returns: a failed copy must tear it down or it outlives the
            # process (RL101 — the exact leak this guards against).
            shm.close()
            shm.unlink()
            raise
        self._shm = shm
        self._shm_owner = True
        _res.shm_created(shm.name, nbytes)
        return SharedSequenceHandle(shm_name=shm.name, n_bases=self._n, name=self.name)

    @classmethod
    def from_shared(cls, handle: SharedSequenceHandle) -> "PackedSequence":
        """Attach to a segment published by :meth:`to_shared` (zero-copy).

        The returned sequence's packed buffer is a view over the shared
        segment: no bytes of reference are copied into this process. Call
        :meth:`close_shared` to detach (the owner's segment survives).
        """
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=handle.shm_name, track=False)
        except TypeError:  # Python < 3.13: no track kwarg
            # Registration with the (inherited, shared) tracker is an
            # idempotent no-op here; see _untrack_shared_memory for when an
            # attacher must actively untrack.
            shm = shared_memory.SharedMemory(name=handle.shm_name)
        packed_len = (handle.n_bases + 3) // 4
        packed = np.frombuffer(shm.buf, dtype=np.uint8, count=packed_len)
        seq = cls.from_packed(packed, handle.n_bases, name=handle.name)
        seq._shm = shm
        seq._shm_owner = False
        _res.shm_attached(shm.name)
        return seq

    def close_shared(self, *, materialize: bool = True) -> None:
        """Detach from the shared segment.

        ``shm.close()`` raises ``BufferError`` while numpy views over
        ``shm.buf`` are alive, so the packed buffer is first materialized
        into private memory (keeping the sequence usable). Pass
        ``materialize=False`` for teardown-only detaches — the packed
        buffer is dropped instead of copied and only an already-unpacked
        code cache stays usable. Idempotent; a no-op when not shared, and
        safe to call from finalizers during interpreter shutdown: if
        teardown order left an exported view alive, the mapping is left
        for the OS to reclaim instead of raising ``BufferError`` out of
        ``__del__``/``atexit`` machinery.
        """
        shm = self._shm
        if shm is None:
            return
        if materialize:
            self._packed = np.array(self._packed, dtype=np.uint8, copy=True)
        else:
            self._packed = np.empty(0, dtype=np.uint8)
        owner = self._shm_owner
        self._shm = None
        self._shm_owner = False
        try:
            shm.close()
        except BufferError:
            if not sys.is_finalizing():
                # A caller still holds a view of the *old* packed buffer:
                # restore state so a later retry (after the view dies) works.
                self._shm = shm
                self._shm_owner = owner
                raise
            _defuse_shared_memory(shm)
            return  # shutdown: process exit unmaps everything anyway
        _res.shm_closed(shm.name, owner=owner)

    def unlink_shared(self) -> None:
        """Destroy the shared segment (owner teardown): detach then unlink.

        Tolerates the name being gone already: a *crashed* attacher's
        ``multiprocessing`` resource tracker (which registers attachments
        before Python 3.13's ``track=False``) may reap the segment when
        the attacher dies between attach and detach. The owner's teardown
        must still succeed — the goal state (no segment) is reached either
        way.
        """
        if self._shm is None:
            return
        shm = self._shm
        self.close_shared()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        _res.shm_unlinked(shm.name)

    # -- pickling -----------------------------------------------------------------
    def __getstate__(self):
        # Self-contained: ship packed bytes, never the SharedMemory object
        # (unpicklable) nor a live buffer view over it.
        return {
            "packed": np.array(self._packed, dtype=np.uint8, copy=True).tobytes(),
            "n": self._n,
            "name": self.name,
        }

    def __setstate__(self, state):
        self._n = int(state["n"])
        self._packed = np.frombuffer(state["packed"], dtype=np.uint8).copy()
        self._codes = None
        self.name = state["name"]
        self._shm = None
        self._shm_owner = False

    # -- bulk extraction ----------------------------------------------------------
    def kmers(self, k: int) -> np.ndarray:
        """Integer seed values at every start position (see :func:`kmer_codes`)."""
        return kmer_codes(self.codes(), k)

    def limbs(self, positions: np.ndarray, n_limbs: int) -> np.ndarray:
        """``uint64`` big-endian 32-base windows for batched comparison.

        ``out[i, j]`` packs bases ``positions[i] + 32*j .. + 32*(j+1) - 1``;
        windows running past the end are zero-padded, and comparisons remain
        correct for suffix *ordering* as long as ties are broken by suffix
        length (shorter suffix is smaller), which callers must handle.
        """
        positions = np.asarray(positions, dtype=np.int64)
        codes = self.codes()
        padded = np.zeros(self._n + n_limbs * BASES_PER_LIMB, dtype=np.uint64)
        padded[: self._n] = codes
        out = np.zeros((positions.size, n_limbs), dtype=np.uint64)
        shifts = np.arange(BASES_PER_LIMB - 1, -1, -1, dtype=np.uint64) * np.uint64(2)
        for j in range(n_limbs):
            base = positions + j * BASES_PER_LIMB
            window = padded[base[:, None] + np.arange(BASES_PER_LIMB)]
            out[:, j] = (window << shifts).sum(axis=1, dtype=np.uint64)
        return out
