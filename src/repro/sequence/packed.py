"""2-bit packed sequence storage and vectorized k-mer extraction.

The paper stores sequences at 2 bits/base (§IV). :class:`PackedSequence`
provides that storage plus the two operations the matcher pipeline needs in
bulk:

- :func:`kmer_codes`: the integer value of the ``ℓs``-mer starting at every
  position, computed with a vectorized Horner scan (this is what both the
  index construction of Algorithm 1 and the per-thread query-seed lookups
  consume).
- :meth:`PackedSequence.limbs`: 32-base ``uint64`` windows used by the
  suffix-array baselines for fast batched suffix comparison.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidSequenceError
from repro.sequence.alphabet import decode, encode

#: Number of bases packed per uint64 limb (2 bits each).
BASES_PER_LIMB = 32


def pack_bits(codes: np.ndarray) -> np.ndarray:
    """Pack a 2-bit code array into a ``uint8`` buffer, 4 bases per byte.

    Base ``i`` occupies bits ``2*(i % 4) .. 2*(i % 4)+1`` of byte ``i // 4``
    (little-endian within the byte). The final partial byte is zero-padded.
    """
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    n = codes.size
    padded = np.zeros((n + 3) // 4 * 4, dtype=np.uint8)
    padded[:n] = codes
    quads = padded.reshape(-1, 4)
    return (
        quads[:, 0]
        | (quads[:, 1] << 2)
        | (quads[:, 2] << 4)
        | (quads[:, 3] << 6)
    ).astype(np.uint8)


def unpack_bits(buf: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: recover the first ``n`` base codes."""
    buf = np.asarray(buf, dtype=np.uint8)
    if n > buf.size * 4:
        raise InvalidSequenceError(f"cannot unpack {n} bases from {buf.size} bytes")
    out = np.empty(buf.size * 4, dtype=np.uint8)
    out[0::4] = buf & 0b11
    out[1::4] = (buf >> 2) & 0b11
    out[2::4] = (buf >> 4) & 0b11
    out[3::4] = (buf >> 6) & 0b11
    return out[:n]


def kmer_codes(codes: np.ndarray, k: int) -> np.ndarray:
    """Integer value of the ``k``-mer starting at each position.

    Returns an ``int64`` array of length ``len(codes) - k + 1`` where entry
    ``i`` is ``sum_j codes[i+j] * 4**(k-1-j)`` — i.e. the big-endian base-4
    value of ``codes[i:i+k]``, matching the seed integers of §III-A.

    Computed with a rolling update (one vectorized pass), so it costs
    ``O(n)`` regardless of ``k``.
    """
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    n = codes.size
    if k <= 0:
        raise InvalidSequenceError(f"k-mer length must be positive, got {k}")
    if k > 31:
        raise InvalidSequenceError(f"k-mer length {k} exceeds int64 capacity (31)")
    if n < k:
        return np.empty(0, dtype=np.int64)
    c = codes.astype(np.int64)
    # Horner for the first window, then roll: out[i+1] = (out[i] - c[i]*4^(k-1))*4 + c[i+k]
    # Vectorized equivalent: cumulative weighted sum differences.
    weights = 4 ** np.arange(k - 1, -1, -1, dtype=np.int64)
    # Sliding dot product via cumsum of c * 4^{-(i)} would lose precision;
    # use stride tricks instead: for k <= 31 and n up to tens of millions the
    # windowed matmul is memory-light because sliding_window_view is a view.
    windows = np.lib.stride_tricks.sliding_window_view(c, k)
    return windows @ weights


class PackedSequence:
    """A DNA sequence stored at 2 bits per base.

    Construction accepts a string, bytes, or a code array. The unpacked code
    array is materialized lazily and cached, because the matcher pipeline
    works on codes while memory accounting (the GPU device budget) is charged
    for the packed representation only — exactly the paper's setting.
    """

    __slots__ = ("_packed", "_n", "_codes", "name")

    def __init__(self, seq, *, name: str = ""):
        codes = encode(seq) if not isinstance(seq, PackedSequence) else seq.codes()
        self._n = int(codes.size)
        self._packed = pack_bits(codes)
        self._codes: np.ndarray | None = np.ascontiguousarray(codes, dtype=np.uint8)
        self.name = name

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __getitem__(self, item):
        if isinstance(item, slice):
            return PackedSequence(self.codes()[item], name=self.name)
        return int(self.codes()[item])

    def __eq__(self, other) -> bool:
        if isinstance(other, PackedSequence):
            return self._n == other._n and np.array_equal(self.codes(), other.codes())
        return NotImplemented

    def __hash__(self):  # pragma: no cover
        raise TypeError("PackedSequence is unhashable")

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"PackedSequence(n={self._n}{label})"

    # -- views --------------------------------------------------------------------
    def codes(self) -> np.ndarray:
        """The unpacked ``uint8`` code array (cached)."""
        if self._codes is None:
            self._codes = unpack_bits(self._packed, self._n)
        return self._codes

    def drop_code_cache(self) -> None:
        """Release the unpacked cache (keeps only the 2-bit buffer)."""
        self._codes = None

    @property
    def packed(self) -> np.ndarray:
        """The raw packed ``uint8`` buffer (4 bases/byte)."""
        return self._packed

    @property
    def nbytes_packed(self) -> int:
        """Memory footprint of the packed representation, in bytes."""
        return int(self._packed.nbytes)

    def to_string(self) -> str:
        """Decode back to an ``ACGT`` string."""
        return decode(self.codes())

    # -- bulk extraction ----------------------------------------------------------
    def kmers(self, k: int) -> np.ndarray:
        """Integer seed values at every start position (see :func:`kmer_codes`)."""
        return kmer_codes(self.codes(), k)

    def limbs(self, positions: np.ndarray, n_limbs: int) -> np.ndarray:
        """``uint64`` big-endian 32-base windows for batched comparison.

        ``out[i, j]`` packs bases ``positions[i] + 32*j .. + 32*(j+1) - 1``;
        windows running past the end are zero-padded, and comparisons remain
        correct for suffix *ordering* as long as ties are broken by suffix
        length (shorter suffix is smaller), which callers must handle.
        """
        positions = np.asarray(positions, dtype=np.int64)
        codes = self.codes()
        padded = np.zeros(self._n + n_limbs * BASES_PER_LIMB, dtype=np.uint64)
        padded[: self._n] = codes
        out = np.zeros((positions.size, n_limbs), dtype=np.uint64)
        shifts = np.arange(BASES_PER_LIMB - 1, -1, -1, dtype=np.uint64) * np.uint64(2)
        for j in range(n_limbs):
            base = positions + j * BASES_PER_LIMB
            window = padded[base[:, None] + np.arange(BASES_PER_LIMB)]
            out[:, j] = (window << shifts).sum(axis=1, dtype=np.uint64)
        return out
