"""Named datasets mirroring the paper's Table II, at 1:100 scale.

The paper's eight sequences (chr2h, chrI, chr1m, chrXh, chrXc,
dmelanogaster, EcoliK12, chrXII) are reproduced as synthetic chromosomes
whose lengths keep the published ratios at 1:100 scale (DESIGN.md §2
documents the substitution). The nine (reference, query, L) experiment rows
of Tables III/IV are captured as :data:`EXPERIMENT_CONFIGS`.

Pairs used together in the paper are generated *jointly*: the query is
derived from the reference with a pair-specific homology recipe so that the
amount of shared exact sequence mimics the biological relationship
(human/chimp X ≫ human/mouse ≫ fly/E. coli).

All generation is deterministic and memoized in-process.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from repro.errors import GpuMemError
from repro.sequence.synthetic import SyntheticGenomeSpec, plant_homology

#: Global scale factor versus the paper's Table II (Mbp -> Mbp/100).
SCALE = 100


@dataclass(frozen=True)
class DatasetSpec:
    """A named synthetic chromosome (one Table II row)."""

    name: str
    paper_length_mbp: float
    description: str
    genome: SyntheticGenomeSpec

    @property
    def length(self) -> int:
        return self.genome.length


def _spec(name, paper_mbp, description, seed, **kwargs) -> DatasetSpec:
    length = int(round(paper_mbp * 1_000_000 / SCALE))
    return DatasetSpec(
        name=name,
        paper_length_mbp=paper_mbp,
        description=description,
        genome=SyntheticGenomeSpec(length=length, seed=seed, **kwargs),
    )


#: Table II analogues. Repeat parameters differ per clade: mammalian
#: chromosomes are repeat-rich (interspersed ALU/LINE-style families with
#: thousands of copies — what gives the paper's Fig. 6 its heavy tail),
#: invertebrate chromosomes moderately so, bacterial genomes nearly
#: repeat-free.
DATASETS: dict[str, DatasetSpec] = {
    d.name: d
    for d in [
        _spec(
            "chr2h", 242.97, "Human chromosome 2 (synthetic analogue)", 1001,
            repeat_kwargs=dict(n_families=7, family_length=(100, 350),
                               copies_per_family=(300, 3000), copy_divergence=0.02),
        ),
        _spec(
            "chrI", 233.10, "S. cerevisiae chrI (synthetic analogue)", 1002,
            repeat_kwargs=dict(n_families=4, copies_per_family=(20, 150)),
        ),
        _spec(
            "chr1m", 195.75, "Mouse chromosome 1 (synthetic analogue)", 1003,
            repeat_kwargs=dict(n_families=7, family_length=(100, 350),
                               copies_per_family=(300, 3000), copy_divergence=0.02),
        ),
        _spec(
            "chrXh", 154.12, "Human chromosome X (synthetic analogue)", 1004,
            repeat_kwargs=dict(n_families=7, family_length=(100, 350),
                               copies_per_family=(200, 2000), copy_divergence=0.02),
        ),
        _spec(
            "chrXc", 133.55, "Chimpanzee chromosome X (synthetic analogue)", 1005,
            repeat_kwargs=dict(n_families=7, family_length=(100, 350),
                               copies_per_family=(200, 2000), copy_divergence=0.02),
        ),
        _spec(
            "dmelanogaster", 23.30, "D. melanogaster chr. 2L (synthetic analogue)", 1006,
            repeat_kwargs=dict(n_families=5, copies_per_family=(30, 250)),
        ),
        _spec(
            "EcoliK12", 4.71, "E. coli K12 chromosome (synthetic analogue)", 1007,
            repeat_kwargs=dict(n_families=2, copies_per_family=(2, 8)),
        ),
        _spec(
            "chrXII", 1.09, "S. cerevisiae chrXII (synthetic analogue)", 1008,
            repeat_kwargs=dict(n_families=3, copies_per_family=(5, 30)),
        ),
    ]
}


@dataclass(frozen=True)
class PairRecipe:
    """How a query dataset is derived from a reference dataset."""

    coverage: float
    divergence: float
    segment_length: tuple[int, int] = (500, 5000)
    indel_rate: float = 0.0005


#: Homology recipes for the (reference, query) pairs of Tables III/IV.
#: Keyed by (reference name, query name).
PAIR_RECIPES: dict[tuple[str, str], PairRecipe] = {
    # mouse chr1 vs human chr2: conserved segments at ~15% divergence
    ("chr1m", "chr2h"): PairRecipe(coverage=0.45, divergence=0.012,
                                   segment_length=(800, 8000)),
    # chimp X vs human X: highly similar, long conserved runs
    ("chrXc", "chrXh"): PairRecipe(coverage=0.80, divergence=0.006,
                                   segment_length=(2000, 20000)),
    # fly vs E. coli: essentially unrelated; tiny shared content
    ("dmelanogaster", "EcoliK12"): PairRecipe(coverage=0.02, divergence=0.05,
                                              segment_length=(100, 400)),
    # two yeast chromosomes: moderate homology
    ("chrXII", "chrI"): PairRecipe(coverage=0.30, divergence=0.02,
                                   segment_length=(300, 3000)),
}


@dataclass(frozen=True)
class ExperimentConfig:
    """One row of Tables III/IV: a (reference, query, L) configuration."""

    reference: str
    query: str
    min_length: int
    seed_length: int

    @property
    def key(self) -> str:
        return f"{self.reference}/{self.query}/L{self.min_length}"


#: The paper's nine experiment rows. Seed length ℓs is 10 except the last
#: row where it must be <= L = 10 (the paper makes the same adjustment,
#: dropping from 13 to 10; at 1:100 scale our default budget is ℓs = 10, and
#: the L = 10 row uses ℓs = 8).
EXPERIMENT_CONFIGS: list[ExperimentConfig] = [
    ExperimentConfig("chr1m", "chr2h", 100, 10),
    ExperimentConfig("chr1m", "chr2h", 50, 10),
    ExperimentConfig("chr1m", "chr2h", 30, 10),
    ExperimentConfig("chrXc", "chrXh", 50, 10),
    ExperimentConfig("chrXc", "chrXh", 30, 10),
    ExperimentConfig("dmelanogaster", "EcoliK12", 20, 10),
    ExperimentConfig("dmelanogaster", "EcoliK12", 15, 10),
    ExperimentConfig("chrXII", "chrI", 20, 10),
    ExperimentConfig("chrXII", "chrI", 10, 8),
]


@functools.lru_cache(maxsize=16)
def load_dataset(name: str) -> np.ndarray:
    """Generate (and memoize) the named standalone dataset's code array."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise GpuMemError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    return spec.genome.generate()


@functools.lru_cache(maxsize=16)
def _load_pair(ref_name: str, query_name: str) -> tuple[np.ndarray, np.ndarray]:
    ref = load_dataset(ref_name)
    qspec = DATASETS[query_name]
    recipe = PAIR_RECIPES.get((ref_name, query_name))
    if recipe is None:
        raise GpuMemError(
            f"no homology recipe for pair ({ref_name}, {query_name}); "
            f"known pairs: {sorted(PAIR_RECIPES)}"
        )
    qry = plant_homology(
        ref,
        qspec.length,
        seed=qspec.genome.seed * 7 + 13,
        coverage=recipe.coverage,
        divergence=recipe.divergence,
        segment_length=recipe.segment_length,
        indel_rate=recipe.indel_rate,
    )
    return ref, qry


def load_experiment(config: ExperimentConfig) -> tuple[np.ndarray, np.ndarray]:
    """Reference and query code arrays for one experiment configuration.

    The returned arrays are memoized per pair — the three L values for
    chr1m/chr2h share identical sequences, exactly as in the paper.
    """
    return _load_pair(config.reference, config.query)
