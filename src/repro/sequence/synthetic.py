"""Synthetic genome generation.

The paper evaluates on real chromosomes (Table II). We cannot ship those, so
this module builds synthetic stand-ins that preserve the three properties the
GPUMEM evaluation actually depends on:

1. **Length** — controlled exactly (datasets.py keeps the paper's length
   ratios at 1:100 scale).
2. **Homology structure** — the number and length distribution of exact
   matches between a (reference, query) pair is controlled by planting
   diverged segmental copies (:func:`plant_homology`), the synthetic analogue
   of evolutionary conservation between e.g. mouse chr1 and human chr2.
3. **Seed-occurrence skew** — the heavy-tailed "some seeds occur thousands of
   times" distribution (paper Fig. 6) that motivates the load-balancing
   heuristic, obtained by planting repeat families
   (:func:`plant_repeats`) and by locally-correlated base composition
   (:func:`markov_dna`).

All generation is vectorized and deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidSequenceError
from repro.sequence.alphabet import random_dna


def markov_dna(
    length: int,
    *,
    seed: int | None = None,
    composition=(0.30, 0.20, 0.20, 0.30),
    self_transition: float = 0.35,
) -> np.ndarray:
    """Locally-correlated DNA via a run-length Markov formulation.

    Emits runs of identical letters whose lengths are geometric with
    continuation probability ``self_transition`` and whose letters are drawn
    from ``composition``. This is the run-length formulation of a first-order
    Markov chain whose self-transition probability is ``self_transition`` and
    whose off-diagonal transitions are proportional to the target
    composition — it produces the homopolymer runs and composition bias of
    real chromosomes while staying fully vectorized.
    """
    if length < 0:
        raise InvalidSequenceError(f"negative length {length}")
    if not 0.0 <= self_transition < 1.0:
        raise InvalidSequenceError(
            f"self_transition must be in [0, 1), got {self_transition}"
        )
    if length == 0:
        return np.empty(0, dtype=np.uint8)
    rng = np.random.default_rng(seed)
    comp = np.asarray(composition, dtype=np.float64)
    if comp.shape != (4,) or not np.isclose(comp.sum(), 1.0):
        raise InvalidSequenceError("composition must be 4 probabilities summing to 1")
    # Expected run length is 1/(1-s); oversample runs, then trim.
    mean_run = 1.0 / (1.0 - self_transition)
    n_runs = int(length / mean_run * 1.3) + 16
    out_parts = []
    produced = 0
    while produced < length:
        letters = rng.choice(4, size=n_runs, p=comp).astype(np.uint8)
        runs = rng.geometric(1.0 - self_transition, size=n_runs)
        seqs = np.repeat(letters, runs)
        out_parts.append(seqs)
        produced += seqs.size
    return np.concatenate(out_parts)[:length]


def mutate(
    codes: np.ndarray,
    *,
    rate: float,
    seed: int | None = None,
    indel_rate: float = 0.0,
    max_indel: int = 3,
) -> np.ndarray:
    """Apply point substitutions (and optionally short indels) to a sequence.

    Substitutions always change the base (drawn uniformly from the other
    three letters), so ``rate`` is the true per-base divergence. Indels are
    applied after substitutions; each indel site deletes or inserts
    ``1..max_indel`` bases with equal probability.
    """
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    if not 0.0 <= rate <= 1.0:
        raise InvalidSequenceError(f"mutation rate must be in [0, 1], got {rate}")
    if not 0.0 <= indel_rate <= 1.0:
        raise InvalidSequenceError(f"indel rate must be in [0, 1], got {indel_rate}")
    rng = np.random.default_rng(seed)
    out = codes.copy()
    n = out.size
    if n == 0:
        return out
    if rate > 0.0:
        hits = np.nonzero(rng.random(n) < rate)[0]
        # add 1..3 (mod 4) to guarantee a *different* base
        out[hits] = (out[hits] + rng.integers(1, 4, size=hits.size)) % 4
    if indel_rate > 0.0:
        sites = np.nonzero(rng.random(n) < indel_rate)[0]
        if sites.size:
            pieces = []
            prev = 0
            for s in sites:
                pieces.append(out[prev:s])
                size = int(rng.integers(1, max_indel + 1))
                if rng.random() < 0.5:  # deletion
                    prev = min(n, s + size)
                else:  # insertion
                    pieces.append(random_dna(size, seed=int(rng.integers(2**31))))
                    prev = s
            pieces.append(out[prev:])
            out = np.concatenate(pieces).astype(np.uint8)
    return out


def plant_repeats(
    codes: np.ndarray,
    *,
    seed: int | None = None,
    n_families: int = 6,
    family_length: tuple[int, int] = (80, 400),
    copies_per_family: tuple[int, int] = (10, 200),
    copy_divergence: float = 0.03,
) -> np.ndarray:
    """Overwrite random positions with diverged copies of repeat consensi.

    This is what creates the heavy-tailed seed-occurrence distribution of the
    paper's Fig. 6: seeds inside an abundant repeat family occur at hundreds
    of reference locations while most seeds occur once.
    """
    out = np.ascontiguousarray(codes, dtype=np.uint8).copy()
    n = out.size
    rng = np.random.default_rng(seed)
    for _fam in range(n_families):
        flen = int(rng.integers(family_length[0], family_length[1] + 1))
        if flen >= n:
            continue
        consensus = random_dna(flen, seed=int(rng.integers(2**31)))
        n_copies = int(rng.integers(copies_per_family[0], copies_per_family[1] + 1))
        starts = rng.integers(0, n - flen, size=n_copies)
        for s in starts:
            copy = mutate(
                consensus, rate=copy_divergence, seed=int(rng.integers(2**31))
            )[:flen]
            out[s : s + copy.size] = copy
    return out


def plant_homology(
    reference: np.ndarray,
    query_length: int,
    *,
    seed: int | None = None,
    coverage: float = 0.5,
    segment_length: tuple[int, int] = (500, 5000),
    divergence: float = 0.05,
    indel_rate: float = 0.0005,
) -> np.ndarray:
    """Build a query sharing diverged segments with ``reference``.

    Roughly ``coverage`` of the query is made of mutated copies of random
    reference segments (possibly reverse order of placement, as in real
    rearrangements); the remainder is novel sequence with the same local
    statistics. The exact-match length distribution between the pair is then
    governed by ``divergence``: expected exact-match length between
    homologous segments is ~``1/divergence`` bases.
    """
    reference = np.ascontiguousarray(reference, dtype=np.uint8)
    if query_length < 0:
        raise InvalidSequenceError(f"negative query length {query_length}")
    if not 0.0 <= coverage <= 1.0:
        raise InvalidSequenceError(f"coverage must be in [0, 1], got {coverage}")
    rng = np.random.default_rng(seed)
    n_ref = reference.size
    pieces: list[np.ndarray] = []
    produced = 0
    while produced < query_length:
        want_homolog = rng.random() < coverage and n_ref > segment_length[0]
        seg_len = int(rng.integers(segment_length[0], segment_length[1] + 1))
        seg_len = min(seg_len, query_length - produced + segment_length[0])
        if want_homolog:
            start = int(rng.integers(0, max(1, n_ref - seg_len)))
            seg = reference[start : start + seg_len]
            seg = mutate(
                seg,
                rate=divergence,
                indel_rate=indel_rate,
                seed=int(rng.integers(2**31)),
            )
        else:
            seg = markov_dna(seg_len, seed=int(rng.integers(2**31)))
        pieces.append(seg)
        produced += seg.size
    if not pieces:
        return np.empty(0, dtype=np.uint8)
    return np.concatenate(pieces)[:query_length].astype(np.uint8)


@dataclass(frozen=True)
class SyntheticGenomeSpec:
    """Recipe for one synthetic chromosome.

    ``repeat_kwargs`` feed :func:`plant_repeats`; ``markov_kwargs`` feed
    :func:`markov_dna`. Generation is deterministic in ``seed``.
    """

    length: int
    seed: int
    markov_kwargs: dict = field(default_factory=dict)
    repeat_kwargs: dict = field(default_factory=dict)

    def generate(self) -> np.ndarray:
        base = markov_dna(self.length, seed=self.seed, **self.markov_kwargs)
        return plant_repeats(base, seed=self.seed + 1, **self.repeat_kwargs)


def synthesize_pair(
    ref_spec: SyntheticGenomeSpec,
    query_length: int,
    *,
    seed: int,
    **homology_kwargs,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a (reference, query) pair with planted homology."""
    ref = ref_spec.generate()
    qry = plant_homology(ref, query_length, seed=seed, **homology_kwargs)
    return ref, qry
