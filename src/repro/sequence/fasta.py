"""Minimal FASTA reader/writer.

The paper's tools consume chromosome FASTA files. Real chromosome files
contain runs of ``N`` (unsequenced gaps); MEM tools conventionally treat a
position containing ``N`` as matching nothing. Since our alphabet is strictly
``ACGT``, :func:`read_fasta` offers three policies for non-ACGT letters:

- ``"error"``  — raise (default; safest for synthetic data round trips),
- ``"skip"``   — drop those positions (shifts coordinates; recorded in the
  returned record's ``dropped`` count),
- ``"random"`` — replace with deterministic pseudo-random bases (keeps
  coordinates; introduces no long spurious matches because the replacement
  is i.i.d. uniform).

Files may use Unix, Windows (CRLF) or old-Mac (CR) line endings, and paths
may point at gzip-compressed FASTA — detected by the ``\\x1f\\x8b`` magic
bytes, not the file extension.
"""

from __future__ import annotations

import gzip
import os
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidSequenceError
from repro.sequence.alphabet import decode, encode

_VALID = set(b"ACGTacgt")


@dataclass
class FastaRecord:
    """One FASTA record: header (without ``>``), encoded codes, N policy info."""

    header: str
    codes: np.ndarray
    dropped: int = 0

    def __len__(self) -> int:
        return int(self.codes.size)


def _resolve_invalid(raw: bytes, policy: str, seed: int) -> tuple[np.ndarray, int]:
    arr = np.frombuffer(raw, dtype=np.uint8)
    valid_mask = np.isin(arr, np.frombuffer(b"ACGTacgt", dtype=np.uint8))
    n_bad = int((~valid_mask).sum())
    if n_bad == 0:
        return encode(raw), 0
    if policy == "error":
        bad_pos = int(np.argmax(~valid_mask))
        raise InvalidSequenceError(
            f"non-ACGT letter {chr(int(arr[bad_pos]))!r} at position {bad_pos} "
            f"(pass invalid='skip' or invalid='random' to read_fasta)"
        )
    if policy == "skip":
        return encode(arr[valid_mask].tobytes()), n_bad
    if policy == "random":
        rng = np.random.default_rng(seed)
        keep = arr.copy()
        keep[~valid_mask] = np.frombuffer(b"ACGT", dtype=np.uint8)[
            rng.integers(0, 4, size=n_bad)
        ]
        return encode(keep.tobytes()), n_bad
    raise ValueError(f"unknown invalid-letter policy {policy!r}")


def iter_fasta(path_or_file, *, invalid: str = "error", seed: int = 0):
    """Stream a FASTA file one :class:`FastaRecord` at a time.

    Unlike :func:`read_fasta` this is a generator that holds at most one
    record's sequence in memory, so a many-million-read file can feed a
    :class:`repro.core.batch.BatchRunner` without ever materializing.
    ``path_or_file`` may be a filesystem path (gzip auto-detected by magic
    bytes) or a text/bytes file object; CRLF and lone-CR line endings are
    normalized; ``invalid`` selects the non-ACGT policy (see module
    docstring).
    """
    if invalid not in ("error", "skip", "random"):
        raise ValueError(f"unknown invalid-letter policy {invalid!r}")
    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, "rb") as fh:
            # gzip auto-detect by magic, not extension: compressed read
            # sets are routinely named plain ".fa" by upstream pipelines.
            if fh.read(2) == b"\x1f\x8b":
                fh.seek(0)
                with gzip.open(fh) as gz:
                    yield from iter_fasta(gz, invalid=invalid, seed=seed)
            else:
                fh.seek(0)
                yield from iter_fasta(fh, invalid=invalid, seed=seed)
        return
    header: str | None = None
    chunks: list[bytes] = []
    n_records = 0

    def flush() -> FastaRecord | None:
        if header is None:
            if chunks and b"".join(chunks).strip():
                raise InvalidSequenceError("sequence data before any FASTA header")
            return None
        codes, dropped = _resolve_invalid(b"".join(chunks), invalid, seed + n_records)
        return FastaRecord(header=header, codes=codes, dropped=dropped)

    for raw in path_or_file:
        if isinstance(raw, str):
            raw = raw.encode("ascii")
        # Normalize line endings: CRLF lines lose their \r to strip();
        # lone-CR (old-Mac) files arrive as one physical line, so every
        # \r is additionally treated as a line break of its own.
        for line in raw.split(b"\r") if b"\r" in raw else (raw,):
            line = line.strip()
            if not line:
                continue
            if line.startswith(b">"):
                record = flush()
                if record is not None:
                    yield record
                    n_records += 1
                header = line[1:].decode("ascii", errors="replace").strip()
                chunks = []
            else:
                chunks.append(line)
    record = flush()
    if record is not None:
        yield record
        n_records += 1
    if n_records == 0 and header is None:
        raise InvalidSequenceError("no FASTA records found")


def read_fasta(path_or_file, *, invalid: str = "error", seed: int = 0) -> list[FastaRecord]:
    """Parse a FASTA file into a list of :class:`FastaRecord`.

    ``path_or_file`` may be a filesystem path or a text/bytes file object.
    ``invalid`` selects the non-ACGT policy (see module docstring). For
    files too large to materialize, use :func:`iter_fasta`.
    """
    return list(iter_fasta(path_or_file, invalid=invalid, seed=seed))


def write_fasta(path_or_file, records, *, width: int = 70) -> None:
    """Write ``(header, codes)`` pairs or :class:`FastaRecord` objects as FASTA."""
    if isinstance(path_or_file, (str, os.PathLike)):
        with open(path_or_file, "w", encoding="ascii") as fh:
            write_fasta(fh, records, width=width)
            return
    fh = path_or_file
    for rec in records:
        if isinstance(rec, FastaRecord):
            header, codes = rec.header, rec.codes
        else:
            header, codes = rec
        fh.write(f">{header}\n")
        text = decode(np.asarray(codes, dtype=np.uint8))
        for i in range(0, len(text), width):
            fh.write(text[i : i + width])
            fh.write("\n")
