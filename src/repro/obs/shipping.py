"""Cross-process observability: ship worker spans + metric deltas home.

The process tier (:mod:`repro.core.procpool`) runs the interesting work in
spawned workers, and a worker's :class:`~repro.obs.tracer.Tracer` dies
with its process — everything recorded there was invisible to the parent
until this module. The protocol:

- **Worker side** — each worker process owns one :class:`WorkerObs`
  (a process-local tracer + metrics registry + last-shipped snapshot).
  Task entry points run their sessions under ``worker_obs().tracer`` and
  call :meth:`WorkerObs.collect` on the way out, producing a compact,
  picklable :class:`ObsPayload`: the task's finished spans (capped at
  :data:`SPAN_SHIP_CAP`, overflow *counted*, never silently dropped) plus
  the metric *deltas* since the previous payload — long-lived workers ship
  increments, not lifetime totals.
- **Parent side** — :func:`merge_payload` folds a payload into the parent
  tracer: metric deltas merge series-preservingly into the parent registry
  (:meth:`~repro.obs.metrics.MetricsRegistry.merge`), and spans become
  Chrome-trace events in a ``pid``-keyed lane group, time-aligned via each
  tracer's ``wall_epoch`` so parent dispatch and worker execution render
  side by side in one validated trace. Shipping itself is measured:
  ``proc.obs.payloads`` / ``proc.obs.spans`` / ``proc.obs.spans_dropped``
  counters land beside the shipped series.

Nothing here imports multiprocessing — the payload is plain picklable
data, so the same protocol would carry spans off any future substrate
(sockets, files, a real cluster).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

#: Spans one payload may carry; the rest are dropped and counted in
#: :attr:`ObsPayload.dropped_spans`. One query on a warm session records a
#: few spans per tile row, so hundreds cover realistic tasks while keeping
#: the pickle a few tens of KiB at worst.
SPAN_SHIP_CAP = 512


@dataclass(frozen=True)
class ObsPayload:
    """One worker task's observability freight (fully picklable)."""

    #: Recording process id — the trace lane group these spans render in.
    pid: int
    #: Wall-clock instant of the recording tracer's epoch; span times are
    #: relative to it, so the parent can re-anchor them on its own epoch.
    wall_epoch: float
    #: Serialized spans: ``{name, cat, tid, start, end, attrs}`` dicts with
    #: times in seconds relative to :attr:`wall_epoch`.
    spans: list[dict] = field(default_factory=list)
    #: Spans recorded but not shipped (over :data:`SPAN_SHIP_CAP`).
    dropped_spans: int = 0
    #: Metric increments since the worker's previous payload (the
    #: :meth:`~repro.obs.metrics.MetricsRegistry.delta_since` format).
    metrics: list[dict] = field(default_factory=list)

    @property
    def n_spans(self) -> int:
        return len(self.spans)


def serialize_span(span: Span) -> dict:
    """One span as the payload wire dict (attrs copied, never shared)."""
    return {
        "name": span.name,
        "cat": span.cat,
        "tid": span.tid,
        "start": span.start,
        "end": span.end if span.end is not None else span.start,
        "attrs": dict(span.attrs),
    }


class WorkerObs:
    """A worker process's capture state: tracer + delta baseline.

    One per process (see :func:`repro.core.procpool.worker_obs`); tasks
    run under :attr:`tracer` and ship with :meth:`collect`. The metric
    snapshot advances at each collect, so concurrent tasks in one worker
    are safe: whichever collects first ships the increments, the other
    ships what remains.
    """

    def __init__(self, *, cap: int = SPAN_SHIP_CAP):
        self.tracer = Tracer(metrics=MetricsRegistry())
        self.cap = int(cap)
        self._lock = threading.Lock()  # guards: _snapshot
        self._snapshot: dict = {}

    def collect(self) -> ObsPayload:
        """Drain spans + metric deltas into a fresh :class:`ObsPayload`."""
        spans, dropped = self.tracer.drain_spans(self.cap)
        with self._lock:
            delta, self._snapshot = self.tracer.metrics.delta_and_snapshot(
                self._snapshot
            )
        return ObsPayload(
            pid=os.getpid(),
            wall_epoch=self.tracer.wall_epoch,
            spans=[serialize_span(s) for s in spans],
            dropped_spans=dropped,
            metrics=delta,
        )


def payload_events(payload: ObsPayload, *, parent_wall_epoch: float) -> list[dict]:
    """Chrome-trace "X" events of a payload, re-anchored on the parent epoch.

    Worker span times are seconds since the worker tracer's epoch; the
    shared wall clock turns them into seconds since the *parent's* epoch so
    both processes share one time axis. If a worker somehow predates the
    parent tracer, the whole lane shifts to zero as a block — per-lane
    nesting survives any uniform shift, so the trace stays schema-valid.
    """
    offset = payload.wall_epoch - parent_wall_epoch
    if payload.spans:
        first = min(s["start"] for s in payload.spans)
        if first + offset < 0.0:
            offset = -first
    events = []
    for span in payload.spans:
        events.append({
            "name": span["name"],
            "cat": span["cat"],
            "ph": "X",
            "ts": (span["start"] + offset) * 1e6,
            "dur": (span["end"] - span["start"]) * 1e6,
            "pid": payload.pid,
            "tid": span["tid"],
            "args": span["attrs"],
        })
    return events


def merge_payload(tracer, payload: ObsPayload | None) -> None:
    """Fold one worker payload into the parent tracer (no-op on ``None``).

    Metric deltas merge into ``tracer.metrics`` under their own series
    names (so ``proc.*`` / ``session.cache.*`` counters recorded inside
    workers aggregate exactly as if recorded in-process); spans join
    ``tracer.foreign_events`` with ``pid`` provenance for the multi-lane
    Chrome export. Disabled tracers ignore everything.
    """
    if payload is None or not getattr(tracer, "enabled", False):
        return
    tracer.metrics.merge(payload.metrics)
    if payload.spans:
        tracer.add_foreign_events(
            payload_events(payload, parent_wall_epoch=tracer.wall_epoch)
        )
    metrics = tracer.metrics
    if metrics.enabled:
        metrics.counter("proc.obs.payloads").inc()
        metrics.counter("proc.obs.spans").inc(payload.n_spans)
        if payload.dropped_spans:
            metrics.counter("proc.obs.spans_dropped").inc(payload.dropped_spans)


__all__ = [
    "SPAN_SHIP_CAP",
    "ObsPayload",
    "WorkerObs",
    "merge_payload",
    "payload_events",
    "serialize_span",
]
