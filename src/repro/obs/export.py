"""Exporters: Chrome-trace JSON, text span trees, metrics dumps.

Three consumers, three formats:

- :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format understood by ``chrome://tracing`` and Perfetto ("X" complete
  events, microsecond timestamps, one lane per Python thread, one lane
  *group* per process: the parent pid plus any worker pids whose spans
  were shipped home via :mod:`repro.obs.shipping`), with human-readable
  ``process_name``/``thread_name`` "M" metadata events per lane and the
  run's metrics embedded as a top-level ``"metrics"`` block;
- :func:`format_span_tree` — a human-readable nested tree for terminals;
- :func:`validate_chrome_trace` — schema checks used by the tests and the
  CI trace-smoke step (also what ``gpumem trace`` runs before inspecting).

:func:`load_chrome_trace` + :func:`format_event_tree` rebuild and render a
tree from a trace *file*, so traces survive round-tripping through disk.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path

#: Trace Event Format phase codes we emit / accept.
COMPLETE_PHASE = "X"
METADATA_PHASE = "M"


def _json_default(obj):
    """Coerce numpy scalars & friends so attrs never break serialization."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    return str(obj)


def lane_metadata(
    pid: int, lanes, *, process: str, sort_index: int = 0,
    thread_prefix: str = "worker",
) -> list[dict]:
    """``process_name``/``thread_name`` "M" metadata events for one pid.

    These are what turn bare pid/tid integers into readable lane headers in
    ``chrome://tracing``/Perfetto; ``process_sort_index`` pins the parent
    process above its workers regardless of pid ordering.
    """
    meta = [
        {
            "name": "process_name",
            "ph": METADATA_PHASE,
            "pid": pid,
            "tid": 0,
            "args": {"name": process},
        },
        {
            "name": "process_sort_index",
            "ph": METADATA_PHASE,
            "pid": pid,
            "tid": 0,
            "args": {"sort_index": sort_index},
        },
    ]
    for lane in sorted(lanes):
        meta.append(
            {
                "name": "thread_name",
                "ph": METADATA_PHASE,
                "pid": pid,
                "tid": lane,
                "args": {
                    "name": "main" if lane == 0 else f"{thread_prefix}-{lane}"
                },
            }
        )
    return meta


def chrome_trace_events(spans, *, pid: int = 0) -> list[dict]:
    """Spans → Trace Event Format "X" (complete) events, start-ordered."""
    events = []
    lanes = set()
    for span in spans:
        if span.end is None:
            continue
        lanes.add(span.tid)
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": COMPLETE_PHASE,
                "ts": span.start * 1e6,  # Trace Event Format is microseconds
                "dur": (span.end - span.start) * 1e6,
                "pid": pid,
                "tid": span.tid,
                "args": dict(span.attrs),
            }
        )
    events.sort(key=lambda e: (e["tid"], e["ts"]))
    meta = lane_metadata(pid, lanes, process="gpumem", thread_prefix="worker")
    return meta + events


def to_chrome_trace(tracer, **metadata) -> dict:
    """The full Chrome-trace document for one tracer's recorded run.

    The parent process's spans render under its real pid; any
    :attr:`~repro.obs.tracer.Tracer.foreign_events` (worker spans shipped
    across the process boundary, already pid-tagged and time-aligned by
    :mod:`repro.obs.shipping`) follow in their own lane groups, each with
    ``process_name``/``thread_name`` metadata so the trace viewer shows
    "gpumem worker (pid N)" instead of bare integers.
    """
    parent_pid = os.getpid()
    events = chrome_trace_events(tracer.spans, pid=parent_pid)
    foreign = list(getattr(tracer, "foreign_events", ()) or ())
    if foreign:
        by_pid: dict[int, set] = {}
        for ev in foreign:
            by_pid.setdefault(ev.get("pid", 0), set()).add(ev.get("tid", 0))
        for order, (pid, lanes) in enumerate(sorted(by_pid.items()), start=1):
            events.extend(lane_metadata(
                pid, lanes,
                process=f"gpumem worker (pid {pid})",
                sort_index=order, thread_prefix="lane",
            ))
        foreign.sort(key=lambda e: (e.get("pid", 0), e.get("tid", 0), e["ts"]))
        events.extend(foreign)
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"tool": "repro.obs", "parent_pid": parent_pid, **metadata},
        "metrics": tracer.metrics.to_dict(),
    }
    return doc


def write_chrome_trace(tracer, path, **metadata) -> None:
    """Serialize :func:`to_chrome_trace` to ``path`` (UTF-8 JSON)."""
    doc = to_chrome_trace(tracer, **metadata)
    Path(path).write_text(
        json.dumps(doc, indent=1, default=_json_default), encoding="utf-8"
    )


def metrics_to_json(metrics) -> str:
    """Flat JSON dump of a metrics registry."""
    return json.dumps(metrics.to_dict(), indent=1, default=_json_default)


# -- validation ---------------------------------------------------------------


def validate_chrome_trace(doc) -> list[str]:
    """Schema problems of a Chrome-trace document (empty list = valid).

    Checks the containerized Trace Event Format contract: a
    ``traceEvents`` list whose "X" events carry string names and
    non-negative numeric ``ts``/``dur``, plus — our extension — that events
    within one ``(pid, tid)`` lane nest properly (no partial overlap).
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    lanes: dict[tuple, list[tuple[float, float, str]]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in (COMPLETE_PHASE, METADATA_PHASE):
            problems.append(f"event {i}: unsupported phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"event {i}: missing string 'name'")
        if ph != COMPLETE_PHASE:
            continue
        ts, dur = ev.get("ts"), ev.get("dur")
        for field, value in (("ts", ts), ("dur", dur)):
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(
                    f"event {i} ({ev.get('name')}): bad {field!r}: {value!r}"
                )
                break
        else:
            lanes.setdefault((ev.get("pid", 0), ev.get("tid", 0)), []).append(
                (float(ts), float(ts) + float(dur), str(ev.get("name")))
            )
    # Per-lane nesting: sorted by (start, -end), every event must lie fully
    # inside the nearest enclosing open event or fully after it.
    eps = 1e-6  # one picosecond of slack in µs units: clock quantization
    for lane, spans in lanes.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack: list[tuple[float, float, str]] = []
        for start, end, name in spans:
            while stack and start >= stack[-1][1] - eps:
                stack.pop()
            if stack and end > stack[-1][1] + eps:
                problems.append(
                    f"lane {lane}: span {name!r} [{start:.3f}, {end:.3f}] "
                    f"overlaps {stack[-1][2]!r} ending {stack[-1][1]:.3f}"
                )
            stack.append((start, end, name))
    if "metrics" in doc and not isinstance(doc["metrics"], dict):
        problems.append("'metrics' block must be an object")
    return problems


# -- text rendering -----------------------------------------------------------


def _render_tree(out, label_rows) -> None:
    """Shared renderer: rows of ``(depth, label)`` with tree glyphs."""
    for depth, label in label_rows:
        out.write("  " * depth + label + "\n")


def format_span_tree(spans) -> str:
    """Nested text tree of finished spans (in-memory tracer view)."""
    finished = [s for s in spans if s.end is not None]
    if not finished:
        return "(no spans recorded)\n"
    children: dict[int | None, list] = {}
    for span in finished:
        children.setdefault(span.parent_id, []).append(span)
    for kids in children.values():
        kids.sort(key=lambda s: s.start)
    out = io.StringIO()

    def walk(span, depth):
        attrs = ""
        if span.attrs:
            inner = ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
            attrs = f"  [{inner}]"
        out.write(
            "  " * depth
            + f"{span.name}  ({span.duration * 1e3:.3f} ms, cat={span.cat})"
            + attrs + "\n"
        )
        for kid in children.get(span.span_id, []):
            walk(kid, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return out.getvalue()


# -- file round-trip (gpumem trace) -------------------------------------------


def load_chrome_trace(path) -> dict:
    """Read a Chrome-trace JSON document from disk."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def _lane_forest(doc) -> dict[tuple, list]:
    """Rebuild per-lane nesting forests from a trace document's X events."""
    lanes: dict[tuple, list] = {}
    for ev in doc.get("traceEvents", ()):
        if ev.get("ph") != COMPLETE_PHASE:
            continue
        lanes.setdefault((ev.get("pid", 0), ev.get("tid", 0)), []).append(ev)
    forest: dict[tuple, list] = {}
    for lane, events in sorted(lanes.items()):
        events.sort(key=lambda e: (e["ts"], -(e["ts"] + e["dur"])))
        roots: list = []
        stack: list = []  # (end_ts, node)
        for ev in events:
            node = {"event": ev, "children": []}
            end = ev["ts"] + ev["dur"]
            while stack and ev["ts"] >= stack[-1][0] - 1e-6:
                stack.pop()
            (stack[-1][1]["children"] if stack else roots).append(node)
            stack.append((end, node))
        forest[lane] = roots
    return forest


def format_event_tree(doc) -> str:
    """Render a loaded trace file as the nested text tree."""
    forest = _lane_forest(doc)
    if not any(forest.values()):
        return "(no complete events in trace)\n"
    out = io.StringIO()

    def walk(node, depth):
        ev = node["event"]
        args = ev.get("args") or {}
        attrs = ""
        if args:
            inner = ", ".join(f"{k}={v}" for k, v in sorted(args.items()))
            attrs = f"  [{inner}]"
        out.write(
            "  " * depth
            + f"{ev['name']}  ({ev['dur'] / 1e3:.3f} ms, cat={ev.get('cat', '?')})"
            + attrs + "\n"
        )
        for kid in node["children"]:
            walk(kid, depth + 1)

    for (pid, tid), roots in forest.items():
        out.write(f"-- lane pid={pid} tid={tid} --\n")
        for root in roots:
            walk(root, 0)
    return out.getvalue()


def top_spans(doc, n: int = 10) -> list[tuple[str, int, float]]:
    """Hottest span names of a trace file: ``(name, count, total_ms)``."""
    totals: dict[str, list] = {}
    for ev in doc.get("traceEvents", ()):
        if ev.get("ph") != COMPLETE_PHASE:
            continue
        slot = totals.setdefault(ev["name"], [0, 0.0])
        slot[0] += 1
        slot[1] += ev["dur"] / 1e3
    ranked = sorted(totals.items(), key=lambda kv: -kv[1][1])
    return [(name, count, ms) for name, (count, ms) in ranked[:n]]
