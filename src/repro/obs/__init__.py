"""Observability: end-to-end tracing + metrics for the GPUMEM stack.

The paper's evaluation is a where-does-time-go story (index build vs.
extraction, per-kernel occupancy, load-balancing gains — Tables III–IV,
Figs. 4–7); this package makes the reproduction answer those questions on
every run instead of through ad-hoc stats keys:

- :class:`~repro.obs.tracer.Tracer` — nested spans over the pipeline
  stages, executors, sessions, kernel launches, and memory transfers.
  Thread one ``tracer=`` argument through ``GpuMem`` / ``MemSession`` /
  ``Pipeline`` / ``Device`` and the whole run is recorded.
- :class:`~repro.obs.metrics.MetricsRegistry` — labeled counters, gauges,
  and histograms (seeds/MEMs per stage, cache hits, load-balance
  redistribution, kernel launches); carried by the tracer as
  ``tracer.metrics``.
- :mod:`repro.obs.export` — Chrome-trace JSON (``chrome://tracing`` /
  Perfetto), a text span tree, a flat metrics dump, and the validator the
  tests and CI run against produced traces.

CLI: ``gpumem match --trace out.json --metrics`` records a run;
``gpumem trace out.json`` inspects one. See ``docs/observability.md`` for
the span taxonomy and metric names.
"""

from repro.obs.export import (
    format_event_tree,
    format_span_tree,
    load_chrome_trace,
    metrics_to_json,
    to_chrome_trace,
    top_spans,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    series_name,
)
from repro.obs.shipping import (
    SPAN_SHIP_CAP,
    ObsPayload,
    WorkerObs,
    merge_payload,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer, get_tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_TRACER",
    "get_tracer",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_METRICS",
    "series_name",
    "ObsPayload",
    "WorkerObs",
    "merge_payload",
    "SPAN_SHIP_CAP",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "load_chrome_trace",
    "format_span_tree",
    "format_event_tree",
    "top_spans",
    "metrics_to_json",
]
