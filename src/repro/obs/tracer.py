"""Span tracing: who ran, when, nested inside what.

A :class:`Tracer` records *spans* — named, attributed intervals — through a
context-manager or decorator API::

    tracer = Tracer()
    with tracer.span("stage:tile_match", cat="pipeline", row=3) as sp:
        ...
        sp.set(n_candidates=n)

    @tracer.wrap("mapper.map_read", cat="mapping")
    def map_read(read): ...

Nesting is tracked per thread (a worker thread's spans form their own
lane), so the executor layer can fan rows out without corrupting the tree.
Finished spans accumulate on the tracer and export to Chrome-trace JSON /
a text tree via :mod:`repro.obs.export`.

Every tracer also carries a :class:`~repro.obs.metrics.MetricsRegistry` as
``tracer.metrics`` — threading one ``tracer=`` argument through a layer
buys both spans and counters.

The disabled path is :data:`NULL_TRACER` (what :func:`get_tracer` returns
for ``None``): ``span()`` hands back one shared no-op object and
``metrics`` is the null registry, so instrumented code costs a method call
and an empty ``with`` block when observability is off.
"""

from __future__ import annotations

import functools
import threading
import time

from repro.obs.metrics import NULL_METRICS, MetricsRegistry


class Span:
    """One named interval. Context manager; re-entrant use is an error."""

    __slots__ = (
        "tracer", "name", "cat", "attrs", "span_id", "parent_id",
        "tid", "start", "end",
    )

    def __init__(self, tracer: "Tracer", name: str, cat: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.attrs = attrs
        self.span_id = -1
        self.parent_id: int | None = None
        self.tid = 0
        self.start = 0.0
        self.end: float | None = None

    @property
    def duration(self) -> float:
        """Span seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attrs) -> "Span":
        """Attach/overwrite attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._close(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"{self.duration * 1e3:.3f}ms" if self.end is not None else "open"
        return f"Span({self.name!r}, cat={self.cat!r}, {state})"


class Tracer:
    """Thread-safe span recorder + the run's metrics registry."""

    enabled = True

    def __init__(self, *, metrics: MetricsRegistry | None = None,
                 clock=time.perf_counter):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._clock = clock
        self._epoch = clock()
        #: Wall-clock instant of the tracer epoch: span starts are relative
        #: to the epoch, so this anchors them on an axis every process
        #: shares (how worker spans line up with parent spans in one trace).
        self.wall_epoch = time.time()
        self._lock = threading.Lock()  # guards: _next_id, _tids, spans, foreign_events
        self._local = threading.local()
        self._next_id = 0
        self._tids: dict[int, int] = {}
        #: Finished spans in close order (exported by :mod:`repro.obs.export`).
        self.spans: list[Span] = []
        #: Chrome-trace-ready events merged from *other processes* (worker
        #: span shipping, :mod:`repro.obs.shipping`); each carries its own
        #: ``pid`` so the exporter renders one lane group per worker.
        self.foreign_events: list[dict] = []

    # -- span lifecycle --------------------------------------------------------
    def span(self, name: str, cat: str = "pipeline", **attrs) -> Span:
        """A new (not yet started) span; use as a context manager."""
        return Span(self, name, cat, attrs)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _thread_lane(self) -> int:
        ident = threading.get_ident()
        # Benign racy fast path: a miss just falls through to the locked
        # setdefault, which is authoritative; dict reads don't tear.
        lane = self._tids.get(ident)  # conc: ignore[CL101]
        if lane is None:
            with self._lock:
                lane = self._tids.setdefault(ident, len(self._tids))
        return lane

    def _open(self, span: Span) -> None:
        stack = self._stack()
        span.parent_id = stack[-1].span_id if stack else None
        span.tid = self._thread_lane()
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
        span.start = self._clock() - self._epoch
        stack.append(span)

    def _close(self, span: Span) -> None:
        span.end = self._clock() - self._epoch
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # exited out of order (generator misuse); recover
            stack.remove(span)
        with self._lock:
            self.spans.append(span)

    # -- decorator -------------------------------------------------------------
    def wrap(self, name: str | None = None, cat: str = "func"):
        """Decorator form: run the function body inside a span."""

        def deco(fn):
            span_name = name or getattr(fn, "__qualname__", fn.__name__)

            @functools.wraps(fn)
            def inner(*args, **kwargs):
                with self.span(span_name, cat=cat):
                    return fn(*args, **kwargs)

            return inner

        return deco

    # -- cross-process shipping ------------------------------------------------
    def drain_spans(self, cap: int | None = None) -> tuple[list[Span], int]:
        """Remove and return finished spans, oldest first, up to ``cap``.

        The worker side of span shipping: each task drains what it recorded
        into an :class:`~repro.obs.shipping.ObsPayload`, so a long-lived
        worker never accumulates unbounded span history. Returns
        ``(spans, n_dropped)`` — spans beyond the cap are *discarded* (and
        counted), not left behind, keeping worker memory bounded even when
        one task records a pathological number of spans.
        """
        with self._lock:
            spans = self.spans
            self.spans = []
        if cap is None or len(spans) <= cap:
            return spans, 0
        return spans[:cap], len(spans) - cap

    def add_foreign_events(self, events: list[dict]) -> None:
        """Adopt ready-made trace events shipped from another process."""
        with self._lock:
            self.foreign_events.extend(events)

    # -- introspection / export ------------------------------------------------
    def clear(self) -> None:
        """Drop all finished spans (metrics are kept; use metrics.clear())."""
        with self._lock:
            self.spans.clear()
            self.foreign_events.clear()

    def find(self, name: str) -> list[Span]:
        """All finished spans with exactly this name."""
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def to_chrome_trace(self, **metadata) -> dict:
        """Chrome-trace dict (see :func:`repro.obs.export.to_chrome_trace`)."""
        from repro.obs.export import to_chrome_trace

        return to_chrome_trace(self, **metadata)

    def write_chrome_trace(self, path, **metadata) -> None:
        """Write the Chrome-trace JSON file for ``chrome://tracing``/Perfetto."""
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(self, path, **metadata)

    def format_tree(self) -> str:
        """Human-readable nested text rendering of the recorded spans."""
        from repro.obs.export import format_span_tree

        with self._lock:
            spans = list(self.spans)
        return format_span_tree(spans)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        # Debug aid only; len() of a list is a single atomic read.
        return f"Tracer(spans={len(self.spans)})"  # conc: ignore[CL101]


class _NullSpan:
    """Shared do-nothing span for the disabled tracer."""

    __slots__ = ()
    name = ""
    cat = ""
    attrs: dict = {}
    duration = 0.0

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Disabled tracer: no spans, null metrics, near-zero overhead."""

    enabled = False

    def __init__(self):
        # Deliberately *not* calling super().__init__: no lock/state needed.
        self.metrics = NULL_METRICS
        self.spans = []
        self.foreign_events = []
        self.wall_epoch = 0.0

    def span(self, name: str, cat: str = "pipeline", **attrs) -> _NullSpan:
        return _NULL_SPAN

    def drain_spans(self, cap: int | None = None) -> tuple[list, int]:
        return [], 0

    def add_foreign_events(self, events: list[dict]) -> None:
        pass

    def wrap(self, name: str | None = None, cat: str = "func"):
        def deco(fn):
            return fn

        return deco

    def clear(self) -> None:
        pass

    def find(self, name: str) -> list:
        return []

    def format_tree(self) -> str:
        from repro.obs.export import format_span_tree

        return format_span_tree([])


#: Process-wide disabled tracer; what uninstrumented call sites get.
NULL_TRACER = NullTracer()


def get_tracer(tracer: Tracer | None) -> Tracer:
    """Normalize an optional ``tracer=`` argument (None → the null tracer)."""
    return tracer if tracer is not None else NULL_TRACER
