"""Metrics: labeled counters, gauges, and histograms.

The registry is the quantitative half of :mod:`repro.obs` (spans are the
temporal half). Instruments are created on first use and keyed by
``(name, labels)``, Prometheus-style, so the same code path can record one
series per stage / kernel / executor without pre-declaring anything::

    metrics = MetricsRegistry()
    metrics.counter("pipeline.candidates").inc(n)
    metrics.histogram("stage.seconds", stage="tile_match").observe(dt)
    print(metrics.format())

Everything is thread-safe (per-instrument locks; instrument creation under
a registry lock). :class:`NullMetricsRegistry` is the disabled counterpart
wired into :data:`repro.obs.tracer.NULL_TRACER` — every operation is a
no-op so uninstrumented runs pay nothing.

Cross-process support (see :mod:`repro.obs.shipping`): a registry can
:meth:`~MetricsRegistry.snapshot` its state, compute the
:meth:`~MetricsRegistry.delta_since` a previous snapshot as a picklable
list of series entries, and :meth:`~MetricsRegistry.merge` such a delta
from another process — counters add, gauges last-write-win, histograms
combine bucket-by-bucket. Long-lived workers therefore ship *increments*,
never lifetime totals, and the parent registry stays a true aggregate.
"""

from __future__ import annotations

import io
import threading
from typing import Iterable

#: Default histogram bucket upper bounds (seconds-flavoured exponential
#: ladder; also serviceable for counts). ``inf`` is implicit.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def series_name(name: str, labels: dict) -> str:
    """Canonical flat name: ``name{k=v,...}`` (bare ``name`` if unlabeled)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()  # guards: value

    def inc(self, n: int | float = 1) -> None:
        with self._lock:
            self.value += n

    def state(self):
        """Snapshot value for delta computation (see registry snapshot)."""
        with self._lock:
            return self.value

    def to_dict(self) -> dict:
        with self._lock:
            return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (e.g. resident bytes, cache occupancy)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()  # guards: value

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta

    def state(self):
        """Snapshot value for delta computation (see registry snapshot)."""
        with self._lock:
            return self.value

    def to_dict(self) -> dict:
        with self._lock:
            return {"type": "gauge", "value": self.value}


class Histogram:
    """Distribution summary: count/sum/min/max plus cumulative buckets."""

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count",
                 "sum", "min", "max", "_lock")

    def __init__(self, name: str, labels: dict,
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +1 = +inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()  # guards: bucket_counts, count, sum, min, max

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    break
            else:
                self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Estimate the ``q``-th percentile (``q`` in [0, 100]).

        Classic bucketed-histogram estimation (the `histogram_quantile`
        approach): find the bucket holding the target rank and interpolate
        linearly inside it, clamped to the observed ``[min, max]`` so tiny
        samples never report an upper bound nothing reached. ``None`` until
        something has been observed.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        with self._lock:
            count = self.count
            lo, hi = self.min, self.max
            bucket_counts = list(self.bucket_counts)
        if not count:
            return None
        target = (q / 100.0) * count
        cum = 0
        for i, n in enumerate(bucket_counts):
            if not n:
                continue
            if cum + n >= target:
                lower = self.buckets[i - 1] if i > 0 else lo
                upper = self.buckets[i] if i < len(self.buckets) else hi
                lower = max(min(lower, hi), lo)
                upper = max(min(upper, hi), lo)
                fraction = (target - cum) / n
                return lower + (upper - lower) * max(0.0, min(1.0, fraction))
            cum += n
        return hi

    def summary(self) -> dict:
        """Latency-style rollup: count/mean/min/max plus p50/p95/p99."""
        with self._lock:
            count = self.count
            total = self.sum
            lo, hi = self.min, self.max
        return {
            "count": count,
            "mean": total / count if count else 0.0,
            "min": lo if count else None,
            "max": hi if count else None,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def state(self):
        """Snapshot tuple for delta computation (see registry snapshot)."""
        with self._lock:
            return (
                self.count, self.sum, self.min, self.max,
                tuple(self.bucket_counts),
            )

    def merge_delta(self, entry: dict) -> None:
        """Fold another process's histogram delta into this instrument.

        ``entry`` is one registry-delta item (see
        :meth:`MetricsRegistry.delta_since`). Matching bucket ladders merge
        bucket-by-bucket; a foreign ladder is re-bucketed by each source
        bucket's upper bound so no observation is ever dropped.
        """
        # An absent "buckets" key means the default ladder (delta_since
        # omits it to keep steady-state payloads small).
        src_buckets = tuple(entry.get("buckets") or DEFAULT_BUCKETS)
        src_counts = list(entry.get("bucket_counts") or ())
        with self._lock:
            self.count += int(entry.get("count", 0))
            self.sum += float(entry.get("sum", 0.0))
            if entry.get("min") is not None:
                self.min = min(self.min, float(entry["min"]))
            if entry.get("max") is not None:
                self.max = max(self.max, float(entry["max"]))
            if src_buckets == self.buckets and len(src_counts) == len(
                self.bucket_counts
            ):
                for i, n in enumerate(src_counts):
                    self.bucket_counts[i] += int(n)
            else:  # foreign ladder: re-bucket on the source upper bounds
                for i, n in enumerate(src_counts):
                    if not n:
                        continue
                    value = (
                        src_buckets[i] if i < len(src_buckets)
                        else float(entry.get("max") or float("inf"))
                    )
                    for j, bound in enumerate(self.buckets):
                        if value <= bound:
                            self.bucket_counts[j] += int(n)
                            break
                    else:
                        self.bucket_counts[-1] += int(n)

    def to_dict(self) -> dict:
        # Snapshot under the lock, derive (mean) outside it: calling the
        # ``mean`` property here would re-acquire the plain Lock and hang.
        with self._lock:
            count = self.count
            total = self.sum
            lo, hi = self.min, self.max
            bucket_counts = list(self.bucket_counts)
        return {
            "type": "histogram",
            "count": count,
            "sum": total,
            "min": lo if count else None,
            "max": hi if count else None,
            "mean": total / count if count else 0.0,
            "buckets": {
                **{str(b): c for b, c in
                   zip(self.buckets, bucket_counts[:-1], strict=True)},
                "+inf": bucket_counts[-1],
            },
        }


class MetricsRegistry:
    """Get-or-create home of every instrument, keyed by name + labels."""

    #: Real registries record; the null registry reports False so hot paths
    #: can skip derivation work (not just the final ``inc`` call).
    enabled = True

    def __init__(self):
        self._lock = threading.Lock()  # guards: _instruments
        self._instruments: dict[tuple, object] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (cls.__name__, name, _label_key(labels))
        # Double-checked fast path: a stale miss just re-reads under the
        # lock below; instruments are never removed while handed out.
        inst = self._instruments.get(key)  # conc: ignore[CL101]
        if inst is None:
            with self._lock:
                inst = self._instruments.get(key)
                if inst is None:
                    inst = cls(name, labels, **kwargs)
                    self._instruments[key] = inst
        return inst

    def counter(self, name: str, **labels) -> Counter:
        """Get-or-create the :class:`Counter` for ``name`` + labels."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get-or-create the :class:`Gauge` for ``name`` + labels."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, *, buckets=DEFAULT_BUCKETS, **labels) -> Histogram:
        """Get-or-create the :class:`Histogram` for ``name`` + labels."""
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- cross-process merge ---------------------------------------------------
    def snapshot(self) -> dict:
        """Opaque state map for :meth:`delta_since` (per-series scalars)."""
        with self._lock:
            instruments = list(self._instruments.items())
        return {key: inst.state() for key, inst in instruments}

    def delta_since(self, snapshot: dict | None) -> list[dict]:
        """Picklable series increments recorded since ``snapshot``.

        Each entry is ``{"kind", "name", "labels", ...}``: counters carry
        the added ``value``, gauges their latest value (last-write-wins on
        merge), histograms the added ``count``/``sum``/``bucket_counts``
        plus lifetime ``min``/``max`` (idempotent under ``min``/``max``
        combination). Unchanged series are omitted, so steady-state
        payloads stay near-empty.
        """
        return self.delta_and_snapshot(snapshot)[0]

    def delta_and_snapshot(self, snapshot: dict | None) -> tuple[list[dict], dict]:
        """One-pass :meth:`delta_since` + :meth:`snapshot` combination.

        The worker-side shipping hot path runs per task; reading each
        instrument's state once (instead of once for the delta and again
        for the next baseline) halves its lock traffic.
        """
        snapshot = snapshot or {}
        with self._lock:
            instruments = list(self._instruments.items())
        out: list[dict] = []
        new_snapshot: dict = {}
        for key, inst in instruments:
            prev = snapshot.get(key)
            state = inst.state()
            new_snapshot[key] = state
            base = {"name": inst.name, "labels": dict(inst.labels)}
            if isinstance(inst, Histogram):
                count, total, lo, hi, bucket_counts = state
                p_count, p_total, p_buckets = (
                    (prev[0], prev[1], prev[4]) if prev else
                    (0, 0.0, (0,) * len(bucket_counts))
                )
                if count == p_count:
                    continue
                entry = {
                    "kind": "histogram", **base,
                    "count": count - p_count,
                    "sum": total - p_total,
                    "min": lo if count else None,
                    "max": hi if count else None,
                    "bucket_counts": [
                        n - p for n, p in
                        zip(bucket_counts, p_buckets, strict=True)
                    ],
                }
                # The default ladder is implied (merge() assumes it when the
                # key is absent); shipping it per entry per payload would
                # dominate steady-state payload size.
                if inst.buckets != DEFAULT_BUCKETS:
                    entry["buckets"] = list(inst.buckets)
                out.append(entry)
            elif isinstance(inst, Gauge):
                if prev is not None and state == prev:
                    continue
                out.append({"kind": "gauge", **base, "value": state})
            else:
                delta = state - (prev or 0)
                if not delta:
                    continue
                out.append({"kind": "counter", **base, "value": delta})
        return out, new_snapshot

    def merge(self, delta: Iterable[dict]) -> None:
        """Fold a :meth:`delta_since` payload from another registry in.

        Counters add, gauges take the shipped (latest) value, histograms
        combine via :meth:`Histogram.merge_delta`. Series are created on
        first sight, so a fresh parent registry absorbs any worker's
        taxonomy without pre-declaration.
        """
        if not self.enabled:
            return
        for entry in delta:
            labels = entry.get("labels") or {}
            kind = entry.get("kind")
            if kind == "counter":
                self.counter(entry["name"], **labels).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(entry["name"], **labels).set(entry["value"])
            elif kind == "histogram":
                self.histogram(
                    entry["name"],
                    buckets=tuple(entry.get("buckets") or DEFAULT_BUCKETS),
                    **labels,
                ).merge_delta(entry)

    # -- export ----------------------------------------------------------------
    def instruments(self) -> list:
        """Every recorded instrument, sorted by (name, labels)."""
        with self._lock:
            return sorted(
                self._instruments.values(),
                key=lambda m: (m.name, _label_key(m.labels)),
            )

    def to_dict(self) -> dict:
        """Flat ``{series_name: instrument_dict}`` dump (JSON-ready)."""
        return {
            series_name(m.name, m.labels): m.to_dict() for m in self.instruments()
        }

    def format(self) -> str:
        """Human-readable one-line-per-series dump."""
        out = io.StringIO()
        out.write("== metrics ==\n")
        for m in self.instruments():
            name = series_name(m.name, m.labels)
            if isinstance(m, Histogram):
                out.write(
                    f"{name:<52} count={m.count} sum={m.sum:.6g} "
                    f"mean={m.mean:.6g}\n"
                )
            else:
                value = m.value
                shown = f"{value:.6g}" if isinstance(value, float) else str(value)
                out.write(f"{name:<52} {shown}\n")
        return out.getvalue()

    def clear(self) -> None:
        """Drop every instrument (a fresh run's registry)."""
        with self._lock:
            self._instruments.clear()


class _NullInstrument:
    """Counter/gauge/histogram lookalike where every write is a no-op."""

    __slots__ = ()

    def inc(self, n=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def add(self, delta) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def percentile(self, q) -> None:
        return None

    def summary(self) -> dict:
        return {}

    def merge_delta(self, entry) -> None:
        pass

    def state(self):
        return None


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """Disabled registry: hands out shared no-op instruments."""

    enabled = False

    def __init__(self):
        super().__init__()

    def counter(self, name: str, **labels):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, *, buckets=DEFAULT_BUCKETS, **labels):
        return _NULL_INSTRUMENT


#: Shared disabled registry (used by the null tracer).
NULL_METRICS = NullMetricsRegistry()
