"""Metrics: labeled counters, gauges, and histograms.

The registry is the quantitative half of :mod:`repro.obs` (spans are the
temporal half). Instruments are created on first use and keyed by
``(name, labels)``, Prometheus-style, so the same code path can record one
series per stage / kernel / executor without pre-declaring anything::

    metrics = MetricsRegistry()
    metrics.counter("pipeline.candidates").inc(n)
    metrics.histogram("stage.seconds", stage="tile_match").observe(dt)
    print(metrics.format())

Everything is thread-safe (per-instrument locks; instrument creation under
a registry lock). :class:`NullMetricsRegistry` is the disabled counterpart
wired into :data:`repro.obs.tracer.NULL_TRACER` — every operation is a
no-op so uninstrumented runs pay nothing.
"""

from __future__ import annotations

import io
import threading
from typing import Iterable

#: Default histogram bucket upper bounds (seconds-flavoured exponential
#: ladder; also serviceable for counts). ``inf`` is implicit.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def series_name(name: str, labels: dict) -> str:
    """Canonical flat name: ``name{k=v,...}`` (bare ``name`` if unlabeled)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()  # guards: value

    def inc(self, n: int | float = 1) -> None:
        with self._lock:
            self.value += n

    def to_dict(self) -> dict:
        with self._lock:
            return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (e.g. resident bytes, cache occupancy)."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()  # guards: value

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta

    def to_dict(self) -> dict:
        with self._lock:
            return {"type": "gauge", "value": self.value}


class Histogram:
    """Distribution summary: count/sum/min/max plus cumulative buckets."""

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count",
                 "sum", "min", "max", "_lock")

    def __init__(self, name: str, labels: dict,
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +1 = +inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()  # guards: bucket_counts, count, sum, min, max

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    break
            else:
                self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        # Snapshot under the lock, derive (mean) outside it: calling the
        # ``mean`` property here would re-acquire the plain Lock and hang.
        with self._lock:
            count = self.count
            total = self.sum
            lo, hi = self.min, self.max
            bucket_counts = list(self.bucket_counts)
        return {
            "type": "histogram",
            "count": count,
            "sum": total,
            "min": lo if count else None,
            "max": hi if count else None,
            "mean": total / count if count else 0.0,
            "buckets": {
                **{str(b): c for b, c in
                   zip(self.buckets, bucket_counts[:-1], strict=True)},
                "+inf": bucket_counts[-1],
            },
        }


class MetricsRegistry:
    """Get-or-create home of every instrument, keyed by name + labels."""

    #: Real registries record; the null registry reports False so hot paths
    #: can skip derivation work (not just the final ``inc`` call).
    enabled = True

    def __init__(self):
        self._lock = threading.Lock()  # guards: _instruments
        self._instruments: dict[tuple, object] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (cls.__name__, name, _label_key(labels))
        # Double-checked fast path: a stale miss just re-reads under the
        # lock below; instruments are never removed while handed out.
        inst = self._instruments.get(key)  # conc: ignore[CL101]
        if inst is None:
            with self._lock:
                inst = self._instruments.get(key)
                if inst is None:
                    inst = cls(name, labels, **kwargs)
                    self._instruments[key] = inst
        return inst

    def counter(self, name: str, **labels) -> Counter:
        """Get-or-create the :class:`Counter` for ``name`` + labels."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get-or-create the :class:`Gauge` for ``name`` + labels."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, *, buckets=DEFAULT_BUCKETS, **labels) -> Histogram:
        """Get-or-create the :class:`Histogram` for ``name`` + labels."""
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- export ----------------------------------------------------------------
    def instruments(self) -> list:
        """Every recorded instrument, sorted by (name, labels)."""
        with self._lock:
            return sorted(
                self._instruments.values(),
                key=lambda m: (m.name, _label_key(m.labels)),
            )

    def to_dict(self) -> dict:
        """Flat ``{series_name: instrument_dict}`` dump (JSON-ready)."""
        return {
            series_name(m.name, m.labels): m.to_dict() for m in self.instruments()
        }

    def format(self) -> str:
        """Human-readable one-line-per-series dump."""
        out = io.StringIO()
        out.write("== metrics ==\n")
        for m in self.instruments():
            name = series_name(m.name, m.labels)
            if isinstance(m, Histogram):
                out.write(
                    f"{name:<52} count={m.count} sum={m.sum:.6g} "
                    f"mean={m.mean:.6g}\n"
                )
            else:
                value = m.value
                shown = f"{value:.6g}" if isinstance(value, float) else str(value)
                out.write(f"{name:<52} {shown}\n")
        return out.getvalue()

    def clear(self) -> None:
        """Drop every instrument (a fresh run's registry)."""
        with self._lock:
            self._instruments.clear()


class _NullInstrument:
    """Counter/gauge/histogram lookalike where every write is a no-op."""

    __slots__ = ()

    def inc(self, n=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def add(self, delta) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """Disabled registry: hands out shared no-op instruments."""

    enabled = False

    def __init__(self):
        super().__init__()

    def counter(self, name: str, **labels):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, *, buckets=DEFAULT_BUCKETS, **labels):
        return _NULL_INSTRUMENT


#: Shared disabled registry (used by the null tracer).
NULL_METRICS = NullMetricsRegistry()
