"""Functional SIMT GPU simulator.

The paper runs on an NVIDIA Tesla K20c. This package substitutes a
*functional simulator with an analytic warp-level cost model*
(DESIGN.md §2): kernels are Python generator functions executed one thread
at a time, with

- real ``__syncthreads`` barriers (generator ``yield`` points, checked for
  barrier divergence),
- real shared/global memory objects with device-budget accounting,
- atomics executed under a deterministically *shuffled* thread schedule (so
  order-sensitive code — like Algorithm 1's ``locs`` fill — is genuinely
  exercised),
- per-thread work counters aggregated warp-by-warp, from which the cost
  model derives simulated cycles (a warp's time is the max over its
  threads — the SIMT serialization that makes load imbalance expensive).

This reproduces the *phenomena* the paper measures (divergence, load
imbalance, occupancy) without claiming cycle accuracy.
"""

from repro.gpu.costmodel import GLOBAL_MEM_COST, CostModel
from repro.gpu.device import TESLA_K20C, TEST_DEVICE, DeviceSpec
from repro.gpu.kernel import Device, KernelReport, ThreadCtx
from repro.gpu.memory import GlobalMemory, SharedMemory
from repro.gpu.primitives import exclusive_prefix_sum_kernel, gpu_prefix_sum, gpu_segment_sort
from repro.gpu.profiler import DeviceProfile, profile_device

__all__ = [
    "DeviceSpec",
    "TESLA_K20C",
    "TEST_DEVICE",
    "GlobalMemory",
    "SharedMemory",
    "Device",
    "ThreadCtx",
    "KernelReport",
    "gpu_prefix_sum",
    "gpu_segment_sort",
    "exclusive_prefix_sum_kernel",
    "CostModel",
    "GLOBAL_MEM_COST",
    "DeviceProfile",
    "profile_device",
]
