"""Analytic timing of simulated kernels.

The model (DESIGN.md §2):

- A warp's time in a barrier phase is the **max** of its threads' work
  (SIMT lockstep — divergence and load imbalance serialize the warp).
- A block's time is the sum over phases of its warps' times, divided by the
  number of warps the SM can keep in flight (``cores_per_sm / warp_size``) —
  the simulator's stand-in for latency hiding.
- Blocks are list-scheduled (longest-processing-time greedy) over the SMs;
  device time is the busiest SM.

This is the simplest model in which the paper's Fig. 7 phenomenon —
pre-balancing makes heavy seeds serialize warps — shows up quantitatively.
"""

from __future__ import annotations

import heapq

from repro.gpu.device import DeviceSpec

#: Modeled cost (work units) of one global-memory transaction relative to a
#: register/shared-memory operation (~1 unit). DRAM latency on Kepler-class
#: parts is a few hundred cycles against ~1-10 for shared memory; with
#: partial latency hiding a 20-30x effective ratio is the standard rule of
#: thumb. Kernels charge this for index/sequence reads so that the warp-max
#: cost model weighs a seed occurrence (several global reads) far above a
#: scan step (shared memory) — without this, Algorithm 2's overhead would
#: look comparable to the work it balances, which no GPU measurement
#: supports.
GLOBAL_MEM_COST = 24


class CostModel:
    """Turns a :class:`~repro.gpu.kernel.KernelReport` into simulated time."""

    def __init__(self, spec: DeviceSpec):
        self.spec = spec

    def time_kernel(self, report) -> None:
        """Fill ``report.sim_cycles`` / ``report.sim_seconds`` in place."""
        flights = self.spec.warps_in_flight_per_sm
        per_block = [c / flights for c in report.block_cycles]
        report.sim_cycles = self.schedule_blocks(per_block)
        report.sim_seconds = self.spec.seconds_from_cycles(report.sim_cycles)

    def schedule_blocks(self, block_cycles: list[float]) -> float:
        """LPT list scheduling of block costs onto SMs → makespan."""
        if not block_cycles:
            return 0.0
        sms = [0.0] * self.spec.sm_count
        heapq.heapify(sms)
        for c in sorted(block_cycles, reverse=True):
            lightest = heapq.heappop(sms)
            heapq.heappush(sms, lightest + c)
        return max(sms)
