"""Device specifications.

:data:`TESLA_K20C` mirrors the card in the paper's §IV: 13 streaming
multiprocessors with 192 CUDA cores each (2496 cores total) at 700 MHz, and
4.8 GB of global memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class DeviceSpec:
    """Static properties of a simulated GPU."""

    name: str
    sm_count: int
    cores_per_sm: int
    warp_size: int
    clock_hz: float
    global_mem_bytes: int
    shared_mem_per_block: int = 48 * 1024
    max_threads_per_block: int = 1024
    #: Effective device-to-host copy bandwidth (PCIe gen2 x16 ≈ 6 GB/s for
    #: the K20c era; the simulated pipeline charges result transfers at it).
    pcie_bytes_per_second: float = 6e9

    def __post_init__(self):
        if self.sm_count < 1 or self.cores_per_sm < 1:
            raise InvalidParameterError("device must have at least one SM and core")
        if self.warp_size < 1 or (self.warp_size & (self.warp_size - 1)) != 0:
            raise InvalidParameterError(
                f"warp_size must be a power of two, got {self.warp_size}"
            )
        if self.clock_hz <= 0:
            raise InvalidParameterError("clock_hz must be positive")

    @property
    def total_cores(self) -> int:
        return self.sm_count * self.cores_per_sm

    @property
    def warps_in_flight_per_sm(self) -> int:
        """Warps an SM can issue concurrently (cores / warp width)."""
        return max(1, self.cores_per_sm // self.warp_size)

    def seconds_from_cycles(self, cycles: float) -> float:
        return cycles / self.clock_hz


#: The paper's card (§IV): NVIDIA Tesla K20c.
TESLA_K20C = DeviceSpec(
    name="Tesla K20c",
    sm_count=13,
    cores_per_sm=192,
    warp_size=32,
    clock_hz=700e6,
    global_mem_bytes=int(4.8 * 2**30),
)

#: The §V "future work" card: Tesla K40 (15 SMX at higher boost clock,
#: 12 GB). Used by the device-comparison ablation.
TESLA_K40 = DeviceSpec(
    name="Tesla K40",
    sm_count=15,
    cores_per_sm=192,
    warp_size=32,
    clock_hz=875e6,
    global_mem_bytes=12 * 2**30,
)

#: A modern many-SM reference point for the scaling ablation (A100-class
#: geometry at FP32-core granularity).
AMPERE_A100 = DeviceSpec(
    name="A100-class",
    sm_count=108,
    cores_per_sm=64,
    warp_size=32,
    clock_hz=1410e6,
    global_mem_bytes=40 * 2**30,
)

#: A tiny device used by the test-suite to force many scheduling rounds.
TEST_DEVICE = DeviceSpec(
    name="test-gpu",
    sm_count=2,
    cores_per_sm=8,
    warp_size=4,
    clock_hz=1e6,
    global_mem_bytes=64 * 2**20,
    max_threads_per_block=64,
)
