"""SIMT kernel execution.

A *kernel* is a Python generator function with signature
``kernel(ctx: ThreadCtx, *args)``. Each ``yield`` is a ``__syncthreads``
barrier. The executor runs one generator per thread, advancing every thread
of a block to the next barrier before any thread passes it, in a
*deterministically shuffled* order per barrier phase (so code that is only
correct under a particular thread order — a real-GPU bug class — fails
here too, and atomic-ordering effects like Algorithm 1's unsorted ``locs``
are exercised).

Work accounting: kernels call ``ctx.work(n)`` to charge ``n`` work units to
the current thread in the current phase. Reads/writes through the ``ctx``
atomic helpers charge themselves. After the launch, per-thread counts are
reduced warp-by-warp (a warp's cost is its *max* thread — SIMT lockstep)
into a :class:`KernelReport`, and the cost model turns that into simulated
cycles.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import BarrierDivergenceError, KernelError
from repro.gpu.costmodel import CostModel
from repro.gpu.device import TESLA_K20C, DeviceSpec
from repro.gpu.memory import GlobalMemory, SharedMemory
from repro.obs.tracer import Tracer, get_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a hard dependency
    from repro.analysis.sanitizer import Sanitizer


def _unwrap(array):
    """The raw ndarray behind a sanitizer :class:`TrackedArray` (or itself)."""
    return getattr(array, "_simt_base", array)


def _note_atomic(array, index) -> None:
    """Report an atomic access if ``array`` is sanitizer-tracked."""
    san = getattr(array, "_simt_san", None)
    if san is not None:
        san.record_atomic(array._simt_name, index)


class ThreadCtx:
    """Per-thread view of the execution: ids, shared memory, atomics."""

    __slots__ = ("tid", "bid", "bdim", "gdim", "shared", "_ops", "_phase_ops")

    def __init__(self, tid: int, bid: int, bdim: int, gdim: int, shared: SharedMemory):
        self.tid = tid
        self.bid = bid
        self.bdim = bdim
        self.gdim = gdim
        self.shared = shared
        self._ops = 0  # total work units this thread
        self._phase_ops: list[int] = []  # per barrier phase

    @property
    def gtid(self) -> int:
        """Global thread id."""
        return self.bid * self.bdim + self.tid

    def work(self, n: int = 1) -> None:
        """Charge ``n`` work units to this thread (current phase)."""
        self._ops += int(n)

    def atomic_add(self, array: np.ndarray, index: int, value) -> int:
        """CUDA ``atomicAdd``: add and return the *old* value.

        Charged at global-memory weight — atomics are read-modify-write
        round trips to DRAM/L2 on the modeled device class.
        """
        from repro.gpu.costmodel import GLOBAL_MEM_COST

        base = _unwrap(array)
        _note_atomic(array, index)
        old = base[index]
        base[index] = old + value
        self.work(GLOBAL_MEM_COST)
        return old.item() if hasattr(old, "item") else old

    def atomic_max(self, array: np.ndarray, index: int, value) -> int:
        from repro.gpu.costmodel import GLOBAL_MEM_COST

        base = _unwrap(array)
        _note_atomic(array, index)
        old = base[index]
        base[index] = max(old, value)
        self.work(GLOBAL_MEM_COST)
        return old.item() if hasattr(old, "item") else old

    def atomic_exch(self, array: np.ndarray, index: int, value) -> int:
        from repro.gpu.costmodel import GLOBAL_MEM_COST

        base = _unwrap(array)
        _note_atomic(array, index)
        old = base[index]
        base[index] = value
        self.work(GLOBAL_MEM_COST)
        return old.item() if hasattr(old, "item") else old

    def _end_phase(self) -> None:
        self._phase_ops.append(self._ops)
        self._ops = 0


@dataclass
class KernelReport:
    """Aggregated accounting of one kernel launch."""

    name: str
    grid: int
    block: int
    n_phases: int
    #: Sum over blocks/phases of (max thread ops per warp) — the serialized
    #: SIMT cost of each warp.
    warp_max_ops: float
    #: Sum of all thread ops (the "useful" work).
    total_thread_ops: float
    #: Per-block cost (phase-summed warp-max, summed over the block's warps).
    block_cycles: list[float] = field(default_factory=list)
    #: warp divergence/imbalance ratio: 1 - total/(warp_max * warp_size).
    imbalance: float = 0.0
    #: Simulated device time (filled by the cost model).
    sim_cycles: float = 0.0
    sim_seconds: float = 0.0


class Device:
    """One simulated GPU: memory + kernel launcher + accumulated reports."""

    def __init__(
        self,
        spec: DeviceSpec = TESLA_K20C,
        *,
        schedule_seed: int = 0,
        sanitizer: Sanitizer | None = None,
        tracer: Tracer | None = None,
    ):
        self.spec = spec
        #: opt-in span/metrics recorder (see :mod:`repro.obs`); every kernel
        #: launch and memory transfer is attributed through it.
        self.tracer = get_tracer(tracer)
        self.memory = GlobalMemory(spec, tracer=self.tracer)
        self.cost_model = CostModel(spec)
        self.reports: list[KernelReport] = []
        self._schedule_seed = int(schedule_seed)
        self._launch_counter = 0
        #: opt-in runtime race detector (see :mod:`repro.analysis.sanitizer`)
        self.sanitizer = sanitizer

    @staticmethod
    def _wrap_args(kernel, args: tuple, san: Sanitizer) -> tuple:
        """Wrap ndarray kernel arguments in sanitizer proxies.

        Arrays get their parameter name from the kernel's signature (best
        effort) so race reports read ``locs[17]``, not ``arg3[17]``.
        """
        try:
            params = [p.name for p in inspect.signature(kernel).parameters.values()]
            names = params[1 : 1 + len(args)]  # skip ctx
        except (TypeError, ValueError):  # builtins / odd callables
            names = []
        names += [f"arg{i}" for i in range(len(names), len(args))]
        return tuple(
            san.wrap(a, n) if isinstance(a, np.ndarray) else a
            for a, n in zip(args, names, strict=True)
        )

    # -- kernel launch ------------------------------------------------------------
    def launch(self, kernel, grid: int, block: int, *args, name: str | None = None) -> KernelReport:
        """Run ``kernel`` over ``grid`` blocks of ``block`` threads."""
        if block < 1 or block > self.spec.max_threads_per_block:
            raise KernelError(
                f"block size {block} outside [1, {self.spec.max_threads_per_block}]"
            )
        if grid < 1:
            raise KernelError(f"grid size must be >= 1, got {grid}")
        name = name or getattr(kernel, "__name__", "kernel")
        self._launch_counter += 1
        with self.tracer.span(
            f"kernel:{name}", cat="kernel", grid=grid, block=block
        ) as span:
            report = self._run_kernel(kernel, grid, block, args, name)
        span.set(
            sim_seconds=report.sim_seconds,
            sim_cycles=report.sim_cycles,
            imbalance=round(report.imbalance, 4),
            n_phases=report.n_phases,
        )
        metrics = self.tracer.metrics
        if metrics.enabled:
            metrics.counter("kernel.launches", kernel=name).inc()
            metrics.histogram("kernel.sim_seconds", kernel=name).observe(
                report.sim_seconds
            )
        return report

    def _run_kernel(self, kernel, grid: int, block: int, args: tuple,
                    name: str) -> KernelReport:
        """The launch body proper (spans/metrics handled by :meth:`launch`)."""
        rng = np.random.default_rng(self._schedule_seed + 7919 * self._launch_counter)

        san = self.sanitizer
        findings_mark = len(san.findings) if san is not None else 0
        if san is not None:
            args = self._wrap_args(kernel, args, san)

        warp = self.spec.warp_size
        n_phases_seen = 0
        warp_max_total = 0.0
        thread_total = 0.0
        block_cycles: list[float] = []

        for bid in range(grid):
            shared = SharedMemory(self.spec, sanitizer=san)
            ctxs = [ThreadCtx(tid, bid, block, grid, shared) for tid in range(block)]
            gens = [kernel(ctx, *args) for ctx in ctxs]
            alive = list(range(block))
            phase = 0
            while alive:
                order = rng.permutation(len(alive))
                finished: list[int] = []
                yielded: list[int] = []
                for pos in order:
                    t = alive[pos]
                    if san is not None:
                        san.begin_thread_step(name, bid, phase, t)
                    try:
                        next(gens[t])
                        yielded.append(t)
                    except StopIteration:
                        finished.append(t)
                    finally:
                        if san is not None:
                            san.end_thread_step()
                    ctxs[t]._end_phase()
                if san is not None:
                    san.end_phase(name, bid, phase)
                if yielded and finished:
                    error = BarrierDivergenceError(
                        name, bid, phase, sorted(finished), sorted(yielded)
                    )
                    if san is not None:
                        san.record_divergence(error)
                    raise error
                alive = sorted(yielded)
                phase += 1
            n_phases_seen = max(n_phases_seen, phase)

            # Aggregate this block warp-by-warp, phase-by-phase.
            bcycles = 0.0
            max_phases = max(len(c._phase_ops) for c in ctxs)
            for w0 in range(0, block, warp):
                wthreads = ctxs[w0 : w0 + warp]
                for p in range(max_phases):
                    ops = [c._phase_ops[p] if p < len(c._phase_ops) else 0 for c in wthreads]
                    m = max(ops)
                    warp_max_total += m
                    bcycles += m
                    thread_total += sum(ops)
            block_cycles.append(bcycles)

        imbalance = 0.0
        denom = warp_max_total * min(warp, block)
        if denom > 0:
            imbalance = 1.0 - thread_total / denom
        report = KernelReport(
            name=name,
            grid=grid,
            block=block,
            n_phases=n_phases_seen,
            warp_max_ops=warp_max_total,
            total_thread_ops=thread_total,
            block_cycles=block_cycles,
            imbalance=imbalance,
        )
        self.cost_model.time_kernel(report)
        self.reports.append(report)
        if san is not None:
            new_findings = len(san.findings) - findings_mark
            if new_findings:
                self.tracer.metrics.counter(
                    "sanitizer.events", kernel=name
                ).inc(new_findings)
        return report

    # -- accounting ---------------------------------------------------------------
    def total_sim_seconds(self) -> float:
        return sum(r.sim_seconds for r in self.reports)

    def total_sim_cycles(self) -> float:
        return sum(r.sim_cycles for r in self.reports)

    def reset_reports(self) -> None:
        self.reports.clear()
