"""Device profiling: aggregate kernel reports into a readable summary.

The simulator records one :class:`~repro.gpu.kernel.KernelReport` per
launch/primitive. This module rolls them up per kernel name — launches,
simulated time, share of total, work efficiency (useful thread work over
serialized warp work), and imbalance — the view a CUDA profiler would give
and what the EXPERIMENTS analysis of the simulated backend reads.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from repro.gpu.kernel import Device


@dataclass
class KernelSummary:
    """Aggregate of all launches sharing one kernel name."""

    name: str
    launches: int = 0
    sim_seconds: float = 0.0
    sim_cycles: float = 0.0
    total_thread_ops: float = 0.0
    warp_max_ops: float = 0.0

    @property
    def efficiency(self) -> float:
        """Useful work / serialized warp work (1.0 = perfectly converged)."""
        if self.warp_max_ops <= 0:
            return 1.0
        return min(1.0, self.total_thread_ops / self.warp_max_ops)


@dataclass
class DeviceProfile:
    """Per-kernel rollup of a device's recorded activity."""

    device_name: str
    kernels: dict[str, KernelSummary] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(k.sim_seconds for k in self.kernels.values())

    def share(self, name: str) -> float:
        total = self.total_seconds
        if total <= 0 or name not in self.kernels:
            return 0.0
        return self.kernels[name].sim_seconds / total

    def hottest(self, n: int = 3) -> list[KernelSummary]:
        return sorted(
            self.kernels.values(), key=lambda k: -k.sim_seconds
        )[:n]

    def format(self) -> str:
        out = io.StringIO()
        out.write(f"== device profile: {self.device_name} ==\n")
        out.write(
            f"{'kernel':<20}{'launches':>10}{'sim time':>12}{'share':>8}"
            f"{'efficiency':>12}\n"
        )
        for k in sorted(self.kernels.values(), key=lambda k: -k.sim_seconds):
            out.write(
                f"{k.name:<20}{k.launches:>10}{k.sim_seconds:>11.6f}s"
                f"{self.share(k.name):>7.1%}{k.efficiency:>12.2f}\n"
            )
        out.write(f"{'total':<20}{'':>10}{self.total_seconds:>11.6f}s\n")
        return out.getvalue()


def profile_device(device: Device) -> DeviceProfile:
    """Roll up everything the device has recorded so far."""
    profile = DeviceProfile(device_name=device.spec.name)
    for report in device.reports:
        summary = profile.kernels.setdefault(
            report.name, KernelSummary(name=report.name)
        )
        summary.launches += 1
        summary.sim_seconds += report.sim_seconds
        summary.sim_cycles += report.sim_cycles
        summary.total_thread_ops += report.total_thread_ops
        summary.warp_max_ops += report.warp_max_ops * min(
            device.spec.warp_size, report.block
        )
    return profile
