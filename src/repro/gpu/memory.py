"""Simulated device memory with budget accounting.

:class:`GlobalMemory` hands out real NumPy arrays but charges them against
the device's global-memory budget, raising
:class:`~repro.errors.MemoryBudgetError` on exhaustion — this is what makes
the paper's "the index must fit a memory-restricted device" constraint
testable. :class:`SharedMemory` is the per-block scratch space, checked
against ``shared_mem_per_block``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryBudgetError
from repro.gpu.device import DeviceSpec
from repro.obs.tracer import Tracer, get_tracer


class GlobalMemory:
    """Allocation-tracked global memory of one simulated device.

    With a tracer attached (the owning :class:`~repro.gpu.kernel.Device`
    passes its own), every allocation / upload / free is recorded as a
    ``cat="memory"`` span with byte counts, and the registry keeps a
    ``memory.used_bytes`` gauge plus an allocation counter.
    """

    def __init__(self, spec: DeviceSpec, *, tracer: Tracer | None = None):
        self.spec = spec
        self.tracer = get_tracer(tracer)
        self._allocs: dict[str, np.ndarray] = {}
        self.peak_bytes = 0

    def _note(self, op: str, name: str, nbytes: int) -> None:
        metrics = self.tracer.metrics
        if metrics.enabled:
            metrics.counter(f"memory.{op}s").inc()
            if op == "alloc":
                metrics.counter("memory.alloc_bytes").inc(nbytes)
            metrics.gauge("memory.used_bytes").set(self.used_bytes)
            metrics.gauge("memory.peak_bytes").set(self.peak_bytes)

    @property
    def used_bytes(self) -> int:
        return sum(a.nbytes for a in self._allocs.values())

    @property
    def free_bytes(self) -> int:
        return self.spec.global_mem_bytes - self.used_bytes

    def alloc(self, name: str, shape, dtype) -> np.ndarray:
        """Allocate a named, zero-initialized array on the device."""
        if name in self._allocs:
            raise MemoryBudgetError(f"allocation {name!r} already exists")
        with self.tracer.span("mem:alloc", cat="memory", allocation=name) as sp:
            arr = np.zeros(shape, dtype=dtype)
            if arr.nbytes > self.free_bytes:
                need = arr.nbytes
                raise MemoryBudgetError(
                    f"device OOM allocating {name!r}: need {need} bytes, "
                    f"{self.free_bytes} free of {self.spec.global_mem_bytes}"
                )
            self._allocs[name] = arr
            self.peak_bytes = max(self.peak_bytes, self.used_bytes)
            sp.set(nbytes=int(arr.nbytes))
        self._note("alloc", name, int(arr.nbytes))
        return arr

    def upload(self, name: str, host_array: np.ndarray) -> np.ndarray:
        """Copy a host array onto the device (alloc + copy)."""
        with self.tracer.span(
            "mem:upload", cat="memory",
            allocation=name, nbytes=int(host_array.nbytes),
        ):
            arr = self.alloc(name, host_array.shape, host_array.dtype)
            arr[...] = host_array
        self._note("upload", name, int(host_array.nbytes))
        return arr

    def free(self, name: str) -> None:
        if name not in self._allocs:
            raise MemoryBudgetError(f"free of unknown allocation {name!r}")
        nbytes = int(self._allocs[name].nbytes)
        del self._allocs[name]
        with self.tracer.span(
            "mem:free", cat="memory", allocation=name, nbytes=nbytes
        ):
            pass
        self._note("free", name, nbytes)

    def free_all(self) -> None:
        self._allocs.clear()

    def get(self, name: str) -> np.ndarray:
        return self._allocs[name]

    def __contains__(self, name: str) -> bool:
        return name in self._allocs


class SharedMemory:
    """Per-block shared memory: named arrays within the block budget.

    When a sanitizer is attached (see :mod:`repro.analysis.sanitizer`),
    :meth:`array` hands out recording proxies instead of raw arrays, so
    every shared-memory access a kernel makes is attributed to the running
    thread and checked for races at each barrier.
    """

    def __init__(self, spec: DeviceSpec, *, sanitizer=None):
        self.spec = spec
        self._arrays: dict[str, np.ndarray] = {}
        self._sanitizer = sanitizer
        self._wrapped: dict[str, object] = {}

    def array(self, name: str, shape, dtype) -> np.ndarray:
        """Get-or-create a shared array (all threads of the block see it)."""
        if name not in self._arrays:
            arr = np.zeros(shape, dtype=dtype)
            used = sum(a.nbytes for a in self._arrays.values())
            if used + arr.nbytes > self.spec.shared_mem_per_block:
                raise MemoryBudgetError(
                    f"shared memory overflow: {used + arr.nbytes} bytes "
                    f"> {self.spec.shared_mem_per_block} per block"
                )
            self._arrays[name] = arr
            if self._sanitizer is not None:
                self._wrapped[name] = self._sanitizer.wrap(arr, f"shared:{name}")
        if self._sanitizer is not None:
            return self._wrapped[name]
        return self._arrays[name]
