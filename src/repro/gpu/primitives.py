"""Device-wide primitives: prefix sum and segmented sort.

The paper treats ``GPUPrefixSum`` and per-seed sorting as library
primitives (Algorithm 1 steps 2 and 4, Algorithm 2). We provide them in two
forms:

- :func:`gpu_prefix_sum` / :func:`gpu_segment_sort` — *analytically timed*
  primitives: functionally NumPy, but they charge the device's cost model
  with the work/depth of the textbook parallel algorithm (Blelchch scan:
  ``2n`` work over ``2 log n`` phases; bitonic-style segment sort:
  ``n log² n`` work). The simulated pipeline uses these so that simulated
  runtimes include primitive costs without per-thread Python overhead.
- :func:`exclusive_prefix_sum_kernel` — a genuine Blelloch up-/down-sweep
  written as a per-thread kernel, used by the test-suite to validate the
  barrier/scheduling machinery against ``np.cumsum``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import KernelError
from repro.gpu.kernel import Device, KernelReport


def _charge_primitive(device: Device, name: str, work: float, depth: float) -> KernelReport:
    """Record an analytically-modeled primitive in the device's reports.

    ``work`` total operations spread over the whole device; ``depth``
    sequential phases. Simulated cycles = max(work / total_cores, depth).
    """
    spec = device.spec
    cycles = max(work / spec.total_cores, depth)
    report = KernelReport(
        name=name,
        grid=1,
        block=1,
        n_phases=int(depth),
        warp_max_ops=work,
        total_thread_ops=work,
        block_cycles=[cycles],
        imbalance=0.0,
        sim_cycles=cycles,
        sim_seconds=spec.seconds_from_cycles(cycles),
    )
    device.reports.append(report)
    return report


def gpu_prefix_sum(device: Device, array: np.ndarray, *, exclusive: bool = True) -> np.ndarray:
    """In-place device prefix sum (Blelloch cost: 2n work, 2 log n depth)."""
    n = array.size
    if n:
        if exclusive:
            total = array.copy()
            array[0] = 0
            np.cumsum(total[:-1], out=array[1:])
        else:
            np.cumsum(array, out=array)
    _charge_primitive(
        device, "GPUPrefixSum", work=2.0 * n, depth=2.0 * max(1.0, math.log2(max(n, 2)))
    )
    return array


def gpu_segment_sort(device: Device, values: np.ndarray, seg_starts: np.ndarray) -> np.ndarray:
    """Sort each segment ``values[seg_starts[i]:seg_starts[i+1]]`` ascending.

    Models Algorithm 1 step 4 ("assign a thread per seed and sort its
    locations"): charged as one thread per segment doing an insertion-style
    sort, so the cost model sees the per-seed imbalance (a hot seed's long
    segment serializes its warp — the same skew Fig. 6 shows).
    """
    seg_starts = np.asarray(seg_starts, dtype=np.int64)
    if seg_starts.size and (seg_starts[0] != 0 or seg_starts[-1] != values.size):
        raise KernelError("seg_starts must start at 0 and end at len(values)")
    lengths = np.diff(seg_starts)
    out = values
    for lo, hi in zip(seg_starts[:-1], seg_starts[1:], strict=True):
        if hi - lo > 1:
            out[lo:hi] = np.sort(out[lo:hi])
    # Warp-max accounting: group segments into warps of warp_size threads.
    warp = device.spec.warp_size
    cost = lengths * np.maximum(np.log2(np.maximum(lengths, 2)), 1.0)
    n_seg = cost.size
    warp_max = 0.0
    for w0 in range(0, n_seg, warp):
        warp_max += float(cost[w0 : w0 + warp].max(initial=0.0))
    _charge_primitive(
        device,
        "GPUSegmentSort",
        work=float(warp_max) * warp,
        depth=float(cost.max(initial=1.0)),
    )
    return out


def exclusive_prefix_sum_kernel(ctx, data: np.ndarray, n: int):
    """Genuine Blelloch scan kernel over ``data[:n]`` (single block).

    ``n`` must be a power of two not exceeding the block size × 2. Used by
    tests to validate barrier semantics; the pipeline uses the analytic
    :func:`gpu_prefix_sum`.
    """
    tid = ctx.tid
    # Up-sweep (reduce).
    depth = int(math.log2(n))
    stride = 1
    for _ in range(depth):
        idx = (tid + 1) * stride * 2 - 1
        if idx < n:
            data[idx] += data[idx - stride]
            ctx.work(1)
        stride *= 2
        yield
    # Clear the root and down-sweep.
    if tid == 0:
        data[n - 1] = 0
        ctx.work(1)
    yield
    stride = n // 2
    for _ in range(depth):
        idx = (tid + 1) * stride * 2 - 1
        if idx < n:
            left = data[idx - stride].copy() if hasattr(data[idx - stride], "copy") else data[idx - stride]
            data[idx - stride] = data[idx]
            data[idx] += left
            ctx.work(2)
        stride //= 2
        yield
