"""GPUMEM's lightweight seed index — CPU reference implementation.

The paper's index (§III-A, Figure 1) is two arrays:

- ``locs``: positions of the indexed seeds in the reference, grouped by seed
  value and sorted within each group;
- ``ptrs``: prefix sums of per-seed occurrence counts, so the locations of
  seed ``s`` live at ``locs[ptrs[s] : ptrs[s+1]]``.

Seeds are taken every ``step`` (Δs) positions, with
``step <= min_length - seed_length + 1`` (Eq. 1) guaranteeing every MEM of
length ≥ ``min_length`` contains an indexed, query-aligned seed.

This module is the *sequential reference*: the GPU-kernel version of the same
construction (Algorithm 1: atomic counting → prefix sum → atomic fill →
per-seed sort) lives in :mod:`repro.core.seed_index` and is tested for
equality against this one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import IndexIntegrityError, InvalidParameterError
from repro.sequence.packed import kmer_codes


@dataclass(frozen=True)
class KmerSeedIndex:
    """The ``locs``/``ptrs`` pair for one reference region.

    ``locs`` holds *absolute* reference positions (the paper stores
    tile-relative offsets to shave bits; absolute positions keep the host
    bookkeeping simpler and the size accounting is reported equivalently
    via :attr:`nbits_per_loc`).
    """

    seed_length: int
    step: int
    region_start: int
    region_end: int
    ptrs: np.ndarray  # int64[4**seed_length + 1]
    locs: np.ndarray  # int64[n_locs]

    @property
    def n_locs(self) -> int:
        return int(self.locs.size)

    @property
    def n_seeds(self) -> int:
        return 4 ** self.seed_length

    @property
    def nbits_per_loc(self) -> int:
        """Bits per stored location at the paper's packing (⌈log2 ℓtile⌉)."""
        span = max(2, self.region_end - self.region_start)
        return int(np.ceil(np.log2(span)))

    @property
    def nbytes_packed(self) -> int:
        """Footprint at the paper's bit packing (§III-A sizing formulas)."""
        locs_bits = self.n_locs * self.nbits_per_loc
        ptrs_bits = (self.n_seeds + 1) * max(1, int(np.ceil(np.log2(max(2, self.n_locs + 1)))))
        return (locs_bits + ptrs_bits + 7) // 8

    def lookup(self, seeds: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized lookup: for each seed value, its (start, count) slice.

        Out-of-range seed values (negative — used by callers to mark query
        windows that fall off the sequence) return count 0.
        """
        seeds = np.asarray(seeds, dtype=np.int64)
        valid = (seeds >= 0) & (seeds < self.n_seeds)
        safe = np.where(valid, seeds, 0)
        starts = self.ptrs[safe]
        counts = np.where(valid, self.ptrs[safe + 1] - starts, 0)
        return starts, counts

    def locations_of(self, seed_value: int) -> np.ndarray:
        """All reference positions of one seed value (sorted)."""
        if not 0 <= seed_value < self.n_seeds:
            return np.empty(0, dtype=np.int64)
        return self.locs[self.ptrs[seed_value] : self.ptrs[seed_value + 1]]

    def check(self) -> None:
        """Internal consistency checks (used by tests, --selfcheck, and load).

        Raises :class:`repro.errors.IndexIntegrityError` (never a bare
        ``AssertionError``, which ``python -O`` would strip) so corrupt
        indexes are rejected structurally on every interpreter mode.
        """
        if self.ptrs.size != self.n_seeds + 1:
            raise IndexIntegrityError(
                f"ptrs has {self.ptrs.size} entries, expected "
                f"{self.n_seeds + 1} (4^{self.seed_length} + 1)",
                field="ptrs",
            )
        if self.ptrs[0] != 0 or self.ptrs[-1] != self.n_locs:
            raise IndexIntegrityError(
                f"ptrs endpoints ({int(self.ptrs[0])}, {int(self.ptrs[-1])}) "
                f"do not span [0, n_locs={self.n_locs}]",
                field="ptrs",
            )
        if not np.all(np.diff(self.ptrs) >= 0):
            raise IndexIntegrityError(
                "ptrs must be non-decreasing", field="ptrs"
            )
        for s in range(self.n_seeds):
            grp = self.locs[self.ptrs[s] : self.ptrs[s + 1]]
            if not np.all(np.diff(grp) > 0):
                raise IndexIntegrityError(
                    f"seed {s} locations not sorted", field="locs"
                )


def validate_sparsity(seed_length: int, step: int, min_length: int) -> None:
    """Enforce Eq. (1): ``Δs <= L - ℓs + 1``; violating it loses MEMs."""
    if seed_length < 1:
        raise InvalidParameterError(f"seed_length must be >= 1, got {seed_length}")
    if step < 1:
        raise InvalidParameterError(f"step must be >= 1, got {step}")
    if min_length < seed_length:
        raise InvalidParameterError(
            f"min_length ({min_length}) must be >= seed_length ({seed_length})"
        )
    if step > min_length - seed_length + 1:
        raise InvalidParameterError(
            f"Eq. (1) violated: step {step} > min_length - seed_length + 1 = "
            f"{min_length - seed_length + 1}; MEMs could be missed"
        )


def max_step(seed_length: int, min_length: int) -> int:
    """The paper's choice: the largest Eq. (1)-legal step, ``L - ℓs + 1``."""
    if min_length < seed_length:
        raise InvalidParameterError(
            f"min_length ({min_length}) must be >= seed_length ({seed_length})"
        )
    return min_length - seed_length + 1


def build_kmer_index(
    codes: np.ndarray,
    *,
    seed_length: int,
    step: int,
    region_start: int = 0,
    region_end: int | None = None,
) -> KmerSeedIndex:
    """Build the ``locs``/``ptrs`` index for reference region ``[start, end)``.

    Indexed positions are the global grid ``p ≡ 0 (mod step)`` intersected
    with the region (grid-aligned globally so that tiling does not shift the
    sample phase). Seed windows may read past ``region_end`` into the full
    sequence — only the window *start* must lie in the region (DESIGN.md §5
    note 3) — but never past the end of the sequence itself.
    """
    codes = np.ascontiguousarray(codes, dtype=np.uint8)
    n = codes.size
    region_end = n if region_end is None else min(int(region_end), n)
    region_start = max(0, int(region_start))
    if seed_length < 1 or seed_length > 31:
        raise InvalidParameterError(f"seed_length out of range: {seed_length}")
    if step < 1:
        raise InvalidParameterError(f"step must be >= 1, got {step}")

    first = ((region_start + step - 1) // step) * step
    last = min(region_end, n - seed_length + 1)  # window must fit in sequence
    if first >= last:
        positions = np.empty(0, dtype=np.int64)
    else:
        positions = np.arange(first, last, step, dtype=np.int64)

    n_seeds = 4**seed_length
    if positions.size == 0:
        return KmerSeedIndex(
            seed_length=seed_length,
            step=step,
            region_start=region_start,
            region_end=region_end,
            ptrs=np.zeros(n_seeds + 1, dtype=np.int64),
            locs=positions,
        )

    all_kmers = kmer_codes(codes, seed_length)
    seeds = all_kmers[positions]
    order = np.argsort(seeds, kind="stable")  # stable → per-seed positions sorted
    locs = positions[order]
    counts = np.bincount(seeds, minlength=n_seeds)
    ptrs = np.zeros(n_seeds + 1, dtype=np.int64)
    np.cumsum(counts, out=ptrs[1:])
    return KmerSeedIndex(
        seed_length=seed_length,
        step=step,
        region_start=region_start,
        region_end=region_end,
        ptrs=ptrs,
        locs=locs,
    )
