"""Batched sequence-comparison kernels.

Every matcher in the library reduces to one primitive: *given many position
pairs, how far do the two sequences agree?* This module provides that
primitive fully vectorized:

- :func:`common_prefix_len` — forward agreement run length for a batch of
  position pairs (used for right extension, LCP arrays, match verification).
- :func:`common_suffix_len` — backward agreement run length (left
  extension / left-maximality).
- :func:`compare_positions` — three-way suffix comparison (used by the
  batched binary searches of the suffix-array baselines).

The kernels compare fixed-size windows (``CHUNK`` bases) per vectorized
round, retiring pairs as soon as a mismatch appears, so total work is
``O(sum of agreement lengths + CHUNK * n_pairs)`` with NumPy-sized
constants. Batches are internally split so peak scratch memory stays below
``~CHUNK * BATCH`` bytes per operand.
"""

from __future__ import annotations

import numpy as np

#: Bases compared per vectorized round.
CHUNK = 64

#: Maximum pairs gathered at once (bounds scratch memory to ~32 MB).
BATCH = 1 << 18

# Distinct out-of-range sentinels so a run can never continue past the end
# of either sequence (4 != 5, and neither equals a real base 0..3).
_SENT_A = 4
_SENT_B = 5


def _padded(codes: np.ndarray, sentinel: int) -> np.ndarray:
    """Copy of ``codes`` with CHUNK sentinel bases appended."""
    out = np.full(codes.size + CHUNK, sentinel, dtype=np.uint8)
    out[: codes.size] = codes
    return out


def common_prefix_len(
    a: np.ndarray,
    b: np.ndarray,
    pa: np.ndarray,
    pb: np.ndarray,
    *,
    limit: int | None = None,
) -> np.ndarray:
    """Length of the longest common prefix of ``a[pa:]`` and ``b[pb:]``.

    Vectorized over equal-length position vectors ``pa``/``pb``. Positions
    at or past the end of their sequence yield 0. With ``limit`` the result
    is capped (and the scan stops early, so capping is also an optimization).
    """
    pa = np.asarray(pa, dtype=np.int64)
    pb = np.asarray(pb, dtype=np.int64)
    if pa.shape != pb.shape:
        raise ValueError(f"position shape mismatch: {pa.shape} vs {pb.shape}")
    n = pa.size
    out = np.zeros(n, dtype=np.int64)
    if n == 0:
        return out
    a_pad = _padded(np.ascontiguousarray(a, dtype=np.uint8), _SENT_A)
    b_pad = _padded(np.ascontiguousarray(b, dtype=np.uint8), _SENT_B)
    na, nb = a.size, b.size
    offsets = np.arange(CHUNK)
    for lo in range(0, n, BATCH):
        hi = min(lo + BATCH, n)
        idx = np.arange(lo, hi)
        # Out-of-range start positions are moved onto the sentinel region so
        # their run length is 0 (rather than silently clamping into the data).
        cur_a = np.where((pa[idx] < 0) | (pa[idx] > na), na, pa[idx])
        cur_b = np.where((pb[idx] < 0) | (pb[idx] > nb), nb, pb[idx])
        run = np.zeros(idx.size, dtype=np.int64)
        active = np.arange(idx.size)
        while active.size:
            wa = a_pad[cur_a[active, None] + offsets]
            wb = b_pad[cur_b[active, None] + offsets]
            neq = wa != wb
            has_mismatch = neq.any(axis=1)
            first = np.where(has_mismatch, neq.argmax(axis=1), CHUNK)
            run[active] += first
            survivors = ~has_mismatch
            if limit is not None:
                survivors &= run[active] < limit
            active = active[survivors]
            cur_a[active] += CHUNK
            cur_b[active] += CHUNK
        if limit is not None:
            np.minimum(run, limit, out=run)
        out[idx] = run
    return out


def common_suffix_len(
    a: np.ndarray,
    b: np.ndarray,
    pa: np.ndarray,
    pb: np.ndarray,
    *,
    limit: int | None = None,
) -> np.ndarray:
    """Length of the longest common suffix of ``a[:pa]`` and ``b[:pb]``.

    This is the left-extension primitive: for a match whose starts are
    ``(r, q)``, ``common_suffix_len(R, Q, r, q)`` says how far the match can
    grow to the left.
    """
    a = np.ascontiguousarray(a, dtype=np.uint8)
    b = np.ascontiguousarray(b, dtype=np.uint8)
    pa = np.asarray(pa, dtype=np.int64)
    pb = np.asarray(pb, dtype=np.int64)
    # Reverse both sequences; a common suffix of prefixes becomes a common
    # prefix of suffixes at mirrored positions.
    return common_prefix_len(
        a[::-1], b[::-1], a.size - pa, b.size - pb, limit=limit
    )


def compare_positions(
    a: np.ndarray,
    b: np.ndarray,
    pa: np.ndarray,
    pb: np.ndarray,
) -> np.ndarray:
    """Three-way comparison of suffixes ``a[pa:]`` vs ``b[pb:]``.

    Returns -1 / 0 / +1 per pair under true suffix order: compare bases until
    the first difference; if one suffix is a proper prefix of the other, the
    shorter one is smaller (matching the suffix-array convention with a
    virtual end-of-string sentinel smaller than every base).
    """
    a = np.ascontiguousarray(a, dtype=np.uint8)
    b = np.ascontiguousarray(b, dtype=np.uint8)
    pa = np.asarray(pa, dtype=np.int64)
    pb = np.asarray(pb, dtype=np.int64)
    lcp = common_prefix_len(a, b, pa, pb)
    # Character (or sentinel) that decided the comparison.
    ia = pa + lcp
    ib = pb + lcp
    # int16/int8 are deliberate: bases are uint8 widened so the -1 sentinel
    # fits, and the result is a -1/0/+1 sign — no index/offset lives here.
    ca = np.where(ia < a.size, a[np.minimum(ia, a.size - 1)].astype(np.int16), -1)  # simt: ignore[KL202]
    cb = np.where(ib < b.size, b[np.minimum(ib, b.size - 1)].astype(np.int16), -1)  # simt: ignore[KL202]
    return np.sign(ca - cb).astype(np.int8)  # simt: ignore[KL202]
