"""Index-structure substrate.

Everything the four CPU baselines and GPUMEM's index need, built from
scratch: suffix arrays (vectorized prefix doubling), LCP arrays, the
Burrows-Wheeler transform, an FM-index with backward search, sparse and
enhanced sparse suffix arrays, and the CPU reference of GPUMEM's
``locs``/``ptrs`` k-mer index.
"""

from repro.index.bwt import bwt_from_sa, bwt_transform, inverse_bwt
from repro.index.compare import (
    common_prefix_len,
    common_suffix_len,
    compare_positions,
)
from repro.index.esa import EnhancedSparseSuffixArray, LCPIntervals
from repro.index.fm_index import FMIndex
from repro.index.kmer_index import KmerSeedIndex, build_kmer_index
from repro.index.lcp import lcp_array, lcp_kasai, naive_lcp_array
from repro.index.matching import SuffixArraySearcher
from repro.index.rmq import SparseTableRMQ
from repro.index.sais import sais_suffix_array
from repro.index.serialize import (
    FORMAT_VERSION,
    load_kmer_bundle,
    load_kmer_index,
    load_searcher,
    load_searcher_bundle,
    npz_path,
    save_kmer_bundle,
    save_kmer_index,
    save_searcher,
    save_searcher_bundle,
)
from repro.index.sparse_sa import SparseSuffixArray
from repro.index.store import (
    STORE_ENV_VAR,
    IndexStore,
    default_store,
    resolve_store,
    row_key,
    searcher_key,
    store_at,
)
from repro.index.suffix_array import (
    naive_suffix_array,
    rank_array,
    suffix_array,
    verify_suffix_array,
)

__all__ = [
    "common_prefix_len",
    "common_suffix_len",
    "compare_positions",
    "suffix_array",
    "naive_suffix_array",
    "sais_suffix_array",
    "rank_array",
    "verify_suffix_array",
    "lcp_array",
    "lcp_kasai",
    "naive_lcp_array",
    "SparseTableRMQ",
    "bwt_transform",
    "bwt_from_sa",
    "inverse_bwt",
    "FMIndex",
    "SparseSuffixArray",
    "EnhancedSparseSuffixArray",
    "LCPIntervals",
    "KmerSeedIndex",
    "build_kmer_index",
    "SuffixArraySearcher",
    "save_kmer_index",
    "load_kmer_index",
    "save_searcher",
    "load_searcher",
    "FORMAT_VERSION",
    "npz_path",
    "save_kmer_bundle",
    "load_kmer_bundle",
    "save_searcher_bundle",
    "load_searcher_bundle",
    "IndexStore",
    "STORE_ENV_VAR",
    "store_at",
    "default_store",
    "resolve_store",
    "row_key",
    "searcher_key",
]
