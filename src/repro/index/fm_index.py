"""FM-index with checkpointed occurrence counts and a sampled suffix array.

This is the substrate of the slaMEM baseline [Fernandes & Freitas 2013],
which performs MEM retrieval with the backward-search method of the FM-index
[Ferragina & Manzini 2000]. The index supports:

- ``backward_extend``: prepend one symbol to the current SA interval (the
  core backward-search step),
- ``count``/``search``: full-pattern backward search,
- ``locate``: text positions of an interval via sampled-SA + LF walking,
- batched variants of the hot operations (vectors of intervals), which is
  what the slaMEM matcher uses to process many query positions per step.

Occ is stored as checkpoints every ``occ_rate`` rows plus the raw BWT; a
point query adds the partial block count with one vectorized slice (or, in
the batched path, a bincount-style gather).
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_
from repro.index.bwt import FM_SIGMA, _with_sentinel, bwt_from_sa
from repro.index.suffix_array import suffix_array


class FMIndex:
    """FM-index of a DNA code sequence (alphabet shifted internally).

    Parameters
    ----------
    codes:
        Base codes (0..3).
    occ_rate:
        Checkpoint spacing for the occurrence table.
    sa_rate:
        Sampling rate of the suffix array used by ``locate``.
    """

    def __init__(self, codes: np.ndarray, *, occ_rate: int = 64, sa_rate: int = 16):
        codes = np.asarray(codes, dtype=np.uint8)
        if occ_rate < 1 or sa_rate < 1:
            raise IndexError_("occ_rate and sa_rate must be >= 1")
        self.n_text = int(codes.size)
        self.occ_rate = int(occ_rate)
        self.sa_rate = int(sa_rate)

        text = _with_sentinel(codes)
        sa = suffix_array(text)
        self.n = int(sa.size)  # == n_text + 1
        self.bwt = bwt_from_sa(text, sa)

        counts = np.bincount(self.bwt, minlength=FM_SIGMA).astype(np.int64)
        #: C[s] = number of text symbols strictly smaller than s.
        self.C = np.zeros(FM_SIGMA + 1, dtype=np.int64)
        np.cumsum(counts, out=self.C[1:])

        # Occ checkpoints: occ_ckpt[k, s] = #occurrences of s in bwt[:k*occ_rate]
        n_ckpt = self.n // self.occ_rate + 1
        onehot = np.zeros((self.n, FM_SIGMA), dtype=np.int64)
        onehot[np.arange(self.n), self.bwt] = 1
        cum = np.cumsum(onehot, axis=0)
        self._occ_ckpt = np.zeros((n_ckpt, FM_SIGMA), dtype=np.int64)
        marks = np.arange(1, n_ckpt) * self.occ_rate
        self._occ_ckpt[1:] = cum[marks - 1]

        # Sampled SA: keep sa[i] when sa[i] % sa_rate == 0; mark others -1.
        self._sa_sample = np.where(sa % self.sa_rate == 0, sa, -1)
        self._full_sa = None  # lazily materialized for tests / small inputs

    # -- low-level Occ ------------------------------------------------------------
    def occ(self, symbol, pos):
        """#occurrences of ``symbol`` in ``bwt[:pos]`` (both vectorizable)."""
        symbol = np.asarray(symbol, dtype=np.int64)
        pos = np.asarray(pos, dtype=np.int64)
        scalar = symbol.ndim == 0 and pos.ndim == 0
        symbol = np.atleast_1d(symbol)
        pos = np.atleast_1d(pos)
        if np.any((pos < 0) | (pos > self.n)):
            raise IndexError_("occ position out of range")
        ck = pos // self.occ_rate
        base = self._occ_ckpt[ck, symbol]
        # Partial block: count matches in bwt[ck*occ_rate : pos].
        starts = ck * self.occ_rate
        rem = pos - starts
        max_rem = int(rem.max(initial=0))
        if max_rem > 0:
            offs = np.arange(max_rem)
            idx = np.minimum(starts[:, None] + offs, self.n - 1)
            window = self.bwt[idx]
            hits = (window == symbol[:, None]) & (offs < rem[:, None])
            base = base + hits.sum(axis=1)
        if scalar and base.size == 1:
            return int(np.asarray(base).reshape(()))
        return base

    def occ_scalar(self, symbol: int, pos: int) -> int:
        """Scalar fast path of :meth:`occ` (hot loop of the slaMEM matcher)."""
        ck = pos // self.occ_rate
        base = int(self._occ_ckpt[ck, symbol])
        start = ck * self.occ_rate
        if pos > start:
            base += int(np.count_nonzero(self.bwt[start:pos] == symbol))
        return base

    def backward_extend_scalar(self, lo: int, hi: int, symbol: int) -> tuple[int, int]:
        """Scalar fast path of :meth:`backward_extend` (symbol in 0..3)."""
        s = symbol + 1
        c = int(self.C[s])
        return c + self.occ_scalar(s, lo), c + self.occ_scalar(s, hi)

    # -- backward search ----------------------------------------------------------
    def backward_extend(self, lo, hi, symbol):
        """Prepend ``symbol``: interval of ``sP`` given interval of ``P``.

        All three arguments may be vectors. Returns ``(lo', hi')``; empty
        intervals come back with ``lo' == hi'``.
        """
        symbol = np.asarray(symbol, dtype=np.int64) + 1  # shift to FM alphabet
        lo = np.asarray(lo, dtype=np.int64)
        hi = np.asarray(hi, dtype=np.int64)
        new_lo = self.C[symbol] + self.occ(symbol, lo)
        new_hi = self.C[symbol] + self.occ(symbol, hi)
        if np.ndim(new_lo) == 0 or (
            symbol.ndim == 0 and lo.ndim == 0 and hi.ndim == 0
        ):
            return int(np.asarray(new_lo).reshape(())), int(
                np.asarray(new_hi).reshape(())
            )
        return new_lo, new_hi

    def whole_interval(self):
        """The SA interval of the empty pattern: ``(0, n)``."""
        return 0, self.n

    def search(self, pattern: np.ndarray):
        """Backward search of a full pattern; returns its SA interval."""
        pattern = np.asarray(pattern, dtype=np.uint8)
        lo, hi = self.whole_interval()
        for sym in pattern[::-1]:
            lo, hi = self.backward_extend(lo, hi, int(sym))
            lo = int(np.asarray(lo).reshape(()) if np.asarray(lo).size == 1 else lo)
            hi = int(np.asarray(hi).reshape(()) if np.asarray(hi).size == 1 else hi)
            if lo >= hi:
                return lo, lo
        return lo, hi

    def count(self, pattern: np.ndarray) -> int:
        """Number of occurrences of ``pattern`` in the indexed text."""
        lo, hi = self.search(pattern)
        return int(hi - lo)

    # -- locate -------------------------------------------------------------------
    def lf(self, rows):
        """LF mapping for one or many BWT rows."""
        rows = np.asarray(rows, dtype=np.int64)
        syms = self.bwt[rows].astype(np.int64)
        return self.C[syms] + self.occ(syms, rows)

    def locate(self, lo: int, hi: int) -> np.ndarray:
        """Text positions (unsorted) of all suffixes in SA rows [lo, hi)."""
        rows = np.arange(int(lo), int(hi), dtype=np.int64)
        out = np.full(rows.size, -1, dtype=np.int64)
        steps = np.zeros(rows.size, dtype=np.int64)
        cur = rows.copy()
        pending = np.arange(rows.size)
        while pending.size:
            sampled = self._sa_sample[cur[pending]]
            done = sampled >= 0
            hit = pending[done]
            out[hit] = sampled[done] + steps[hit]
            pending = pending[~done]
            if pending.size:
                cur[pending] = self.lf(cur[pending])
                steps[pending] += 1
        # Positions may exceed n_text - 1 only via the sentinel suffix; the
        # sentinel row resolves to position n_text which callers never match.
        return out

    # -- validation helpers -------------------------------------------------------
    def full_suffix_array(self) -> np.ndarray:
        """Materialize the complete SA (tests / small inputs only)."""
        if self._full_sa is None:
            out = self.locate(0, self.n)
            self._full_sa = out
        return self._full_sa

    @property
    def nbytes(self) -> int:
        """Approximate index footprint in bytes (bwt + checkpoints + samples)."""
        return int(
            self.bwt.nbytes + self._occ_ckpt.nbytes + self._sa_sample.nbytes
        )
