"""Enhanced (sparse) suffix array machinery — the essaMEM substrate.

essaMEM [Vyverman et al. 2013] augments sparseMEM's sparse suffix array with
auxiliary sparse structures (child-array-style interval navigation) so that
interval lookups avoid full binary searches. We model that accelerator as a
``4^k``-entry k-mer prefix table (an option real essaMEM also ships) plus
:class:`LCPIntervals`, a reusable LCP-interval-tree toolkit used both here
and by the slaMEM matcher for parent-interval lookups.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.index.rmq import SparseTableRMQ
from repro.index.sparse_sa import SparseSuffixArray


class LCPIntervals:
    """LCP-interval navigation over a (possibly sparse) suffix array.

    An *lcp-interval* ``[lo, hi)`` of depth ``d`` groups all suffixes that
    share a length-``d`` prefix. The two operations MEM matchers need:

    - :meth:`depth`: the string depth of an interval (min internal LCP);
    - :meth:`parent`: the smallest enclosing interval of strictly smaller
      depth (used by backward-search matchers to shorten the current match
      from the right).

    Both are built on a sparse-table RMQ, and :meth:`parent` is vectorized
    via galloping + binary search on range minima.
    """

    def __init__(self, lcp: np.ndarray):
        self.lcp = np.asarray(lcp, dtype=np.int64)
        self.m = int(self.lcp.size)
        self._rmq = SparseTableRMQ(self.lcp)

    def depth(self, lo, hi):
        """String depth of interval(s) ``[lo, hi)``: ``min lcp[lo+1 : hi]``.

        Singleton intervals have depth "suffix length", which callers must
        cap themselves; here they get int64 max from the RMQ's empty value.
        """
        lo = np.asarray(lo, dtype=np.int64)
        hi = np.asarray(hi, dtype=np.int64)
        return self._rmq.query(lo + 1, hi)

    def parent(self, lo, hi):
        """Smallest enclosing interval with depth < depth([lo, hi)).

        Vectorized: for each interval, the parent depth is
        ``d' = max(lcp[lo], lcp[hi])`` (with 0 at the array ends), and the
        parent's bounds are found by binary-searching how far the bounds can
        be pushed while every crossed LCP stays ``>= d'``.

        Returns ``(plo, phi, pdepth)``.
        """
        scalar = np.isscalar(lo) and np.isscalar(hi)
        lo = np.atleast_1d(np.asarray(lo, dtype=np.int64))
        hi = np.atleast_1d(np.asarray(hi, dtype=np.int64))
        left_lcp = np.where(lo > 0, self.lcp[np.maximum(lo, 0)], 0)
        left_lcp = np.where(lo <= 0, 0, left_lcp)
        right_lcp = np.where(hi < self.m, self.lcp[np.minimum(hi, self.m - 1)], 0)
        pdepth = np.maximum(left_lcp, right_lcp)

        plo = self._extend_left(lo, pdepth)
        phi = self._extend_right(hi, pdepth)
        if scalar:
            return int(plo[0]), int(phi[0]), int(pdepth[0])
        return plo, phi, pdepth

    def parent_scalar(self, lo: int, hi: int) -> tuple[int, int, int]:
        """Scalar fast path of :meth:`parent` (hot in the slaMEM matcher)."""
        left = int(self.lcp[lo]) if lo > 0 else 0
        right = int(self.lcp[hi]) if hi < self.m else 0
        d = max(left, right)
        rmq = self._rmq.query_scalar
        a, b = 0, lo
        while a < b:  # smallest plo with min lcp[plo+1 : lo+1] >= d
            mid = (a + b) >> 1
            if rmq(mid + 1, lo + 1) >= d:
                b = mid
            else:
                a = mid + 1
        plo = a
        a, b = hi, self.m
        while a < b:  # largest phi with min lcp[hi : phi] >= d
            mid = (a + b + 1) >> 1
            if rmq(hi, mid) >= d:
                a = mid
            else:
                b = mid - 1
        return plo, a, d

    def _extend_left(self, lo: np.ndarray, depth: np.ndarray) -> np.ndarray:
        """Smallest ``plo <= lo`` with ``min lcp[plo+1 : lo+1] >= depth``."""
        out = lo.copy()
        # Binary search per element on the monotone predicate
        # "min lcp[x+1 : lo+1] >= depth" (monotone in x).
        lo_bound = np.zeros_like(lo)
        hi_bound = lo.copy()
        while True:
            active = lo_bound < hi_bound
            if not active.any():
                break
            mid = (lo_bound + hi_bound) >> 1
            ok = self._rmq.query(mid + 1, lo + 1) >= depth
            take = active & ok
            hi_bound = np.where(take, mid, hi_bound)
            lo_bound = np.where(active & ~ok, mid + 1, lo_bound)
        out = lo_bound
        return out

    def _extend_right(self, hi: np.ndarray, depth: np.ndarray) -> np.ndarray:
        """Largest ``phi >= hi`` with ``min lcp[hi : phi] >= depth``."""
        lo_bound = hi.copy()
        hi_bound = np.full_like(hi, self.m)
        while True:
            active = lo_bound < hi_bound
            if not active.any():
                break
            mid = (lo_bound + hi_bound + 1) >> 1
            ok = self._rmq.query(hi, mid) >= depth
            take = active & ok
            lo_bound = np.where(take, mid, lo_bound)
            hi_bound = np.where(active & ~ok, mid - 1, hi_bound)
        return lo_bound


class EnhancedSparseSuffixArray(SparseSuffixArray):
    """Sparse suffix array + essaMEM-style auxiliary structures.

    The ``prefix_table_k`` accelerator (default: 8-mer table) stands in for
    essaMEM's sparse child array: both let a query skip straight into a deep
    interval instead of bisecting from the root. :attr:`intervals` exposes
    LCP-interval navigation for interval-walking matchers.
    """

    DEFAULT_PREFIX_K = 8

    def __init__(self, reference, *, sparseness: int, prefix_table_k: int | None = None):
        k = self.DEFAULT_PREFIX_K if prefix_table_k is None else int(prefix_table_k)
        if k < 1:
            raise InvalidParameterError("EnhancedSparseSuffixArray needs a prefix table")
        super().__init__(reference, sparseness=sparseness, prefix_table_k=k)
        self.intervals = LCPIntervals(self.lcp)
