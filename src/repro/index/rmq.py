"""Range-minimum queries over the LCP array.

The MEM-enumeration walk (``λ(SA[i]) = min LCP between i and the insertion
point``) and LCP-interval navigation both need fast range minima. A classic
sparse table gives ``O(n log n)`` preprocessing and ``O(1)`` queries, and —
important here — *vectorized batched* queries.
"""

from __future__ import annotations

import numpy as np


class SparseTableRMQ:
    """Sparse-table range-minimum structure over an int64 array.

    Queries are over half-open ranges ``[lo, hi)`` and are vectorized:
    ``rmq.query(lo_vec, hi_vec)`` answers a whole batch at once. Empty
    ranges return the configured ``empty_value`` (default: int64 max).
    """

    def __init__(self, values: np.ndarray, *, empty_value: int | None = None):
        values = np.asarray(values, dtype=np.int64)
        self.n = int(values.size)
        self.empty_value = (
            np.iinfo(np.int64).max if empty_value is None else int(empty_value)
        )
        if self.n == 0:
            self._table = np.empty((1, 0), dtype=np.int64)
            return
        levels = max(1, int(np.log2(self.n)) + 1)
        table = np.empty((levels, self.n), dtype=np.int64)
        table[0] = values
        span = 1
        for lvl in range(1, levels):
            prev = table[lvl - 1]
            m = self.n - 2 * span  # last index with a full 2*span window
            table[lvl, : self.n] = prev
            if m >= 0:
                np.minimum(prev[: m + span], prev[span : m + 2 * span],
                           out=table[lvl, : m + span])
            span *= 2
        self._table = table

    def query_scalar(self, lo: int, hi: int) -> int:
        """Scalar fast path of :meth:`query` (hot in interval walking)."""
        if hi <= lo or lo < 0 or hi > self.n:
            return self.empty_value
        lvl = (hi - lo).bit_length() - 1
        span = 1 << lvl
        t = self._table[lvl]
        return int(min(t[lo], t[hi - span]))

    def query(self, lo, hi):
        """Vectorized min over ``values[lo:hi]``; scalar in → scalar out."""
        scalar = np.isscalar(lo) and np.isscalar(hi)
        lo = np.atleast_1d(np.asarray(lo, dtype=np.int64))
        hi = np.atleast_1d(np.asarray(hi, dtype=np.int64))
        if lo.shape != hi.shape:
            raise ValueError("lo/hi shape mismatch")
        out = np.full(lo.shape, self.empty_value, dtype=np.int64)
        valid = (hi > lo) & (lo >= 0) & (hi <= self.n)
        if valid.any():
            l, h = lo[valid], hi[valid]
            length = h - l
            lvl = np.frexp(length.astype(np.float64))[1] - 1  # floor(log2)
            lvl = lvl.astype(np.int64)
            span = np.int64(1) << lvl
            left = self._table[lvl, l]
            right = self._table[lvl, h - span]
            out[valid] = np.minimum(left, right)
        if scalar and out.size == 1:
            return int(out.reshape(())[()])
        return out
