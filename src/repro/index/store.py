"""Persistent tiered index store: hot LRU → warm mmap file → cold rebuild.

Table III/IV of the paper assume matching against a *prebuilt* index, but a
process restart used to rebuild every index from scratch —
:mod:`repro.index.serialize` existed and nothing in the session/procpool
stack used it. :class:`IndexStore` closes that gap with three tiers:

1. **hot** — an in-process LRU keyed exactly like the
   :func:`repro.core.session.get_session` cache:
   ``(reference fingerprint, index params)``. Hits cost a dict lookup.
2. **warm** — an immutable bundle directory under the cache dir (see the
   FORMAT_VERSION 2 layout of :mod:`repro.index.serialize`), loaded via
   ``np.load(..., mmap_mode="r")``: zero-copy, page-cache cost only. A
   warm *restart* therefore pays near-zero index-build time — copMEM's
   cheap-index-reuse lesson applied across processes and runs.
3. **cold** — build through the caller's builder, persist crash-safely
   (temp dir + atomic rename), and serve the fresh index.

Cold builds are **single-flight across processes**: builders serialize on
an advisory file lock per ``(fingerprint, params)`` key, so N spawned
procpool workers racing the same row produce exactly one on-disk artifact
— the waiters wake up, find the published bundle, and take the warm path.
Reads never lock: bundles are immutable once renamed into place.

Keys include the reference *fingerprint* plus every index-shaping
parameter (not the reference alone): Gagie 2024's long-MEM framing — the
same genome indexed under different ``(ℓs, Δs)`` or sparseness is a
different index — is what makes the params part of the identity.

Observability (see docs/observability.md): ``index.store.*`` counters +
``store.*`` spans land in whichever tracer the caller passes per call, and
an always-on internal counter set is exposed via :meth:`IndexStore.stats`.

Enable process-wide by pointing ``REPRO_INDEX_STORE`` at a cache
directory (CI's ``tests-store`` leg does exactly that), or explicitly via
``MemSession(..., store=...)`` / ``gpumem index --store`` /
``gpumem match --index-store``.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.analysis import resource_tracker as _res
from repro.errors import IndexError_
from repro.index.kmer_index import KmerSeedIndex, build_kmer_index
from repro.index.matching import SuffixArraySearcher
from repro.index.serialize import (
    FORMAT_VERSION,
    load_kmer_bundle,
    load_searcher_bundle,
    save_kmer_bundle,
    save_searcher_bundle,
)
from repro.obs.tracer import get_tracer

#: Environment variable naming the default store's cache directory.
STORE_ENV_VAR = "REPRO_INDEX_STORE"

#: Hot-tier entries an :class:`IndexStore` keeps resident by default. Row
#: indexes are small (sampled locations only), so this is generous enough
#: for several warm references without pinning memory.
HOT_CAPACITY = 64

try:  # POSIX advisory locks; fall back to exclusive-create spinning.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: Fallback-lock staleness horizon: an exclusive-create lock file older
#: than this is presumed abandoned by a crashed builder and broken.
_LOCK_STALE_SECONDS = 300.0


class _FileLock:
    """Advisory exclusive lock on one path (cross-process single-flight).

    ``fcntl.flock`` where available — locks die with the holding process,
    so a crashed builder never wedges the key. Elsewhere, an
    exclusive-create spin lock with a staleness horizon.
    """

    def __init__(self, path: Path):
        self.path = path
        self._fh = None

    def acquire(self) -> None:
        if fcntl is not None:
            fh = open(self.path, "a+")
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            except BaseException:
                # flock can fail (EINTR under a signal, ENOLCK): the fd
                # must not outlive the failed acquire (RL104's orphan).
                fh.close()
                raise
            self._fh = fh
            _res.lock_acquired(self.path)
            return
        while True:  # pragma: no cover - exercised only off-POSIX
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                _res.lock_acquired(self.path)
                return
            except FileExistsError:
                try:
                    age = time.time() - os.path.getmtime(self.path)
                    if age > _LOCK_STALE_SECONDS:
                        os.unlink(self.path)
                        continue
                except OSError:
                    pass
                time.sleep(0.01)

    def release(self) -> None:
        if fcntl is not None:
            fh, self._fh = self._fh, None
            if fh is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
                fh.close()
                _res.lock_released(self.path)
            return
        try:  # pragma: no cover - exercised only off-POSIX
            os.unlink(self.path)
            _res.lock_released(self.path)
        except OSError:
            pass

    def __enter__(self) -> "_FileLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


def _params_tag(parts: dict) -> str:
    """A short, filesystem-safe digest of the index-shaping params."""
    canon = ";".join(f"{k}={parts[k]}" for k in sorted(parts))
    return hashlib.sha1(canon.encode()).hexdigest()[:12]


def row_key(
    fingerprint: str, *, seed_length: int, step: int,
    region_start: int, region_end: int,
) -> str:
    """Store key of one tile row's partial k-mer index."""
    tag = _params_tag(dict(
        seed_length=seed_length, step=step,
        region_start=region_start, region_end=region_end,
    ))
    return f"row-{fingerprint}-{tag}"


def searcher_key(fingerprint: str, *, sparseness: int, prefix_table_k: int) -> str:
    """Store key of a suffix-array searcher."""
    tag = _params_tag(dict(sparseness=sparseness, prefix_table_k=prefix_table_k))
    return f"sa-{fingerprint}-{tag}"


def _index_nbytes(index: KmerSeedIndex) -> int:
    return int(index.ptrs.nbytes + index.locs.nbytes)


def _searcher_nbytes(searcher: SuffixArraySearcher) -> int:
    total = searcher.reference.nbytes + searcher.sa.nbytes + searcher.lcp.nbytes
    if searcher._pt_lo is not None:
        total += searcher._pt_lo.nbytes + searcher._pt_hi.nbytes
    return int(total)


class IndexStore:
    """The tiered persistent index cache (one cache directory).

    Thread-safe; one instance is normally shared per cache directory via
    :func:`store_at`. All artifacts live under ``<cache_dir>/v<FORMAT>/``,
    so a future format bump starts a fresh namespace instead of tripping
    over old bundles.
    """

    def __init__(self, cache_dir, *, hot_capacity: int = HOT_CAPACITY,
                 tracer=None):
        self.cache_dir = Path(cache_dir)
        self.root = self.cache_dir / f"v{FORMAT_VERSION}"
        self.root.mkdir(parents=True, exist_ok=True)
        self.hot_capacity = int(hot_capacity)
        self.tracer = get_tracer(tracer)
        self._lock = threading.Lock()  # guards: _hot, _counts
        self._hot: OrderedDict[str, object] = OrderedDict()
        self._counts = {
            "hot_hits": 0, "warm_hits": 0, "misses": 0, "builds": 0,
            "bytes_mmapped": 0, "invalid_bundles": 0,
            "lock_wait_seconds": 0.0,
        }

    # -- tier helpers ----------------------------------------------------------
    def _hot_get(self, key: str):
        with self._lock:
            value = self._hot.get(key)
            if value is not None:
                self._hot.move_to_end(key)
            return value

    def _hot_put(self, key: str, value) -> None:
        evicted: list[str] = []
        with self._lock:
            self._hot[key] = value
            self._hot.move_to_end(key)
            while len(self._hot) > self.hot_capacity:
                evicted.append(self._hot.popitem(last=False)[0])
        for ekey in evicted:
            self._drop_mmap(ekey)

    def _drop_mmap(self, key: str) -> None:
        """Retire a hot entry's mmap adoption (eviction / clear / purge).

        Build-path entries were never mmap-opened; the tracker ignores a
        close for an unknown path, so this is safe to call for any key.
        """
        path = str(self.root / key)
        _res.disown("mmap", path)
        _res.mmap_closed(path)

    def _count(self, name: str, n=1) -> None:
        with self._lock:
            self._counts[name] += n

    @contextmanager
    def _locked(self, key: str, tracer):
        """Hold the key's cross-process lock, recording the wait.

        A context manager (not a bare :class:`_FileLock`) so the lock is
        acquired exactly once — ``flock`` on a second file descriptor of
        the same path would self-deadlock the process.
        """
        lock = _FileLock(self.root / f"{key}.lock")
        metrics = tracer.metrics
        with tracer.span("store.lock", cat="store", key=key):
            t0 = time.perf_counter()
            lock.acquire()
            waited = time.perf_counter() - t0
        self._count("lock_wait_seconds", waited)
        if metrics.enabled:
            metrics.histogram("index.store.lock_wait_seconds").observe(waited)
        try:
            yield lock
        finally:
            lock.release()

    def _try_load(self, key: str, loader, tracer):
        """Warm-tier read: the loaded value, or ``None`` on absent/invalid.

        An unreadable bundle (external truncation — atomic publication
        means we never create one) is treated as a miss; the cold path
        clears it under the key's file lock before persisting a rebuild.
        """
        path = self.root / key
        try:
            with tracer.span("store.load", cat="store", key=key):
                return loader(path)
        except FileNotFoundError:
            return None
        except IndexError_:
            self._count("invalid_bundles")
            if tracer.metrics.enabled:
                tracer.metrics.counter("index.store.invalid_bundles").inc()
            return None

    def _get_or_build(self, key: str, *, loader, builder, persister,
                      nbytes_of, tracer=None):
        """The tier walk shared by every artifact kind.

        Returns ``(value, seconds, source)`` with ``source`` one of
        ``"hot"`` / ``"warm"`` / ``"build"``; ``seconds`` is the measured
        load or build time (0 for hot hits).
        """
        tracer = get_tracer(tracer) if tracer is not None else self.tracer
        metrics = tracer.metrics
        with tracer.span("store.get", cat="store", key=key) as span:
            value = self._hot_get(key)
            if value is not None:
                self._count("hot_hits")
                if metrics.enabled:
                    metrics.counter("index.store.hits", tier="hot").inc()
                span.set(tier="hot")
                return value, 0.0, "hot"

            t0 = time.perf_counter()
            value = self._try_load(key, loader, tracer)
            if value is not None:
                seconds = time.perf_counter() - t0
                self._record_warm(key, value, nbytes_of, metrics, span)
                return value, seconds, "warm"

            # Cold: single-flight across processes on the key's file lock.
            with self._locked(key, tracer):
                t0 = time.perf_counter()
                value = self._try_load(key, loader, tracer)
                if value is not None:
                    # Another process built it while we waited for the lock.
                    seconds = time.perf_counter() - t0
                    self._record_warm(key, value, nbytes_of, metrics, span)
                    return value, seconds, "warm"
                path = self.root / key
                if path.exists():
                    # Invalid bundle found by _try_load: clear it (we hold
                    # the build lock) so the rebuild publishes cleanly.
                    shutil.rmtree(path, ignore_errors=True)
                with tracer.span("store.build", cat="store", key=key):
                    value, seconds = builder()
                with tracer.span("store.persist", cat="store", key=key):
                    persister(value, path)
                self._count("misses")
                self._count("builds")
                if metrics.enabled:
                    metrics.counter("index.store.misses").inc()
                    metrics.counter("index.store.builds").inc()
                span.set(tier="build")
                self._hot_put(key, value)
                return value, seconds, "build"

    def _record_warm(self, key, value, nbytes_of, metrics, span) -> None:
        nbytes = nbytes_of(value)
        # The hot tier deliberately keeps the mmap-backed arrays alive
        # across calls: record the open and adopt it so the end-of-run
        # leak audit distinguishes this cache from a forgotten handle.
        path = str(self.root / key)
        _res.mmap_opened(path)
        _res.adopt("mmap", path, "IndexStore.hot")
        self._count("warm_hits")
        self._count("bytes_mmapped", nbytes)
        if metrics.enabled:
            metrics.counter("index.store.hits", tier="warm").inc()
            metrics.counter("index.store.bytes_mmapped").inc(nbytes)
        span.set(tier="warm", bytes_mmapped=nbytes)
        self._hot_put(key, value)

    # -- k-mer row indexes -----------------------------------------------------
    def get_or_build_row(
        self, fingerprint: str, *, seed_length: int, step: int,
        region_start: int, region_end: int, build, tracer=None,
    ) -> tuple[KmerSeedIndex, float, str]:
        """One tile row's index through the tiers.

        ``build`` is a zero-argument callable returning
        ``(KmerSeedIndex, seconds)`` — exactly the closure
        :class:`repro.core.pipeline.RowIndexStage` already hands to
        :meth:`repro.core.session.MemSession.get_or_build`, which is how
        the session's cold path flows through here.
        """
        key = row_key(
            fingerprint, seed_length=seed_length, step=step,
            region_start=region_start, region_end=region_end,
        )
        return self._get_or_build(
            key,
            loader=lambda path: load_kmer_bundle(path, mmap=True),
            builder=build,
            persister=lambda index, path: save_kmer_bundle(index, path),
            nbytes_of=_index_nbytes,
            tracer=tracer,
        )

    def get_or_build_reference_index(
        self, reference: np.ndarray, *, seed_length: int, step: int,
        tracer=None,
    ) -> tuple[KmerSeedIndex, float, str]:
        """Whole-reference ``locs``/``ptrs`` index (``gpumem index --save``
        scale artifacts), built via :func:`build_kmer_index` when cold."""
        from repro.core.session import reference_fingerprint

        codes = np.ascontiguousarray(reference, dtype=np.uint8)

        def build():
            t0 = time.perf_counter()
            index = build_kmer_index(codes, seed_length=seed_length, step=step)
            return index, time.perf_counter() - t0

        return self.get_or_build_row(
            reference_fingerprint(codes), seed_length=seed_length, step=step,
            region_start=0, region_end=int(codes.size),
            build=build, tracer=tracer,
        )

    # -- suffix-array searchers ------------------------------------------------
    def get_or_build_searcher(
        self, reference: np.ndarray, *, sparseness: int = 1,
        prefix_table_k: int = 0, build=None, tracer=None,
    ) -> tuple[SuffixArraySearcher, float, str]:
        """A :class:`SuffixArraySearcher` through the tiers.

        The warm path loads SA, LCP, *and* the prefix table mmap-backed —
        no suffix re-sorting, no table rebuild.
        """
        from repro.core.session import reference_fingerprint

        codes = np.ascontiguousarray(reference, dtype=np.uint8)
        key = searcher_key(
            reference_fingerprint(codes),
            sparseness=sparseness, prefix_table_k=prefix_table_k,
        )
        if build is None:
            def build():
                t0 = time.perf_counter()
                searcher = SuffixArraySearcher(
                    codes, sparseness=sparseness,
                    prefix_table_k=prefix_table_k,
                )
                return searcher, time.perf_counter() - t0

        return self._get_or_build(
            key,
            loader=lambda path: load_searcher_bundle(path, mmap=True),
            builder=build,
            persister=lambda s, path: save_searcher_bundle(s, path),
            nbytes_of=_searcher_nbytes,
            tracer=tracer,
        )

    # -- introspection / lifecycle ---------------------------------------------
    def stats(self) -> dict:
        """Lifetime tier counters plus hot-tier occupancy."""
        with self._lock:
            out = dict(self._counts)
            out["n_hot"] = len(self._hot)
        out["cache_dir"] = str(self.cache_dir)
        out["n_bundles"] = sum(
            1 for p in self.root.iterdir()
            if p.is_dir() and not p.name.startswith(".")
        ) if self.root.is_dir() else 0
        return out

    def clear_hot(self) -> None:
        """Drop the in-process tier (memory pressure; disk is untouched)."""
        with self._lock:
            keys = list(self._hot)
            self._hot.clear()
        for key in keys:
            self._drop_mmap(key)

    def purge(self) -> None:
        """Delete every on-disk artifact of this store's format namespace."""
        self.clear_hot()
        if self.root.is_dir():
            for entry in list(self.root.iterdir()):
                if entry.is_dir():
                    shutil.rmtree(entry, ignore_errors=True)
                else:
                    entry.unlink(missing_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        with self._lock:
            n_hot = len(self._hot)
        return f"IndexStore({str(self.cache_dir)!r}, hot={n_hot}/{self.hot_capacity})"


# -- shared store registry -----------------------------------------------------

_registry_lock = threading.Lock()  # guards: _stores
#: resolved cache dir -> shared IndexStore (one hot tier per dir per process).
_stores: dict[str, IndexStore] = {}


def store_at(cache_dir, *, tracer=None) -> IndexStore:
    """The process-shared :class:`IndexStore` for ``cache_dir``.

    One instance per resolved directory, so every session in the process
    shares one hot tier (and one counter set) per cache dir.
    """
    key = str(Path(cache_dir).expanduser().resolve())
    with _registry_lock:
        store = _stores.get(key)
        if store is None:
            store = IndexStore(key, tracer=tracer)
            _stores[key] = store
        return store


def default_store() -> IndexStore | None:
    """The env-configured store (``REPRO_INDEX_STORE``), or ``None``.

    Read per call so tests/CLI can flip the environment variable; the
    underlying instance is still shared per directory via :func:`store_at`.
    """
    cache_dir = os.environ.get(STORE_ENV_VAR)
    if not cache_dir:
        return None
    return store_at(cache_dir)


def resolve_store(store) -> IndexStore | None:
    """Normalize a ``store=`` argument: instance, path, or ``None`` (env)."""
    if store is None:
        return default_store()
    if isinstance(store, IndexStore):
        return store
    return store_at(store)


def clear_store_registry() -> None:
    """Forget every shared store instance (tests)."""
    with _registry_lock:
        _stores.clear()
