"""Batched suffix-array search: the shared engine of the CPU baselines.

For a query position ``q``, the exact match length against reference suffix
``SA[i]`` is ``λ(i) = lcp(Q[q:], R[SA[i]:])``, which — as a function of the
SA row ``i`` — is the running minimum of adjacent LCP values moving away
from the insertion point of ``Q[q:]``. The MUMmer/sparseMEM/essaMEM family
all enumerate matches this way; they differ in which suffixes are in the
array (sparseness ``K``) and how the insertion point is found.

:class:`SuffixArraySearcher` implements the machinery *batched over all
query positions at once*:

1. construction — a sparseness-``K`` suffix array built by recoding the
   reference into ``K``-base blocks and suffix-sorting the recoded string
   (every-``K`` suffix order of ``R`` equals suffix order of the recoding,
   so construction cost scales down with ``K`` exactly as sparseMEM's does);
2. :meth:`insertion_points` — lockstep binary search (optionally seeded by a
   k-mer prefix table, the essaMEM-style accelerator);
3. :meth:`enumerate_candidates` — the outward running-min walk emitting all
   ``(r, q, λ)`` with ``λ >= min_len``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.index.compare import common_prefix_len, compare_positions
from repro.index.lcp import lcp_array
from repro.index.suffix_array import suffix_array
from repro.sequence.packed import kmer_codes

#: Largest supported sparseness: K bases must fit one base-5 int64 block key.
MAX_SPARSENESS = 26


def sparse_suffix_positions(n: int, sparseness: int) -> np.ndarray:
    """The suffix start positions of a sparseness-``K`` array: ``0, K, 2K...``"""
    return np.arange(0, n, sparseness, dtype=np.int64)


def _block_recode(codes: np.ndarray, k: int) -> np.ndarray:
    """Recode ``codes`` into base-5 keys of ``K``-base blocks.

    Symbols are shifted to 1..4 and the final partial block is padded with
    0, so block-string suffix order equals sentinel-terminated suffix order
    of the original every-``K`` suffixes.
    """
    n = codes.size
    n_blocks = (n + k - 1) // k
    padded = np.zeros(n_blocks * k, dtype=np.int64)
    padded[:n] = codes.astype(np.int64) + 1
    blocks = padded.reshape(n_blocks, k)
    weights = 5 ** np.arange(k - 1, -1, -1, dtype=np.int64)
    return blocks @ weights


class SuffixArraySearcher:
    """Search structure over the every-``K`` suffixes of a reference.

    Parameters
    ----------
    reference:
        Reference base codes.
    sparseness:
        ``K``: every ``K``-th suffix participates (1 = full suffix array).
    prefix_table_k:
        If nonzero, build a ``4**k``-entry table mapping each ``k``-mer to
        its SA row interval, used to skip the first ``~2k`` bisection rounds
        (the essaMEM-style auxiliary structure).
    """

    def __init__(
        self,
        reference: np.ndarray,
        *,
        sparseness: int = 1,
        prefix_table_k: int = 0,
    ):
        if not 1 <= sparseness <= MAX_SPARSENESS:
            raise InvalidParameterError(
                f"sparseness must be in [1, {MAX_SPARSENESS}], got {sparseness}"
            )
        self.reference = np.ascontiguousarray(reference, dtype=np.uint8)
        self.sparseness = int(sparseness)
        n = self.reference.size

        if sparseness == 1:
            self.sa = suffix_array(self.reference)
        else:
            block_sa = suffix_array(_block_recode(self.reference, sparseness))
            self.sa = block_sa * sparseness
        self.lcp = lcp_array(self.reference, self.sa)
        self.m = int(self.sa.size)

        self.prefix_table_k = int(prefix_table_k)
        if self.prefix_table_k > 0:
            self._build_prefix_table()
        else:
            self._pt_lo = self._pt_hi = None

    # -- construction -------------------------------------------------------------
    def _build_prefix_table(self) -> None:
        k = self.prefix_table_k
        n = self.reference.size
        # Padded base-5 key of each SA suffix's first k symbols (sentinel/
        # end-of-string = 0, bases = 1..4): unlike raw base-4 k-mer values,
        # these keys are monotone in suffix order even for suffixes shorter
        # than k, so searchsorted buckets are exact.
        keys = np.zeros(self.m, dtype=np.int64)
        for j in range(k):
            idx = self.sa + j
            sym = np.where(
                idx < n, self.reference[np.minimum(idx, n - 1)].astype(np.int64) + 1, 0
            )
            keys = keys * 5 + sym
        # Map every base-4 k-mer value to its base-5 padded key.
        grid = np.arange(4**k, dtype=np.int64)
        v5 = np.zeros(grid.size, dtype=np.int64)
        rest = grid.copy()
        for j in range(k):  # extract digits most-significant first
            digit = rest // 4 ** (k - 1 - j)
            rest -= digit * 4 ** (k - 1 - j)
            v5 = v5 * 5 + (digit + 1)
        self._pt_lo = np.searchsorted(keys, v5, side="left").astype(np.int64)
        self._pt_hi = np.searchsorted(keys, v5, side="right").astype(np.int64)

    # -- queries ------------------------------------------------------------------
    def insertion_points(self, query: np.ndarray, q_positions: np.ndarray) -> np.ndarray:
        """Index ``ins`` per query suffix: number of SA suffixes < ``Q[q:]``."""
        query = np.ascontiguousarray(query, dtype=np.uint8)
        q_positions = np.asarray(q_positions, dtype=np.int64)
        lo = np.zeros(q_positions.size, dtype=np.int64)
        hi = np.full(q_positions.size, self.m, dtype=np.int64)

        if self._pt_lo is not None and q_positions.size:
            k = self.prefix_table_k
            nq = query.size
            fits = q_positions <= nq - k
            if fits.any():
                qk = kmer_codes(query, k)
                vals = qk[q_positions[fits]]
                lo[fits] = self._pt_lo[vals]
                hi[fits] = self._pt_hi[vals]
                # Inside a bucket every suffix shares the k-base prefix with
                # the query suffix, so bisection below remains correct.

        while True:
            active = np.nonzero(lo < hi)[0]
            if active.size == 0:
                break
            mid = (lo[active] + hi[active]) >> 1
            cmp = compare_positions(
                self.reference, query, self.sa[mid], q_positions[active]
            )
            less = cmp < 0
            lo[active[less]] = mid[less] + 1
            hi[active[~less]] = mid[~less]
        return lo

    def enumerate_candidates(
        self,
        query: np.ndarray,
        q_positions: np.ndarray,
        min_len: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All ``(r, q, λ)`` with ``λ = lcp(Q[q:], R[r:]) >= min_len``.

        ``r`` ranges over this searcher's suffix subset. Right-maximality is
        inherent (``λ`` is the exact agreement length); left-maximality is the
        caller's concern.
        """
        query = np.ascontiguousarray(query, dtype=np.uint8)
        q_positions = np.asarray(q_positions, dtype=np.int64)
        if min_len < 1:
            raise InvalidParameterError(f"min_len must be >= 1, got {min_len}")
        if q_positions.size == 0 or self.m == 0:
            z = np.empty(0, dtype=np.int64)
            return z, z.copy(), z.copy()

        ins = self.insertion_points(query, q_positions)
        out_r: list[np.ndarray] = []
        out_q: list[np.ndarray] = []
        out_l: list[np.ndarray] = []

        for direction in (-1, +1):
            idx = ins - 1 if direction < 0 else ins.copy()
            in_range = (idx >= 0) & (idx < self.m)
            active = np.nonzero(in_range)[0]
            if active.size == 0:
                continue
            lam = np.zeros(q_positions.size, dtype=np.int64)
            lam[active] = common_prefix_len(
                self.reference, query, self.sa[idx[active]], q_positions[active]
            )
            active = active[lam[active] >= min_len]
            while active.size:
                out_r.append(self.sa[idx[active]])
                out_q.append(q_positions[active])
                out_l.append(lam[active].copy())
                # Step outward: λ becomes min(λ, LCP across the step).
                if direction < 0:
                    lcp_step = self.lcp[idx[active]]  # lcp(sa[i-1], sa[i])
                    idx[active] -= 1
                else:
                    nxt = idx[active] + 1
                    lcp_step = np.where(
                        nxt < self.m, self.lcp[np.minimum(nxt, self.m - 1)], 0
                    )
                    idx[active] += 1
                lam[active] = np.minimum(lam[active], lcp_step)
                keep = (
                    (lam[active] >= min_len)
                    & (idx[active] >= 0)
                    & (idx[active] < self.m)
                )
                active = active[keep]

        if not out_r:
            z = np.empty(0, dtype=np.int64)
            return z, z.copy(), z.copy()
        return (
            np.concatenate(out_r),
            np.concatenate(out_q),
            np.concatenate(out_l),
        )

    def matching_statistics(self, query: np.ndarray, q_positions=None) -> np.ndarray:
        """``MS[q] = max_r lcp(Q[q:], R[r:])`` over this searcher's suffixes.

        The per-position longest-match lengths (matching statistics) — the
        quantity slaMEM's backward search maintains incrementally; here
        computed batched from the insertion point's two neighbours, which
        bound the maximum agreement over the whole array.
        """
        query = np.ascontiguousarray(query, dtype=np.uint8)
        if q_positions is None:
            q_positions = np.arange(query.size, dtype=np.int64)
        else:
            q_positions = np.asarray(q_positions, dtype=np.int64)
        out = np.zeros(q_positions.size, dtype=np.int64)
        if q_positions.size == 0 or self.m == 0:
            return out
        ins = self.insertion_points(query, q_positions)
        for neighbour in (ins - 1, ins):
            valid = (neighbour >= 0) & (neighbour < self.m)
            if valid.any():
                lam = common_prefix_len(
                    self.reference, query,
                    self.sa[neighbour[valid]], q_positions[valid],
                )
                out[valid] = np.maximum(out[valid], lam)
        return out

    def count_occurrences(self, positions: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """#occurrences in the reference of ``R[p : p + λ]`` per ``(p, λ)``.

        Used by the MUM/rare-match variants (paper §V future work): a match
        is *unique* when its substring occurs exactly once. Works by walking
        outward from each substring's own suffix rank while the running-min
        LCP stays ≥ λ — output-proportional, fully batched.

        Only meaningful on sparseness-1 searchers (occurrences at unsampled
        positions would be missed otherwise).
        """
        if self.sparseness != 1:
            raise InvalidParameterError(
                "count_occurrences requires a full (sparseness-1) suffix array"
            )
        positions = np.asarray(positions, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if positions.shape != lengths.shape:
            raise InvalidParameterError("positions/lengths shape mismatch")
        n = positions.size
        counts = np.ones(n, dtype=np.int64)  # the occurrence at `positions`
        if n == 0 or self.m == 0:
            return counts
        rank = np.empty(self.m, dtype=np.int64)
        rank[self.sa] = np.arange(self.m)
        home = rank[positions]
        for direction in (-1, +1):
            idx = home.copy()
            lam = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
            active = np.arange(n)
            while active.size:
                if direction < 0:
                    lcp_step = self.lcp[idx[active]]
                    idx[active] -= 1
                else:
                    nxt = idx[active] + 1
                    lcp_step = np.where(
                        nxt < self.m, self.lcp[np.minimum(nxt, self.m - 1)], 0
                    )
                    idx[active] += 1
                lam[active] = np.minimum(lam[active], lcp_step)
                keep = (
                    (lam[active] >= lengths[active])
                    & (idx[active] >= 0)
                    & (idx[active] < self.m)
                )
                active = active[keep]
                counts[active] += 1
        return counts

    @property
    def nbytes(self) -> int:
        """Index footprint: SA + LCP (+ prefix table)."""
        total = self.sa.nbytes + self.lcp.nbytes
        if self._pt_lo is not None:
            total += self._pt_lo.nbytes + self._pt_hi.nbytes
        return int(total)
