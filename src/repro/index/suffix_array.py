"""Suffix-array construction by vectorized prefix doubling.

The CPU baselines of the paper (MUMmer, sparseMEM, essaMEM) are all built on
suffix arrays; slaMEM needs one transiently to build its BWT. This module
provides an ``O(n log^2 n)`` prefix-doubling construction expressed entirely
in NumPy (``np.lexsort`` per round), which at the library's benchmark scales
is the fastest pure-Python-ecosystem option, plus a naive builder used for
cross-validation in tests.

The suffix order convention: suffixes are compared as plain strings with a
virtual end sentinel smaller than every letter (so a proper prefix sorts
before its extensions). The empty suffix is *not* included.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_


def suffix_array(codes: np.ndarray) -> np.ndarray:
    """Suffix array of ``codes`` (any non-negative integer alphabet).

    Returns ``sa`` with ``len(sa) == len(codes)`` such that
    ``codes[sa[0]:] < codes[sa[1]:] < ...`` in sentinel-terminated order.
    """
    codes = np.asarray(codes)
    n = codes.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if codes.min(initial=0) < 0:
        raise IndexError_("suffix_array requires non-negative symbols")
    # rank[i]: order class of suffix i by its first k characters.
    # Sentinel is modeled by rank -1 for positions past the end.
    rank = np.unique(codes, return_inverse=True)[1].astype(np.int64)
    k = 1
    while True:
        second = np.full(n, -1, dtype=np.int64)
        second[: n - k] = rank[k:]
        order = np.lexsort((second, rank))
        # Recompute ranks: a suffix opens a new class when either key differs
        # from its predecessor in sorted order.
        key1 = rank[order]
        key2 = second[order]
        new_class = np.empty(n, dtype=np.int64)
        new_class[0] = 0
        diff = (key1[1:] != key1[:-1]) | (key2[1:] != key2[:-1])
        new_class[1:] = np.cumsum(diff)
        rank = np.empty(n, dtype=np.int64)
        rank[order] = new_class
        if new_class[-1] == n - 1:
            return order.astype(np.int64)
        k *= 2
        if k >= 2 * n:  # pragma: no cover - doubling must terminate before this
            raise IndexError_("prefix doubling failed to converge")


def naive_suffix_array(codes: np.ndarray) -> np.ndarray:
    """Quadratic-ish reference builder (sorts Python byte strings)."""
    codes = np.asarray(codes, dtype=np.uint8)
    buf = codes.tobytes()
    return np.array(
        sorted(range(codes.size), key=lambda i: buf[i:]), dtype=np.int64
    ).reshape(codes.size)


def rank_array(sa: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``rank[sa[i]] == i``."""
    sa = np.asarray(sa, dtype=np.int64)
    rank = np.empty_like(sa)
    rank[sa] = np.arange(sa.size, dtype=np.int64)
    return rank


def verify_suffix_array(codes: np.ndarray, sa: np.ndarray) -> bool:
    """Cheap self-check: ``sa`` is a permutation and adjacent suffixes are
    non-decreasing (spot-checked exactly with vectorized comparisons)."""
    from repro.index.compare import compare_positions

    codes = np.asarray(codes, dtype=np.uint8)
    sa = np.asarray(sa, dtype=np.int64)
    n = codes.size
    if sa.size != n:
        return False
    if n == 0:
        return True
    if not np.array_equal(np.sort(sa), np.arange(n)):
        return False
    cmp = compare_positions(codes, codes, sa[:-1], sa[1:])
    return bool((cmp < 0).all())
