"""Sparse suffix array (the sparseMEM data structure, Khan et al. 2009).

A sparseness-``K`` suffix array indexes only suffixes starting at positions
``0, K, 2K, ...``. Memory shrinks by ``K×`` but MEM extraction must do extra
work: a MEM need not *start* at a sampled position, so every candidate found
at a sampled anchor must be extended left by up to ``K - 1`` bases to recover
the true start, and candidate collection must use the lowered threshold
``L - K + 1`` (a length-``L`` MEM is only guaranteed to retain
``L - (K - 1)`` bases to the right of its first sampled anchor).

The heavy lifting (construction, batched search) lives in
:class:`~repro.index.matching.SuffixArraySearcher`; this class adds the
sparse-specific bookkeeping and is what :mod:`repro.baselines.sparsemem`
builds on.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError
from repro.index.matching import SuffixArraySearcher


class SparseSuffixArray(SuffixArraySearcher):
    """Sparseness-``K`` suffix array with MEM-oriented helpers."""

    def __init__(self, reference, *, sparseness: int, prefix_table_k: int = 0):
        super().__init__(
            reference, sparseness=sparseness, prefix_table_k=prefix_table_k
        )

    def candidate_threshold(self, min_length: int) -> int:
        """Candidate collection threshold: ``max(1, L - K + 1)``.

        Every MEM of length ``>= min_length`` has a sampled anchor ``r'``
        within its first ``K`` reference positions; the agreement length at
        that anchor is at least ``min_length - (K - 1)``.
        """
        if min_length < 1:
            raise InvalidParameterError(f"min_length must be >= 1, got {min_length}")
        return max(1, min_length - self.sparseness + 1)

    @property
    def memory_reduction(self) -> float:
        """Index size ratio versus a full (sparseness-1) suffix array."""
        full = self.reference.size
        return self.m / full if full else 1.0
