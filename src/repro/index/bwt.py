"""Burrows-Wheeler transform.

The FM-index (slaMEM's substrate) is built on the BWT of the sentinel-
terminated reference. Internally FM machinery works over the shifted
alphabet ``{0: sentinel, 1: A, 2: C, 3: G, 4: T}`` so the sentinel is the
unique smallest symbol, as required for the LF mapping to be a bijection.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_
from repro.index.suffix_array import suffix_array

#: Sentinel symbol in the shifted FM alphabet.
SENTINEL = 0

#: Size of the shifted FM alphabet (sentinel + ACGT).
FM_SIGMA = 5


def _with_sentinel(codes: np.ndarray) -> np.ndarray:
    """Shift bases to 1..4 and append the 0 sentinel."""
    codes = np.asarray(codes, dtype=np.uint8)
    out = np.empty(codes.size + 1, dtype=np.uint8)
    out[:-1] = codes + 1
    out[-1] = SENTINEL
    return out


def bwt_from_sa(text: np.ndarray, sa: np.ndarray) -> np.ndarray:
    """BWT of ``text`` given the suffix array of the *same* text.

    ``bwt[i] = text[sa[i] - 1]`` with wraparound at 0.
    """
    text = np.asarray(text, dtype=np.uint8)
    sa = np.asarray(sa, dtype=np.int64)
    if text.size != sa.size:
        raise IndexError_("text and suffix array sizes differ")
    prev = sa - 1
    prev[prev < 0] = text.size - 1
    return text[prev]


def bwt_transform(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sentinel-terminated BWT of a base-code sequence.

    Returns ``(bwt, sa)`` over the shifted alphabet; ``sa`` is the suffix
    array of the sentinel-terminated text (length ``len(codes) + 1``).
    """
    text = _with_sentinel(codes)
    sa = suffix_array(text)
    return bwt_from_sa(text, sa), sa


def inverse_bwt(bwt: np.ndarray) -> np.ndarray:
    """Recover the original base codes from a sentinel-terminated BWT.

    Vectorized LF-walk: precompute the LF mapping for every row, then follow
    it ``n`` steps starting from the sentinel row.
    """
    bwt = np.asarray(bwt, dtype=np.uint8)
    n = bwt.size
    if n == 0:
        return np.empty(0, dtype=np.uint8)
    counts = np.bincount(bwt, minlength=FM_SIGMA)
    if counts[SENTINEL] != 1:
        raise IndexError_(
            f"BWT must contain exactly one sentinel, found {counts[SENTINEL]}"
        )
    c = np.zeros(FM_SIGMA + 1, dtype=np.int64)
    np.cumsum(counts, out=c[1:])
    # occ_before[i] = number of bwt[j] == bwt[i] for j < i
    order = np.argsort(bwt, kind="stable")
    occ_before = np.empty(n, dtype=np.int64)
    occ_before[order] = np.arange(n) - c[bwt[order]]
    lf = c[bwt] + occ_before
    # Walk backwards from the row whose suffix is the full text.
    out = np.empty(n - 1, dtype=np.uint8)
    row = int(np.nonzero(bwt == SENTINEL)[0][0])
    # text[-1] (before sentinel) is bwt[row0] where row0 = rank of full text;
    # simplest: iterate LF from row of sentinel-only suffix (row 0).
    row = 0
    for i in range(n - 1, 0, -1):
        sym = bwt[row]
        out[i - 1] = sym - 1
        row = int(lf[row])
    return out
