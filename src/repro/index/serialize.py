"""Index persistence: save/load prebuilt indexes.

Table IV's premise is tools matching with a *prebuilt* index. This module
makes that workflow real for the library: the GPUMEM seed index and the
suffix-array searchers serialize to single ``.npz`` files with format
versioning and integrity checks on load.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_
from repro.index.kmer_index import KmerSeedIndex
from repro.index.matching import SuffixArraySearcher

#: Bump when the on-disk layout changes.
FORMAT_VERSION = 1

_KMER_MAGIC = "repro-kmer-index"
_SA_MAGIC = "repro-sa-index"


def save_kmer_index(index: KmerSeedIndex, path) -> None:
    """Write a :class:`KmerSeedIndex` to ``path`` (.npz)."""
    np.savez_compressed(
        path,
        magic=np.array(_KMER_MAGIC),
        version=np.array(FORMAT_VERSION),
        seed_length=np.array(index.seed_length),
        step=np.array(index.step),
        region_start=np.array(index.region_start),
        region_end=np.array(index.region_end),
        ptrs=index.ptrs,
        locs=index.locs,
    )


def load_kmer_index(path) -> KmerSeedIndex:
    """Read a :class:`KmerSeedIndex`; validates magic/version/consistency."""
    with np.load(path, allow_pickle=False) as data:
        _check_header(data, _KMER_MAGIC, path)
        index = KmerSeedIndex(
            seed_length=int(data["seed_length"]),
            step=int(data["step"]),
            region_start=int(data["region_start"]),
            region_end=int(data["region_end"]),
            ptrs=data["ptrs"].astype(np.int64),
            locs=data["locs"].astype(np.int64),
        )
    try:
        index.check()
    except AssertionError as exc:
        raise IndexError_(f"corrupt k-mer index in {path}: {exc}") from None
    return index


def save_searcher(searcher: SuffixArraySearcher, path) -> None:
    """Write a suffix-array searcher (reference + SA + LCP) to ``path``."""
    np.savez_compressed(
        path,
        magic=np.array(_SA_MAGIC),
        version=np.array(FORMAT_VERSION),
        sparseness=np.array(searcher.sparseness),
        prefix_table_k=np.array(searcher.prefix_table_k),
        reference=searcher.reference,
        sa=searcher.sa,
        lcp=searcher.lcp,
    )


def load_searcher(path) -> SuffixArraySearcher:
    """Read a searcher; the SA is verified against the stored reference."""
    from repro.index.suffix_array import verify_suffix_array

    with np.load(path, allow_pickle=False) as data:
        _check_header(data, _SA_MAGIC, path)
        reference = data["reference"].astype(np.uint8)
        sa = data["sa"].astype(np.int64)
        lcp = data["lcp"].astype(np.int64)
        sparseness = int(data["sparseness"])
        prefix_table_k = int(data["prefix_table_k"])

    searcher = SuffixArraySearcher.__new__(SuffixArraySearcher)
    searcher.reference = reference
    searcher.sparseness = sparseness
    searcher.sa = sa
    searcher.lcp = lcp
    searcher.m = int(sa.size)
    searcher.prefix_table_k = prefix_table_k
    if prefix_table_k > 0:
        searcher._build_prefix_table()
    else:
        searcher._pt_lo = searcher._pt_hi = None

    if sparseness == 1 and not verify_suffix_array(reference, sa):
        raise IndexError_(f"corrupt suffix array in {path}")
    if sparseness > 1:
        expect = np.arange(0, reference.size, sparseness)
        if not np.array_equal(np.sort(sa), expect):
            raise IndexError_(f"corrupt sparse suffix array in {path}")
    return searcher


def _check_header(data, magic: str, path) -> None:
    if "magic" not in data or str(data["magic"]) != magic:
        raise IndexError_(f"{path} is not a {magic} file")
    version = int(data["version"])
    if version > FORMAT_VERSION:
        raise IndexError_(
            f"{path} has format version {version}, newer than supported "
            f"{FORMAT_VERSION}"
        )
