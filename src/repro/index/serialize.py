"""Index persistence: save/load prebuilt indexes.

Table IV's premise is tools matching with a *prebuilt* index. This module
makes that workflow real for the library, in two on-disk layouts sharing
one format version and one validation discipline:

- **``.npz`` archives** (:func:`save_kmer_index` / :func:`save_searcher`) —
  single portable compressed files, the interchange format.
- **Bundle directories** (:func:`save_kmer_bundle` /
  :func:`save_searcher_bundle`) — a ``meta.json`` manifest plus one plain
  ``.npy`` file per array, so loads go through
  ``np.load(..., mmap_mode="r")`` and are zero-copy: the warm tier of
  :class:`repro.index.store.IndexStore` pays page-cache cost, not
  deserialization cost.

Both layouts are written crash-safely (temp file / temp directory in the
destination's directory, then an atomic ``os.replace``), carry
magic + ``FORMAT_VERSION`` headers, and are validated structurally on
load: missing keys, truncated archives, and dtype/endianness mismatches
raise :class:`repro.errors.IndexError_` instead of surfacing as confusing
``KeyError``/``zipfile`` internals — and never silently ``.astype``-copy,
which would defeat the mmap zero-copy contract.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import IndexError_, IndexIntegrityError
from repro.index.kmer_index import KmerSeedIndex
from repro.index.matching import SuffixArraySearcher

#: Bump when the on-disk layout changes. Version 2 adds the mmap bundle
#: layout; ``.npz`` archives are unchanged on disk, so version-1 files
#: still load (see :data:`MIN_FORMAT_VERSION`).
FORMAT_VERSION = 2

#: Oldest format version the loaders accept.
MIN_FORMAT_VERSION = 1

_KMER_MAGIC = "repro-kmer-index"
_SA_MAGIC = "repro-sa-index"

_META_NAME = "meta.json"


# -- path + atomic-write helpers -----------------------------------------------

def npz_path(path) -> Path:
    """``path`` with the ``.npz`` suffix ``np.savez`` would give it.

    ``np.savez_compressed`` silently appends ``.npz`` when the name lacks
    it, so ``save(p)`` followed by ``load(p)`` used to raise
    ``FileNotFoundError``. Save and load both normalize through this
    helper, so either spelling works.
    """
    path = Path(path)
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    return path


def _resolve_npz_for_load(path) -> Path:
    """The on-disk spelling of ``path``: exact if present, else ``.npz``."""
    exact = Path(path)
    return exact if exact.exists() else npz_path(path)


def _atomic_savez(path: Path, **arrays) -> None:
    """``np.savez_compressed`` via a same-directory temp file + ``os.replace``.

    A crash mid-write can no longer leave a truncated archive at the
    destination: readers see either the old complete file or the new one.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=f".{path.name}.tmp-", suffix=".npz", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _open_npz(path: Path):
    """``np.load`` with truncation/corruption mapped to :class:`IndexError_`.

    The archive is probed with an explicitly closed handle first:
    ``np.load`` opens the file itself and, on a corrupt zip, raises with
    that handle still open — an fd leak the ``tests-resource`` CI leg
    (``PYTHONWARNINGS=error::ResourceWarning``) flags.
    """

    def _reject(exc):
        raise IndexError_(
            f"{path} is not a readable index archive (truncated or "
            f"corrupt?): {exc}"
        ) from None

    try:
        with open(path, "rb") as probe:
            zipfile.ZipFile(probe).infolist()
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, ValueError, EOFError, OSError) as exc:
        _reject(exc)
    try:
        return np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, ValueError, EOFError, OSError) as exc:
        _reject(exc)


# -- header + array validation -------------------------------------------------

def _check_version(version, path) -> int:
    try:
        version = int(version)
    except (TypeError, ValueError):
        raise IndexError_(
            f"{path} has a malformed format version {version!r}"
        ) from None
    if version > FORMAT_VERSION:
        raise IndexError_(
            f"{path} has format version {version}, newer than supported "
            f"{FORMAT_VERSION}"
        )
    if version < MIN_FORMAT_VERSION:
        raise IndexError_(
            f"{path} has format version {version}, older than supported "
            f"{MIN_FORMAT_VERSION}"
        )
    return version


def _check_header(data, magic: str, path) -> int:
    """Validate magic + version of an ``.npz`` archive; returns the version."""
    if "magic" not in data or str(data["magic"]) != magic:
        raise IndexError_(f"{path} is not a {magic} file")
    if "version" not in data:
        raise IndexError_(
            f"{path} has a {magic} magic but no format version "
            "(truncated or hand-built archive?)"
        )
    return _check_version(data["version"], path)


def _take_array(data, name: str, expected_dtype, path) -> np.ndarray:
    """Fetch array ``name`` with presence + dtype/endianness validation.

    Mismatches are rejected, never converted: an implicit ``.astype`` copy
    would both hide corruption and defeat zero-copy mmap loads.
    """
    if name not in data:
        raise IndexError_(f"{path} is missing required array {name!r}")
    arr = data[name]
    expected = np.dtype(expected_dtype)
    if arr.dtype != expected:
        raise IndexError_(
            f"{path}: array {name!r} has dtype {arr.dtype} (expected "
            f"{expected}); dtype/endianness mismatches are rejected on "
            "load rather than silently copied"
        )
    return arr


def _take_scalar(data, name: str, path) -> int:
    if name not in data:
        raise IndexError_(f"{path} is missing required field {name!r}")
    return int(data[name])


# -- k-mer index (.npz) --------------------------------------------------------

def save_kmer_index(index: KmerSeedIndex, path) -> Path:
    """Write a :class:`KmerSeedIndex` to ``path`` (.npz, atomic).

    Returns the actual path written (``.npz`` suffix normalized).
    """
    path = npz_path(path)
    _atomic_savez(
        path,
        magic=np.array(_KMER_MAGIC),
        version=np.array(FORMAT_VERSION),
        seed_length=np.array(index.seed_length),
        step=np.array(index.step),
        region_start=np.array(index.region_start),
        region_end=np.array(index.region_end),
        ptrs=np.ascontiguousarray(index.ptrs, dtype=np.int64),
        locs=np.ascontiguousarray(index.locs, dtype=np.int64),
    )
    return path


def load_kmer_index(path) -> KmerSeedIndex:
    """Read a :class:`KmerSeedIndex`; validates magic/version/consistency."""
    path = _resolve_npz_for_load(path)
    with _open_npz(path) as data:
        _check_header(data, _KMER_MAGIC, path)
        index = KmerSeedIndex(
            seed_length=_take_scalar(data, "seed_length", path),
            step=_take_scalar(data, "step", path),
            region_start=_take_scalar(data, "region_start", path),
            region_end=_take_scalar(data, "region_end", path),
            ptrs=_take_array(data, "ptrs", np.int64, path),
            locs=_take_array(data, "locs", np.int64, path),
        )
    try:
        index.check()
    except IndexIntegrityError as exc:
        raise IndexIntegrityError(
            f"corrupt k-mer index in {path}: {exc}", field=exc.field, path=path
        ) from None
    return index


# -- suffix-array searcher (.npz) ----------------------------------------------

def save_searcher(searcher: SuffixArraySearcher, path) -> Path:
    """Write a suffix-array searcher (reference + SA + LCP) to ``path``.

    Atomic like :func:`save_kmer_index`; returns the normalized path.
    """
    path = npz_path(path)
    _atomic_savez(
        path,
        magic=np.array(_SA_MAGIC),
        version=np.array(FORMAT_VERSION),
        sparseness=np.array(searcher.sparseness),
        prefix_table_k=np.array(searcher.prefix_table_k),
        reference=np.ascontiguousarray(searcher.reference, dtype=np.uint8),
        sa=np.ascontiguousarray(searcher.sa, dtype=np.int64),
        lcp=np.ascontiguousarray(searcher.lcp, dtype=np.int64),
    )
    return path


def _assemble_searcher(
    reference: np.ndarray,
    sa: np.ndarray,
    lcp: np.ndarray,
    sparseness: int,
    prefix_table_k: int,
    pt_lo: np.ndarray | None = None,
    pt_hi: np.ndarray | None = None,
) -> SuffixArraySearcher:
    """Reconstruct a searcher from stored parts without re-sorting."""
    searcher = SuffixArraySearcher.__new__(SuffixArraySearcher)
    searcher.reference = reference
    searcher.sparseness = sparseness
    searcher.sa = sa
    searcher.lcp = lcp
    searcher.m = int(sa.size)
    searcher.prefix_table_k = prefix_table_k
    if pt_lo is not None and pt_hi is not None:
        searcher._pt_lo = pt_lo
        searcher._pt_hi = pt_hi
    elif prefix_table_k > 0:
        searcher._build_prefix_table()
    else:
        searcher._pt_lo = searcher._pt_hi = None
    return searcher


def verify_searcher(searcher: SuffixArraySearcher, path) -> None:
    """Check a loaded searcher's SA against its stored reference."""
    from repro.index.suffix_array import verify_suffix_array

    if searcher.sparseness == 1:
        if not verify_suffix_array(searcher.reference, searcher.sa):
            raise IndexIntegrityError(
                f"corrupt suffix array in {path}", field="sa", path=path
            )
    else:
        expect = np.arange(0, searcher.reference.size, searcher.sparseness)
        if not np.array_equal(np.sort(searcher.sa), expect):
            raise IndexIntegrityError(
                f"corrupt sparse suffix array in {path}", field="sa", path=path
            )


def load_searcher(path) -> SuffixArraySearcher:
    """Read a searcher; the SA is verified against the stored reference."""
    path = _resolve_npz_for_load(path)
    with _open_npz(path) as data:
        _check_header(data, _SA_MAGIC, path)
        searcher = _assemble_searcher(
            reference=_take_array(data, "reference", np.uint8, path),
            sa=_take_array(data, "sa", np.int64, path),
            lcp=_take_array(data, "lcp", np.int64, path),
            sparseness=_take_scalar(data, "sparseness", path),
            prefix_table_k=_take_scalar(data, "prefix_table_k", path),
        )
    verify_searcher(searcher, path)
    return searcher


# -- mmap bundle layout (FORMAT_VERSION 2) -------------------------------------
#
# A *bundle* is a directory:
#
#     <bundle>/
#       meta.json      magic, version, scalars, per-array dtype/shape manifest
#       <name>.npy     one plain .npy per array (mmap-able)
#
# Bundles are immutable once visible: the writer assembles a temp directory
# next to the destination and renames it into place, so a reader either
# sees a complete bundle or none at all. That is what lets the tiered
# store's warm path skip locks entirely on reads.

def _write_bundle(
    dir_path, magic: str, scalars: dict, arrays: dict[str, np.ndarray]
) -> Path:
    dir_path = Path(dir_path)
    dir_path.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(tempfile.mkdtemp(
        prefix=f".{dir_path.name}.tmp-", dir=dir_path.parent
    ))
    try:
        manifest = {}
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            np.save(tmp / f"{name}.npy", arr)
            manifest[name] = {
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "nbytes": int(arr.nbytes),
            }
        meta = {
            "magic": magic,
            "version": FORMAT_VERSION,
            "scalars": {k: int(v) for k, v in scalars.items()},
            "arrays": manifest,
        }
        # meta.json is written last inside the temp dir; its presence (after
        # the rename) marks the bundle complete.
        (tmp / _META_NAME).write_text(json.dumps(meta, indent=1, sort_keys=True))
        try:
            os.replace(tmp, dir_path)
        except OSError:
            # Lost a publish race (destination exists): keep the winner.
            shutil.rmtree(tmp, ignore_errors=True)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return dir_path


def _read_bundle(
    dir_path, magic: str, *, mmap: bool = True
) -> tuple[dict, dict[str, np.ndarray]]:
    dir_path = Path(dir_path)
    meta_path = dir_path / _META_NAME
    if not meta_path.is_file():
        raise FileNotFoundError(f"{dir_path} is not an index bundle (no meta.json)")
    try:
        meta = json.loads(meta_path.read_text())
    except ValueError as exc:
        raise IndexError_(f"{dir_path}: unreadable bundle manifest: {exc}") from None
    if meta.get("magic") != magic:
        raise IndexError_(f"{dir_path} is not a {magic} bundle")
    if "version" not in meta:
        raise IndexError_(f"{dir_path} bundle manifest has no format version")
    _check_version(meta["version"], dir_path)
    arrays = {}
    mode = "r" if mmap else None
    for name, spec in meta.get("arrays", {}).items():
        file = dir_path / f"{name}.npy"
        try:
            arr = np.load(file, mmap_mode=mode, allow_pickle=False)
        except FileNotFoundError:
            raise IndexError_(
                f"{dir_path}: bundle is missing array file {name}.npy"
            ) from None
        except (ValueError, OSError, EOFError) as exc:
            raise IndexError_(
                f"{dir_path}: unreadable array {name}.npy (truncated?): {exc}"
            ) from None
        if arr.dtype.str != spec["dtype"] or list(arr.shape) != spec["shape"]:
            raise IndexError_(
                f"{dir_path}: array {name!r} is {arr.dtype.str}{list(arr.shape)} "
                f"on disk but the manifest says {spec['dtype']}{spec['shape']}"
            )
        arrays[name] = arr
    return meta, arrays


def save_kmer_bundle(index: KmerSeedIndex, dir_path) -> Path:
    """Write a :class:`KmerSeedIndex` as an mmap-able bundle directory."""
    return _write_bundle(
        dir_path,
        _KMER_MAGIC,
        scalars=dict(
            seed_length=index.seed_length,
            step=index.step,
            region_start=index.region_start,
            region_end=index.region_end,
        ),
        arrays=dict(
            ptrs=np.asarray(index.ptrs, dtype=np.int64),
            locs=np.asarray(index.locs, dtype=np.int64),
        ),
    )


def load_kmer_bundle(
    dir_path, *, mmap: bool = True, check: bool = False
) -> KmerSeedIndex:
    """Load a k-mer index bundle; ``mmap=True`` maps the arrays zero-copy.

    ``check=True`` additionally runs the full structural self-check (it
    touches every page, so the warm-tier store leaves it off and relies on
    the manifest + dtype/shape validation instead).
    """
    meta, arrays = _read_bundle(dir_path, _KMER_MAGIC, mmap=mmap)
    scalars = meta["scalars"]
    index = KmerSeedIndex(
        seed_length=int(scalars["seed_length"]),
        step=int(scalars["step"]),
        region_start=int(scalars["region_start"]),
        region_end=int(scalars["region_end"]),
        ptrs=_take_array(arrays, "ptrs", np.int64, dir_path),
        locs=_take_array(arrays, "locs", np.int64, dir_path),
    )
    if check:
        try:
            index.check()
        except IndexIntegrityError as exc:
            raise IndexIntegrityError(
                f"corrupt k-mer index in {dir_path}: {exc}",
                field=exc.field, path=dir_path,
            ) from None
    return index


def save_searcher_bundle(searcher: SuffixArraySearcher, dir_path) -> Path:
    """Write a searcher as an mmap-able bundle (prefix table included).

    Unlike the ``.npz`` layout, the bundle persists the prefix-table
    arrays, so a warm load skips both suffix sorting *and* the table
    rebuild.
    """
    arrays = dict(
        reference=np.asarray(searcher.reference, dtype=np.uint8),
        sa=np.asarray(searcher.sa, dtype=np.int64),
        lcp=np.asarray(searcher.lcp, dtype=np.int64),
    )
    if searcher._pt_lo is not None:
        arrays["pt_lo"] = np.asarray(searcher._pt_lo, dtype=np.int64)
        arrays["pt_hi"] = np.asarray(searcher._pt_hi, dtype=np.int64)
    return _write_bundle(
        dir_path,
        _SA_MAGIC,
        scalars=dict(
            sparseness=searcher.sparseness,
            prefix_table_k=searcher.prefix_table_k,
        ),
        arrays=arrays,
    )


def load_searcher_bundle(
    dir_path, *, mmap: bool = True, verify: bool = False
) -> SuffixArraySearcher:
    """Load a searcher bundle; ``verify=True`` re-checks the SA ordering.

    Verification touches every page (it is an O(n log n) scan), so the
    store's warm tier leaves it off — bundles are immutable once published
    and validated structurally on every load either way.
    """
    meta, arrays = _read_bundle(dir_path, _SA_MAGIC, mmap=mmap)
    scalars = meta["scalars"]
    prefix_table_k = int(scalars["prefix_table_k"])
    pt_lo = pt_hi = None
    if "pt_lo" in arrays:
        pt_lo = _take_array(arrays, "pt_lo", np.int64, dir_path)
        pt_hi = _take_array(arrays, "pt_hi", np.int64, dir_path)
    searcher = _assemble_searcher(
        reference=_take_array(arrays, "reference", np.uint8, dir_path),
        sa=_take_array(arrays, "sa", np.int64, dir_path),
        lcp=_take_array(arrays, "lcp", np.int64, dir_path),
        sparseness=int(scalars["sparseness"]),
        prefix_table_k=prefix_table_k,
        pt_lo=pt_lo,
        pt_hi=pt_hi,
    )
    if verify:
        verify_searcher(searcher, dir_path)
    return searcher
