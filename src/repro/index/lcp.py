"""LCP (longest common prefix) arrays.

``lcp[i]`` is the length of the common prefix of the suffixes at ``sa[i-1]``
and ``sa[i]`` (``lcp[0] == 0``). Two constructions are provided:

- :func:`lcp_array` — batched: one call to the vectorized
  :func:`~repro.index.compare.common_prefix_len` over all adjacent SA pairs.
  Cost is ``O(sum of adjacent LCPs)`` with NumPy constants; this is the
  production path.
- :func:`lcp_kasai` — the textbook Kasai et al. ``O(n)`` scalar algorithm,
  kept as an independently-derived cross-check for tests.
"""

from __future__ import annotations

import numpy as np

from repro.index.compare import common_prefix_len


def lcp_array(codes: np.ndarray, sa: np.ndarray) -> np.ndarray:
    """LCP array via batched adjacent-pair comparison."""
    codes = np.asarray(codes, dtype=np.uint8)
    sa = np.asarray(sa, dtype=np.int64)
    n = sa.size
    out = np.zeros(n, dtype=np.int64)
    if n > 1:
        out[1:] = common_prefix_len(codes, codes, sa[:-1], sa[1:])
    return out


def lcp_kasai(codes: np.ndarray, sa: np.ndarray) -> np.ndarray:
    """Kasai's linear-time LCP construction (scalar reference)."""
    codes = np.asarray(codes, dtype=np.uint8)
    sa = np.asarray(sa, dtype=np.int64)
    n = sa.size
    lcp = np.zeros(n, dtype=np.int64)
    rank = np.empty(n, dtype=np.int64)
    rank[sa] = np.arange(n)
    h = 0
    for i in range(n):
        ri = rank[i]
        if ri > 0:
            j = sa[ri - 1]
            while i + h < n and j + h < n and codes[i + h] == codes[j + h]:
                h += 1
            lcp[ri] = h
            if h > 0:
                h -= 1
        else:
            h = 0
    return lcp


def naive_lcp_array(codes: np.ndarray, sa: np.ndarray) -> np.ndarray:
    """Character-by-character reference (tests only)."""
    codes = np.asarray(codes, dtype=np.uint8)
    sa = np.asarray(sa, dtype=np.int64)
    n = sa.size
    out = np.zeros(n, dtype=np.int64)
    for i in range(1, n):
        a, b = int(sa[i - 1]), int(sa[i])
        h = 0
        while a + h < n and b + h < n and codes[a + h] == codes[b + h]:
            h += 1
        out[i] = h
    return out
