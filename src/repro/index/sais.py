"""SA-IS: linear-time suffix-array construction by induced sorting.

The library's default builder (:func:`repro.index.suffix_array.suffix_array`)
is vectorized prefix doubling — ``O(n log² n)`` with NumPy constants, which
wins at our benchmark scales. SA-IS [Nong, Zhang & Chan 2009] is the
asymptotically optimal alternative every suffix-array library ships; it is
provided here both for completeness and as a third independent
implementation for cross-validation (three builders agreeing is strong
evidence none is subtly wrong).

Implementation notes: classic recursive SA-IS over an integer alphabet —
L/S typing, LMS substring induced sort, reduction to the summary string,
recursion when names collide, final induced sort. Python-scalar inner
loops; intended for validation and small-to-mid inputs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_


def sais_suffix_array(codes: np.ndarray) -> np.ndarray:
    """Suffix array by SA-IS (same convention as ``suffix_array``).

    The sentinel-terminated construction runs internally; the returned
    array omits the sentinel suffix, matching the doubling builder.
    """
    codes = np.asarray(codes)
    n = codes.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if codes.min(initial=0) < 0:
        raise IndexError_("sais_suffix_array requires non-negative symbols")
    # Shift symbols up by one; 0 becomes the unique sentinel.
    text = np.empty(n + 1, dtype=np.int64)
    text[:n] = codes.astype(np.int64) + 1
    text[n] = 0
    sa = _sais(text.tolist(), int(text.max()) + 1)
    out = np.array(sa, dtype=np.int64)
    return out[out != n]  # drop the sentinel suffix


def _classify(text: list[int]) -> list[bool]:
    """``is_s[i]``: suffix i is S-type (smaller than its right neighbour)."""
    n = len(text)
    is_s = [False] * n
    is_s[n - 1] = True  # the sentinel is S by definition
    for i in range(n - 2, -1, -1):
        if text[i] < text[i + 1]:
            is_s[i] = True
        elif text[i] == text[i + 1]:
            is_s[i] = is_s[i + 1]
    return is_s


def _is_lms(is_s: list[bool], i: int) -> bool:
    return i > 0 and is_s[i] and not is_s[i - 1]


def _bucket_sizes(text: list[int], sigma: int) -> list[int]:
    sizes = [0] * sigma
    for c in text:
        sizes[c] += 1
    return sizes


def _bucket_heads(sizes: list[int]) -> list[int]:
    heads = [0] * len(sizes)
    total = 0
    for c, s in enumerate(sizes):
        heads[c] = total
        total += s
    return heads


def _bucket_tails(sizes: list[int]) -> list[int]:
    tails = [0] * len(sizes)
    total = 0
    for c, s in enumerate(sizes):
        total += s
        tails[c] = total - 1
    return tails


def _induce(text: list[int], sa: list[int], is_s: list[bool], sizes: list[int]) -> None:
    """Induce L-type then S-type suffixes from placed LMS positions."""
    n = len(text)
    heads = _bucket_heads(sizes)
    for i in range(n):  # L-type, left to right
        j = sa[i] - 1
        if sa[i] > 0 and not is_s[j]:
            c = text[j]
            sa[heads[c]] = j
            heads[c] += 1
    tails = _bucket_tails(sizes)
    for i in range(n - 1, -1, -1):  # S-type, right to left
        j = sa[i] - 1
        if sa[i] > 0 and is_s[j]:
            c = text[j]
            sa[tails[c]] = j
            tails[c] -= 1


def _sais(text: list[int], sigma: int) -> list[int]:
    n = len(text)
    if n == 1:
        return [0]
    is_s = _classify(text)
    sizes = _bucket_sizes(text, sigma)

    # 1) place LMS suffixes at their bucket tails (arbitrary order), induce.
    sa = [-1] * n
    tails = _bucket_tails(sizes)
    lms = [i for i in range(1, n) if _is_lms(is_s, i)]
    for i in reversed(lms):
        c = text[i]
        sa[tails[c]] = i
        tails[c] -= 1
    _induce(text, sa, is_s, sizes)

    # 2) name LMS substrings in their induced order.
    order = [i for i in sa if _is_lms(is_s, i)]
    name_of = {}
    prev = -1
    name = -1
    for i in order:
        if prev < 0 or not _lms_substrings_equal(text, is_s, prev, i):
            name += 1
        name_of[i] = name
        prev = i

    # 3) solve the summary problem (recurse if names collide).
    summary = [name_of[i] for i in lms]
    if name + 1 == len(lms):  # all names unique: order is direct
        summary_sa = sorted(range(len(summary)), key=lambda k: summary[k])
    else:
        summary_sa = _sais_summary(summary, name + 1)

    # 4) place LMS suffixes in correct order, induce again.
    sa = [-1] * n
    tails = _bucket_tails(sizes)
    for k in reversed(summary_sa):
        i = lms[k]
        c = text[i]
        sa[tails[c]] = i
        tails[c] -= 1
    _induce(text, sa, is_s, sizes)
    return sa


def _sais_summary(summary: list[int], sigma: int) -> list[int]:
    """Suffix-sort the summary string (append its own sentinel, recurse)."""
    text = [s + 1 for s in summary] + [0]
    sa = _sais(text, sigma + 1)
    return [i for i in sa if i < len(summary)]


def _lms_substrings_equal(text: list[int], is_s: list[bool], a: int, b: int) -> bool:
    """Equality of the LMS substrings starting at a and b."""
    n = len(text)
    if a == n - 1 or b == n - 1:
        return a == b
    k = 0
    while True:
        a_lms = k > 0 and _is_lms(is_s, a + k)
        b_lms = k > 0 and _is_lms(is_s, b + k)
        if a_lms and b_lms:
            return True
        if a_lms != b_lms:
            return False
        if text[a + k] != text[b + k] or is_s[a + k] != is_s[b + k]:
            return False
        k += 1
