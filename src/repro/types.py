"""Shared result types: match triplets and MEM sets.

A maximal exact match (MEM) is reported exactly as in the paper, Table I: a
triplet ``(r, q, length)`` meaning
``R[r : r + length] == Q[q : q + length]`` with mismatches (or sequence
boundaries) immediately to the left and right.

Triplets are stored in NumPy structured arrays so that the whole pipeline —
generation, combining, sorting by diagonal — stays vectorized.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

#: Structured dtype of a match triplet: reference start, query start, length.
TRIPLET_DTYPE = np.dtype([("r", np.int64), ("q", np.int64), ("length", np.int64)])

#: Alias — final MEMs use the same layout as intermediate triplets.
MEM_DTYPE = TRIPLET_DTYPE


def make_triplets(r, q, length) -> np.ndarray:
    """Build a structured triplet array from three equal-length vectors."""
    r = np.asarray(r, dtype=np.int64)
    q = np.asarray(q, dtype=np.int64)
    length = np.asarray(length, dtype=np.int64)
    if not (r.shape == q.shape == length.shape):
        raise ValueError(
            f"mismatched triplet component shapes: {r.shape}, {q.shape}, {length.shape}"
        )
    out = np.empty(r.shape, dtype=TRIPLET_DTYPE)
    out["r"] = r
    out["q"] = q
    out["length"] = length
    return out


def empty_triplets() -> np.ndarray:
    """An empty triplet array (the identity for :func:`concat_triplets`)."""
    return np.empty(0, dtype=TRIPLET_DTYPE)


def concat_triplets(parts: Iterable[np.ndarray]) -> np.ndarray:
    """Concatenate triplet arrays, tolerating an empty iterable."""
    parts = [p for p in parts if p.size]
    if not parts:
        return empty_triplets()
    return np.concatenate(parts)


def sort_mems(mems: np.ndarray) -> np.ndarray:
    """Sort triplets by ``(r - q, q)`` — the paper's §III-C1 diagonal order.

    Overlapping triplets on the same diagonal become adjacent, which is what
    makes the scan-combine at tile and host level correct.
    """
    if mems.size == 0:
        return mems.copy()
    diag = mems["r"] - mems["q"]
    order = np.lexsort((mems["q"], diag))
    return mems[order]


def unique_mems(mems: np.ndarray) -> np.ndarray:
    """Drop exact duplicate triplets; returns diagonal-sorted output."""
    if mems.size == 0:
        return mems.copy()
    return sort_mems(np.unique(mems))


def mems_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Set equality of two MEM collections (order/duplicate insensitive)."""
    return np.array_equal(unique_mems(a), unique_mems(b))


class MatchSet:
    """A queryable collection of MEM triplets with bookkeeping statistics.

    This is the object returned by the public matchers. It behaves like a
    sequence of ``(r, q, length)`` tuples and exposes the underlying
    structured array as :attr:`array` for vectorized consumers.
    """

    def __init__(self, triplets: np.ndarray, *, stats=None):
        if triplets.dtype != TRIPLET_DTYPE:
            raise TypeError(f"expected TRIPLET_DTYPE array, got {triplets.dtype}")
        self._array = unique_mems(triplets)
        #: Pipeline statistics: a typed
        #: :class:`repro.core.pipeline.PipelineStats` (kept by reference, so
        #: the producing matcher and the result expose the same object) or a
        #: plain dict (copied) for ad-hoc annotations. Both support the
        #: mapping protocol.
        if stats is None:
            self.stats = {}
        elif isinstance(stats, dict):
            self.stats = dict(stats)
        else:
            self.stats = stats

    @property
    def array(self) -> np.ndarray:
        """The deduplicated, diagonal-sorted structured triplet array."""
        return self._array

    def __len__(self) -> int:
        return int(self._array.size)

    def __iter__(self) -> Iterator[tuple[int, int, int]]:
        for row in self._array:
            yield (int(row["r"]), int(row["q"]), int(row["length"]))

    def __getitem__(self, item):
        rows = self._array[item]
        if np.isscalar(item) or isinstance(item, (int, np.integer)):
            return (int(rows["r"]), int(rows["q"]), int(rows["length"]))
        return rows

    def __eq__(self, other) -> bool:
        if isinstance(other, MatchSet):
            return mems_equal(self._array, other._array)
        return NotImplemented

    def __hash__(self):  # pragma: no cover - MatchSets are not hashable
        raise TypeError("MatchSet is unhashable")

    def __repr__(self) -> str:
        return f"MatchSet(n={len(self)})"

    def lengths(self) -> np.ndarray:
        """Vector of MEM lengths."""
        return self._array["length"].copy()

    def total_matched_bases(self) -> int:
        """Sum of MEM lengths (a coarse similarity signal)."""
        return int(self._array["length"].sum())

    def filter_min_length(self, min_length: int) -> "MatchSet":
        """A new :class:`MatchSet` keeping MEMs of at least ``min_length``."""
        keep = self._array["length"] >= int(min_length)
        return MatchSet(self._array[keep], stats=self.stats)

    def as_tuples(self) -> list[tuple[int, int, int]]:
        """Materialize as a plain list of python-int tuples (test helper)."""
        return list(self)


def triplets_from_tuples(tuples: Sequence[tuple[int, int, int]]) -> np.ndarray:
    """Inverse of :meth:`MatchSet.as_tuples`."""
    if not tuples:
        return empty_triplets()
    arr = np.array(tuples, dtype=np.int64).reshape(-1, 3)
    return make_triplets(arr[:, 0], arr[:, 1], arr[:, 2])
