"""Command-line interface: ``gpumem`` (or ``python -m repro``).

Subcommands mirror how the paper's tools are driven:

- ``gpumem match ref.fa query.fa -l 50``      — extract MEMs (MUMmer-style
  ``r q length`` lines, 1-based like the classic tools).
- ``gpumem match ... --batch``                — stream the query records
  through the batched engine (``--batch-workers`` concurrent queries over
  one warm session; see docs/architecture.md "Batched extraction").
- ``gpumem map ref.fa reads.fa``              — MEM-seeded read mapping of
  a (streamed) read set, batched the same way.
- ``gpumem serve ref.fa [requests.jsonl]``    — long-lived JSONL server over
  one warm reference (``--tier process`` for multi-core; bursts above
  ``--admission-limit`` shed with a structured error, EOF drains).
- ``gpumem stats s.jsonl [--follow]``         — render (or tail) the live
  telemetry heartbeats a ``serve --stats-jsonl s.jsonl`` run appends.
- ``gpumem match ... --trace out.json``       — record a Chrome-trace of the
  run (``--metrics`` dumps counters; see docs/observability.md).
- ``gpumem index ref.fa -l 50``               — time/report the index build.
- ``gpumem trace out.json``                   — validate/inspect a recorded
  trace (span tree, hottest spans, metrics).
- ``gpumem profile ref.fa query.fa -l 20``    — simulated-backend run with
  the per-kernel device profile rollup.
- ``gpumem dataset chr1m out.fa``             — write a Table II analogue.
- ``gpumem bench --only table3``              — regenerate evaluation assets.
- ``gpumem analyze --all src/repro``          — static SIMT + lock lint (CI gate).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _read_single_fasta(path: str, invalid: str) -> np.ndarray:
    from repro.sequence.fasta import read_fasta

    records = read_fasta(path, invalid=invalid)
    if len(records) > 1:
        print(
            f"note: {path} has {len(records)} records; concatenating",
            file=sys.stderr,
        )
    return np.concatenate([r.codes for r in records])


def _add_match_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("reference", help="reference FASTA file")
    p.add_argument("-l", "--min-length", type=int, default=50,
                   help="minimum MEM length L (default 50)")
    p.add_argument("-s", "--seed-length", type=int, default=10,
                   help="indexing seed length ℓs (default 10)")
    p.add_argument("--step", type=int, default=None,
                   help="indexing step Δs (default: the Eq. 1 maximum)")
    p.add_argument("--invalid", choices=("error", "skip", "random"),
                   default="random", help="non-ACGT letter policy")
    p.add_argument("--executor",
                   choices=("serial", "threads", "banded", "process"),
                   default="serial",
                   help="row executor of the staged pipeline (default serial)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="thread count (--executor threads), band count "
                        "(--executor banded) or process count "
                        "(--executor process); default per executor")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="record a Chrome-trace JSON of the run "
                        "(chrome://tracing / Perfetto; inspect with "
                        "'gpumem trace PATH')")
    p.add_argument("--metrics", action="store_true",
                   help="print the run's metrics registry to stderr")
    p.add_argument("--index-store", metavar="DIR", default=None,
                   help="persistent index store: cache row indexes under DIR "
                        "so later runs (and worker processes) warm-start "
                        "from disk instead of rebuilding "
                        "(same as REPRO_INDEX_STORE=DIR)")


def _activate_index_store(args):
    """Install ``--index-store`` as the process-wide store default.

    Setting :data:`~repro.index.store.STORE_ENV_VAR` (rather than threading
    a handle through every variant signature) makes every downstream
    consumer — sessions built deep inside ``find_rare_mems``, spawned
    procpool workers, the batch tier — resolve the same store. Returns the
    parent-process handle (for stats), or ``None`` when the flag is unset.
    """
    path = getattr(args, "index_store", None)
    if not path:
        return None
    import os

    from repro.index.store import STORE_ENV_VAR, store_at

    os.environ[STORE_ENV_VAR] = path
    return store_at(path)


def _print_store_stats(store) -> None:
    if store is None:
        return
    s = store.stats()
    print(
        f"# index store {s['cache_dir']}: "
        f"{s['hot_hits']} hot / {s['warm_hits']} warm hits, "
        f"{s['builds']} builds, {s['bytes_mmapped']} bytes mmapped, "
        f"{s['n_bundles']} bundles on disk",
        file=sys.stderr,
    )


def _make_cli_tracer(args):
    """A real tracer when observability flags are set, else None."""
    if getattr(args, "trace", None) or getattr(args, "metrics", False):
        from repro.obs import Tracer

        return Tracer()
    return None


def _emit_observability(args, tracer) -> None:
    """Write/print what --trace/--metrics asked for after a traced run."""
    if tracer is None:
        return
    if args.trace:
        tracer.write_chrome_trace(args.trace, command=" ".join(sys.argv))
        print(f"# trace: {len(tracer.spans)} spans -> {args.trace}",
              file=sys.stderr)
    if args.metrics:
        print(tracer.metrics.format(), end="", file=sys.stderr)


def cmd_match(args) -> int:
    from repro.core.matcher import GpuMem
    from repro.core.params import GpuMemParams
    from repro.core.variants import find_mems_both_strands, find_rare_mems

    from repro.sequence.fasta import read_fasta

    reference = _read_single_fasta(args.reference, args.invalid)
    seed_length = min(args.seed_length, args.min_length)
    tracer = _make_cli_tracer(args)
    store = _activate_index_store(args)
    common = dict(
        seed_length=seed_length, step=args.step, backend=args.backend,
        executor=args.executor, workers=args.workers,
    )

    if args.per_record or args.batch:
        from repro.core.params import GpuMemParams as _Params
        from repro.core.session import MemSession
        from repro.sequence.fasta import iter_fasta

        # One session for all records: the reference's row indexes are
        # built on the first record and reused for every later one.
        session = MemSession(
            reference, _Params(min_length=args.min_length, **common),
            tracer=tracer,
        )
        total = n_records = n_errors = 0
        records = iter_fasta(args.query, invalid=args.invalid)
        if args.batch:
            # Batched engine: records stream straight from the parser into
            # the runner (bounded in-flight, never materialized); output
            # stays in record order, one bad record cannot kill the batch.
            from repro.core.batch import BatchRunner

            runner = BatchRunner(
                session, workers=args.batch_workers,
                max_in_flight=args.max_in_flight,
            )
            results = runner.run(records)
        else:
            from repro.core.batch import BatchResult

            def _serial(records=records):
                for index, rec in enumerate(records):
                    yield BatchResult(
                        index=index, label=rec.header,
                        value=session.find_mems(rec.codes), seconds=0.0,
                    )
            results = _serial()
        for result in results:
            n_records += 1
            print(f"> {result.label}")
            if not result.ok:
                n_errors += 1
                print(f"# error in record {result.label!r}: {result.error}",
                      file=sys.stderr)
                continue
            for r, q, length in result.value:
                print(f"{r + 1}\t{q + 1}\t{length}")
            total += len(result.value)
        if args.verbose:
            info = session.cache_info()
            print(f"# records: {n_records}  matches: {total}  "
                  f"errors: {n_errors}  "
                  f"index rows cached: {info['n_cached']}  "
                  f"cache hits: {info['hits']}", file=sys.stderr)
            _print_store_stats(store)
        _emit_observability(args, tracer)
        return 1 if n_errors else 0

    query = _read_single_fasta(args.query, args.invalid)

    if args.unique or args.rare is not None:
        max_occ = 1 if args.unique else args.rare
        result = find_rare_mems(
            reference, query, args.min_length,
            max_ref_occurrences=max_occ, tracer=tracer, **common,
        )
        stats = result.stats
        rows = [("+", r, q, l) for r, q, l in result]
    elif args.both_strands:
        stranded = find_mems_both_strands(
            reference, query, args.min_length, tracer=tracer, **common
        )
        stats = stranded.forward.stats
        rows = [("+", r, q, l) for r, q, l in stranded.forward]
        rows += [("-", r, q, l) for r, q, l in
                 stranded.reverse_in_forward_coords()]
    else:
        params = GpuMemParams(min_length=args.min_length, **common)
        matcher = GpuMem(params, tracer=tracer)
        result = matcher.find_mems(reference, query)
        stats = matcher.stats
        rows = [("+", r, q, l) for r, q, l in result]

    if args.paf:
        from repro.sequence.formats import PafRecord, write_paf

        records = [
            PafRecord(
                query_name="query", query_len=int(query.size),
                query_start=q, query_end=q + length, strand=strand,
                target_name="reference", target_len=int(reference.size),
                target_start=r, target_end=r + length,
                n_match=length, alignment_len=length, mapq=255,
                tags=("tp:A:P", f"cg:Z:{length}M"),
            )
            for strand, r, q, length in rows
        ]
        print(write_paf(records), end="")
    else:
        for strand, r, q, length in rows:
            prefix = f"{strand}\t" if args.both_strands else ""
            print(f"{prefix}{r + 1}\t{q + 1}\t{length}")
    if args.verbose:
        for key in ("index_time", "match_time", "host_merge_time", "total_time",
                    "sim_total_seconds"):
            if key in stats:
                print(f"# {key}: {stats[key]:.4f}s", file=sys.stderr)
        print(f"# matches: {len(rows)}", file=sys.stderr)
        _print_store_stats(store)
    _emit_observability(args, tracer)
    return 0


def cmd_map(args) -> int:
    from repro.core.batch import BatchRunner
    from repro.core.mapping import ReadMapper
    from repro.sequence.fasta import iter_fasta

    reference = _read_single_fasta(args.reference, args.invalid)
    tracer = _make_cli_tracer(args)
    mapper = ReadMapper(
        reference,
        min_seed=args.min_seed,
        tolerance=args.tolerance,
        tracer=tracer,
        seed_length=min(args.seed_length, args.min_seed),
        step=args.step,
        executor=args.executor,
        workers=args.workers,
    )
    runner = BatchRunner(
        mapper.session, workers=args.batch_workers,
        max_in_flight=args.max_in_flight,
    )
    print("#read\tlocus\tmapq\tsupport\tsecond_support\tn_seeds")
    n_reads = n_mapped = n_errors = 0
    reads = iter_fasta(args.reads, invalid=args.invalid)
    for result in runner.run(reads, fn=mapper.map_read):
        n_reads += 1
        if not result.ok:
            n_errors += 1
            print(f"{result.label}\t*\t0\t0\t0\t0")
            print(f"# error in read {result.label!r}: {result.error}",
                  file=sys.stderr)
            continue
        m = result.value
        locus = m.locus + 1 if m.mapped else "*"
        n_mapped += int(m.mapped)
        print(f"{result.label}\t{locus}\t{m.mapq}\t{m.support}"
              f"\t{m.second_support}\t{m.n_seeds}")
    if args.verbose:
        info = mapper.session.cache_info()
        print(f"# reads: {n_reads}  mapped: {n_mapped}  errors: {n_errors}  "
              f"index rows cached: {info['n_cached']}", file=sys.stderr)
    _emit_observability(args, tracer)
    return 1 if n_errors else 0


def cmd_serve(args) -> int:
    import json
    from collections import deque

    from repro.core.serve import MemServer
    from repro.errors import ServerOverloadedError

    reference = _read_single_fasta(args.reference, args.invalid)
    tracer = _make_cli_tracer(args)

    def emit(obj) -> None:
        print(json.dumps(obj), flush=True)

    # Submission-order output: completed futures are flushed from the head
    # of the window opportunistically after each submit and exhaustively at
    # EOF (the drain), so one slow request never reorders the stream.
    pending: deque = deque()

    def flush_ready(block: bool = False) -> None:
        while pending and (block or pending[0][1].done()):
            rid, future = pending.popleft()
            res = future.result()
            if res.ok:
                line = {
                    "id": rid, "ok": True, "n_mems": len(res.value),
                    "seconds": round(res.seconds, 6),
                }
                if not args.count_only:
                    line["mems"] = [
                        [int(r) + 1, int(q) + 1, int(length)]
                        for r, q, length in res.value
                    ]
            else:
                line = {"id": rid, "ok": False,
                        "error": str(res.error) or repr(res.error)}
            emit(line)

    n_shed = 0
    stream = sys.stdin if args.requests in (None, "-") else open(args.requests)
    try:
        with MemServer(
            reference,
            tier=args.tier,
            workers=args.workers,
            max_in_flight=args.max_in_flight,
            admission_limit=args.admission_limit,
            telemetry_path=args.stats_jsonl,
            telemetry_interval=args.stats_interval,
            tracer=tracer,
            min_length=args.min_length,
            seed_length=min(args.seed_length, args.min_length),
            step=args.step,
        ) as server:
            for n, raw in enumerate(stream):
                raw = raw.strip()
                if not raw:
                    continue
                if raw.startswith("{"):
                    try:
                        req = json.loads(raw)
                    except ValueError as exc:
                        emit({"id": None, "ok": False,
                              "error": f"bad request line: {exc}"})
                        continue
                    rid = req.get("id", n)
                    query = req.get("query")
                    if query is None:
                        emit({"id": rid, "ok": False,
                              "error": "missing 'query' field"})
                        continue
                else:
                    rid, query = n, raw
                try:
                    future = server.submit(query, label=str(rid))
                except ServerOverloadedError as exc:
                    n_shed += 1
                    emit({"id": rid, "ok": False, "shed": True,
                          "error": "server overloaded",
                          "queue_depth": exc.queue_depth,
                          "admission_limit": exc.admission_limit})
                    continue
                pending.append((rid, future))
                flush_ready()
            flush_ready(block=True)  # EOF: wait for every admitted request
            final = server.close()   # graceful drain (idempotent)
    finally:
        if stream is not sys.stdin:
            stream.close()
    if args.verbose:
        print(f"# served: {final['completed']}  errors: {final['errors']}  "
              f"shed: {n_shed}  cancelled: {final['cancelled']}  "
              f"drain: {final['drain_seconds']:.3f}s  tier: {final['tier']}",
              file=sys.stderr)
    _emit_observability(args, tracer)
    return 0


def _format_stats_snapshot(snap: dict) -> str:
    """One telemetry snapshot as a compact human-readable block."""
    import datetime

    lines = []
    ts = snap.get("ts")
    when = (
        datetime.datetime.fromtimestamp(ts).strftime("%H:%M:%S")
        if isinstance(ts, (int, float)) else "?"
    )
    lines.append(
        f"[{when}] tier={snap.get('tier', '?')}  "
        f"queue={snap.get('queue_depth', '?')}/{snap.get('admission_limit', '?')}  "
        f"in_flight={snap.get('in_flight', '?')}/{snap.get('max_in_flight', '?')}"
    )
    lines.append(
        f"  submitted={snap.get('submitted', 0)}  "
        f"completed={snap.get('completed', 0)}  "
        f"errors={snap.get('errors', 0)}  shed={snap.get('shed', 0)}  "
        f"cancelled={snap.get('cancelled', 0)}"
    )
    latency = snap.get("latency")
    if latency:
        def ms(key):
            value = latency.get(key)
            return f"{value * 1e3:.2f}ms" if value is not None else "-"

        lines.append(
            f"  latency: n={latency.get('count', 0)}  mean={ms('mean')}  "
            f"p50={ms('p50')}  p95={ms('p95')}  p99={ms('p99')}"
        )
    return "\n".join(lines)


def cmd_stats(args) -> int:
    import json
    import time as _time

    def render(raw_line: str) -> None:
        raw_line = raw_line.strip()
        if not raw_line:
            return
        if args.raw:
            print(raw_line, flush=True)
            return
        try:
            snap = json.loads(raw_line)
        except ValueError:
            print(f"# unparseable line: {raw_line[:80]}", file=sys.stderr)
            return
        print(_format_stats_snapshot(snap), flush=True)

    try:
        fh = open(args.stats_file, encoding="utf-8")
    except OSError as exc:
        print(f"error: cannot open {args.stats_file}: {exc}", file=sys.stderr)
        return 2
    with fh:
        lines = fh.readlines()
        if not args.follow:
            if not lines:
                print(f"{args.stats_file}: no snapshots yet", file=sys.stderr)
                return 1
            render(lines[-1])
            return 0
        # Follow mode: render everything so far, then tail for new lines.
        for line in lines:
            render(line)
        try:
            while True:
                line = fh.readline()
                if line:
                    render(line)
                else:
                    _time.sleep(0.2)
        except KeyboardInterrupt:
            return 0


def cmd_index(args) -> int:
    import time

    from repro.core.matcher import GpuMem
    from repro.core.params import GpuMemParams

    reference = _read_single_fasta(args.reference, args.invalid)
    tracer = _make_cli_tracer(args)
    store = _activate_index_store(args)
    params = GpuMemParams(
        min_length=args.min_length,
        seed_length=min(args.seed_length, args.min_length),
        step=args.step,
        executor=args.executor,
        workers=args.workers,
    )
    seconds = GpuMem(params, tracer=tracer).index_only(reference)
    print(f"index build: {seconds:.4f}s  ({params.describe()})")
    _print_store_stats(store)
    if args.save:
        from repro.index.kmer_index import build_kmer_index
        from repro.index.serialize import save_kmer_index

        t0 = time.perf_counter()
        index = build_kmer_index(
            reference, seed_length=params.seed_length, step=params.step
        )
        save_kmer_index(index, args.save)
        print(
            f"saved full-reference index ({index.n_locs:,} locations) to "
            f"{args.save} in {time.perf_counter() - t0:.3f}s"
        )
    _emit_observability(args, tracer)
    return 0


def cmd_trace(args) -> int:
    from repro.obs.export import (
        format_event_tree,
        load_chrome_trace,
        top_spans,
        validate_chrome_trace,
    )

    try:
        doc = load_chrome_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load {args.trace_file}: {exc}", file=sys.stderr)
        return 2
    problems = validate_chrome_trace(doc)
    events = [e for e in doc.get("traceEvents", []) if e.get("ph") == "X"]
    print(f"{args.trace_file}: {len(events)} spans", end="")
    meta = doc.get("metadata", {})
    if meta.get("command"):
        print(f"  (recorded by: {meta['command']})", end="")
    print()
    if problems:
        print(f"\n{len(problems)} schema problem(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("schema: OK (valid Chrome trace, spans properly nested)")

    if args.tree:
        print()
        print(format_event_tree(doc), end="")
    else:
        print("\nhottest spans (by total wall time):")
        for name, count, total_ms in top_spans(doc, n=args.top):
            print(f"  {name:<28}{count:>6}×{total_ms:>12.3f} ms")

    metrics = doc.get("metrics") or {}
    if metrics:
        print(f"\nmetrics: {len(metrics)} series recorded "
              "(see the 'metrics' block of the JSON)")
        for series in sorted(metrics)[: args.top]:
            entry = metrics[series]
            if entry.get("type") == "histogram":
                print(f"  {series}: count={entry['count']} sum={entry['sum']:.6g}")
            else:
                print(f"  {series}: {entry.get('value')}")
    return 0


def cmd_profile(args) -> int:
    from repro.core.params import GpuMemParams
    from repro.core.simulated import simulated_find_mems
    from repro.gpu.kernel import Device
    from repro.gpu.profiler import profile_device

    reference = _read_single_fasta(args.reference, args.invalid)
    query = _read_single_fasta(args.query, args.invalid)
    tracer = _make_cli_tracer(args)
    params = GpuMemParams(
        min_length=args.min_length,
        seed_length=min(args.seed_length, args.min_length),
        step=args.step,
        backend="simulated",
    )
    dev = Device()
    mems, stats = simulated_find_mems(
        reference, query, params, device=dev, tracer=tracer
    )
    print(profile_device(dev).format(), end="")
    print(f"\nmatches: {int(mems.size)}  "
          f"sim total: {stats['sim_total_seconds']:.6f}s  "
          f"kernel launches: {stats['kernel_launches']}")
    _emit_observability(args, tracer)
    return 0


def cmd_dataset(args) -> int:
    from repro.sequence.datasets import DATASETS, load_dataset
    from repro.sequence.fasta import write_fasta

    if args.name not in DATASETS:
        print(f"unknown dataset {args.name!r}; known: {sorted(DATASETS)}",
              file=sys.stderr)
        return 2
    codes = load_dataset(args.name)
    spec = DATASETS[args.name]
    write_fasta(args.output, [(f"{args.name} {spec.description}", codes)])
    print(f"wrote {args.output}: {codes.size:,} bases")
    return 0


def cmd_bench(args) -> int:
    import subprocess
    from pathlib import Path

    run_all = Path(__file__).resolve().parents[2] / "benchmarks" / "run_all.py"
    if not run_all.exists():
        print("benchmarks/run_all.py not found (installed without the repo?)",
              file=sys.stderr)
        return 2
    cmd = [sys.executable, str(run_all)]
    if args.only:
        cmd += ["--only", *args.only]
    if args.div:
        cmd += ["--div", str(args.div)]
    return subprocess.call(cmd)


def cmd_analyze(args) -> int:
    import os

    from repro.analysis.concurrency_lint import lint_host_paths
    from repro.analysis.kernel_lint import (
        findings_to_json,
        format_findings,
        lint_paths,
    )
    from repro.analysis.resource_lint import lint_resource_paths

    paths = args.paths
    if not paths:
        # default: the installed package itself (works outside a checkout)
        import repro

        paths = [os.path.dirname(repro.__file__)]
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    # --device (default, back-compat) = KL SIMT rules; --host = CL lock
    # rules; --resource = RL lifecycle rules; --all = every family,
    # merged into one report / JSON document.
    device = args.side in ("device", "all")
    host = args.side in ("host", "all")
    resource = args.side in ("resource", "all")
    findings = []
    if device:
        findings.extend(lint_paths(paths, select=select, ignore=ignore))
    if host:
        findings.extend(lint_host_paths(paths, select=select, ignore=ignore))
    if resource:
        findings.extend(lint_resource_paths(paths, select=select, ignore=ignore))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if args.format == "json":
        print(findings_to_json(findings))
    else:
        print(format_findings(findings))
    return 1 if findings else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="gpumem", description="GPUMEM reproduction: maximal exact match extraction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("match", help="extract MEMs between reference and query")
    _add_match_args(p)
    p.add_argument("query", help="query FASTA file")
    p.add_argument("--backend", choices=("vectorized", "simulated"),
                   default="vectorized")
    p.add_argument("--unique", action="store_true",
                   help="report MUMs (matches unique in both sequences)")
    p.add_argument("--rare", type=int, default=None, metavar="K",
                   help="report rare matches (at most K occurrences per side)")
    p.add_argument("-b", "--both-strands", action="store_true",
                   help="also match the reverse-complement strand")
    p.add_argument("--per-record", action="store_true",
                   help="match each query FASTA record separately "
                        "(MUMmer-style multi-record output)")
    p.add_argument("--batch", action="store_true",
                   help="per-record mode on the batched engine: stream "
                        "records through a BatchRunner (--batch-workers "
                        "concurrent queries, one warm session, per-record "
                        "error isolation)")
    p.add_argument("--batch-workers", type=int, default=None, metavar="N",
                   help="concurrent queries of --batch (default: CPU count, "
                        "capped at 8)")
    p.add_argument("--max-in-flight", type=int, default=None, metavar="N",
                   help="backpressure bound of --batch: at most N records "
                        "submitted but unfinished (default 2x workers)")
    p.add_argument("--paf", action="store_true",
                   help="emit PAF records instead of MUMmer-style triplets")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(fn=cmd_match)

    p = sub.add_parser(
        "map",
        help="MEM-seeded read mapping: stream a read set through the "
             "batched engine against one warm reference session",
    )
    p.add_argument("reference", help="reference FASTA file")
    p.add_argument("reads", help="reads FASTA file (streamed, any size)")
    p.add_argument("-l", "--min-seed", type=int, default=20,
                   help="minimum MEM seed length (default 20)")
    p.add_argument("-s", "--seed-length", type=int, default=10,
                   help="indexing seed length ℓs (default 10)")
    p.add_argument("--step", type=int, default=None,
                   help="indexing step Δs (default: the Eq. 1 maximum)")
    p.add_argument("--tolerance", type=int, default=200,
                   help="diagonal bucket width / max cumulative indel "
                        "(default 200)")
    p.add_argument("--invalid", choices=("error", "skip", "random"),
                   default="random", help="non-ACGT letter policy")
    p.add_argument("--executor",
                   choices=("serial", "threads", "banded", "process"),
                   default="serial",
                   help="row executor inside each query (default serial)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="row-executor width (threads/bands per query)")
    p.add_argument("--batch-workers", type=int, default=None, metavar="N",
                   help="concurrent reads (default: CPU count, capped at 8)")
    p.add_argument("--max-in-flight", type=int, default=None, metavar="N",
                   help="backpressure bound (default 2x batch workers)")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="record a Chrome-trace JSON of the run")
    p.add_argument("--metrics", action="store_true",
                   help="print the run's metrics registry to stderr")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(fn=cmd_map)

    p = sub.add_parser(
        "serve",
        help="long-lived MEM server: JSONL requests in (stdin or file), "
             "JSONL results out; admission control sheds bursts with a "
             "structured error and EOF drains gracefully",
    )
    p.add_argument("reference", help="reference FASTA file")
    p.add_argument("requests", nargs="?", default=None,
                   help="JSONL request file (default: stdin). Each line is "
                        "either {\"id\": ..., \"query\": \"ACGT...\"} or a "
                        "bare sequence string")
    p.add_argument("-l", "--min-length", type=int, default=20,
                   help="minimum MEM length L (default 20)")
    p.add_argument("-s", "--seed-length", type=int, default=10,
                   help="indexing seed length ℓs (default 10)")
    p.add_argument("--step", type=int, default=None,
                   help="indexing step Δs (default: the Eq. 1 maximum)")
    p.add_argument("--invalid", choices=("error", "skip", "random"),
                   default="random",
                   help="non-ACGT letter policy for the reference")
    p.add_argument("--tier", choices=("thread", "process"), default="thread",
                   help="execution substrate: in-process thread pool or the "
                        "shared worker-process pool (default thread)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="concurrent request executions (default: CPU count, "
                        "capped at 8)")
    p.add_argument("--max-in-flight", type=int, default=None, metavar="N",
                   help="executing-request bound (default: workers)")
    p.add_argument("--admission-limit", type=int, default=None, metavar="N",
                   help="queued-but-not-executing bound; submissions beyond "
                        "it are shed (default 2x max-in-flight)")
    p.add_argument("--count-only", action="store_true",
                   help="emit only MEM counts per request, not the triplets")
    p.add_argument("--stats-jsonl", metavar="PATH", default=None,
                   help="append a telemetry snapshot (queue depth, in-flight, "
                        "latency p50/p95/p99) to PATH as JSONL every "
                        "--stats-interval seconds; watch with 'gpumem stats "
                        "PATH --follow'")
    p.add_argument("--stats-interval", type=float, default=1.0, metavar="SEC",
                   help="telemetry heartbeat period (default 1.0s)")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="record a Chrome-trace JSON of the serving run")
    p.add_argument("--metrics", action="store_true",
                   help="print the run's metrics registry to stderr")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "stats",
        help="render the latest telemetry snapshot of a serve run "
             "(written by 'gpumem serve --stats-jsonl'); --follow tails "
             "the stream live",
    )
    p.add_argument("stats_file", help="JSONL telemetry file being written "
                                      "by 'gpumem serve --stats-jsonl'")
    p.add_argument("--follow", action="store_true",
                   help="keep reading: render each new snapshot as it lands "
                        "(Ctrl-C to stop)")
    p.add_argument("--raw", action="store_true",
                   help="print the JSON lines verbatim instead of rendering")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("index", help="build (and time) the GPUMEM index only")
    _add_match_args(p)
    p.add_argument("--save", metavar="PATH", default=None,
                   help="also save the full-reference locs/ptrs index (.npz)")
    p.add_argument("--store", metavar="DIR", dest="index_store",
                   help="alias for --index-store: persist the built row "
                        "indexes under DIR so 'gpumem match --index-store "
                        "DIR' warm-starts from them")
    p.set_defaults(fn=cmd_index)

    p = sub.add_parser(
        "trace",
        help="validate and inspect a Chrome-trace JSON recorded by --trace",
    )
    p.add_argument("trace_file", help="trace JSON written by 'gpumem match --trace'")
    p.add_argument("--tree", action="store_true",
                   help="print the full nested span tree")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="how many hottest spans / metric series to list")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "profile",
        help="run the simulated backend and print the per-kernel device profile",
    )
    p.add_argument("reference", help="reference FASTA file")
    p.add_argument("query", help="query FASTA file")
    p.add_argument("-l", "--min-length", type=int, default=20,
                   help="minimum MEM length L (default 20)")
    p.add_argument("-s", "--seed-length", type=int, default=8,
                   help="indexing seed length ℓs (default 8)")
    p.add_argument("--step", type=int, default=None,
                   help="indexing step Δs (default: the Eq. 1 maximum)")
    p.add_argument("--invalid", choices=("error", "skip", "random"),
                   default="random", help="non-ACGT letter policy")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="also record a Chrome-trace JSON of the profiled run")
    p.add_argument("--metrics", action="store_true",
                   help="print the run's metrics registry to stderr")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("dataset", help="write a synthetic Table II dataset as FASTA")
    p.add_argument("name")
    p.add_argument("output")
    p.set_defaults(fn=cmd_dataset)

    p = sub.add_parser("bench", help="regenerate evaluation tables/figures")
    p.add_argument("--only", nargs="*", default=None)
    p.add_argument("--div", type=int, default=None)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "analyze",
        help="static analysis — device (SIMT: barrier divergence, "
             "shared-memory races, KL1xx-KL2xx), host (lock discipline, "
             "deadlock shapes, CL1xx), and/or resource lifecycles "
             "(shm/mmap/lock/temp leaks, spawn safety, RL1xx) — exit 1 "
             "on any finding",
    )
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="files or directories to lint "
                        "(default: the installed repro package)")
    side = p.add_mutually_exclusive_group()
    side.add_argument("--device", dest="side", action="store_const",
                      const="device",
                      help="device-side SIMT rules only (KL1xx/KL2xx; default)")
    side.add_argument("--host", dest="side", action="store_const", const="host",
                      help="host-side lock-discipline rules only (CL1xx)")
    side.add_argument("--resource", dest="side", action="store_const",
                      const="resource",
                      help="resource-lifecycle / spawn-safety rules only (RL1xx)")
    side.add_argument("--all", dest="side", action="store_const", const="all",
                      help="every rule family (device + host + resource)")
    p.set_defaults(side="device")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--select", metavar="RULES", default=None,
                   help="comma-separated rule ids to report (e.g. KL101,CL102)")
    p.add_argument("--ignore", metavar="RULES", default=None,
                   help="comma-separated rule ids to suppress")
    p.set_defaults(fn=cmd_analyze)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
