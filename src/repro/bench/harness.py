"""Experiment runner: builds indexes, extracts MEMs, cross-checks outputs.

Every extraction experiment verifies that all tools report the *same MEM
set* before timings are accepted — a wrong-but-fast tool never makes it
into a table.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.baselines import (
    EssaMemFinder,
    MummerFinder,
    SlaMemFinder,
    SparseMemFinder,
    parallel_query_time,
)
from repro.core.matcher import GpuMem
from repro.core.params import GpuMemParams
from repro.core.session import MemSession
from repro.errors import GpuMemError
from repro.sequence.datasets import ExperimentConfig, load_experiment
from repro.types import mems_equal

#: Extra prefix-slicing divisor applied by the benchmarks on top of the
#: library's 1:100 dataset scale. Override with ``REPRO_BENCH_DIV=1`` for
#: the full 1:100 run (slaMEM dominates its cost).
BENCH_DIV = int(os.environ.get("REPRO_BENCH_DIV", "10"))

#: τ values benchmarked for the thread-parallel tools.
TAUS = (1, 4, 8)


def bench_pair(config: ExperimentConfig, div: int | None = None):
    """The (reference, query) pair for one experiment row, bench-sliced."""
    div = BENCH_DIV if div is None else div
    reference, query = load_experiment(config)
    return reference[: reference.size // div], query[: query.size // div]


def gpumem_params(config: ExperimentConfig, **overrides) -> GpuMemParams:
    return GpuMemParams(
        min_length=config.min_length, seed_length=config.seed_length, **overrides
    )


def run_index_experiment(config: ExperimentConfig, div: int | None = None) -> dict[str, float]:
    """One Table III row: index-build seconds per tool column."""
    reference, _ = bench_pair(config, div)
    out: dict[str, float] = {}
    for tau in TAUS:
        f = SparseMemFinder(sparseness=tau)
        out[f"sparseMEM t={tau}"] = f.build_index(reference).seconds
    for tau in TAUS:
        f = EssaMemFinder(sparseness=tau)
        out[f"essaMEM t={tau}"] = f.build_index(reference).seconds
    out["MUMmer"] = MummerFinder().build_index(reference).seconds
    out["slaMEM"] = SlaMemFinder().build_index(reference).seconds
    out["GPUMEM"] = GpuMem(gpumem_params(config)).index_only(reference)
    return out


def run_extraction_experiment(
    config: ExperimentConfig, div: int | None = None
) -> tuple[dict[str, float], dict]:
    """One Table IV row: extraction seconds per tool column.

    Returns ``(times, info)`` where ``info`` carries the (verified-equal)
    MEM count and any skipped columns.
    """
    reference, query = bench_pair(config, div)
    L = config.min_length
    times: dict[str, float] = {}
    skipped: list[str] = []
    mem_sets: dict[str, np.ndarray] = {}

    for family, cls in (("sparseMEM", SparseMemFinder), ("essaMEM", EssaMemFinder)):
        for tau in TAUS:
            col = f"{family} t={tau}"
            if tau > L:
                skipped.append(col)
                continue
            finder = cls(sparseness=tau)
            finder.build_index(reference)
            mems, seconds, _ = parallel_query_time(finder, query, L, tau)
            times[col] = seconds
            mem_sets[col] = mems.array

    f = MummerFinder()
    f.build_index(reference)
    res = f.find_mems(query, L)
    times["MUMmer"] = res.seconds
    mem_sets["MUMmer"] = res.mems.array

    f = SlaMemFinder()
    f.build_index(reference)
    res = f.find_mems(query, L)
    times["slaMEM"] = res.seconds
    mem_sets["slaMEM"] = res.mems.array

    g = MemSession(reference, gpumem_params(config))
    result = g.find_mems(query)
    times["GPUMEM"] = g.stats["total_time"] - g.stats["index_time"]
    mem_sets["GPUMEM"] = result.array

    baseline = mem_sets["GPUMEM"]
    for col, arr in mem_sets.items():
        if not mems_equal(arr, baseline):
            raise GpuMemError(
                f"{config.key}: {col} reported {arr.size} MEMs but GPUMEM "
                f"reported {baseline.size} — outputs must be identical"
            )
    info = {
        "n_mems": int(baseline.size),
        "skipped": skipped,
        "reference_len": int(reference.size),
        "query_len": int(query.size),
    }
    return times, info


def run_session_reuse_experiment(
    reference, queries, params: GpuMemParams
) -> dict:
    """Seed behaviour vs. reusable session over an N-query workload.

    "Seed" is one throwaway matcher per query (per-row indexes rebuilt every
    call); "session" is one :class:`MemSession` serving the whole workload.
    Outputs are asserted identical before timings are reported.
    """
    t0 = time.perf_counter()
    per_call_results = [
        GpuMem(params).find_mems(reference, q) for q in queries
    ]
    per_call_seconds = time.perf_counter() - t0

    session = MemSession(reference, params)
    t0 = time.perf_counter()
    session_results = session.find_mems_batch(queries)
    session_seconds = time.perf_counter() - t0

    for a, b in zip(per_call_results, session_results, strict=True):
        if not mems_equal(a.array, b.array):
            raise GpuMemError(
                "session-reuse changed the MEM set — outputs must be identical"
            )
    n = max(1, len(queries))
    return {
        "n_queries": len(queries),
        "n_mems": int(sum(len(r) for r in session_results)),
        "per_call_seconds": per_call_seconds,
        "session_seconds": session_seconds,
        "per_call_qps": n / per_call_seconds if per_call_seconds > 0 else float("inf"),
        "session_qps": n / session_seconds if session_seconds > 0 else float("inf"),
        "speedup": per_call_seconds / session_seconds
        if session_seconds > 0
        else float("inf"),
        "cache_info": session.cache_info(),
    }


def environment_info() -> dict:
    """Capture the measurement environment for bench provenance."""
    import platform

    import numpy

    import repro

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": repro.__version__,
        "platform": platform.platform(),
        "processor": platform.processor() or platform.machine(),
        "bench_div": BENCH_DIV,
    }


def time_call(fn, *args, repeat: int = 1, **kwargs):
    """Best-of-``repeat`` timing helper returning (seconds, last_result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result
