"""Paper-shaped ASCII tables and machine-readable series output."""

from __future__ import annotations

import io
from typing import Mapping, Sequence


def format_table(
    title: str,
    rows: Sequence[tuple[str, Mapping[str, float]]],
    columns: Sequence[str],
    *,
    paper: Mapping[str, Mapping[str, float]] | None = None,
    unit: str = "s",
    precision: int = 3,
) -> str:
    """Render measured (and optionally paper-published) values per row.

    ``rows`` is a sequence of ``(row_key, {column: value})``. When ``paper``
    is given, each measured line is followed by the published line so the
    shape comparison is immediate.
    """
    out = io.StringIO()
    key_width = max([len(k) for k, _ in rows] + [len("configuration")]) + 2
    col_width = max(max(len(c) for c in columns) + 2, 12)

    out.write(f"== {title} ==\n")
    out.write("configuration".ljust(key_width))
    for c in columns:
        out.write(c.rjust(col_width))
    out.write("\n")

    def fmt(v):
        if v is None:
            return "-"
        return f"{v:.{precision}f}{unit}"

    for key, values in rows:
        out.write(key.ljust(key_width))
        for c in columns:
            out.write(fmt(values.get(c)).rjust(col_width))
        out.write("\n")
        if paper and key in paper:
            out.write(f"  (paper {unit})".ljust(key_width))
            for c in columns:
                out.write(fmt(paper[key].get(c)).rjust(col_width))
            out.write("\n")
    return out.getvalue()


def series_csv(header: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Simple CSV dump for figure series."""
    lines = [",".join(header)]
    for row in rows:
        lines.append(",".join(str(v) for v in row))
    return "\n".join(lines) + "\n"
