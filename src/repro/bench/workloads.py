"""Experiment grid: the paper's configurations and published numbers.

``PAPER_TABLE3``/``PAPER_TABLE4`` transcribe the published Tables III/IV so
the harness can print paper-vs-measured side by side (EXPERIMENTS.md). The
values are seconds on the authors' testbed (Tesla K20c vs dual Xeon E5520);
we reproduce *shape*, not absolute numbers.
"""

from __future__ import annotations

from repro.sequence.datasets import EXPERIMENT_CONFIGS, ExperimentConfig

#: Column order of Tables III/IV.
TOOL_COLUMNS = [
    "sparseMEM t=1",
    "sparseMEM t=4",
    "sparseMEM t=8",
    "essaMEM t=1",
    "essaMEM t=4",
    "essaMEM t=8",
    "MUMmer",
    "slaMEM",
    "GPUMEM",
]


def experiment_rows() -> list[ExperimentConfig]:
    """The nine (reference, query, L) rows, in the paper's order."""
    return list(EXPERIMENT_CONFIGS)


def _row(key, *vals):
    return {key: dict(zip(TOOL_COLUMNS, vals, strict=True))}


#: Published index-generation seconds (Table III). sparseMEM/essaMEM/MUMmer/
#: slaMEM build once per (reference, query) pair; GPUMEM's build depends on
#: L through Δs.
PAPER_TABLE3: dict[str, dict[str, float]] = {}
for k, v in [
    ("chr1m/chr2h/L100", (73.84, 37.17, 28.51, 75.08, 41.67, 30.68, 99.58, 278.32, 1.41)),
    ("chr1m/chr2h/L50", (73.84, 37.17, 28.51, 75.08, 41.67, 30.68, 99.58, 278.32, 2.51)),
    ("chr1m/chr2h/L30", (73.84, 37.17, 28.51, 75.08, 41.67, 30.68, 99.58, 278.32, 5.58)),
    ("chrXc/chrXh/L50", (48.78, 24.84, 18.37, 49.72, 27.70, 19.87, 66.42, 169.95, 1.74)),
    ("chrXc/chrXh/L30", (48.78, 24.84, 18.37, 49.72, 27.70, 19.87, 66.42, 169.95, 3.11)),
    ("dmelanogaster/EcoliK12/L20", (7.74, 3.66, 2.38, 8.34, 4.27, 2.69, 10.73, 39.71, 1.20)),
    ("dmelanogaster/EcoliK12/L15", (7.74, 3.66, 2.38, 8.34, 4.27, 2.69, 10.73, 39.71, 3.19)),
    ("chrXII/chrI/L20", (0.22, 0.09, 0.10, 0.31, 0.13, 0.13, 0.26, 1.68, 0.38)),
    ("chrXII/chrI/L10", (0.22, 0.09, 0.10, 0.31, 0.13, 0.13, 0.26, 1.68, 0.05)),
]:
    PAPER_TABLE3[k] = dict(zip(TOOL_COLUMNS, v, strict=True))

#: Published MEM-extraction seconds (Table IV).
PAPER_TABLE4: dict[str, dict[str, float]] = {}
for k, v in [
    ("chr1m/chr2h/L100", (163.75, 444.72, 502.00, 161.91, 14.49, 10.14, 159.17, 84.56, 5.38)),
    ("chr1m/chr2h/L50", (164.42, 443.24, 499.13, 161.00, 59.29, 34.89, 161.86, 84.86, 9.24)),
    ("chr1m/chr2h/L30", (213.32, 460.08, 507.95, 211.70, 116.12, 32.00, 312.28, 100.16, 20.19)),
    ("chrXc/chrXh/L50", (70.19, 187.22, 223.38, 68.78, 42.99, 24.91, 78.65, 52.36, 5.86)),
    ("chrXc/chrXh/L30", (111.79, 197.61, 232.65, 110.13, 83.13, 25.58, 163.58, 80.77, 11.22)),
    ("dmelanogaster/EcoliK12/L20", (3.22, 7.32, 4.76, 3.21, 0.36, 0.32, 2.68, 1.54, 0.08)),
    ("dmelanogaster/EcoliK12/L15", (3.25, 7.57, 6.46, 3.24, 0.71, 2.68, 2.75, 1.57, 0.24)),
    ("chrXII/chrI/L20", (0.08, 0.13, 0.08, 0.08, 0.01, 0.01, 0.08, 0.06, 0.01)),
    ("chrXII/chrI/L10", (0.13, 0.25, 2.34, 0.13, 0.08, 2.19, 0.14, 0.11, 0.02)),
]:
    PAPER_TABLE4[k] = dict(zip(TOOL_COLUMNS, v, strict=True))

#: Fig. 4: query prefixes of chr2h (fractions of the full length), ref chr1m,
#: L = 50. Paper uses 50/100/150/200/242.97 Mbp.
FIG4_FRACTIONS = [50 / 242.97, 100 / 242.97, 150 / 242.97, 200 / 242.97, 1.0]

#: Fig. 5: L sweep on chr1m/chr2h.
FIG5_MIN_LENGTHS = [20, 40, 50, 100, 150]

#: Fig. 7: the paper reports per-configuration load-balancing speedups of
#: 1.6-4.4x on the five large configurations, e.g. 88.87 s unbalanced for
#: chr1m/chr2h L=30 versus 1.6x faster balanced.
PAPER_FIG7_SPEEDUP_RANGE = (1.6, 4.4)
