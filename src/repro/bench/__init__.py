"""Experiment harness regenerating the paper's tables and figures.

:mod:`repro.bench.workloads` defines the experiment grid (the nine
(reference, query, L) rows of Tables III/IV plus the figure sweeps);
:mod:`repro.bench.harness` runs tools over it; :mod:`repro.bench.reporting`
prints paper-shaped tables and dumps machine-readable series.

Scaling: library datasets are 1:100 of the paper's (DESIGN.md §2). The
benchmarks additionally slice a ``1/BENCH_DIV`` prefix of each sequence so
the default run finishes in minutes; set ``REPRO_BENCH_DIV=1`` for the full
1:100 run.
"""

from repro.bench.harness import (
    BENCH_DIV,
    bench_pair,
    run_extraction_experiment,
    run_index_experiment,
)
from repro.bench.reporting import format_table, series_csv
from repro.bench.workloads import (
    FIG4_FRACTIONS,
    FIG5_MIN_LENGTHS,
    PAPER_TABLE3,
    PAPER_TABLE4,
    TOOL_COLUMNS,
    experiment_rows,
)

__all__ = [
    "BENCH_DIV",
    "bench_pair",
    "run_index_experiment",
    "run_extraction_experiment",
    "format_table",
    "series_csv",
    "experiment_rows",
    "TOOL_COLUMNS",
    "FIG4_FRACTIONS",
    "FIG5_MIN_LENGTHS",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
]
