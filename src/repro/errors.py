"""Exception hierarchy for the GPUMEM reproduction.

All library errors derive from :class:`GpuMemError` so callers can catch a
single base class. Substrate-specific errors (GPU simulator, sequence
handling) subclass it with more precise semantics.
"""

from __future__ import annotations


class GpuMemError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidSequenceError(GpuMemError, ValueError):
    """A sequence contains letters outside the DNA alphabet, or is malformed."""


class InvalidParameterError(GpuMemError, ValueError):
    """A parameter combination violates a documented constraint.

    The most important instance is Eq. (1) of the paper:
    ``step_size <= min_length - seed_length + 1``. Violating it would allow
    maximal exact matches of length ``>= min_length`` to contain no indexed
    seed and therefore be silently missed.
    """


class MemoryBudgetError(GpuMemError, MemoryError):
    """A simulated device allocation exceeded the device's global memory."""


class KernelError(GpuMemError, RuntimeError):
    """A simulated GPU kernel misbehaved (barrier divergence, bad launch...)."""


class BarrierDivergenceError(KernelError):
    """Threads of one block diverged at a ``__syncthreads`` barrier.

    Raised by the executor when some threads of a block exit their generator
    while siblings still yield — the simulator's equivalent of the undefined
    behaviour a divergent ``__syncthreads`` has on real hardware. Carries
    structured provenance so tooling (and tests) need not parse the message.
    """

    def __init__(self, kernel: str, block: int, phase: int, exited, waiting):
        self.kernel = kernel
        self.block = int(block)
        self.phase = int(phase)
        #: thread ids whose generators completed this phase
        self.exited = tuple(int(t) for t in exited)
        #: thread ids still waiting at the barrier
        self.waiting = tuple(int(t) for t in waiting)
        super().__init__(
            f"barrier divergence in kernel {kernel!r} block {self.block} "
            f"phase {self.phase}: threads {list(self.exited)} exited while "
            f"threads {list(self.waiting)} wait at a barrier"
        )


class RaceConditionError(KernelError):
    """The runtime sanitizer observed a shared-memory race in a kernel.

    ``findings`` holds the :class:`repro.analysis.sanitizer.RaceFinding`
    records (thread/block/phase/address provenance) that triggered it.
    """

    def __init__(self, message: str, findings=()):
        self.findings = tuple(findings)
        super().__init__(message)


class LockOrderError(GpuMemError, RuntimeError):
    """The runtime lock tracker observed a lock-order inversion.

    Raised (in ``mode="raise"``) at the acquisition that closes a cycle in
    the process-wide lock-order graph: somewhere lock A was taken while B
    was held and this thread just took B while holding A — two threads on
    those paths can deadlock. ``cycle`` holds the
    :class:`repro.analysis.lock_tracker.AcquisitionSite` records (lock
    names, thread names, acquisition sites and full stacks) for every edge
    of the cycle, so the report carries both threads' provenance without
    message parsing.
    """

    def __init__(self, message: str, cycle=()):
        #: edge provenance records around the order cycle
        self.cycle = tuple(cycle)
        super().__init__(message)


class ResourceLeakError(GpuMemError, RuntimeError):
    """The runtime resource tracker's end-of-run audit found live resources.

    Raised (in ``mode="raise"``) by
    :meth:`repro.analysis.resource_tracker.ResourceTracker.audit` when
    shared-memory segments, file locks, or mmap-backed bundle handles that
    were opened during the run are still live and not adopted by a
    registered long-lived holder. ``leaks`` holds the
    :class:`repro.analysis.resource_tracker.ResourceRecord` entries (kind,
    name, creating pid, creation site) so reports and tests get structured
    provenance instead of parsing the message.
    """

    def __init__(self, message: str, leaks=()):
        #: live-resource provenance records from the audit
        self.leaks = tuple(leaks)
        super().__init__(message)


class ServerOverloadedError(GpuMemError, RuntimeError):
    """The serving front end shed a request: the admission queue is full.

    Structured (queue depth + limit as attributes) so clients can back off
    programmatically instead of parsing the message. Raised at submission
    time — an overloaded server never accepts work it cannot queue.
    """

    def __init__(self, queue_depth: int, admission_limit: int):
        self.queue_depth = int(queue_depth)
        self.admission_limit = int(admission_limit)
        super().__init__(
            f"server overloaded: admission queue at {self.queue_depth}/"
            f"{self.admission_limit}; retry with backoff"
        )

    def __reduce__(self):
        return (type(self), (self.queue_depth, self.admission_limit))


class ServerClosedError(GpuMemError, RuntimeError):
    """A request was submitted to a server that is draining or closed."""


class IndexError_(GpuMemError, RuntimeError):
    """An index structure is inconsistent (used by self-check utilities)."""


class IndexIntegrityError(IndexError_):
    """A structural self-check of an index failed.

    Raised by :meth:`repro.index.kmer_index.KmerSeedIndex.check` (and the
    load-time validation of :mod:`repro.index.serialize`) instead of bare
    ``assert`` statements, so corruption is still caught under ``python -O``
    and callers get structured provenance: ``field`` names the inconsistent
    component (``"ptrs"``, ``"locs"``, ...) and ``path`` the on-disk
    artifact, when the check ran against one.
    """

    def __init__(self, message: str, *, field: str | None = None, path=None):
        #: The inconsistent index component (e.g. ``"ptrs"``), if known.
        self.field = field
        #: The on-disk artifact being validated, if any.
        self.path = str(path) if path is not None else None
        super().__init__(message)
