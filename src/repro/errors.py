"""Exception hierarchy for the GPUMEM reproduction.

All library errors derive from :class:`GpuMemError` so callers can catch a
single base class. Substrate-specific errors (GPU simulator, sequence
handling) subclass it with more precise semantics.
"""

from __future__ import annotations


class GpuMemError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidSequenceError(GpuMemError, ValueError):
    """A sequence contains letters outside the DNA alphabet, or is malformed."""


class InvalidParameterError(GpuMemError, ValueError):
    """A parameter combination violates a documented constraint.

    The most important instance is Eq. (1) of the paper:
    ``step_size <= min_length - seed_length + 1``. Violating it would allow
    maximal exact matches of length ``>= min_length`` to contain no indexed
    seed and therefore be silently missed.
    """


class MemoryBudgetError(GpuMemError, MemoryError):
    """A simulated device allocation exceeded the device's global memory."""


class KernelError(GpuMemError, RuntimeError):
    """A simulated GPU kernel misbehaved (barrier divergence, bad launch...)."""


class IndexError_(GpuMemError, RuntimeError):
    """An index structure is inconsistent (used by self-check utilities)."""
