"""Anchored alignment: stitch a MEM chain into a full alignment.

Given a collinear anchor chain (:func:`repro.core.chaining.chain_anchors`,
``overlap=False``), the regions between consecutive anchors are aligned
with the global aligner and the anchors themselves contribute exact
match runs — the structure of MUMmer's/GAME's anchor-based whole-genome
alignment the paper cites [5], [6].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.pairwise import _compress_ops, global_align
from repro.core.chaining import Chain
from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class AnchoredAlignment:
    """A full alignment of ``R[r_start:r_end]`` to ``Q[q_start:q_end]``."""

    r_start: int
    r_end: int
    q_start: int
    q_end: int
    score: int
    cigar: tuple[tuple[str, int], ...]
    n_match: int
    n_mismatch: int
    n_insert: int
    n_delete: int
    n_anchors: int

    @property
    def cigar_string(self) -> str:
        return "".join(f"{run}{op}" for op, run in self.cigar)

    @property
    def identity(self) -> float:
        cols = self.n_match + self.n_mismatch + self.n_insert + self.n_delete
        return self.n_match / cols if cols else 1.0

    def consumes(self) -> tuple[int, int]:
        """(reference bases, query bases) consumed by the CIGAR."""
        r = sum(run for op, run in self.cigar if op in "MD")
        q = sum(run for op, run in self.cigar if op in "MI")
        return r, q


#: Gap regions longer than this on both sides are aligned banded (they are
#: near-diagonal by construction — both ends pinned by exact anchors).
BAND_THRESHOLD = 256


def align_from_anchors(
    reference: np.ndarray,
    query: np.ndarray,
    chain: Chain,
    *,
    match: int = 1,
    mismatch: int = -1,
    gap: int = -2,
    gap_model: str = "linear",
    gap_open: int = -3,
    gap_extend: int = -1,
) -> AnchoredAlignment:
    """Align the region spanned by ``chain`` (anchors exact, gaps aligned).

    The chain must be non-overlapping collinear (``chain_anchors`` default);
    overlapping chains are rejected. ``gap_model`` selects the gap aligner:
    ``"linear"`` (Needleman–Wunsch, large near-diagonal gaps automatically
    banded) or ``"affine"`` (Gotoh, one open penalty per indel run).
    """
    if not chain.anchors:
        raise InvalidParameterError("cannot align an empty chain")
    if gap_model not in ("linear", "affine"):
        raise InvalidParameterError(
            f"gap_model must be 'linear' or 'affine', got {gap_model!r}"
        )
    reference = np.ascontiguousarray(reference, dtype=np.uint8)
    query = np.ascontiguousarray(query, dtype=np.uint8)

    def _align_gap(gap_r, gap_q):
        if gap_model == "affine":
            from repro.align.affine import global_align_affine

            return global_align_affine(
                gap_r, gap_q, match=match, mismatch=mismatch,
                gap_open=gap_open, gap_extend=gap_extend,
            )
        if min(gap_r.size, gap_q.size) > BAND_THRESHOLD:
            from repro.align.affine import banded_align

            band = abs(gap_r.size - gap_q.size) + 32
            return banded_align(
                gap_r, gap_q, band=band, match=match, mismatch=mismatch, gap=gap
            )
        return global_align(gap_r, gap_q, match=match, mismatch=mismatch, gap=gap)

    ops: list[tuple[str, int]] = []
    score = 0
    n_match = n_mismatch = n_ins = n_del = 0
    prev_r = chain.anchors[0][0]
    prev_q = chain.anchors[0][1]

    for r, q, length in chain.anchors:
        if r < prev_r or q < prev_q:
            raise InvalidParameterError(
                "chain anchors overlap or are not collinear; use "
                "chain_anchors(..., overlap=False)"
            )
        gap_r = reference[prev_r:r]
        gap_q = query[prev_q:q]
        if gap_r.size or gap_q.size:
            sub = _align_gap(gap_r, gap_q)
            ops.extend(sub.cigar)
            score += sub.score
            n_match += sub.n_match
            n_mismatch += sub.n_mismatch
            n_ins += sub.n_insert
            n_del += sub.n_delete
        ops.append(("M", length))
        score += match * length
        n_match += length
        prev_r, prev_q = r + length, q + length

    flat: list[str] = []
    for op, run in ops:
        flat.extend([op] * run)
    first = chain.anchors[0]
    return AnchoredAlignment(
        r_start=first[0],
        r_end=prev_r,
        q_start=first[1],
        q_end=prev_q,
        score=score,
        cigar=_compress_ops(flat),
        n_match=n_match,
        n_mismatch=n_mismatch,
        n_insert=n_ins,
        n_delete=n_del,
        n_anchors=len(chain.anchors),
    )
