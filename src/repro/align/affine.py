"""Affine-gap global alignment (Gotoh) and banded alignment.

Two refinements over the linear-gap aligner that real anchored pipelines
use:

- **Affine gaps** (:func:`global_align_affine`): gap cost ``open + k·extend``
  models biological indels far better than linear costs — one long indel
  between anchors should not be charged per base at full rate.
- **Banding** (:func:`banded_align`): when two segments are known to be
  near-diagonal (which anchored gaps are, by construction), restricting the
  DP to a diagonal band of width ``2·band + 1`` turns ``O(n·m)`` into
  ``O((n+m)·band)``.

Both return the same :class:`~repro.align.pairwise.AlignResult` and are
cross-validated against naive references in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.align.pairwise import MAX_CELLS, AlignResult, _compress_ops
from repro.errors import InvalidParameterError

_NEG = np.int64(-(2**40))  # effectively -inf without overflow under adds


def global_align_affine(
    reference: np.ndarray,
    query: np.ndarray,
    *,
    match: int = 1,
    mismatch: int = -1,
    gap_open: int = -3,
    gap_extend: int = -1,
) -> AlignResult:
    """Gotoh three-state global alignment with affine gap penalties.

    A gap of length ``k`` costs ``gap_open + k·gap_extend`` (the open
    penalty is charged once, on top of the per-base extension).
    """
    a = np.ascontiguousarray(reference, dtype=np.uint8)
    b = np.ascontiguousarray(query, dtype=np.uint8)
    n, m = a.size, b.size
    if (n + 1) * (m + 1) > MAX_CELLS:
        raise InvalidParameterError(
            f"alignment matrix {n + 1}x{m + 1} exceeds MAX_CELLS; band or anchor first"
        )
    if gap_open > 0 or gap_extend > 0:
        raise InvalidParameterError("gap penalties must be <= 0")

    # M: in-match state; D: gap in query (consumes reference); I: gap in ref.
    M = np.full((n + 1, m + 1), _NEG, dtype=np.int64)
    D = np.full((n + 1, m + 1), _NEG, dtype=np.int64)
    I = np.full((n + 1, m + 1), _NEG, dtype=np.int64)
    # Per-state traceback source: 0 = from M, 1 = from D, 2 = from I.
    tb_m = np.zeros((n + 1, m + 1), dtype=np.uint8)
    tb_d = np.zeros((n + 1, m + 1), dtype=np.uint8)
    tb_i = np.zeros((n + 1, m + 1), dtype=np.uint8)

    M[0, 0] = 0
    for i in range(1, n + 1):
        D[i, 0] = gap_open + i * gap_extend
        tb_d[i, 0] = 0 if i == 1 else 1
    for j in range(1, m + 1):
        I[0, j] = gap_open + j * gap_extend
        tb_i[0, j] = 0 if j == 1 else 2

    go_ge = gap_open + gap_extend
    for i in range(1, n + 1):
        sub = np.where(b == a[i - 1], match, mismatch).astype(np.int64)
        Mi, Di, Ii = M[i], D[i], I[i]
        Mp, Dp, Ip = M[i - 1], D[i - 1], I[i - 1]
        # D only depends on row i-1: vectorized 3-way max with source.
        cand = np.stack([Mp[1:] + go_ge, Dp[1:] + gap_extend, Ip[1:] + go_ge])
        tb_d[i, 1:] = np.argmax(cand, axis=0)
        Di[1:] = cand.max(axis=0)
        # M and I have intra-row dependencies — scalar scan.
        for j in range(1, m + 1):
            best_prev = Mp[j - 1]
            src = 0
            if Dp[j - 1] > best_prev:
                best_prev = Dp[j - 1]
                src = 1
            if Ip[j - 1] > best_prev:
                best_prev = Ip[j - 1]
                src = 2
            Mi[j] = best_prev + sub[j - 1]
            tb_m[i, j] = src
            i_from_m = Mi[j - 1] + go_ge
            i_from_d = Di[j - 1] + go_ge
            i_ext = Ii[j - 1] + gap_extend
            Ii[j] = i_from_m
            tb_i[i, j] = 0
            if i_from_d > Ii[j]:
                Ii[j] = i_from_d
                tb_i[i, j] = 1
            if i_ext > Ii[j]:
                Ii[j] = i_ext
                tb_i[i, j] = 2

    # traceback from the best terminal state
    terminal = {"M": M[n, m], "D": D[n, m], "I": I[n, m]}
    state = max(terminal, key=lambda s: terminal[s])
    score = int(terminal[state])
    ops: list[str] = []
    i, j = n, m
    n_match = n_mismatch = n_ins = n_del = 0
    while i > 0 or j > 0:
        if state == "M":
            src = tb_m[i, j]
            if a[i - 1] == b[j - 1]:
                n_match += 1
            else:
                n_mismatch += 1
            ops.append("M")
            i -= 1
            j -= 1
            state = "MDI"[src]
        elif state == "D":
            ops.append("D")
            n_del += 1
            src = tb_d[i, j]
            i -= 1
            state = "MDI"[src]
        else:  # I
            ops.append("I")
            n_ins += 1
            src = tb_i[i, j]
            j -= 1
            state = "MDI"[src]
    ops.reverse()
    return AlignResult(
        score=score,
        cigar=_compress_ops(ops),
        n_match=n_match,
        n_mismatch=n_mismatch,
        n_insert=n_ins,
        n_delete=n_del,
    )


def banded_align(
    reference: np.ndarray,
    query: np.ndarray,
    *,
    band: int,
    match: int = 1,
    mismatch: int = -1,
    gap: int = -2,
) -> AlignResult:
    """Linear-gap global alignment restricted to ``|i − j·n/m| <= band``.

    Exact whenever the optimal path stays inside the band; with
    ``band >= |n − m| + max_indel`` that is guaranteed for near-diagonal
    pairs (anchored gaps). Raises if the band cannot even contain the
    endpoint diagonal shift.
    """
    a = np.ascontiguousarray(reference, dtype=np.uint8)
    b = np.ascontiguousarray(query, dtype=np.uint8)
    n, m = a.size, b.size
    if band < 0:
        raise InvalidParameterError(f"band must be >= 0, got {band}")
    if abs(n - m) > band:
        raise InvalidParameterError(
            f"band {band} cannot reach the corner: |n - m| = {abs(n - m)}"
        )
    if gap > 0:
        raise InvalidParameterError("gap penalty must be <= 0")

    width = 2 * band + 1
    score = np.full((n + 1, width), _NEG, dtype=np.int64)
    trace = np.zeros((n + 1, width), dtype=np.uint8)  # 0 diag, 1 up, 2 left

    def col(i, k):  # band slot k of row i -> DP column j
        return i - band + k

    score[0, band] = 0
    for k in range(band + 1, width):
        j = col(0, k)
        if 0 < j <= m:
            score[0, k] = j * gap
            trace[0, k] = 2
    for i in range(1, n + 1):
        for k in range(width):
            j = col(i, k)
            if j < 0 or j > m:
                continue
            best = _NEG
            op = 0
            if j == 0:
                best = i * gap
                op = 1
            else:
                # diag: row i-1, col j-1 -> slot k (same slot)
                if score[i - 1, k] > _NEG:
                    s = match if a[i - 1] == b[j - 1] else mismatch
                    best = score[i - 1, k] + s
                    op = 0
                # up: row i-1, col j -> slot k+1
                if k + 1 < width and score[i - 1, k + 1] > _NEG:
                    cand = score[i - 1, k + 1] + gap
                    if cand > best:
                        best, op = cand, 1
                # left: row i, col j-1 -> slot k-1
                if k - 1 >= 0 and score[i, k - 1] > _NEG:
                    cand = score[i, k - 1] + gap
                    if cand > best:
                        best, op = cand, 2
            score[i, k] = best
            trace[i, k] = op

    end_k = m - n + band
    if not 0 <= end_k < width or score[n, end_k] <= _NEG // 2:
        raise InvalidParameterError("no path inside the band")  # pragma: no cover
    ops: list[str] = []
    i, k = n, end_k
    n_match = n_mismatch = n_ins = n_del = 0
    while i > 0 or col(i, k) > 0:
        j = col(i, k)
        t = trace[i, k]
        if t == 0 and i > 0 and j > 0:
            if a[i - 1] == b[j - 1]:
                n_match += 1
            else:
                n_mismatch += 1
            ops.append("M")
            i -= 1  # slot unchanged: j also decreases by 1
        elif t == 1 and i > 0:
            ops.append("D")
            n_del += 1
            i -= 1
            k += 1
        else:
            ops.append("I")
            n_ins += 1
            k -= 1
    ops.reverse()
    return AlignResult(
        score=int(score[n, end_k]),
        cigar=_compress_ops(ops),
        n_match=n_match,
        n_mismatch=n_mismatch,
        n_insert=n_ins,
        n_delete=n_del,
    )
