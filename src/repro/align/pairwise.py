"""Global pairwise alignment (Needleman–Wunsch), vectorized per row.

Used to align the gap regions between chained MEM anchors. Linear gap
penalties; the DP rows are NumPy vectors, so cost is ``O(n·m)`` time with
``O(n·m)`` bytes for traceback (gap regions between anchors are short, so
this is the right trade-off; a guard rejects pathological calls).

CIGAR conventions: ``M`` column (match *or* mismatch), ``I`` insertion
(consumes query), ``D`` deletion (consumes reference) — the SAM meanings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError

#: Refuse DP matrices above this many cells (callers should anchor first).
MAX_CELLS = 64_000_000


@dataclass(frozen=True)
class AlignResult:
    """Outcome of a global alignment."""

    score: int
    cigar: tuple[tuple[str, int], ...]  # ((op, run), ...)
    n_match: int
    n_mismatch: int
    n_insert: int
    n_delete: int

    @property
    def cigar_string(self) -> str:
        return "".join(f"{run}{op}" for op, run in self.cigar)

    @property
    def identity(self) -> float:
        cols = self.n_match + self.n_mismatch + self.n_insert + self.n_delete
        return self.n_match / cols if cols else 1.0


def _compress_ops(ops: list[str]) -> tuple[tuple[str, int], ...]:
    out: list[tuple[str, int]] = []
    for op in ops:
        if out and out[-1][0] == op:
            out[-1] = (op, out[-1][1] + 1)
        else:
            out.append((op, 1))
    return tuple(out)


def global_align(
    reference: np.ndarray,
    query: np.ndarray,
    *,
    match: int = 1,
    mismatch: int = -1,
    gap: int = -2,
) -> AlignResult:
    """Needleman–Wunsch with linear gaps; returns score + CIGAR.

    ``reference`` consumes ``D``, ``query`` consumes ``I``.
    """
    a = np.ascontiguousarray(reference, dtype=np.uint8)
    b = np.ascontiguousarray(query, dtype=np.uint8)
    n, m = a.size, b.size
    if (n + 1) * (m + 1) > MAX_CELLS:
        raise InvalidParameterError(
            f"alignment matrix {n + 1}x{m + 1} exceeds MAX_CELLS; chain "
            f"anchors first (repro.core.chaining) and align the gaps"
        )
    if gap > 0:
        raise InvalidParameterError("gap penalty must be <= 0")

    # DP with uint8 traceback: 0 diag, 1 up (D, consumes reference), 2 left (I).
    score = np.empty((n + 1, m + 1), dtype=np.int64)
    trace = np.zeros((n + 1, m + 1), dtype=np.uint8)
    score[0, :] = np.arange(m + 1, dtype=np.int64) * gap
    score[:, 0] = np.arange(n + 1, dtype=np.int64) * gap
    trace[0, 1:] = 2
    trace[1:, 0] = 1
    for i in range(1, n + 1):
        sub = np.where(b == a[i - 1], match, mismatch).astype(np.int64)
        diag = score[i - 1, :-1] + sub
        up = score[i - 1, 1:] + gap
        row = score[i]
        prev = score[i, 0]
        # `left` depends on the running row -> scalar scan for that arm, but
        # diag/up are precomputed vectors so the inner loop is 3 compares.
        tr = trace[i]
        for j in range(1, m + 1):
            best = diag[j - 1]
            op = 0
            if up[j - 1] > best:
                best = up[j - 1]
                op = 1
            cand = prev + gap
            if cand > best:
                best = cand
                op = 2
            row[j] = best
            tr[j] = op
            prev = best

    # traceback
    ops: list[str] = []
    i, j = n, m
    n_match = n_mismatch = n_ins = n_del = 0
    while i > 0 or j > 0:
        t = trace[i, j]
        if t == 0 and i > 0 and j > 0:
            if a[i - 1] == b[j - 1]:
                ops.append("M")
                n_match += 1
            else:
                ops.append("M")
                n_mismatch += 1
            i -= 1
            j -= 1
        elif t == 1 and i > 0:
            ops.append("D")
            n_del += 1
            i -= 1
        else:
            ops.append("I")
            n_ins += 1
            j -= 1
    ops.reverse()
    return AlignResult(
        score=int(score[n, m]),
        cigar=_compress_ops(ops),
        n_match=n_match,
        n_mismatch=n_mismatch,
        n_insert=n_ins,
        n_delete=n_del,
    )


def edit_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Levenshtein distance (two-row vectorized DP; no traceback)."""
    a = np.ascontiguousarray(a, dtype=np.uint8)
    b = np.ascontiguousarray(b, dtype=np.uint8)
    if a.size < b.size:
        a, b = b, a
    m = b.size
    js = np.arange(1, m + 1, dtype=np.int64)
    prev = np.arange(m + 1, dtype=np.int64)
    for i in range(1, a.size + 1):
        cur = np.empty_like(prev)
        cur[0] = i
        sub = prev[:-1] + (b != a[i - 1])
        dele = prev[1:] + 1
        best = np.minimum(sub, dele)  # best[j-1]: min of diag/del arms at col j
        # Insert arm is the recurrence cur[j] = min(best[j], cur[j-1] + 1),
        # solved in closed form: cur[j] = min(min_{k<=j}(best[k] + j - k),
        # cur[0] + j) — a prefix-min over (best[k] - k).
        h = np.minimum.accumulate(best - js)
        cur[1:] = np.minimum(h + js, i + js)
        prev = cur
    return int(prev[-1])
