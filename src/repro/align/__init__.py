"""Anchored alignment substrate.

The paper's §I frames MEM extraction as the anchor-finding step of "a full
alignment process". This subpackage completes that pipeline at library
quality: a vectorized global aligner for the gap regions between anchors
(:mod:`repro.align.pairwise`) and the anchored driver that stitches exact
anchor segments with aligned gaps into one end-to-end alignment
(:mod:`repro.align.anchored`).
"""

from repro.align.affine import banded_align, global_align_affine
from repro.align.anchored import AnchoredAlignment, align_from_anchors
from repro.align.pairwise import AlignResult, edit_distance, global_align

__all__ = [
    "global_align",
    "global_align_affine",
    "banded_align",
    "edit_distance",
    "AlignResult",
    "align_from_anchors",
    "AnchoredAlignment",
]
