"""MUMmer-class baseline: full suffix array + LCP (Kurtz et al. 2004).

MUMmer 3's ``maxmatch`` mode streams the query against a full suffix
structure of the reference. We implement the suffix-array formulation: for
every query position, locate the insertion point of ``Q[q:]`` in the full
suffix array, then walk outward collecting every reference suffix whose
agreement ``λ`` (a running minimum of LCP values) stays ≥ L — each such
``(r, q, λ)`` is right-maximal by construction, and keeping only the
left-maximal ones (``R[r−1] != Q[q−1]`` or a sequence start) yields each
MEM exactly once.

(The original uses a suffix *tree*; the suffix-array walk enumerates the
identical set with the same asymptotics and a far smaller footprint — the
very observation that motivated the enhanced-suffix-array line of work the
paper cites [2].)
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import MEMFinder
from repro.index.matching import SuffixArraySearcher
from repro.types import empty_triplets, make_triplets, unique_mems


class MummerFinder(MEMFinder):
    """Full-suffix-array MEM finder (sparseness 1)."""

    name = "MUMmer"

    def __init__(self):
        super().__init__()
        self._searcher: SuffixArraySearcher | None = None

    def _build(self, reference: np.ndarray) -> None:
        self._searcher = SuffixArraySearcher(reference, sparseness=1)

    def index_bytes(self) -> int:
        return self._searcher.nbytes if self._searcher else 0

    def _find(self, query: np.ndarray, min_length: int) -> np.ndarray:
        positions = np.arange(query.size, dtype=np.int64)
        return self._find_positions(query, positions, min_length)

    def _find_positions(
        self, query: np.ndarray, q_positions: np.ndarray, min_length: int
    ) -> np.ndarray:
        """MEMs whose query start lies in ``q_positions`` (thread-chunk API)."""
        searcher = self._searcher
        reference = searcher.reference
        r, q, lam = searcher.enumerate_candidates(query, q_positions, min_length)
        if r.size == 0:
            return empty_triplets()
        # Left-maximality: previous characters differ, or either sequence
        # starts here. λ is already the exact agreement (right-maximal).
        at_edge = (r == 0) | (q == 0)
        safe_r = np.maximum(r - 1, 0)
        safe_q = np.maximum(q - 1, 0)
        keep = at_edge | (reference[safe_r] != query[safe_q])
        return unique_mems(make_triplets(r[keep], q[keep], lam[keep]))
