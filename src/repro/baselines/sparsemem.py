"""sparseMEM baseline (Khan et al. 2009).

A sparse suffix array indexes only every ``K``-th reference suffix, cutting
the index by ``K×`` at the price of extra extraction work — the trade-off
§IV-B of the GPUMEM paper highlights (sparseMEM gets *slower* at extraction
as τ grows because its index shrinks). We couple ``K = τ`` exactly as the
paper describes.

Extraction: every MEM of length ≥ L has a *sampled anchor* — the first
indexed reference position inside it, at offset ``j <= K − 1`` — whose
agreement with the aligned query suffix is ≥ ``L − K + 1``. So candidates
are collected at the lowered threshold, extended left to their true starts
(which also establishes left-maximality), deduplicated and length-filtered.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import MEMFinder
from repro.errors import InvalidParameterError
from repro.index.compare import common_suffix_len
from repro.index.sparse_sa import SparseSuffixArray
from repro.types import empty_triplets, make_triplets, unique_mems


class SparseMemFinder(MEMFinder):
    """Sparse-suffix-array MEM finder with sparseness ``K``."""

    name = "sparseMEM"

    def __init__(self, sparseness: int = 1):
        super().__init__()
        if sparseness < 1:
            raise InvalidParameterError(f"sparseness must be >= 1, got {sparseness}")
        self.sparseness = int(sparseness)
        self._searcher: SparseSuffixArray | None = None

    def _build(self, reference: np.ndarray) -> None:
        self._searcher = self._make_searcher(reference)

    def _make_searcher(self, reference: np.ndarray) -> SparseSuffixArray:
        return SparseSuffixArray(reference, sparseness=self.sparseness)

    def index_bytes(self) -> int:
        return self._searcher.nbytes if self._searcher else 0

    def _find(self, query: np.ndarray, min_length: int) -> np.ndarray:
        positions = np.arange(query.size, dtype=np.int64)
        return self._find_positions(query, positions, min_length)

    def _find_positions(
        self, query: np.ndarray, q_positions: np.ndarray, min_length: int
    ) -> np.ndarray:
        searcher = self._searcher
        if min_length < self.sparseness:
            raise InvalidParameterError(
                f"{self.name}: min_length ({min_length}) must be >= sparseness "
                f"({self.sparseness}) or MEMs may be missed"
            )
        reference = searcher.reference
        threshold = searcher.candidate_threshold(min_length)
        r, q, lam = searcher.enumerate_candidates(query, q_positions, threshold)
        if r.size == 0:
            return empty_triplets()
        # Recover true (left-maximal) starts by full left extension.
        le = common_suffix_len(reference, query, r, q)
        mems = make_triplets(r - le, q - le, lam + le)
        mems = mems[mems["length"] >= min_length]
        return unique_mems(mems)
