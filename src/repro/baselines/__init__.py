"""The paper's four CPU comparator tools, implemented from scratch.

=============  ==============================================  ==================
tool           data structure                                  reference
=============  ==============================================  ==================
MUMmer-class   full suffix array + LCP array                   Kurtz et al. 2004
sparseMEM      sparse suffix array (sparseness = τ)            Khan et al. 2009
essaMEM        sparse SA + auxiliary interval structures       Vyverman et al. 2013
slaMEM         FM-index backward search + LCP intervals        Fernandes & Freitas 2013
=============  ==============================================  ==================

All four implement :class:`~repro.baselines.base.MEMFinder` and return
MEM sets identical to GPUMEM's (property-tested). ``τ``-thread shared-memory
parallelism is modeled deterministically (max-of-chunks,
:mod:`repro.baselines.threads`); sparseMEM couples its sparseness to ``τ``
exactly as the paper describes (§IV-B last paragraph).
"""

from repro.baselines.base import BuildResult, MatchResult, MEMFinder
from repro.baselines.essamem import EssaMemFinder
from repro.baselines.mummer import MummerFinder
from repro.baselines.slamem import SlaMemFinder
from repro.baselines.sparsemem import SparseMemFinder
from repro.baselines.threads import parallel_query_time, split_query

ALL_FINDERS = {
    "MUMmer": MummerFinder,
    "sparseMEM": SparseMemFinder,
    "essaMEM": EssaMemFinder,
    "slaMEM": SlaMemFinder,
}

__all__ = [
    "MEMFinder",
    "BuildResult",
    "MatchResult",
    "MummerFinder",
    "SparseMemFinder",
    "EssaMemFinder",
    "SlaMemFinder",
    "parallel_query_time",
    "split_query",
    "ALL_FINDERS",
]
