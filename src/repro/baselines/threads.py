"""Deterministic simulated shared-memory parallelism.

The paper runs sparseMEM and essaMEM with τ = 1, 4, 8 threads by
partitioning the query among threads. Python's GIL makes real threads
meaningless for this workload, so we use the ideal-parallel model
(DESIGN.md §2): the query positions are split into τ contiguous chunks,
each chunk is *timed sequentially*, and the parallel extraction time is the
**maximum** chunk time (plus the result merge). This is deterministic,
repeatable, and preserves the paper's qualitative scaling, including
sparseMEM's anti-scaling (its index sparseness grows with τ).

Chunking is correct because a chunk reports every MEM whose *anchor*
position falls in it; the union over chunks therefore covers all MEMs, and
duplicates (a MEM with anchors in two chunks) are removed in the merge —
the same argument the real tools use.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import InvalidParameterError
from repro.types import MatchSet, concat_triplets


def split_query(n_query: int, tau: int) -> list[np.ndarray]:
    """τ near-equal contiguous chunks of query positions."""
    if tau < 1:
        raise InvalidParameterError(f"tau must be >= 1, got {tau}")
    bounds = np.linspace(0, n_query, tau + 1).astype(np.int64)
    return [
        np.arange(bounds[i], bounds[i + 1], dtype=np.int64) for i in range(tau)
    ]


def parallel_query_time(
    finder, query, min_length: int, tau: int
) -> tuple[MatchSet, float, list[float]]:
    """Run a chunk-capable finder under the ideal τ-thread model.

    Returns ``(merged mems, simulated parallel seconds, per-chunk seconds)``.
    The finder must expose ``_find_positions(query, positions, min_length)``
    (the suffix-array family does; slaMEM is single-threaded in the paper
    and does not).
    """
    from repro.baselines.base import as_codes

    query = as_codes(query)
    chunk_times: list[float] = []
    parts = []
    for positions in split_query(query.size, tau):
        t0 = time.perf_counter()
        part = finder._find_positions(query, positions, min_length)
        chunk_times.append(time.perf_counter() - t0)
        parts.append(part)
    t0 = time.perf_counter()
    merged = MatchSet(concat_triplets(parts))
    merge_time = time.perf_counter() - t0
    return merged, max(chunk_times) + merge_time, chunk_times
