"""Common interface of the baseline MEM finders."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import GpuMemError
from repro.sequence.alphabet import encode
from repro.sequence.packed import PackedSequence
from repro.types import MatchSet


@dataclass
class BuildResult:
    """Index construction outcome: wall-clock seconds and footprint."""

    seconds: float
    index_bytes: int


@dataclass
class MatchResult:
    """Extraction outcome: the MEM set and the extraction-only seconds."""

    mems: MatchSet
    seconds: float


def as_codes(seq) -> np.ndarray:
    if isinstance(seq, PackedSequence):
        return seq.codes()
    return encode(seq)


class MEMFinder:
    """Build-once / query-many MEM finder interface.

    Subclasses implement :meth:`_build` and :meth:`_find`; this base class
    provides timing, input normalization, and the common two-phase protocol
    mirroring how the paper benchmarks the tools (Table III: build; Table
    IV: extraction with a prebuilt index).
    """

    #: Human-readable tool name (paper column header).
    name: str = "?"

    def __init__(self):
        self._reference: np.ndarray | None = None

    # -- public protocol ------------------------------------------------------
    def build_index(self, reference) -> BuildResult:
        reference = as_codes(reference)
        t0 = time.perf_counter()
        self._build(reference)
        seconds = time.perf_counter() - t0
        self._reference = reference
        return BuildResult(seconds=seconds, index_bytes=self.index_bytes())

    def find_mems(self, query, min_length: int) -> MatchResult:
        if self._reference is None:
            raise GpuMemError(f"{self.name}: build_index must be called first")
        query = as_codes(query)
        t0 = time.perf_counter()
        triplets = self._find(query, int(min_length))
        seconds = time.perf_counter() - t0
        return MatchResult(mems=MatchSet(triplets), seconds=seconds)

    # -- subclass surface -------------------------------------------------------
    def _build(self, reference: np.ndarray) -> None:
        raise NotImplementedError

    def _find(self, query: np.ndarray, min_length: int) -> np.ndarray:
        raise NotImplementedError

    def index_bytes(self) -> int:
        """Approximate index footprint in bytes."""
        raise NotImplementedError
