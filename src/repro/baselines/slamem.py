"""slaMEM baseline (Fernandes & Freitas 2013).

slaMEM retrieves MEMs with the FM-index backward-search method, using a
(sampled) LCP array to shorten the current match from the right when a
backward extension fails. Our implementation:

- **matching statistics**: the query is processed right to left keeping the
  SA interval of the longest reference match starting at each position;
  a failed backward extension climbs to *parent LCP intervals* (via
  :class:`~repro.index.esa.LCPIntervals` over the FM suffix array — the
  full-LCP stand-in for slaMEM's sampled LCP array, documented in
  DESIGN.md) until the extension succeeds.
- **enumeration**: at each query position the parent-interval chain is
  walked downward in depth; every ring ``parent \\ child`` at depth ≥ L
  contributes candidates whose agreement equals exactly that depth.
  Reference positions come from the sampled-SA ``locate``; left-maximality
  is checked on the text.

This is the only baseline whose per-position state is a sequential
recurrence (the others batch whole position vectors), which is also why its
extraction throughput trails the suffix-array tools here — consistent with
slaMEM's positioning as the memory-frugal option rather than the fastest.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import MEMFinder
from repro.index.esa import LCPIntervals
from repro.index.fm_index import FMIndex
from repro.index.lcp import lcp_array
from repro.types import empty_triplets, make_triplets, unique_mems


class SlaMemFinder(MEMFinder):
    """FM-index backward-search MEM finder."""

    name = "slaMEM"

    def __init__(self, occ_rate: int = 64, sa_rate: int = 8):
        super().__init__()
        self.occ_rate = int(occ_rate)
        self.sa_rate = int(sa_rate)
        self._fm: FMIndex | None = None
        self._intervals: LCPIntervals | None = None
        self._sa_cache: np.ndarray | None = None

    def _build(self, reference: np.ndarray) -> None:
        self._fm = FMIndex(reference, occ_rate=self.occ_rate, sa_rate=self.sa_rate)
        # LCP over the FM suffix array (sentinel-terminated text). The
        # sentinel suffix contributes LCP 0 everywhere, which is exactly
        # right for parent-interval navigation.
        sa = self._fm.full_suffix_array()
        # full_suffix_array is only materialized to build the LCP intervals
        # (slaMEM builds its sampled LCP at construction time, same phase).
        text = np.empty(reference.size + 1, dtype=np.uint8)
        text[:-1] = reference + 1
        text[-1] = 0
        self._intervals = LCPIntervals(lcp_array(text, sa))
        self._sa_cache = sa

    def index_bytes(self) -> int:
        if self._fm is None:
            return 0
        # BWT + occ checkpoints + SA samples + the (sampled-in-spirit) LCP.
        return int(self._fm.nbytes + self._intervals.lcp.nbytes)

    # -- matching statistics ----------------------------------------------------
    def _shorten_to_extendable(self, lo: int, hi: int, depth: int, sym: int):
        """Climb parent intervals until prepending ``sym`` succeeds (or root)."""
        fm = self._fm
        iv = self._intervals
        while True:
            nlo, nhi = fm.backward_extend_scalar(lo, hi, sym)
            if nhi > nlo:
                return nlo, nhi, depth + 1
            if depth == 0:
                return 0, fm.n, 0  # even the single symbol is absent
            plo, phi, pdepth = iv.parent_scalar(lo, hi)
            if phi - plo == hi - lo:  # already at root-size interval
                lo, hi, depth = 0, fm.n, 0
            else:
                lo, hi = plo, phi
                depth = min(depth, pdepth)

    def _find(self, query: np.ndarray, min_length: int) -> np.ndarray:
        fm = self._fm
        iv = self._intervals
        reference = self._reference
        nq = query.size
        out_r: list[np.ndarray] = []
        out_q: list[int] = []
        out_l: list[np.ndarray] = []

        lo, hi, depth = 0, fm.n, 0
        for q in range(nq - 1, -1, -1):
            lo, hi, depth = self._shorten_to_extendable(lo, hi, depth, int(query[q]))
            if depth == 0:
                continue
            # Enumerate candidate rings: deepest interval at exact agreement
            # ``depth``, then parents while their depth stays >= L.
            clo, chi, cdepth = lo, hi, depth
            ring_prev = None
            while cdepth >= min_length:
                rows = (
                    np.arange(clo, chi, dtype=np.int64)
                    if ring_prev is None
                    else np.concatenate(
                        [
                            np.arange(clo, ring_prev[0], dtype=np.int64),
                            np.arange(ring_prev[1], chi, dtype=np.int64),
                        ]
                    )
                )
                if rows.size:
                    r = self._locate_rows(rows)
                    valid = r < reference.size  # drop the sentinel suffix
                    r = r[valid]
                    if r.size:
                        out_r.append(r)
                        out_q.append(q)
                        out_l.append(np.full(r.size, cdepth, dtype=np.int64))
                ring_prev = (clo, chi)
                plo, phi, pdepth = iv.parent_scalar(clo, chi)
                if (plo, phi) == (clo, chi):
                    break
                clo, chi, cdepth = plo, phi, min(cdepth, pdepth)

            # The state interval/depth carries to the next (left) position.
        if not out_r:
            return empty_triplets()
        r_all = np.concatenate(out_r)
        q_all = np.concatenate(
            [np.full(rs.size, qq, dtype=np.int64) for rs, qq in zip(out_r, out_q, strict=True)]
        )
        l_all = np.concatenate(out_l)
        # Left-maximality on the text.
        at_edge = (r_all == 0) | (q_all == 0)
        keep = at_edge | (
            reference[np.maximum(r_all - 1, 0)] != query[np.maximum(q_all - 1, 0)]
        )
        return unique_mems(make_triplets(r_all[keep], q_all[keep], l_all[keep]))

    def matching_statistics(self, query: np.ndarray) -> np.ndarray:
        """Per-position longest-match lengths via the FM recurrence.

        Exposed because matching statistics are useful beyond MEM output
        (read classification, compressed matching); also cross-validated in
        the tests against the suffix-array computation.
        """
        query = np.ascontiguousarray(query, dtype=np.uint8)
        fm = self._fm
        out = np.zeros(query.size, dtype=np.int64)
        lo, hi, depth = 0, fm.n, 0
        for q in range(query.size - 1, -1, -1):
            lo, hi, depth = self._shorten_to_extendable(lo, hi, depth, int(query[q]))
            out[q] = depth
        return out

    def _locate_rows(self, rows: np.ndarray) -> np.ndarray:
        if self._sa_cache is not None:
            return self._sa_cache[rows]
        out = np.empty(rows.size, dtype=np.int64)
        for i, row in enumerate(rows):  # pragma: no cover - cache always built
            out[i] = self._fm.locate(int(row), int(row) + 1)[0]
        return out
