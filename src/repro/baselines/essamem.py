"""essaMEM baseline (Vyverman et al. 2013).

essaMEM keeps sparseMEM's sparse suffix array but adds auxiliary sparse
structures (child arrays / suffix-link support) so interval lookups skip
most of the binary-search descent. We model that accelerator with the
``4^k`` k-mer prefix table of
:class:`~repro.index.esa.EnhancedSparseSuffixArray` (an option the real
tool also ships): a query jumps straight to the SA interval of its first
``k`` bases and bisects only inside it.

The extraction semantics are identical to sparseMEM (same anchor/extension
argument) — only the lookup machinery is faster, which is exactly the
relationship the paper's Tables III/IV exhibit between the two tools.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.sparsemem import SparseMemFinder
from repro.index.esa import EnhancedSparseSuffixArray


class EssaMemFinder(SparseMemFinder):
    """Enhanced sparse-suffix-array MEM finder."""

    name = "essaMEM"

    def __init__(self, sparseness: int = 1, prefix_table_k: int = 8):
        super().__init__(sparseness=sparseness)
        self.prefix_table_k = int(prefix_table_k)

    def _make_searcher(self, reference: np.ndarray) -> EnhancedSparseSuffixArray:
        # Shrink the table for tiny references so it stays an accelerator,
        # not the dominant build cost.
        k = self.prefix_table_k
        while k > 1 and 4**k > 4 * max(reference.size, 4):
            k -= 1
        return EnhancedSparseSuffixArray(
            reference, sparseness=self.sparseness, prefix_table_k=k
        )
