"""Batched multi-query MEM extraction over one warm :class:`MemSession`.

The paper's pitch is throughput — all MEMs of *many* queries against one
indexed reference — and PR 1's :class:`~repro.core.session.MemSession`
already amortizes the index builds across queries. What was still missing
is the scheduling layer: every many-query consumer iterated queries one at
a time, serializing the match stage even though its hot kernels release
the GIL. :class:`BatchRunner` is that layer, shaped like an inference
engine's batch scheduler over a warm model:

- **query-level parallelism in two tiers** — ``tier="thread"`` (default)
  composes a thread pool with the session's row executors (rows
  parallelize *inside* a query, the runner parallelizes *across*
  queries); ``tier="process"`` ships whole queries to the worker-process
  pool of :mod:`repro.core.procpool` (true multi-core: workers attach to
  the shared 2-bit reference by name and serve from their own warm
  per-process sessions);
- **bounded in-flight work** — submission blocks once ``max_in_flight``
  queries are pending, so a streaming producer (e.g.
  :func:`repro.sequence.fasta.iter_fasta` over a 10M-read file) is
  backpressured instead of materialized;
- **ordered or as-completed** result iteration;
- **per-query error isolation** — one poisoned record yields a
  :class:`BatchError` result instead of killing the batch.

Results stream back as :class:`BatchResult` / :class:`BatchError` objects
carrying the submission index, the record label (FASTA header), the value,
and the per-query wall seconds. The runner records ``batch.run`` /
``batch.query`` spans and ``batch.*`` metrics through the standard
``tracer=`` argument (see ``docs/observability.md``).

Example::

    from repro.core.batch import BatchRunner
    from repro.sequence.fasta import iter_fasta

    runner = BatchRunner(reference, min_length=40, workers=4)
    for result in runner.run(iter_fasta("reads.fa"), ordered=False):
        if result.ok:
            print(result.label, len(result.value))
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Iterator

from repro.analysis.lock_tracker import new_lock
from repro.core.params import GpuMemParams
from repro.core.pipeline import PipelineStats, as_codes
from repro.core.session import MemSession
from repro.errors import InvalidParameterError
from repro.obs.shipping import merge_payload
from repro.obs.tracer import Tracer, get_tracer
from repro.sequence.fasta import FastaRecord
from repro.types import MatchSet

#: Query-dispatch tiers of :class:`BatchRunner`.
BATCH_TIERS = ("thread", "process")


@dataclass(frozen=True)
class BatchResult:
    """One successfully processed query of a batch."""

    #: Submission order of the query (0-based; stable across ordered and
    #: as-completed iteration, so results can always be re-sorted).
    index: int
    #: Record label (FASTA header / caller-provided), if any.
    label: str | None
    #: What the per-query function returned (a
    #: :class:`~repro.types.MatchSet` for the default ``find_mems`` path).
    value: Any
    #: Wall seconds this query spent executing (queueing excluded).
    seconds: float

    ok: bool = field(default=True, init=False)
    error: BaseException | None = field(default=None, init=False)


@dataclass(frozen=True)
class BatchError:
    """One failed query of a batch (isolation result, not an exception)."""

    index: int
    label: str | None
    #: The exception the per-query function raised.
    error: BaseException
    seconds: float

    ok: bool = field(default=False, init=False)
    value: Any = field(default=None, init=False)

    def reraise(self) -> None:
        """Re-raise the captured exception (for callers that want to fail)."""
        raise self.error


@dataclass(frozen=True)
class _Item:
    """Normalized work unit: submission index, optional label, raw query."""

    index: int
    label: str | None
    query: Any


def _as_items(queries: Iterable) -> Iterator[_Item]:
    """Lazily normalize a query stream into :class:`_Item` units.

    Accepts raw sequences (str / codes / PackedSequence),
    :class:`~repro.sequence.fasta.FastaRecord` objects (header becomes the
    label), and ``(label, query)`` pairs. Deliberately a generator: the
    input stream is consumed only as fast as backpressure admits.
    """
    for index, entry in enumerate(queries):
        if isinstance(entry, FastaRecord):
            yield _Item(index, entry.header, entry.codes)
        elif (
            isinstance(entry, tuple)
            and len(entry) == 2
            and isinstance(entry[0], str)
        ):
            yield _Item(index, entry[0], entry[1])
        else:
            yield _Item(index, None, entry)


class BatchRunner:
    """Schedule many queries concurrently against one warm session.

    Parameters
    ----------
    session_or_reference:
        An existing :class:`MemSession` to bind, or a raw reference
        (string / codes / PackedSequence) from which one is built using
        ``params`` / ``**kwargs``.
    params, **kwargs:
        Forwarded to :class:`MemSession` when a raw reference is given
        (``min_length=...``, ``executor=...``, ...). Invalid alongside an
        existing session.
    workers:
        Query-level pool width. In the thread tier this composes with the
        session's row executor: each in-flight query still fans its tile
        rows out through the executor it was configured with. In the
        process tier it is the worker-process count (rows run serially
        inside each worker).
    tier:
        ``"thread"`` (default) runs queries on an in-process pool;
        ``"process"`` ships each query to the shared
        :mod:`repro.core.procpool` worker pool. The process tier supports
        only the default ``find_mems`` per-query function — a custom
        ``fn`` is a closure that cannot cross the process boundary.
    max_in_flight:
        Backpressure bound — at most this many queries are submitted but
        unfinished at any moment (default ``2 * workers``). Submission
        (and therefore consumption of a streaming input) blocks once the
        bound is reached.
    errors:
        ``"isolate"`` (default) turns a per-query exception into a
        :class:`BatchError` result; ``"raise"`` re-raises it at the
        iteration point (remaining in-flight queries are drained).
    tracer:
        Optional :class:`repro.obs.Tracer`; defaults to the session's.
    lock_factory:
        Injectable ``name -> lock`` factory (see
        :mod:`repro.analysis.lock_tracker`); forwarded to a freshly
        built session and used for the runner's own in-flight lock.
    """

    def __init__(
        self,
        session_or_reference,
        params: GpuMemParams | None = None,
        /,
        *,
        workers: int | None = None,
        max_in_flight: int | None = None,
        errors: str = "isolate",
        tier: str = "thread",
        tracer: Tracer | None = None,
        lock_factory=None,
        **kwargs,
    ):
        if isinstance(session_or_reference, MemSession):
            if params is not None or kwargs:
                raise InvalidParameterError(
                    "pass params/kwargs only when building a new session, "
                    "not alongside an existing MemSession"
                )
            self.session = session_or_reference
            self.tracer = get_tracer(tracer) if tracer else self.session.tracer
            lock_factory = lock_factory or self.session._lock_factory
        else:
            self.session = MemSession(
                session_or_reference, params, tracer=tracer,
                lock_factory=lock_factory, **kwargs
            )
            self.tracer = self.session.tracer
            lock_factory = self.session._lock_factory
        if workers is not None and workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers) if workers else min(8, os.cpu_count() or 1)
        if max_in_flight is None:
            max_in_flight = 2 * self.workers
        if max_in_flight < 1:
            raise InvalidParameterError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.max_in_flight = int(max_in_flight)
        if errors not in ("isolate", "raise"):
            raise InvalidParameterError(
                f"errors must be 'isolate' or 'raise', got {errors!r}"
            )
        self.errors = errors
        if tier not in BATCH_TIERS:
            raise InvalidParameterError(
                f"tier must be one of {BATCH_TIERS}, got {tier!r}"
            )
        self.tier = tier
        self._proc_spec = None
        if tier == "process":
            # Publish the reference once; per-query submissions then only
            # pickle the tiny locator + query bytes.
            from repro.core import procpool

            self._proc_spec = procpool.make_spec(
                self.session.reference, self.session.params,
                use_cache=True, assume_warm=True, tracer=self.tracer,
                store=self.session.store,
            )
        self._in_flight = 0
        self._in_flight_lock = (lock_factory or new_lock)("batch.in_flight")  # guards: _in_flight

    # -- iteration entry points ------------------------------------------------
    def run(
        self,
        queries: Iterable,
        *,
        fn: Callable | None = None,
        ordered: bool = True,
    ) -> Iterator[BatchResult | BatchError]:
        """Stream results for every query in ``queries``.

        ``fn`` is the per-query function (default: the bound session's
        ``find_mems``); it receives the raw query exactly as supplied.
        ``ordered=True`` yields results in submission order;
        ``ordered=False`` yields each result as soon as it finishes
        (lower latency to first result, same set of results — use
        ``result.index`` to re-sort). Either way at most
        :attr:`max_in_flight` queries are pending at once.
        """
        if fn is not None and self.tier == "process":
            raise InvalidParameterError(
                "the process tier runs only the default find_mems per-query "
                "function; a custom fn cannot cross the process boundary"
            )
        if fn is None:
            fn = self._find_mems
        return self._drive(_as_items(queries), fn, ordered)

    def find_mems(
        self, queries: Iterable, *, ordered: bool = True
    ) -> Iterator[BatchResult | BatchError]:
        """``run`` with the session's ``find_mems`` as the per-query fn."""
        return self.run(queries, ordered=ordered)

    def map(self, fn: Callable, queries: Iterable) -> list:
        """Ordered list of ``fn(query)`` values; per-query errors re-raise.

        The strict counterpart of :meth:`run` for callers that need plain
        values with fail-fast semantics (``ReadMapper.map_reads``,
        ``distance_matrix``).
        """
        if self.tier == "process":
            raise InvalidParameterError(
                "the process tier runs only the default find_mems per-query "
                "function; a custom fn cannot cross the process boundary"
            )
        out = []
        for result in self._drive(_as_items(queries), fn, ordered=True,
                                  errors="raise"):
            out.append(result.value)
        return out

    # -- internals --------------------------------------------------------------
    def _find_mems(self, query):
        # as_codes here (inside the worker) so malformed records are
        # isolated per query rather than killing the submission loop.
        return self.session.find_mems(as_codes(query))

    def _drive(
        self,
        items: Iterator[_Item],
        fn: Callable,
        ordered: bool,
        errors: str | None = None,
    ) -> Iterator[BatchResult | BatchError]:
        errors = errors or self.errors
        tracer = self.tracer
        n_done = 0
        n_errors = 0
        with tracer.span(
            "batch.run", cat="batch",
            workers=self.workers, max_in_flight=self.max_in_flight,
            ordered=ordered, tier=self.tier,
        ) as run_span:
            if self.tier == "process":
                # The process pool is shared and long-lived (see
                # repro.core.procpool); it outlives this run on purpose.
                from contextlib import nullcontext

                from repro.core import procpool

                pool_cm = nullcontext(procpool.get_pool(self.workers))
            else:
                pool_cm = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="gpumem-batch"
                )
            with pool_cm as pool:
                if ordered:
                    results = self._ordered(pool, items, fn)
                else:
                    results = self._as_completed(pool, items, fn)
                for result in results:
                    n_done += 1
                    if not result.ok:
                        n_errors += 1
                        if errors == "raise":
                            raise result.error
                    yield result
            run_span.set(n_queries=n_done, n_errors=n_errors)
        metrics = tracer.metrics
        if metrics.enabled:
            metrics.counter("batch.runs").inc()

    def _ordered(self, pool, items, fn):
        """Sliding submission window; yield strictly in submission order."""
        window: deque = deque()
        for item in items:
            while len(window) >= self.max_in_flight:
                yield self._result_of(window.popleft())
            window.append(self._submit(pool, fn, item))
        while window:
            yield self._result_of(window.popleft())

    def _as_completed(self, pool, items, fn):
        """Same bounded window; yield each result as soon as it finishes."""
        pending: set = set()
        for item in items:
            while len(pending) >= self.max_in_flight:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield self._result_of(future)
            pending.add(self._submit(pool, fn, item))
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                yield self._result_of(future)

    def _submit(self, pool, fn, item: _Item):
        metrics = self.tracer.metrics
        if metrics.enabled:
            metrics.counter("batch.queued").inc()
        with self._in_flight_lock:
            self._in_flight += 1
            if metrics.enabled:
                metrics.gauge("batch.in_flight").set(self._in_flight)
        if self.tier == "process":
            return self._submit_process(pool, item)
        return pool.submit(self._run_one, fn, item)

    def _submit_process(self, pool, item: _Item) -> Future:
        """Ship one query to the worker-process pool.

        The query is encoded parent-side so a malformed record resolves to
        an error payload immediately instead of poisoning a worker; good
        records cross the boundary as raw 2-bit code bytes riding a spec
        that references the already-published shared reference.
        """
        from repro.core import procpool

        try:
            codes = as_codes(item.query)
        except Exception as exc:
            future: Future = Future()
            future.set_result({
                "ok": False, "index": item.index, "label": item.label,
                "error": exc, "seconds": 0.0,
            })
            return future
        spec = replace(self._proc_spec, query=codes.tobytes())
        return pool.submit(procpool.run_query_task, spec, item.index, item.label)

    def _result_of(self, future: Future) -> BatchResult | BatchError:
        """Resolve one future into a result object.

        Thread-tier futures already hold :class:`BatchResult` /
        :class:`BatchError` (accounting happened in ``_run_one``).
        Process-tier futures hold the worker's plain payload dict; convert
        it here and do the in-flight/metrics accounting the worker could
        not (its tracer is not ours).
        """
        result = future.result()
        if isinstance(result, (BatchResult, BatchError)):
            return result
        payload = result
        merge_payload(self.tracer, payload.get("obs"))
        seconds = payload["seconds"]
        out: BatchResult | BatchError
        if payload["ok"]:
            value = MatchSet(
                payload["array"],
                stats=PipelineStats.from_dict(payload["stats"]),
            )
            out = BatchResult(
                index=payload["index"], label=payload["label"], value=value,
                seconds=seconds,
            )
        else:
            out = BatchError(
                index=payload["index"], label=payload["label"],
                error=payload["error"], seconds=seconds,
            )
        metrics = self.tracer.metrics
        with self._in_flight_lock:
            self._in_flight -= 1
            if metrics.enabled:
                metrics.gauge("batch.in_flight").set(self._in_flight)
        if metrics.enabled:
            outcome = "ok" if out.ok else "error"
            metrics.counter("batch.queries", outcome=outcome).inc()
            metrics.counter("proc.queries", outcome=outcome).inc()
            metrics.histogram("batch.query_seconds").observe(seconds)
        return out

    def _run_one(self, fn, item: _Item) -> BatchResult | BatchError:
        tracer = self.tracer
        metrics = tracer.metrics
        t0 = time.perf_counter()
        try:
            with tracer.span(
                "batch.query", cat="batch", index=item.index,
                label=item.label or "",
            ) as sp:
                value = fn(item.query)
                n_result = getattr(value, "__len__", None)
                if n_result is not None:
                    sp.set(n_results=len(value))
            seconds = time.perf_counter() - t0
            result: BatchResult | BatchError = BatchResult(
                index=item.index, label=item.label, value=value,
                seconds=seconds,
            )
        except Exception as exc:
            seconds = time.perf_counter() - t0
            result = BatchError(
                index=item.index, label=item.label, error=exc,
                seconds=seconds,
            )
        finally:
            with self._in_flight_lock:
                self._in_flight -= 1
                if metrics.enabled:
                    metrics.gauge("batch.in_flight").set(self._in_flight)
        if metrics.enabled:
            outcome = "ok" if result.ok else "error"
            metrics.counter("batch.queries", outcome=outcome).inc()
            metrics.histogram("batch.query_seconds").observe(seconds)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BatchRunner(workers={self.workers}, "
            f"max_in_flight={self.max_in_flight}, errors={self.errors!r}, "
            f"session={self.session!r})"
        )


def find_mems_batch(
    reference,
    queries: Iterable,
    min_length: int,
    *,
    workers: int | None = None,
    ordered: bool = True,
    tracer: Tracer | None = None,
    **kwargs,
) -> list[BatchResult | BatchError]:
    """One-call convenience: batch-extract MEMs of many queries.

    Builds a session, runs every query through a :class:`BatchRunner`,
    and returns the materialized result list. For streaming consumption
    construct a :class:`BatchRunner` directly and iterate :meth:`~BatchRunner.run`.
    """
    runner = BatchRunner(
        reference, min_length=min_length, workers=workers, tracer=tracer,
        **kwargs,
    )
    return list(runner.run(queries, ordered=ordered))
