"""MEM-based genomic distance (paper §I, citing Garcia et al. 2013).

Garcia et al. define an assembly-comparison distance from compressed
maximal exact matches: the smaller the fraction of one sequence covered by
sufficiently long MEMs against the other, the more distant the pair. This
module provides that coverage computation and the derived distance,
including the symmetric variant and a pairwise distance matrix helper.

All entry points run on :class:`repro.core.session.MemSession`, so the
per-row seed indexes of each sequence are built once: the symmetric
distance reuses one cached session per direction, and
:func:`distance_matrix` performs O(n) index builds for its O(n²) pairs
instead of the seed behaviour's two throwaway index builds per pair.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import as_codes
from repro.core.session import MemSession, get_session
from repro.errors import InvalidParameterError


def _coverage_of(session: MemSession, query: np.ndarray) -> float:
    """Fraction of ``query`` positions covered by the session's MEMs."""
    if query.size == 0:
        return 0.0
    mems = session.find_mems(query)
    diff = np.zeros(query.size + 1, dtype=np.int64)
    arr = mems.array
    np.add.at(diff, arr["q"], 1)
    np.add.at(diff, np.minimum(arr["q"] + arr["length"], query.size), -1)
    depth = np.cumsum(diff[:-1])
    return float((depth > 0).mean())


def mem_coverage(reference, query, *, min_length: int = 30,
                 session: MemSession | None = None, **kwargs) -> float:
    """Fraction of ``query`` positions covered by MEMs of ≥ ``min_length``.

    Pass ``session`` (already bound to ``reference``) to reuse its cached
    indexes; ``min_length`` and the remaining kwargs are then taken from the
    session's params and must not conflict with it.
    """
    if session is None:
        session = MemSession(reference, min_length=min_length, **kwargs)
    return _coverage_of(session, as_codes(query))


def mem_distance(reference, query, *, min_length: int = 30,
                 symmetric: bool = True, **kwargs) -> float:
    """``1 − coverage`` distance; symmetric variant averages both directions.

    Both directions run through :func:`repro.core.session.get_session`, so
    repeated distances against the same sequences (and the reverse
    direction of this very call) hit warm index caches instead of
    constructing throwaway matchers.
    """
    ref_session = get_session(reference, min_length=min_length, **kwargs)
    d_q = 1.0 - _coverage_of(ref_session, as_codes(query))
    if not symmetric:
        return d_q
    qry_session = get_session(query, min_length=min_length, **kwargs)
    d_r = 1.0 - _coverage_of(qry_session, as_codes(reference))
    return (d_q + d_r) / 2.0


def distance_matrix(
    sequences,
    *,
    min_length: int = 30,
    batch_workers: int | None = None,
    max_in_flight: int | None = None,
    **kwargs,
) -> np.ndarray:
    """Symmetric pairwise MEM-distance matrix over a list of sequences.

    One session per sequence — O(n) index builds for the O(n²) pairs —
    and each session's row of coverage queries runs through a
    :class:`repro.core.batch.BatchRunner` (``batch_workers`` threads per
    row, ``max_in_flight`` backpressure), so pairs overlap on real cores
    while the single-flight cache guarantees each row index is still
    built exactly once.
    """
    from functools import partial

    from repro.core.batch import BatchRunner

    symmetric = bool(kwargs.pop("symmetric", True))
    seqs = [as_codes(s) for s in sequences]
    n = len(seqs)
    if n == 0:
        raise InvalidParameterError("distance_matrix needs at least one sequence")
    sessions = [
        MemSession(seq, min_length=min_length, **kwargs) for seq in seqs
    ]
    # Directed coverage of session i's reference by sequence j, for every
    # pair the requested variant needs: j > i always; j < i only when the
    # symmetric average uses the reverse direction too.
    coverage = np.zeros((n, n), dtype=np.float64)
    for i, session in enumerate(sessions):
        targets = (
            [j for j in range(n) if j != i] if symmetric
            else list(range(i + 1, n))
        )
        if not targets:
            continue
        runner = BatchRunner(
            session, workers=batch_workers, max_in_flight=max_in_flight
        )
        values = runner.map(
            partial(_coverage_of, session), [seqs[j] for j in targets]
        )
        coverage[i, targets] = values
    out = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            d = 1.0 - coverage[i, j]
            if symmetric:
                d = (d + 1.0 - coverage[j, i]) / 2.0
            out[i, j] = out[j, i] = d
    return out
