"""MEM-based genomic distance (paper §I, citing Garcia et al. 2013).

Garcia et al. define an assembly-comparison distance from compressed
maximal exact matches: the smaller the fraction of one sequence covered by
sufficiently long MEMs against the other, the more distant the pair. This
module provides that coverage computation and the derived distance,
including the symmetric variant and a pairwise distance matrix helper.
"""

from __future__ import annotations

import numpy as np

from repro.core.matcher import GpuMem, _as_codes
from repro.errors import InvalidParameterError


def mem_coverage(reference, query, *, min_length: int = 30, **kwargs) -> float:
    """Fraction of ``query`` positions covered by MEMs of ≥ ``min_length``."""
    reference = _as_codes(reference)
    query = _as_codes(query)
    if query.size == 0:
        return 0.0
    mems = GpuMem(min_length=min_length, **kwargs).find_mems(reference, query)
    diff = np.zeros(query.size + 1, dtype=np.int64)
    arr = mems.array
    np.add.at(diff, arr["q"], 1)
    np.add.at(diff, np.minimum(arr["q"] + arr["length"], query.size), -1)
    depth = np.cumsum(diff[:-1])
    return float((depth > 0).mean())


def mem_distance(reference, query, *, min_length: int = 30,
                 symmetric: bool = True, **kwargs) -> float:
    """``1 − coverage`` distance; symmetric variant averages both directions."""
    d_q = 1.0 - mem_coverage(reference, query, min_length=min_length, **kwargs)
    if not symmetric:
        return d_q
    d_r = 1.0 - mem_coverage(query, reference, min_length=min_length, **kwargs)
    return (d_q + d_r) / 2.0


def distance_matrix(sequences, *, min_length: int = 30, **kwargs) -> np.ndarray:
    """Symmetric pairwise MEM-distance matrix over a list of sequences."""
    seqs = [_as_codes(s) for s in sequences]
    n = len(seqs)
    if n == 0:
        raise InvalidParameterError("distance_matrix needs at least one sequence")
    out = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            d = mem_distance(seqs[i], seqs[j], min_length=min_length, **kwargs)
            out[i, j] = out[j, i] = d
    return out
