"""Analytic GPU-time model for the load-balancing experiment (Fig. 7).

The thread-level simulator (:mod:`repro.core.simulated`) runs one Python
generator per simulated thread and tops out around 10^5 bases. The paper's
Fig. 7, however, is about *distributions*: how per-seed occurrence skew
turns into warp serialization. Given per-query-position hit counts — which
the vectorized pipeline computes exactly, at any scale — the simulated
extraction time is reproducible analytically:

- round ``i`` of a block gives thread ``t`` the query seed ``b0 + t·w + i``
  with ``load = |index locations|``;
- *unbalanced*: thread work = own load × per-occurrence cost; threads with
  empty seeds idle (this is Fig. 7's baseline);
- *balanced*: Algorithm 2's plan (:func:`~repro.core.load_balance.balance_loads`)
  redistributes the idle threads; thread work = its strided share;
- a warp costs the max of its threads plus a fixed per-round overhead
  (seed fetch; plus the Algorithm 2 scans when balancing is on);
- blocks are scheduled over SMs by the same
  :class:`~repro.gpu.costmodel.CostModel` the simulator uses.

The model's speedup ratios are validated against the true simulator on
small skewed inputs (see ``tests/core/test_perf_model.py``); the Fig. 7
bench then runs it at full dataset scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.load_balance import balance_loads
from repro.core.params import GpuMemParams
from repro.core.tiling import TilePlan
from repro.gpu.costmodel import CostModel
from repro.gpu.device import TESLA_K20C, DeviceSpec
from repro.index.kmer_index import build_kmer_index
from repro.sequence.packed import kmer_codes


@dataclass
class ModelResult:
    """Modeled extraction cost for one configuration."""

    cycles: float
    seconds: float
    total_work: float
    warp_max_work: float

    @property
    def imbalance(self) -> float:
        if self.warp_max_work <= 0:
            return 0.0
        return 1.0 - self.total_work / self.warp_max_work


def _per_occurrence_cost(params: GpuMemParams) -> float:
    """Modeled work units to generate + extend one seed hit.

    Mirrors the kernel's charges (:mod:`repro.core.block_stage`): a ``locs``
    read and a triplet store (2 global transactions), plus one right-
    extension chunk — a global fetch per side and a handful of character
    compares. Hits that extend all the way to ``w`` cost more in the kernel;
    the constant captures the common quick-mismatch case.
    """
    from repro.gpu.costmodel import GLOBAL_MEM_COST

    return 3.0 * GLOBAL_MEM_COST + 4.0


def model_extraction(
    reference: np.ndarray,
    query: np.ndarray,
    params: GpuMemParams,
    *,
    balanced: bool,
    spec: DeviceSpec = TESLA_K20C,
) -> ModelResult:
    """Modeled extraction time of one full run (all tile rows)."""
    reference = np.ascontiguousarray(reference, dtype=np.uint8)
    query = np.ascontiguousarray(query, dtype=np.uint8)
    p = params
    tau = p.threads_per_block
    w = p.work_per_thread
    warp = spec.warp_size
    c_occ = _per_occurrence_cost(p)
    # Fixed per-round per-thread overhead, mirroring the kernel's charges:
    # seed fetch + two ptrs reads (global) for everyone, plus — balanced
    # only — Algorithm 2's two Hillis-Steele scans (k ops each), the assign
    # fill and the binary search (shared-memory ops, weight 1).
    from repro.gpu.costmodel import GLOBAL_MEM_COST

    k = int(np.log2(tau))
    fixed = p.seed_length + 2.0 * GLOBAL_MEM_COST
    fixed += (2.0 * k + k + 2.0) if balanced else 1.0

    plan = TilePlan(
        n_reference=reference.size, n_query=query.size, tile_size=p.tile_size
    )
    qk = (
        kmer_codes(query, p.seed_length)
        if query.size >= p.seed_length
        else np.empty(0, dtype=np.int64)
    )
    nq_seeds = qk.size

    cost_model = CostModel(spec)
    block_cycles: list[float] = []
    total_work = 0.0
    warp_max_work = 0.0

    for row in range(plan.n_rows):
        r0, r1 = plan.row_range(row)
        index = build_kmer_index(
            reference, seed_length=p.seed_length, step=p.step,
            region_start=r0, region_end=r1,
        )
        counts = np.zeros(query.size, dtype=np.int64)
        if nq_seeds:
            _, c = index.lookup(qk)
            counts[:nq_seeds] = c

        for tile in plan.tiles_in_row(row):
            q0, q1 = tile.q_start, tile.q_end
            span = q1 - q0
            n_blocks = max(1, -(-span // p.block_width))
            padded = np.zeros(n_blocks * tau * w, dtype=np.int64)
            padded[:span] = counts[q0:q1]
            # loads[block, thread, round]
            loads = padded.reshape(n_blocks, tau, w)
            for b in range(n_blocks):
                bcycles = 0.0
                for rnd in range(w):
                    l = loads[b, :, rnd]
                    if balanced and l.any():
                        share = balance_loads(l).per_thread_share()
                    else:
                        share = l
                    work = share * c_occ + fixed
                    total_work += float(work.sum())
                    wm = work.reshape(-1, warp).max(axis=1) if tau % warp == 0 else (
                        np.array([work[i : i + warp].max() for i in range(0, tau, warp)])
                    )
                    contrib = float(wm.sum()) * warp
                    warp_max_work += contrib
                    bcycles += float(wm.sum())
                block_cycles.append(bcycles / spec.warps_in_flight_per_sm)

    cycles = cost_model.schedule_blocks(block_cycles)
    return ModelResult(
        cycles=cycles,
        seconds=spec.seconds_from_cycles(cycles),
        total_work=total_work,
        warp_max_work=warp_max_work,
    )


def load_balance_speedup(
    reference: np.ndarray,
    query: np.ndarray,
    params: GpuMemParams,
    *,
    spec: DeviceSpec = TESLA_K20C,
) -> dict:
    """Fig. 7's quantity: unbalanced/balanced modeled extraction times."""
    on = model_extraction(reference, query, params, balanced=True, spec=spec)
    off = model_extraction(reference, query, params, balanced=False, spec=spec)
    return {
        "balanced_seconds": on.seconds,
        "unbalanced_seconds": off.seconds,
        "speedup": off.seconds / on.seconds if on.seconds > 0 else 1.0,
        "balanced_imbalance": on.imbalance,
        "unbalanced_imbalance": off.imbalance,
    }
