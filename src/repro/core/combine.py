"""Conflict-free parallel triplet combining (paper Algorithm 3, §III-B3).

Within one block round, the seeds (query positions) being processed form a
sequence ``s_0 … s_{S-1}`` over the non-empty seed *ranks*. Two triplets
``(r, q, λ)`` and ``(r', q', λ')`` from different seeds *overlap* when

    ``0 < (r' − r) == (q' − q) <= λ``

in which case they belong to the same exact match and are replaced by
``(r, q, (r' − r) + λ')``.

The parallel schedule runs ``2·log2(τ) − 1`` iterations: the combine
distance ``d`` doubles for the first ``k = log2(τ)`` iterations and halves
afterwards, and a seed is *active* when ``ctrl >= 0`` and
``ctrl mod 2d == 0`` with ``ctrl = rank`` (up-phase) or ``rank − d``
(down-phase). Active seeds absorb the triplets of the seed ``d`` ranks to
their right. Because active seeds are ``2d`` apart while combining at
distance ``d``, no seed's triplets are read and written in the same
iteration — the conflict-freedom the paper argues.

This module holds the pure schedule/merge logic plus a sequential reference
executor; the kernel in :mod:`repro.core.block_stage` walks the same
schedule with real threads and barriers.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError


def log2_int(tau: int) -> int:
    """``log2`` of a power of two, validated."""
    if tau < 1 or (tau & (tau - 1)) != 0:
        raise InvalidParameterError(f"tau must be a power of two, got {tau}")
    return tau.bit_length() - 1


def combine_distances(tau: int) -> list[int]:
    """The distance ``d`` used by each of the ``2k − 1`` iterations."""
    k = log2_int(tau)
    if k == 0:
        return []
    up = [1 << i for i in range(k)]
    return up + up[-2::-1]


def is_active(rank: int, iteration: int, tau: int) -> bool:
    """Algorithm 3's active-seed predicate (0-based iteration)."""
    k = log2_int(tau)
    d = combine_distances(tau)[iteration]
    ctrl = rank
    if iteration >= k:  # down-phase (paper: iter > k, 1-based)
        ctrl -= d
    return ctrl >= 0 and ctrl % (2 * d) == 0


def active_pairs(iteration: int, tau: int, n_ranks: int) -> list[tuple[int, int]]:
    """All (src, trgt) rank pairs combined at this iteration."""
    d = combine_distances(tau)[iteration]
    pairs = []
    for src in range(n_ranks):
        if is_active(src, iteration, tau):
            trgt = src + d
            if trgt < n_ranks:
                pairs.append((src, trgt))
    return pairs


def try_merge(src_trip, trgt_trip):
    """Merged triplet if the overlap condition holds, else ``None``.

    Triplets are ``[r, q, λ]`` lists (mutable — the kernel marks deletion by
    zeroing λ, exactly as the paper notes GPUMEM does in practice).
    """
    r, q, lam = src_trip[0], src_trip[1], src_trip[2]
    r2, q2, lam2 = trgt_trip[0], trgt_trip[1], trgt_trip[2]
    if lam <= 0 or lam2 <= 0:
        return None
    dr = r2 - r
    if dr > 0 and dr == q2 - q and dr <= lam:
        return [r, q, dr + lam2]
    return None


def combine_reference(triplet_lists: list[list[list[int]]], tau: int) -> list[list[list[int]]]:
    """Sequentially execute the full combine schedule (test oracle).

    ``triplet_lists[rank]`` is the list of ``[r, q, λ]`` triplets of that
    seed rank. Returns the post-combine lists (λ == 0 entries dropped).
    """
    lists = [[list(t) for t in lst] for lst in triplet_lists]
    n_ranks = len(lists)
    if tau >= 2:
        for it in range(len(combine_distances(tau))):
            for src, trgt in active_pairs(it, tau, n_ranks):
                for s_trip in lists[src]:
                    if s_trip[2] <= 0:
                        continue
                    for t_trip in lists[trgt]:
                        merged = try_merge(s_trip, t_trip)
                        if merged is not None:
                            s_trip[0], s_trip[1], s_trip[2] = merged
                            t_trip[2] = 0  # delete
    return [[t for t in lst if t[2] > 0] for lst in lists]


def chain_merge_expected(triplets: list[tuple[int, int, int]]) -> set[tuple[int, int, int]]:
    """Ground truth for combining: transitive merge of diagonal overlaps.

    Used by tests to check that the parallel schedule merges exactly the
    connected overlap components, independent of rank layout.
    """
    by_diag: dict[int, list[tuple[int, int]]] = {}
    for r, q, lam in triplets:
        by_diag.setdefault(r - q, []).append((q, q + lam))
    out: set[tuple[int, int, int]] = set()
    for diag, intervals in by_diag.items():
        intervals.sort()
        cur_s, cur_e = intervals[0]
        for s, e in intervals[1:]:
            if s <= cur_e:
                cur_e = max(cur_e, e)
            else:
                out.add((cur_s + diag, cur_s, cur_e - cur_s))
                cur_s, cur_e = s, e
        out.add((cur_s + diag, cur_s, cur_e - cur_s))
    return out
