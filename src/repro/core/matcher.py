"""The GPUMEM driver: end-to-end MEM extraction.

:class:`GpuMem` glues the pipeline together exactly as Figure 1 of the
paper: tile rows are processed bottom-up; each row builds a partial seed
index of its reference range; all tiles of the row are matched against that
index; in-tile MEMs are reported immediately and boundary-touching
fragments accumulate into a global out-tile list merged on the host at the
end.

Two backends:

- ``"vectorized"`` — whole-array NumPy implementation of each stage
  (production path, used by the wall-clock benchmarks);
- ``"simulated"``  — Algorithms 1–3 run as per-thread kernels on the SIMT
  simulator of :mod:`repro.gpu` (used to validate the published pseudocode
  and to drive the load-balancing/divergence experiments, Fig. 7).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.host_merge import host_merge
from repro.core.params import GpuMemParams
from repro.core.tiling import TilePlan
from repro.core.vectorized import stage_tile
from repro.index.kmer_index import build_kmer_index
from repro.sequence.alphabet import encode
from repro.sequence.packed import PackedSequence, kmer_codes
from repro.types import MatchSet, concat_triplets


def _as_codes(seq) -> np.ndarray:
    if isinstance(seq, PackedSequence):
        return seq.codes()
    return encode(seq)


class GpuMem:
    """GPUMEM matcher.

    Parameters may be given as a ready :class:`GpuMemParams` or as keyword
    arguments forwarded to it::

        GpuMem(min_length=50)                     # paper defaults
        GpuMem(GpuMemParams(min_length=50, seed_length=10))
        GpuMem(min_length=50, backend="simulated", load_balancing=False)
    """

    def __init__(self, params: GpuMemParams | None = None, /, **kwargs):
        if params is None:
            params = GpuMemParams(**kwargs)
        elif kwargs:
            params = params.with_(**kwargs)
        self.params = params
        #: Populated by :meth:`find_mems`: per-phase timings and counters.
        self.stats: dict = {}

    # -- public API -----------------------------------------------------------
    def find_mems(self, reference, query) -> MatchSet:
        """All maximal exact matches of length ≥ ``params.min_length``."""
        reference = _as_codes(reference)
        query = _as_codes(query)
        if self.params.backend == "simulated":
            from repro.core.simulated import simulated_find_mems

            mems, stats = simulated_find_mems(reference, query, self.params)
            self.stats = stats
            return MatchSet(mems, stats=stats)
        return self._find_mems_vectorized(reference, query)

    # -- vectorized backend -----------------------------------------------------
    def _find_mems_vectorized(self, reference: np.ndarray, query: np.ndarray) -> MatchSet:
        p = self.params
        plan = TilePlan(
            n_reference=reference.size,
            n_query=query.size,
            tile_size=p.tile_size,
        )
        t0 = time.perf_counter()
        query_kmers = (
            kmer_codes(query, p.seed_length)
            if query.size >= p.seed_length
            else np.empty(0, dtype=np.int64)
        )
        prep_time = time.perf_counter() - t0

        index_time = 0.0
        match_time = 0.0
        in_tile_parts: list[np.ndarray] = []
        out_tile_parts: list[np.ndarray] = []
        n_candidates = 0
        max_index_bytes = 0
        max_index_locs = 0

        for row in range(plan.n_rows):
            r0, r1 = plan.row_range(row)
            t0 = time.perf_counter()
            index = build_kmer_index(
                reference,
                seed_length=p.seed_length,
                step=p.step,
                region_start=r0,
                region_end=r1,
            )
            index_time += time.perf_counter() - t0
            max_index_bytes = max(max_index_bytes, index.nbytes_packed)
            max_index_locs = max(max_index_locs, index.n_locs)

            t0 = time.perf_counter()
            for tile in plan.tiles_in_row(row):
                result = stage_tile(
                    reference, query, query_kmers, tile, index, p.min_length
                )
                n_candidates += result.n_candidates
                if result.in_tile.size:
                    in_tile_parts.append(result.in_tile)
                if result.out_tile.size:
                    out_tile_parts.append(result.out_tile)
            match_time += time.perf_counter() - t0

        t0 = time.perf_counter()
        out_tile = concat_triplets(out_tile_parts)
        crossing = host_merge(reference, query, out_tile, p.min_length)
        mems = concat_triplets(in_tile_parts + [crossing])
        host_time = time.perf_counter() - t0

        self.stats = {
            "backend": "vectorized",
            "n_rows": plan.n_rows,
            "n_cols": plan.n_cols,
            "n_tiles": plan.n_tiles,
            "n_candidates": n_candidates,
            "n_in_tile": int(sum(part.size for part in in_tile_parts)),
            "n_out_tile_fragments": int(out_tile.size),
            "n_crossing_mems": int(crossing.size),
            "prep_time": prep_time,
            "index_time": index_time,
            "match_time": match_time,
            "host_merge_time": host_time,
            "total_time": prep_time + index_time + match_time + host_time,
            "max_index_bytes": max_index_bytes,
            "max_index_locs": max_index_locs,
            "params": p.describe(),
        }
        return MatchSet(mems, stats=self.stats)

    # -- convenience ------------------------------------------------------------
    def index_only(self, reference) -> float:
        """Build all per-row indexes and return the build time in seconds.

        This is the quantity the paper's Table III reports for GPUMEM: index
        construction alone, without matching.
        """
        reference = _as_codes(reference)
        p = self.params
        plan = TilePlan(
            n_reference=reference.size, n_query=p.tile_size, tile_size=p.tile_size
        )
        t0 = time.perf_counter()
        for row in range(plan.n_rows):
            r0, r1 = plan.row_range(row)
            build_kmer_index(
                reference,
                seed_length=p.seed_length,
                step=p.step,
                region_start=r0,
                region_end=r1,
            )
        return time.perf_counter() - t0


def find_mems(reference, query, min_length: int, **kwargs) -> MatchSet:
    """One-call convenience wrapper around :class:`GpuMem`."""
    return GpuMem(min_length=min_length, **kwargs).find_mems(reference, query)
