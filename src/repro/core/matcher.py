"""The GPUMEM driver: end-to-end MEM extraction.

:class:`GpuMem` is the one-shot entry point over the staged pipeline of
:mod:`repro.core.pipeline` (Figure 1 of the paper: per-row seed index →
per-tile match → host merge). Each call binds a transient
:class:`repro.core.session.MemSession`; many-query workloads should hold a
session directly so the per-row indexes are built once and reused.

Two backends:

- ``"vectorized"`` — whole-array NumPy implementation of each stage
  (production path, used by the wall-clock benchmarks);
- ``"simulated"``  — Algorithms 1–3 run as per-thread kernels on the SIMT
  simulator of :mod:`repro.gpu` (used to validate the published pseudocode
  and to drive the load-balancing/divergence experiments, Fig. 7).
"""

from __future__ import annotations

from repro.core.params import GpuMemParams
from repro.core.pipeline import PipelineStats, as_codes
from repro.core.session import MemSession
from repro.obs.tracer import Tracer, get_tracer
from repro.types import MatchSet

#: Backwards-compatible alias — historical internal name, imported widely.
_as_codes = as_codes


class GpuMem:
    """GPUMEM matcher.

    Parameters may be given as a ready :class:`GpuMemParams` or as keyword
    arguments forwarded to it::

        GpuMem(min_length=50)                     # paper defaults
        GpuMem(GpuMemParams(min_length=50, seed_length=10))
        GpuMem(min_length=50, backend="simulated", load_balancing=False)
        GpuMem(min_length=50, executor="threads", workers=4)
        GpuMem(min_length=50, tracer=Tracer())   # record spans + metrics
    """

    def __init__(self, params: GpuMemParams | None = None, /, *,
                 tracer: Tracer | None = None, **kwargs):
        if params is None:
            params = GpuMemParams(**kwargs)
        elif kwargs:
            params = params.with_(**kwargs)
        self.params = params
        #: Observability sink shared with every session this matcher binds.
        self.tracer = get_tracer(tracer)
        #: Stats of the most recent :meth:`find_mems` call. Always a
        #: well-shaped :class:`PipelineStats` (zeroed before the first call).
        self.stats: PipelineStats = PipelineStats(
            backend=params.backend,
            executor=params.executor,
            params=params.describe(),
        )

    # -- public API -----------------------------------------------------------
    def find_mems(self, reference, query) -> MatchSet:
        """All maximal exact matches of length ≥ ``params.min_length``.

        One-shot convenience: a fresh session is bound per call. For
        repeated queries against one reference, hold a
        :class:`~repro.core.session.MemSession` instead.
        """
        session = MemSession(reference, self.params, tracer=self.tracer)
        result = session.find_mems(query)
        self.stats = session.stats
        return result

    # -- convenience ------------------------------------------------------------
    def index_only(self, reference) -> float:
        """Build all per-row indexes and return the build time in seconds.

        This is the quantity the paper's Table III reports for GPUMEM: index
        construction alone, without matching.
        """
        return MemSession(reference, self.params, tracer=self.tracer).warm()


def find_mems(reference, query, min_length: int, **kwargs) -> MatchSet:
    """One-call convenience wrapper around :class:`GpuMem`."""
    return GpuMem(min_length=min_length, **kwargs).find_mems(reference, query)
