"""The simulated-GPU GPUMEM driver.

Runs the published pipeline end to end on the SIMT simulator of
:mod:`repro.gpu`: Algorithm 1 index kernels per tile row, the block kernel
(Algorithms 2 & 3 + expansion) per tile, the tile combine, and the host
merge. Returns the MEM set plus a statistics dictionary containing the
simulated device timings that drive the Fig. 7 experiment.

This backend executes one Python generator per simulated thread — use it on
test-scale inputs (up to ~10^5 bases); the vectorized backend covers the
rest and is tested equal.
"""

from __future__ import annotations

import numpy as np

from repro.core.block_stage import BlockTask, block_kernel
from repro.core.host_merge import host_merge
from repro.core.params import GpuMemParams
from repro.core.seed_index import build_kmer_index_gpu
from repro.core.tile_stage import tile_combine
from repro.core.tiling import TilePlan
from repro.gpu.device import TESLA_K20C, DeviceSpec
from repro.gpu.kernel import Device
from repro.obs.tracer import Tracer, get_tracer
from repro.types import concat_triplets, triplets_from_tuples

#: Bytes per transferred triplet: three 64-bit fields (the paper packs
#: tighter; the constant only scales the modeled copy time).
TRIPLET_BYTES = 24


def _charge_transfer(dev: Device, name: str, n_triplets: int) -> None:
    """Record a device→host result copy in the device's report stream.

    §III-B4/§III-C: in-block and in-tile MEMs are moved to the host for
    reporting as they are produced; the out-tile list is transferred once at
    the end. Copies are charged at the device's PCIe bandwidth.
    """
    from repro.gpu.kernel import KernelReport

    seconds = (n_triplets * TRIPLET_BYTES) / dev.spec.pcie_bytes_per_second
    nbytes = n_triplets * TRIPLET_BYTES
    with dev.tracer.span(
        name, cat="memory", nbytes=nbytes, sim_seconds=seconds
    ):
        dev.reports.append(
            KernelReport(
                name=name,
                grid=0,
                block=0,
                n_phases=0,
                warp_max_ops=0.0,
                total_thread_ops=0.0,
                block_cycles=[],
                imbalance=0.0,
                sim_cycles=seconds * dev.spec.clock_hz,
                sim_seconds=seconds,
            )
        )
    metrics = dev.tracer.metrics
    if metrics.enabled:
        metrics.counter("memcpy.transfers", kind=name).inc()
        metrics.counter("memcpy.bytes", kind=name).inc(nbytes)


def simulated_find_mems(
    reference: np.ndarray,
    query: np.ndarray,
    params: GpuMemParams,
    *,
    device: Device | None = None,
    spec: DeviceSpec = TESLA_K20C,
    tracer: Tracer | None = None,
) -> tuple[np.ndarray, dict]:
    """Full simulated run; returns ``(mem_triplets, stats)``.

    ``tracer`` records the four stage spans with the per-launch kernel and
    transfer spans nested inside them (the device adopts the tracer when it
    does not already carry one), each annotated with the simulator's
    ``KernelReport`` sim-time.
    """
    tracer = get_tracer(tracer)
    dev = device if device is not None else Device(spec, tracer=tracer)
    if tracer.enabled and not dev.tracer.enabled:
        dev.tracer = tracer
        dev.memory.tracer = tracer
    p = params

    run_span = tracer.span(
        "pipeline.run", cat="pipeline", backend="simulated",
        device=dev.spec.name, n_reference=int(reference.size),
        n_query=int(query.size),
    )
    with run_span:
        with tracer.span("stage:prep", cat="pipeline"):
            reference = np.ascontiguousarray(reference, dtype=np.uint8)
            query = np.ascontiguousarray(query, dtype=np.uint8)
            plan = TilePlan(
                n_reference=reference.size, n_query=query.size,
                tile_size=p.tile_size,
            )

        in_parts: list[np.ndarray] = []
        out_tile_parts: list[np.ndarray] = []
        index_seconds = 0.0
        index_cycles = 0.0

        for row in range(plan.n_rows):
            r0, r1 = plan.row_range(row)
            mark = len(dev.reports)
            with tracer.span("stage:row_index", cat="pipeline", row=row) as sp:
                index = build_kmer_index_gpu(
                    dev,
                    reference,
                    seed_length=p.seed_length,
                    step=p.step,
                    region_start=r0,
                    region_end=r1,
                    block=p.threads_per_block,
                )
                row_index_seconds = sum(
                    r.sim_seconds for r in dev.reports[mark:]
                )
                sp.set(sim_seconds=row_index_seconds, n_locs=index.n_locs)
            index_seconds += row_index_seconds
            index_cycles += sum(r.sim_cycles for r in dev.reports[mark:])

            with tracer.span("stage:tile_match", cat="pipeline", row=row):
                for tile in plan.tiles_in_row(row):
                    task = BlockTask(
                        reference=reference,
                        query=query,
                        ptrs=index.ptrs,
                        locs=index.locs,
                        seed_length=p.seed_length,
                        w=p.work_per_thread,
                        min_length=p.min_length,
                        r_lo=tile.r_start,
                        r_hi=tile.r_end,
                        q_lo=tile.q_start,
                        q_hi=tile.q_end,
                        block_width=p.block_width,
                        balancing=p.load_balancing,
                    )
                    dev.launch(
                        block_kernel,
                        task.n_blocks,
                        p.threads_per_block,
                        task,
                        name="match:block",
                    )
                    in_block = triplets_from_tuples(
                        [t for lst in task.in_block.values() for t in lst]
                    )
                    if in_block.size:
                        in_parts.append(np.unique(in_block))
                        _charge_transfer(
                            dev, "memcpy:in-block", int(in_block.size)
                        )
                    out_block = triplets_from_tuples(
                        [t for lst in task.out_block.values() for t in lst]
                    )
                    in_tile, out_tile = tile_combine(
                        reference, query, tile, out_block, p.min_length,
                        device=dev,
                    )
                    if in_tile.size:
                        in_parts.append(in_tile)
                        _charge_transfer(
                            dev, "memcpy:in-tile", int(in_tile.size)
                        )
                    if out_tile.size:
                        out_tile_parts.append(out_tile)

        out_tile_all = concat_triplets(out_tile_parts)
        if out_tile_all.size:
            _charge_transfer(dev, "memcpy:out-tile", int(out_tile_all.size))
        with tracer.span("stage:host_merge", cat="pipeline") as sp:
            crossing = host_merge(reference, query, out_tile_all, p.min_length)
            mems = concat_triplets(in_parts + [crossing])
            sp.set(
                n_out_tile_fragments=int(out_tile_all.size),
                n_crossing_mems=int(crossing.size),
            )
        run_span.set(n_mems=int(mems.size))

    total_seconds = dev.total_sim_seconds()
    match_reports = [r for r in dev.reports if r.name.startswith(("match", "tile"))]
    transfer_seconds = sum(
        r.sim_seconds for r in dev.reports if r.name.startswith("memcpy")
    )
    stats = {
        "backend": "simulated",
        "device": dev.spec.name,
        "n_tiles": plan.n_tiles,
        "n_out_tile_fragments": int(out_tile_all.size),
        "sim_index_seconds": index_seconds,
        "sim_index_cycles": index_cycles,
        "sim_match_seconds": sum(r.sim_seconds for r in match_reports),
        "sim_transfer_seconds": transfer_seconds,
        "sim_total_seconds": total_seconds,
        "kernel_launches": len(dev.reports),
        "warp_imbalance": (
            float(np.mean([r.imbalance for r in match_reports]))
            if match_reports
            else 0.0
        ),
        "load_balancing": p.load_balancing,
        "params": p.describe(),
    }
    metrics = tracer.metrics
    if metrics.enabled:
        metrics.counter("pipeline.runs", backend="simulated").inc()
        metrics.counter("pipeline.mems", backend="simulated").inc(int(mems.size))
        for stage, seconds in (
            ("row_index", index_seconds),
            ("tile_match", stats["sim_match_seconds"]),
            ("transfer", transfer_seconds),
        ):
            metrics.histogram("sim.stage_seconds", stage=stage).observe(seconds)
    return mems, stats
