"""Vectorized (NumPy) implementation of the GPUMEM tile stage.

This is the production fast path: it computes exactly what the simulated GPU
kernels compute per tile — seed-hit candidate generation, maximal extension
clipped to the tile box, and the in-tile / out-tile split — but expressed as
whole-array operations instead of per-thread programs. The two backends are
tested to produce identical MEM sets.

Key semantics (DESIGN.md §5):

- Only the *index* is tile-local. Reads of ``R``/``Q`` may cross tile
  borders (both sequences are resident in global memory, 2-bit packed).
- A triplet whose maximal in-tile extension reaches the tile box is marked
  *touching* and forwarded to the host stage regardless of length; in-tile
  MEMs (mismatch-delimited strictly inside the box) are final and filtered
  by ``min_length`` immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.tiling import Tile
from repro.index.compare import common_prefix_len, common_suffix_len
from repro.index.kmer_index import KmerSeedIndex
from repro.types import empty_triplets, make_triplets


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flatten ``[starts[i], starts[i]+counts[i])`` ranges.

    Returns ``(flat, owner)``: the concatenated range elements and, for each,
    the index ``i`` of the range it came from. The standard vectorized
    repeat/cumsum construction.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        z = np.empty(0, dtype=np.int64)
        return z, z.copy()
    owner = np.repeat(np.arange(starts.size, dtype=np.int64), counts)
    # within-range offsets: global arange minus each range's running start
    run = np.concatenate(([0], np.cumsum(counts)[:-1]))
    offsets = np.arange(total, dtype=np.int64) - run[owner]
    return starts[owner] + offsets, owner


@dataclass
class TileStageResult:
    """Output of one tile: final in-tile MEMs + boundary-touching fragments."""

    in_tile: np.ndarray
    out_tile: np.ndarray
    n_candidates: int = 0
    n_query_seeds_with_hits: int = 0
    hit_counts: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))


def tile_candidates(
    query_kmers: np.ndarray,
    tile: Tile,
    index: KmerSeedIndex,
    n_query: int,
    seed_length: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Seed-hit candidate pairs for one tile.

    Query seeds are taken at *every* position of the tile's query range
    whose window fits in the query (the reference side carries the Δs
    sparsification — §III-B2 processes all ``w · τ · n_block`` query
    locations of a block). Returns ``(r, q, hit_counts_per_q)``.
    """
    q_lo = tile.q_start
    q_hi = min(tile.q_end, n_query - seed_length + 1)
    if q_hi <= q_lo:
        z = np.empty(0, dtype=np.int64)
        return z, z.copy(), np.empty(0, dtype=np.int64)
    q_positions = np.arange(q_lo, q_hi, dtype=np.int64)
    seeds = query_kmers[q_positions]
    starts, counts = index.lookup(seeds)
    flat, owner = expand_ranges(starts, counts)
    r = index.locs[flat]
    q = q_positions[owner]
    return r, q, counts


def extend_and_classify(
    reference: np.ndarray,
    query: np.ndarray,
    tile: Tile,
    r: np.ndarray,
    q: np.ndarray,
    seed_length: int,
    min_length: int,
) -> TileStageResult:
    """Maximally extend candidates within the tile box and split the output.

    For each aligned seed pair ``(r, q)``:

    - extend left up to the box (``limit = min(r - r0, q - q0)``); hitting
      the limit marks the triplet *touching*;
    - extend right from the seed end likewise;
    - mismatch-delimited triplets of length ≥ ``min_length`` are in-tile
      MEMs (already globally maximal — reads cross the border, so a
      mismatch is a real mismatch); touching triplets go to the host stage
      whatever their length (DESIGN.md §5 note 1).
    """
    n_cand = r.size
    if n_cand == 0:
        return TileStageResult(in_tile=empty_triplets(), out_tile=empty_triplets())

    # Left extension. The *true* maximal extension is computed (reads may
    # cross the border); a triplet is touching only if the extension
    # strictly crosses the box, so a mismatch that happens to sit exactly on
    # the boundary still yields a final in-tile MEM.
    dl = np.minimum(r - tile.r_start, q - tile.q_start)
    le = common_suffix_len(reference, query, r, q)
    touching_left = le > dl
    le = np.minimum(le, dl)

    # Right extension beyond the seed, same precise-touching rule. ``cap``
    # can be negative when the seed window itself sticks out of the box.
    cap = np.minimum(tile.r_end - r, tile.q_end - q) - seed_length
    re = common_prefix_len(reference, query, r + seed_length, q + seed_length)
    touching_right = re > cap
    re = np.minimum(re, np.maximum(cap, 0))

    length = seed_length + le + re
    trips = make_triplets(r - le, q - le, length)
    touching = touching_left | touching_right

    in_tile = trips[~touching & (length >= min_length)]
    out_tile = trips[touching]
    if in_tile.size:
        in_tile = np.unique(in_tile)
    if out_tile.size:
        out_tile = np.unique(out_tile)
    return TileStageResult(in_tile=in_tile, out_tile=out_tile, n_candidates=n_cand)


def stage_tile(
    reference: np.ndarray,
    query: np.ndarray,
    query_kmers: np.ndarray,
    tile: Tile,
    index: KmerSeedIndex,
    min_length: int,
) -> TileStageResult:
    """Full tile stage: candidates → extension → in/out split."""
    r, q, hit_counts = tile_candidates(
        query_kmers, tile, index, query.size, index.seed_length
    )
    result = extend_and_classify(
        reference, query, tile, r, q, index.seed_length, min_length
    )
    result.hit_counts = hit_counts
    result.n_query_seeds_with_hits = int((hit_counts > 0).sum())
    return result
