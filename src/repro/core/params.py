"""GPUMEM parameter set (the symbols of the paper's Table I).

``GpuMemParams`` gathers and validates every tunable of the pipeline:

===============  ======  =====================================================
field            paper   meaning
===============  ======  =====================================================
min_length       L       minimum reported MEM length
seed_length      ℓs      indexing seed length
step             Δs      indexing step (sparsification); default is the
                         paper's choice, the Eq. (1) maximum ``L - ℓs + 1``
threads_per_block τ      GPU threads per block (power of two — Algorithm 3's
                         combine tree needs ``k = log2 τ``)
work_per_thread  w       query locations per thread; the paper proves
                         ``w = Δs`` extracts every MEM exactly once, and that
                         is the default (and the only safe choice, enforced)
blocks_per_tile  n_block  blocks per tile (tile is split into vertical
                         ``ℓtile × ℓblock`` strips)
===============  ======  =====================================================

Derived: ``block_width ℓblock = τ · w`` and ``tile_size ℓtile = n_block · ℓblock``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.core.executors import EXECUTOR_NAMES
from repro.errors import InvalidParameterError
from repro.index.kmer_index import max_step, validate_sparsity

#: Hard cap on ℓs: the ptrs table has 4^ℓs entries.
MAX_SEED_LENGTH = 13

#: Supported backends of :class:`repro.core.matcher.GpuMem`.
BACKENDS = ("vectorized", "simulated")


@dataclass(frozen=True)
class GpuMemParams:
    """Validated GPUMEM parameter set. Instances are immutable."""

    min_length: int
    seed_length: int = 10
    step: int | None = None
    threads_per_block: int = 128
    blocks_per_tile: int = 64
    work_per_thread: int | None = None
    load_balancing: bool = True
    backend: str = "vectorized"
    #: Row executor of the staged pipeline: "serial", "threads", or "banded".
    #: ``None`` resolves to the ``REPRO_EXECUTOR`` environment variable
    #: (default "serial") — the knob CI's threaded tier-1 leg uses to run
    #: the whole suite under ``executor=threads``.
    executor: str | None = None
    #: Pool width ("threads") or band count ("banded"); ``None`` resolves to
    #: ``REPRO_WORKERS`` if set, else the executor's own default.
    workers: int | None = None

    def __post_init__(self):
        if self.min_length < 1:
            raise InvalidParameterError(
                f"min_length must be >= 1, got {self.min_length}"
            )
        if not 1 <= self.seed_length <= MAX_SEED_LENGTH:
            raise InvalidParameterError(
                f"seed_length must be in [1, {MAX_SEED_LENGTH}], got {self.seed_length}"
            )
        if self.seed_length > self.min_length:
            raise InvalidParameterError(
                f"seed_length ({self.seed_length}) must not exceed min_length "
                f"({self.min_length}); the paper drops ℓs to match small L"
            )
        if self.step is None:
            object.__setattr__(
                self, "step", max_step(self.seed_length, self.min_length)
            )
        validate_sparsity(self.seed_length, self.step, self.min_length)
        tau = self.threads_per_block
        if tau < 2 or (tau & (tau - 1)) != 0:
            raise InvalidParameterError(
                f"threads_per_block must be a power of two >= 2, got {tau}"
            )
        if self.blocks_per_tile < 1:
            raise InvalidParameterError(
                f"blocks_per_tile must be >= 1, got {self.blocks_per_tile}"
            )
        if self.work_per_thread is None:
            object.__setattr__(self, "work_per_thread", self.step)
        if self.work_per_thread != self.step:
            # §III-B2: "To extract all the valid MEMs and not to extract a MEM
            # more than once, GPUMEM uses w = Δs."
            raise InvalidParameterError(
                f"work_per_thread (w={self.work_per_thread}) must equal step "
                f"(Δs={self.step}); any other value loses or duplicates MEMs"
            )
        if self.backend not in BACKENDS:
            raise InvalidParameterError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.executor is None:
            object.__setattr__(
                self, "executor", os.environ.get("REPRO_EXECUTOR", "serial")
            )
        if self.workers is None and os.environ.get("REPRO_WORKERS"):
            object.__setattr__(
                self, "workers", int(os.environ["REPRO_WORKERS"])
            )
        if self.executor not in EXECUTOR_NAMES:
            raise InvalidParameterError(
                f"unknown executor {self.executor!r}; choose from {EXECUTOR_NAMES}"
            )
        if self.workers is not None and self.workers < 1:
            raise InvalidParameterError(
                f"workers must be >= 1 (or None), got {self.workers}"
            )

    # -- derived sizes (Table I) --------------------------------------------------
    @property
    def block_width(self) -> int:
        """ℓblock = τ · w: query positions covered by one GPU block."""
        return self.threads_per_block * self.work_per_thread

    @property
    def tile_size(self) -> int:
        """ℓtile = n_block · ℓblock: side of a square tile."""
        return self.blocks_per_tile * self.block_width

    @property
    def n_seed_values(self) -> int:
        """Entries of the ptrs array: ``4^ℓs``."""
        return 4**self.seed_length

    def locs_per_row(self) -> int:
        """Paper §III-A: ``n_locs = ⌈ℓtile / Δs⌉`` locations per tile row."""
        return -(-self.tile_size // self.step)

    def with_(self, **changes) -> "GpuMemParams":
        """A modified copy (dataclasses.replace with re-validation)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Human-readable one-line summary."""
        out = (
            f"L={self.min_length} ℓs={self.seed_length} Δs={self.step} "
            f"τ={self.threads_per_block} w={self.work_per_thread} "
            f"ℓblock={self.block_width} n_block={self.blocks_per_tile} "
            f"ℓtile={self.tile_size} balance={'on' if self.load_balancing else 'off'}"
        )
        if self.executor != "serial":
            out += f" exec={self.executor}"
            if self.workers is not None:
                out += f"×{self.workers}"
        return out
